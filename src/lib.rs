//! RISPP — a run-time system for an extensible embedded processor with a
//! dynamic instruction set.
//!
//! Reproduction of L. Bauer, M. Shafique, S. Kreutz, J. Henkel,
//! *"Run-time System for an Extensible Embedded Processor with Dynamic
//! Instruction Set"*, DATE 2008. This facade crate re-exports the whole
//! workspace:
//!
//! * [`model`] — the Molecule/Atom lattice algebra and SI library model.
//! * [`fabric`] — the reconfigurable-fabric simulator (Atom Containers,
//!   partial bitstreams, SelectMAP/ICAP port timing).
//! * [`monitor`] — online SI execution monitoring and forecasting.
//! * [`core`] — the run-time system: Molecule selection and the
//!   FSFR/ASF/SJF/**HEF** Atom schedulers (the paper's contribution).
//! * [`sim`] — the cycle-level execution engine and the Molen-like
//!   baseline.
//! * [`h264`] — the H.264 encoder substrate (kernels, synthetic video,
//!   workload extraction; paper Table 1 SI library).
//! * [`hw`] — the HEF hardware FSM model and Table 3 area estimates.
//! * [`apps`] — further benchmark applications (AES packet gateway,
//!   audio filterbank) demonstrating the concept beyond video encoding.
//!
//! # Quickstart
//!
//! ```
//! use rispp::core::SchedulerKind;
//! use rispp::h264::{h264_si_library, EncoderConfig, EncoderWorkload};
//! use rispp::sim::{simulate, SimConfig};
//!
//! let library = h264_si_library();
//! let workload = EncoderWorkload::generate(&EncoderConfig::tiny(3));
//! let hef = simulate(&library, workload.trace(), &SimConfig::rispp(10, SchedulerKind::Hef));
//! let software = simulate(&library, workload.trace(), &SimConfig::software_only());
//! assert!(hef.total_cycles < software.total_cycles);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the harness regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rispp_apps as apps;
pub use rispp_core as core;
pub use rispp_fabric as fabric;
pub use rispp_h264 as h264;
pub use rispp_hw as hw;
pub use rispp_model as model;
pub use rispp_monitor as monitor;
pub use rispp_sim as sim;
