#!/usr/bin/env bash
# Local CI gate: release build, tier-1 tests, workspace tests, strict
# clippy, strict rustdoc. Everything runs offline against the vendored
# dev-dependencies in vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "ci: all gates passed"
