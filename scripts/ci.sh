#!/usr/bin/env bash
# Local CI gate: release build, tier-1 tests, workspace tests, strict
# clippy, strict rustdoc. Everything runs offline against the vendored
# dev-dependencies in vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
# --workspace: the root package does not depend on the CLI/bench bins,
# and the smokes below run ./target/release/{rispp-cli,fig7} directly.
cargo build --release --workspace

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> tier-forced kernel equivalence suite"
# Re-run the three-way kernel equivalence proptests once per *available*
# tier with RISPP_KERNEL_TIER forced, so the dispatched Molecule layer is
# exercised end-to-end on every tier this CPU can run (the wide/AVX2 tier
# is skipped on hosts without it; forcing an unavailable tier is an error
# by design). Availability comes from molecule_kernels' self-description.
tiers="scalar swar"
if ./target/release/molecule_kernels 1 2>&1 >/dev/null | grep -q '^tiers available.*wide'; then
  tiers="$tiers wide"
fi
for tier in $tiers; do
  echo "    RISPP_KERNEL_TIER=$tier"
  RISPP_KERNEL_TIER="$tier" cargo test -q -p rispp-model --test tier_equivalence >/dev/null
  # Backend conformance includes the K=1 arbiter bit-identity suite; the
  # single-tenant multiplexed path must match the classic path on every
  # kernel tier, not just the dispatcher's pick.
  RISPP_KERNEL_TIER="$tier" cargo test -q -p rispp-sim --test backend_conformance >/dev/null
done

echo "==> fault-sweep smoke (rispp-cli resilience)"
# Seeded so the run provably exercises the whole recovery path: the CSV row
# must show injected faults AND quarantined containers, and the run must
# still complete (exit 0 = forward progress via the cISA fallback).
smoke=$(./target/release/rispp-cli resilience --frames 2 --fault-rate 0.05 \
        --fault-seed 1 --csv | tail -1)
echo "    $smoke"
faults=$(echo "$smoke" | cut -d, -f4)
quarantined=$(echo "$smoke" | cut -d, -f6)
if [ "${faults:-0}" -eq 0 ] || [ "${quarantined:-0}" -eq 0 ]; then
  echo "ci: resilience smoke failed — expected nonzero faults and quarantines, got $smoke" >&2
  exit 1
fi

echo "==> contention smoke (rispp-cli contend, 2 tenants, both policies)"
# Two phase-shifted tenants on one small fabric must contend for real:
# the shared policy has to report contested evictions, the partitioned
# policy must report exactly zero (hard isolation), and the sweep must
# exit cleanly.
contend_csv=$(./target/release/rispp-cli contend --frames 2 --apps 2 \
              --from 8 --to 8 --csv | tail -n +2)
echo "$contend_csv" | sed 's/^/    /'
shared_contested=$(echo "$contend_csv" | awk -F, '$2=="shared"{s+=$8} END{print s+0}')
part_contested=$(echo "$contend_csv" | awk -F, '$2=="partitioned"{s+=$8} END{print s+0}')
if [ "$shared_contested" -eq 0 ] || [ "$part_contested" -ne 0 ]; then
  echo "ci: contention smoke failed — shared contested=$shared_contested (want >0), partitioned contested=$part_contested (want 0)" >&2
  exit 1
fi

echo "==> telemetry smoke (metrics + Perfetto trace + check-trace)"
# A short telemetry-enabled run must produce a parseable Chrome trace
# (>=1 container track, >=1 decision event — enforced by check-trace)
# and a non-trivial metrics snapshot. The fig7 perf gate below runs with
# telemetry compiled in but disabled, pinning the NullRecorder cost.
./target/release/rispp-cli simulate --frames 2 --acs 8 \
  --metrics-out target/ci_metrics.json --trace-out target/ci_trace.json \
  >/dev/null
./target/release/rispp-cli check-trace --file target/ci_trace.json
grep -q '"rispp_simulated_cycles_total"' target/ci_metrics.json || {
  echo "ci: telemetry smoke failed — metrics snapshot missing rispp_simulated_cycles_total" >&2
  exit 1
}

echo "==> plan-cache smoke (cache on/off CSV byte-identity)"
# The PlanCache is a pure memoisation layer: the same simulation run
# with the cache enabled (default) and disabled via the RISPP_PLAN_CACHE=0
# escape hatch must produce byte-identical CSV output. Any divergence
# means a cached decision leaked state it should not have.
RISPP_PLAN_CACHE=1 ./target/release/rispp-cli simulate --frames 2 --acs 8 \
  --csv >target/ci_plan_on.csv
RISPP_PLAN_CACHE=0 ./target/release/rispp-cli simulate --frames 2 --acs 8 \
  --csv >target/ci_plan_off.csv
if ! cmp -s target/ci_plan_on.csv target/ci_plan_off.csv; then
  echo "ci: plan-cache smoke failed — cache-on and cache-off CSV outputs differ:" >&2
  diff target/ci_plan_on.csv target/ci_plan_off.csv >&2 || true
  exit 1
fi
echo "    cache-on and cache-off outputs byte-identical"

echo "==> serve smoke (daemon boot, NDJSON batch, SIGTERM drain)"
# Boot the job-server daemon on an ephemeral port, push a fig7-shaped
# batch over the socket with --compare-local (the client re-runs every
# completed job through the batch path and fails on any stats
# divergence), then SIGTERM the daemon: it must drain gracefully —
# exit 0 and account for every admitted job (4 completed, nothing
# lost, duplicated, rejected or dropped).
./target/release/rispp-cli serve --addr 127.0.0.1:0 --workers 2 \
  >target/ci_serve.log 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
  grep -q "rispp-serve listening on" target/ci_serve.log 2>/dev/null && break
  sleep 0.1
done
serve_addr=$(grep -m1 "rispp-serve listening on" target/ci_serve.log | awk '{print $NF}')
if [ -z "${serve_addr:-}" ]; then
  echo "ci: serve smoke failed — daemon never announced its address" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
./target/release/rispp-cli submit --addr "$serve_addr" --frames 2 \
  --from 6 --to 9 --compare-local | sed 's/^/    /'
kill -TERM "$serve_pid"
serve_rc=0
wait "$serve_pid" || serve_rc=$?
if [ "$serve_rc" -ne 0 ]; then
  echo "ci: serve smoke failed — daemon exited $serve_rc after SIGTERM" >&2
  exit 1
fi
if ! grep -q "drained: 4 completed, 0 rejected, 0 timeouts, 0 cancelled, 0 panicked, 0 poisoned" \
    target/ci_serve.log; then
  echo "ci: serve smoke failed — drain summary lost or duplicated jobs:" >&2
  cat target/ci_serve.log >&2
  exit 1
fi
echo "    $(grep -m1 'drained:' target/ci_serve.log)"

echo "==> forensics smoke (flight bundle on injected panic + rispp-cli forensics)"
# Boot a forensics-armed daemon, inject a job that panics on every
# attempt (retry exhaustion), and require exactly one flight bundle in
# the spill directory that `rispp-cli forensics` parses with exit 0.
rm -rf target/ci_flight
./target/release/rispp-cli serve --addr 127.0.0.1:0 --workers 1 \
  --max-attempts 2 --poison-threshold 10 --flight-dir target/ci_flight \
  >target/ci_serve_flight.log 2>&1 &
flight_pid=$!
for _ in $(seq 1 100); do
  grep -q "rispp-serve listening on" target/ci_serve_flight.log 2>/dev/null && break
  sleep 0.1
done
flight_addr=$(grep -m1 "rispp-serve listening on" target/ci_serve_flight.log | awk '{print $NF}')
if [ -z "${flight_addr:-}" ]; then
  echo "ci: forensics smoke failed — daemon never announced its address" >&2
  kill "$flight_pid" 2>/dev/null || true
  exit 1
fi
# The submit exits nonzero because the job fails — that is the point.
./target/release/rispp-cli submit --addr "$flight_addr" --frames 2 \
  --acs 6 --chaos-panics 99 | sed 's/^/    /' || true
kill -TERM "$flight_pid"
wait "$flight_pid" || {
  echo "ci: forensics smoke failed — daemon exited nonzero after SIGTERM" >&2
  exit 1
}
bundle_count=$(ls target/ci_flight/bundle-*.jsonl 2>/dev/null | wc -l)
if [ "$bundle_count" -ne 1 ]; then
  echo "ci: forensics smoke failed — expected exactly 1 flight bundle, found $bundle_count" >&2
  exit 1
fi
./target/release/rispp-cli forensics \
  --file "$(ls target/ci_flight/bundle-*.jsonl)" | sed 's/^/    /'

echo "==> cargo bench --no-run --workspace"
cargo bench --no-run --workspace

if [ "${RISPP_CI_SKIP_PERF:-0}" != "1" ]; then
  echo "==> fig7 throughput smoke vs committed BENCH_sweep.json"
  # Wall-clock gate: the sweep must stay within 20% of the committed
  # record (same frames, single worker thread, best of two runs to damp
  # scheduler noise). Set RISPP_CI_SKIP_PERF=1 on machines whose absolute
  # speed is not comparable to the one that recorded the baseline.
  frames=$(grep -o '"frames": [0-9]*' BENCH_sweep.json | awk '{print $2}')
  baseline=$(grep -o '"jobs_per_s": [0-9.]*' BENCH_sweep.json | awk '{print $2}')
  best=0
  for _ in 1 2; do
    RISPP_THREADS=1 ./target/release/fig7 "$frames" --json target/ci_sweep.json \
      >/dev/null 2>&1
    run=$(grep -o '"jobs_per_s": [0-9.]*' target/ci_sweep.json | awk '{print $2}')
    best=$(awk -v a="$best" -v b="$run" 'BEGIN{print (b>a)?b:a}')
  done
  echo "    committed ${baseline} jobs/s, measured best-of-2 ${best} jobs/s"
  awk -v b="$baseline" -v m="$best" 'BEGIN{exit !(m >= 0.8 * b)}' || {
    echo "ci: sweep throughput regression — ${best} jobs/s is below 80% of the committed ${baseline} (set RISPP_CI_SKIP_PERF=1 to skip on incomparable hardware)" >&2
    exit 1
  }
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "ci: all gates passed"
