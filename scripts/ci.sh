#!/usr/bin/env bash
# Local CI gate: release build, tier-1 tests, workspace tests, strict clippy.
# Everything runs offline against the vendored dev-dependencies in vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all gates passed"
