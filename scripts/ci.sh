#!/usr/bin/env bash
# Local CI gate: release build, tier-1 tests, workspace tests, strict
# clippy, strict rustdoc. Everything runs offline against the vendored
# dev-dependencies in vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> fault-sweep smoke (rispp-cli resilience)"
# Seeded so the run provably exercises the whole recovery path: the CSV row
# must show injected faults AND quarantined containers, and the run must
# still complete (exit 0 = forward progress via the cISA fallback).
smoke=$(./target/release/rispp-cli resilience --frames 2 --fault-rate 0.05 \
        --fault-seed 1 --csv | tail -1)
echo "    $smoke"
faults=$(echo "$smoke" | cut -d, -f4)
quarantined=$(echo "$smoke" | cut -d, -f6)
if [ "${faults:-0}" -eq 0 ] || [ "${quarantined:-0}" -eq 0 ]; then
  echo "ci: resilience smoke failed — expected nonzero faults and quarantines, got $smoke" >&2
  exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "ci: all gates passed"
