//! CRC-32 (IEEE 802.3) — the integrity-check kernel of the crypto
//! gateway.

/// Computes the table for the reflected IEEE polynomial `0xEDB88320`.
fn table() -> [u32; 256] {
    let mut t = [0u32; 256];
    for (i, entry) in t.iter_mut().enumerate() {
        let mut crc = i as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
        *entry = crc;
    }
    t
}

/// CRC-32 of `data` (IEEE 802.3: init `0xFFFF_FFFF`, final XOR).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32 state for streaming packets.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = (self.state >> 8) ^ t[((self.state ^ u32::from(b)) & 0xFF) as usize];
        }
    }

    /// Finalises the checksum.
    #[must_use]
    pub fn finish(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The canonical CRC-32 check: "123456789" -> 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..200).map(|i| (i * 7 % 256) as u8).collect();
        let mut s = Crc32::new();
        s.update(&data[..77]);
        s.update(&data[77..]);
        assert_eq!(s.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 64];
        let clean = crc32(&data);
        data[17] ^= 0x04;
        assert_ne!(crc32(&data), clean);
    }
}
