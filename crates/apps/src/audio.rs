//! The audio filterbank application: FIR low-pass, parametric biquad
//! equalisation and decimation over synthesised audio.
//!
//! The per-stage SI mix is content-dependent: the equaliser stage adapts
//! its active band count to the signal's spectral tilt, so the run-time
//! system sees a drifting profile just like the H.264 encoder's
//! motion-dependent one.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibrary, SiLibraryBuilder};
use rispp_monitor::HotSpotId;
use rispp_sim::{Burst, Invocation, Trace};

/// A 15-tap symmetric FIR low-pass (integer coefficients, gain-normalised
/// by the caller through the >> 8 in [`fir_filter`]).
pub const FIR_TAPS: [i32; 15] = [-2, -4, -2, 6, 18, 32, 42, 46, 42, 32, 18, 6, -2, -4, -2];

/// Applies the 15-tap FIR to `input`, producing `input.len()` samples
/// (edge samples use zero padding).
#[must_use]
pub fn fir_filter(input: &[i16]) -> Vec<i16> {
    let n = input.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut acc = 0i64;
        for (k, &tap) in FIR_TAPS.iter().enumerate() {
            let idx = i as isize + k as isize - 7;
            if idx >= 0 && (idx as usize) < n {
                acc += i64::from(tap) * i64::from(input[idx as usize]);
            }
        }
        out.push((acc >> 8).clamp(-32_768, 32_767) as i16);
    }
    out
}

/// Direct-form-I biquad with fixed-point coefficients (Q14).
#[derive(Debug, Clone, Copy)]
pub struct Biquad {
    /// Feed-forward coefficients (Q14).
    pub b: [i32; 3],
    /// Feedback coefficients `a1, a2` (Q14; `a0` normalised to 1).
    pub a: [i32; 2],
    x: [i32; 2],
    y: [i32; 2],
}

impl Biquad {
    /// A gentle peaking equaliser band (fixed example coefficients).
    #[must_use]
    pub fn peaking() -> Self {
        Biquad {
            b: [17_000, -30_000, 14_500],
            a: [-30_000, 15_000],
            x: [0; 2],
            y: [0; 2],
        }
    }

    /// Processes one sample.
    pub fn process(&mut self, x0: i32) -> i32 {
        let acc = i64::from(self.b[0]) * i64::from(x0)
            + i64::from(self.b[1]) * i64::from(self.x[0])
            + i64::from(self.b[2]) * i64::from(self.x[1])
            - i64::from(self.a[0]) * i64::from(self.y[0])
            - i64::from(self.a[1]) * i64::from(self.y[1]);
        let y0 = (acc >> 14).clamp(-(1 << 30), 1 << 30) as i32;
        self.x = [x0, self.x[0]];
        self.y = [y0, self.y[0]];
        y0
    }
}

/// The filterbank's Special Instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum AudioSi {
    /// One 15-tap FIR output sample group (8 samples).
    FirBlock = 0,
    /// One biquad band over a sample group.
    BiquadBand = 1,
    /// Decimation + repack of a sample group.
    Decimate = 2,
}

impl AudioSi {
    /// The SI id in [`audio_si_library`].
    #[must_use]
    pub fn id(self) -> SiId {
        SiId(self as u16)
    }
}

/// The filterbank's hot spots (pipeline stages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum AudioHotSpot {
    /// FIR pre-filtering.
    PreFilter = 0,
    /// Parametric equalisation.
    Equalise = 1,
    /// Decimation / output packing.
    Output = 2,
}

impl AudioHotSpot {
    /// The engine-level id.
    #[must_use]
    pub fn id(self) -> HotSpotId {
        HotSpotId(self as u16)
    }
}

/// Builds the filterbank SI library: 3 SIs over 4 Atom types
/// (`MacUnit`, `DelayLine`, `CoeffBank`, `Repacker`).
///
/// # Panics
///
/// Never panics for the built-in tables.
#[must_use]
pub fn audio_si_library() -> SiLibrary {
    let universe = AtomUniverse::from_types([
        AtomTypeInfo::new("MacUnit").with_bitstream_bytes(56_000).with_slices(380),
        AtomTypeInfo::new("DelayLine").with_bitstream_bytes(48_000).with_slices(260),
        AtomTypeInfo::new("CoeffBank").with_bitstream_bytes(52_000).with_slices(300),
        AtomTypeInfo::new("Repacker").with_bitstream_bytes(42_000).with_slices(230),
    ])
    .expect("unique names");
    let mut b = SiLibraryBuilder::new(universe);
    let v = |counts: [u16; 4]| Molecule::from_counts(counts);
    {
        let mut si = b.special_instruction("FIR_BLOCK", 1_100).expect("unique");
        si.molecule(v([1, 1, 1, 0]), 380)
            .expect("valid")
            .molecule(v([2, 1, 1, 0]), 210)
            .expect("valid")
            .molecule(v([4, 1, 1, 0]), 110)
            .expect("valid")
            .molecule(v([4, 2, 2, 0]), 48)
            .expect("valid");
    }
    {
        let mut si = b.special_instruction("BIQUAD_BAND", 800).expect("unique");
        si.molecule(v([1, 1, 0, 0]), 280)
            .expect("valid")
            .molecule(v([2, 1, 0, 0]), 140)
            .expect("valid")
            .molecule(v([2, 2, 0, 0]), 60)
            .expect("valid");
    }
    {
        let mut si = b.special_instruction("DECIMATE", 300).expect("unique");
        si.molecule(v([0, 0, 0, 1]), 90)
            .expect("valid")
            .molecule(v([0, 0, 0, 2]), 40)
            .expect("valid");
    }
    b.build().expect("valid library")
}

/// Filterbank workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct FilterbankConfig {
    /// Audio frames to process (one PreFilter→Equalise→Output cycle each).
    pub frames: u32,
    /// Samples per frame.
    pub samples_per_frame: u32,
    /// Random seed for the synthesised input.
    pub seed: u64,
}

impl FilterbankConfig {
    /// A tiny configuration for tests.
    #[must_use]
    pub fn tiny() -> Self {
        FilterbankConfig {
            frames: 4,
            samples_per_frame: 512,
            seed: 5,
        }
    }
}

/// Generates the filterbank trace by really filtering synthesised audio.
/// Returns the trace and an output energy checksum.
#[must_use]
pub fn generate_filterbank_workload(config: &FilterbankConfig) -> (Trace, u64) {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut trace = Trace::default();
    let mut energy = 0u64;
    let spf = config.samples_per_frame as usize;
    let groups = (config.samples_per_frame / 8).max(1);

    for frame in 0..config.frames {
        // Synthesise: a swept tone + noise; the sweep's brightness decides
        // how many equaliser bands engage (2..=6).
        let phase_step = 0.02 + 0.2 * f64::from(frame % 10) / 10.0;
        let input: Vec<i16> = (0..spf)
            .map(|i| {
                let tone = (i as f64 * phase_step).sin() * 12_000.0;
                let noise: i16 = rng.gen_range(-500..=500);
                (tone as i16).saturating_add(noise)
            })
            .collect();

        let filtered = fir_filter(&input);
        let brightness: u64 = filtered
            .windows(2)
            .map(|w| u64::from(w[0].abs_diff(w[1])))
            .sum::<u64>()
            / spf as u64;
        let bands = (2 + brightness / 400).min(6) as u32;

        let mut eq = vec![Biquad::peaking(); bands as usize];
        let mut out_energy = 0u64;
        for &s in &filtered {
            let mut acc = i32::from(s);
            for band in &mut eq {
                acc = band.process(acc);
            }
            out_energy += u64::from(acc.unsigned_abs()) >> 8;
        }
        energy ^= out_energy;

        trace.push(Invocation {
            hot_spot: AudioHotSpot::PreFilter.id(),
            prologue_cycles: 8_000,
            bursts: vec![Burst {
                si: AudioSi::FirBlock.id(),
                count: groups,
                overhead: 8,
            }],
            hints: vec![(AudioSi::FirBlock.id(), u64::from(groups))],
        });
        trace.push(Invocation {
            hot_spot: AudioHotSpot::Equalise.id(),
            prologue_cycles: 6_000,
            bursts: vec![Burst {
                si: AudioSi::BiquadBand.id(),
                count: groups * bands,
                overhead: 8,
            }],
            hints: vec![(AudioSi::BiquadBand.id(), u64::from(groups) * 4)],
        });
        trace.push(Invocation {
            hot_spot: AudioHotSpot::Output.id(),
            prologue_cycles: 4_000,
            bursts: vec![Burst {
                si: AudioSi::Decimate.id(),
                count: groups / 2,
                overhead: 6,
            }],
            hints: vec![(AudioSi::Decimate.id(), u64::from(groups / 2))],
        });
    }
    (trace, energy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp_core::SchedulerKind;
    use rispp_sim::{simulate, SimConfig};

    #[test]
    fn fir_preserves_dc_scaling() {
        // Tap sum = 226; a constant input maps to ~constant·226/256.
        let input = vec![1_000i16; 64];
        let out = fir_filter(&input);
        let expected = (1_000i64 * FIR_TAPS.iter().map(|&t| i64::from(t)).sum::<i64>()) >> 8;
        assert_eq!(i64::from(out[32]), expected);
    }

    #[test]
    fn fir_attenuates_nyquist() {
        // Alternating ±A is the highest frequency; a low-pass must crush it.
        let input: Vec<i16> = (0..64).map(|i| if i % 2 == 0 { 8_000 } else { -8_000 }).collect();
        let out = fir_filter(&input);
        assert!(out[32].unsigned_abs() < 800, "nyquist leak: {}", out[32]);
    }

    #[test]
    fn biquad_is_stable_on_bounded_input() {
        let mut bq = Biquad::peaking();
        let mut max = 0i32;
        for i in 0..10_000 {
            let x = if i % 7 == 0 { 20_000 } else { -15_000 };
            max = max.max(bq.process(x).abs());
        }
        assert!(max < 1 << 22, "biquad diverged: {max}");
    }

    #[test]
    fn workload_deterministic_and_structured() {
        let (a, ea) = generate_filterbank_workload(&FilterbankConfig::tiny());
        let (b, eb) = generate_filterbank_workload(&FilterbankConfig::tiny());
        assert_eq!(ea, eb);
        assert_eq!(a.total_si_executions(), b.total_si_executions());
        assert_eq!(a.len(), 12); // 4 frames × 3 stages
    }

    #[test]
    fn rispp_accelerates_the_filterbank() {
        let lib = audio_si_library();
        let (trace, _) = generate_filterbank_workload(&FilterbankConfig {
            frames: 12,
            samples_per_frame: 2_048,
            seed: 5,
        });
        let sw = simulate(&lib, &trace, &SimConfig::software_only());
        let hef = simulate(&lib, &trace, &SimConfig::rispp(6, SchedulerKind::Hef));
        assert!(hef.total_cycles < sw.total_cycles);
    }

    #[test]
    fn injected_software_backend_matches_enum_path() {
        use rispp_sim::{
            simulate_with, ExecutionSystem, RunStats, SimObserver, SoftwareBackend,
            DEFAULT_BUCKET_CYCLES,
        };
        let lib = audio_si_library();
        let (trace, _) = generate_filterbank_workload(&FilterbankConfig::tiny());
        let via_enum = simulate(&lib, &trace, &SimConfig::software_only());
        // Drive the same trace through a directly injected backend.
        let mut backend = SoftwareBackend::new(&lib);
        let mut stats = RunStats::new(backend.label(), lib.len(), DEFAULT_BUCKET_CYCLES, false);
        {
            let mut observers: [&mut dyn SimObserver; 1] = [&mut stats];
            simulate_with(&mut backend, &trace, &mut observers);
        }
        assert_eq!(via_enum, stats);
    }
}
