//! Additional benchmark applications for the RISPP run-time system.
//!
//! The paper stresses that its concept "is by no means limited to" the
//! H.264 encoder; this crate backs that claim with two further
//! applications whose kernels are, again, really computed:
//!
//! * [`crypto`] — an AES-128 packet-encryption gateway ([`aes`] is a
//!   complete FIPS-197 implementation) with CRC-32 integrity checking;
//!   its hot spots migrate between key handshakes, bulk encryption and
//!   integrity scanning, exactly the kind of profile shift the run-time
//!   system adapts to.
//! * [`audio`] — a multi-stage audio filterbank (FIR low-pass, biquad
//!   equalisers, decimation) over synthesised input, whose per-stage SI
//!   mix depends on the signal content.
//!
//! Both expose `*_si_library()` + a workload generator producing
//! [`rispp_sim::Trace`]s, so every scheduler/baseline of the H.264
//! benchmarks runs on them unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod audio;
pub mod crc;
pub mod crypto;
