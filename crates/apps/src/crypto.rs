//! The AES packet-encryption gateway application.
//!
//! The gateway's processing migrates between three hot spots, mirroring
//! the paper's Figure 1 for a different domain:
//!
//! 1. **Handshake** — key schedules for new sessions (`KeyExpand`-heavy),
//! 2. **Bulk** — CTR encryption of payload blocks (`AesRound`-heavy),
//! 3. **Integrity** — CRC-32 scanning of frames (`Crc32`-heavy).
//!
//! All payloads are really encrypted ([`crate::aes`]) and checksummed
//! ([`crate::crc`]); SI execution counts come from that processing, so the
//! trace's profile depends on the synthetic traffic mix (session churn,
//! packet sizes) exactly as the H.264 workload depends on video content.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rispp_model::{
    AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibrary, SiLibraryBuilder,
};
use rispp_monitor::HotSpotId;
use rispp_sim::{Burst, Invocation, Trace};

use crate::aes::{encrypt_ctr, key_schedule};
use crate::crc::crc32;

/// The gateway's Special Instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum CryptoSi {
    /// One AES round over a 16-byte state.
    AesRound = 0,
    /// One key-schedule word-expansion step.
    KeyExpand = 1,
    /// CRC-32 over a 16-byte group.
    Crc32 = 2,
    /// Header parsing / field extraction of one packet.
    ParseHeader = 3,
}

impl CryptoSi {
    /// All SIs in library order.
    pub const ALL: [CryptoSi; 4] = [
        CryptoSi::AesRound,
        CryptoSi::KeyExpand,
        CryptoSi::Crc32,
        CryptoSi::ParseHeader,
    ];

    /// The SI id in [`crypto_si_library`].
    #[must_use]
    pub fn id(self) -> SiId {
        SiId(self as u16)
    }
}

/// The gateway's hot spots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum CryptoHotSpot {
    /// Session establishment (key schedules).
    Handshake = 0,
    /// Payload encryption.
    Bulk = 1,
    /// Frame integrity scanning.
    Integrity = 2,
}

impl CryptoHotSpot {
    /// The engine-level id.
    #[must_use]
    pub fn id(self) -> HotSpotId {
        HotSpotId(self as u16)
    }
}

/// Builds the gateway SI library: 4 SIs over 6 Atom types
/// (`SubBytes`, `MixColumns`, `XorKey`, `SboxMul`, `CrcUnit`, `FieldExtract`).
///
/// # Panics
///
/// Never panics for the built-in tables.
#[must_use]
pub fn crypto_si_library() -> SiLibrary {
    let universe = AtomUniverse::from_types([
        AtomTypeInfo::new("SubBytes").with_bitstream_bytes(62_000).with_slices(430),
        AtomTypeInfo::new("MixColumns").with_bitstream_bytes(70_000).with_slices(520),
        AtomTypeInfo::new("XorKey").with_bitstream_bytes(44_000).with_slices(250),
        AtomTypeInfo::new("SboxMul").with_bitstream_bytes(58_000).with_slices(400),
        AtomTypeInfo::new("CrcUnit").with_bitstream_bytes(52_000).with_slices(330),
        AtomTypeInfo::new("FieldExtract").with_bitstream_bytes(40_000).with_slices(220),
    ])
    .expect("unique names");
    let mut b = SiLibraryBuilder::new(universe);
    let v = |entries: &[(usize, u16)]| {
        let mut counts = [0u16; 6];
        for &(i, c) in entries {
            counts[i] = c;
        }
        Molecule::from_counts(counts)
    };
    {
        let mut si = b.special_instruction("AES_ROUND", 1_400).expect("unique");
        si.molecule(v(&[(0, 1), (1, 1), (2, 1)]), 420)
            .expect("valid")
            .molecule(v(&[(0, 2), (1, 1), (2, 1)]), 260)
            .expect("valid")
            .molecule(v(&[(0, 2), (1, 2), (2, 1)]), 150)
            .expect("valid")
            .molecule(v(&[(0, 4), (1, 2), (2, 2)]), 80)
            .expect("valid")
            .molecule(v(&[(0, 4), (1, 4), (2, 2)]), 30)
            .expect("valid");
    }
    {
        let mut si = b.special_instruction("KEY_EXPAND", 900).expect("unique");
        si.molecule(v(&[(3, 1), (2, 1)]), 300)
            .expect("valid")
            .molecule(v(&[(3, 2), (2, 1)]), 160)
            .expect("valid")
            .molecule(v(&[(3, 4), (2, 2)]), 60)
            .expect("valid");
    }
    {
        let mut si = b.special_instruction("CRC32", 700).expect("unique");
        si.molecule(v(&[(4, 1)]), 240)
            .expect("valid")
            .molecule(v(&[(4, 2)]), 120)
            .expect("valid")
            .molecule(v(&[(4, 4)]), 45)
            .expect("valid");
    }
    {
        let mut si = b.special_instruction("PARSE_HEADER", 350).expect("unique");
        si.molecule(v(&[(5, 1)]), 120)
            .expect("valid")
            .molecule(v(&[(5, 2)]), 55)
            .expect("valid");
    }
    b.build().expect("valid library")
}

/// Traffic-mix parameters of the gateway workload.
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// Processing epochs (one Handshake→Bulk→Integrity cycle each).
    pub epochs: u32,
    /// Packets per epoch.
    pub packets_per_epoch: u32,
    /// New sessions (fresh key schedules) per epoch.
    pub sessions_per_epoch: u32,
    /// Random seed for payload sizes and contents.
    pub seed: u64,
}

impl GatewayConfig {
    /// A medium-sized deterministic workload.
    #[must_use]
    pub fn default_mix() -> Self {
        GatewayConfig {
            epochs: 40,
            packets_per_epoch: 300,
            sessions_per_epoch: 8,
            seed: 0xC0FFEE,
        }
    }

    /// A tiny configuration for tests.
    #[must_use]
    pub fn tiny() -> Self {
        GatewayConfig {
            epochs: 3,
            packets_per_epoch: 20,
            sessions_per_epoch: 2,
            seed: 7,
        }
    }
}

/// Generates the gateway trace by actually encrypting and checksumming
/// the synthetic traffic. Returns the trace and the total ciphertext
/// checksum (so the computation cannot be optimised away and runs can be
/// compared for determinism).
#[must_use]
pub fn generate_gateway_workload(config: &GatewayConfig) -> (Trace, u32) {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut trace = Trace::default();
    let mut checksum = 0u32;
    let key = [0x2bu8; 16];
    let nonce = [0x01u8; 12];
    // Design-time hints per hot spot.
    let hs_hints = |hs: CryptoHotSpot, cfg: &GatewayConfig| -> Vec<(SiId, u64)> {
        match hs {
            CryptoHotSpot::Handshake => vec![
                (CryptoSi::KeyExpand.id(), u64::from(cfg.sessions_per_epoch) * 40),
                (CryptoSi::ParseHeader.id(), u64::from(cfg.sessions_per_epoch)),
            ],
            CryptoHotSpot::Bulk => vec![
                (CryptoSi::AesRound.id(), u64::from(cfg.packets_per_epoch) * 300),
                (CryptoSi::ParseHeader.id(), u64::from(cfg.packets_per_epoch)),
            ],
            CryptoHotSpot::Integrity => vec![
                (CryptoSi::Crc32.id(), u64::from(cfg.packets_per_epoch) * 40),
                (CryptoSi::ParseHeader.id(), u64::from(cfg.packets_per_epoch)),
            ],
        }
    };

    for epoch in 0..config.epochs {
        // Burstiness: packet sizes drift across epochs (jumbo phase in the
        // middle third), shifting the AES/CRC balance at run time.
        let jumbo = epoch >= config.epochs / 3 && epoch < 2 * config.epochs / 3;
        let mut payloads: Vec<Vec<u8>> = Vec::new();
        for _ in 0..config.packets_per_epoch {
            let size = if jumbo {
                rng.gen_range(1_024..4_096usize)
            } else {
                rng.gen_range(64..512usize)
            };
            payloads.push((0..size).map(|_| rng.gen()).collect());
        }

        // Handshake: real key schedules.
        let mut handshake_bursts = Vec::new();
        for _ in 0..config.sessions_per_epoch {
            let rk = key_schedule(&key);
            checksum ^= crc32(&rk[10]);
            // 40 word-expansion steps per AES-128 schedule.
            handshake_bursts.push(Burst {
                si: CryptoSi::KeyExpand.id(),
                count: 40,
                overhead: 8,
            });
            handshake_bursts.push(Burst {
                si: CryptoSi::ParseHeader.id(),
                count: 1,
                overhead: 8,
            });
        }
        trace.push(Invocation {
            hot_spot: CryptoHotSpot::Handshake.id(),
            prologue_cycles: 20_000,
            bursts: handshake_bursts,
            hints: hs_hints(CryptoHotSpot::Handshake, config),
        });

        // Bulk: real CTR encryption; one AES_ROUND SI per round per block.
        let mut bulk_bursts = Vec::new();
        for payload in &payloads {
            let cipher = encrypt_ctr(payload, &key, &nonce);
            checksum ^= crc32(&cipher);
            let blocks = payload.len().div_ceil(16) as u32;
            bulk_bursts.push(Burst {
                si: CryptoSi::ParseHeader.id(),
                count: 1,
                overhead: 10,
            });
            bulk_bursts.push(Burst {
                si: CryptoSi::AesRound.id(),
                count: blocks * 10,
                overhead: 6,
            });
        }
        trace.push(Invocation {
            hot_spot: CryptoHotSpot::Bulk.id(),
            prologue_cycles: 30_000,
            bursts: bulk_bursts,
            hints: hs_hints(CryptoHotSpot::Bulk, config),
        });

        // Integrity: real CRC over the ciphertexts, 16-byte groups.
        let mut integrity_bursts = Vec::new();
        for payload in &payloads {
            let groups = payload.len().div_ceil(16) as u32;
            integrity_bursts.push(Burst {
                si: CryptoSi::Crc32.id(),
                count: groups,
                overhead: 6,
            });
        }
        trace.push(Invocation {
            hot_spot: CryptoHotSpot::Integrity.id(),
            prologue_cycles: 15_000,
            bursts: integrity_bursts,
            hints: hs_hints(CryptoHotSpot::Integrity, config),
        });
    }
    (trace, checksum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp_core::SchedulerKind;
    use rispp_sim::{simulate, SimConfig};

    #[test]
    fn library_shape() {
        let lib = crypto_si_library();
        assert_eq!(lib.len(), 4);
        assert_eq!(lib.arity(), 6);
        assert_eq!(lib.by_name("AES_ROUND").unwrap().molecule_count(), 5);
    }

    #[test]
    fn workload_is_deterministic() {
        let (a, ca) = generate_gateway_workload(&GatewayConfig::tiny());
        let (b, cb) = generate_gateway_workload(&GatewayConfig::tiny());
        assert_eq!(ca, cb);
        assert_eq!(a.total_si_executions(), b.total_si_executions());
        assert_eq!(a.len(), 9); // 3 epochs × 3 hot spots
    }

    #[test]
    fn rispp_accelerates_the_gateway() {
        let lib = crypto_si_library();
        let (trace, _) = generate_gateway_workload(&GatewayConfig::tiny());
        let sw = simulate(&lib, &trace, &SimConfig::software_only());
        let hef = simulate(&lib, &trace, &SimConfig::rispp(8, SchedulerKind::Hef));
        assert!(
            hef.total_cycles * 2 < sw.total_cycles,
            "HEF {} vs software {}",
            hef.total_cycles,
            sw.total_cycles
        );
    }

    #[test]
    fn hef_not_slower_than_other_schedulers_on_gateway() {
        let lib = crypto_si_library();
        let (trace, _) = generate_gateway_workload(&GatewayConfig::tiny());
        let hef = simulate(&lib, &trace, &SimConfig::rispp(6, SchedulerKind::Hef)).total_cycles;
        for kind in SchedulerKind::ALL {
            let other = simulate(&lib, &trace, &SimConfig::rispp(6, kind)).total_cycles;
            assert!(hef as f64 <= other as f64 * 1.01, "{kind}: {hef} vs {other}");
        }
    }

    #[test]
    fn trait_path_matches_enum_path_on_gateway() {
        use rispp_sim::{simulate_with, RunStats, SimObserver};
        let lib = crypto_si_library();
        let (trace, _) = generate_gateway_workload(&GatewayConfig::tiny());
        for config in [
            SimConfig::software_only(),
            SimConfig::molen(6),
            SimConfig::rispp(6, SchedulerKind::Hef),
        ] {
            let via_enum = simulate(&lib, &trace, &config);
            let mut system = config.build_system(&lib);
            let mut stats = RunStats::new(
                system.label(),
                lib.len(),
                config.bucket_cycles,
                config.detail,
            );
            {
                let mut observers: [&mut dyn SimObserver; 1] = [&mut stats];
                simulate_with(system.as_mut(), &trace, &mut observers);
            }
            assert_eq!(via_enum, stats);
        }
    }

    #[test]
    fn jumbo_phase_shifts_the_profile() {
        let (trace, _) = generate_gateway_workload(&GatewayConfig {
            epochs: 9,
            packets_per_epoch: 30,
            sessions_per_epoch: 2,
            seed: 11,
        });
        // Bulk invocations: epochs 0..3 small, 3..6 jumbo.
        let bulk: Vec<&rispp_sim::Invocation> = trace
            .invocations()
            .iter()
            .filter(|i| i.hot_spot == CryptoHotSpot::Bulk.id())
            .collect();
        let small = bulk[0].si_executions();
        let jumbo = bulk[4].si_executions();
        assert!(jumbo > small * 3, "jumbo {jumbo} vs small {small}");
    }
}
