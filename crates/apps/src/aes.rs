//! AES-128 (FIPS-197) block encryption — the kernel behind the crypto
//! gateway's Special Instructions.
//!
//! The per-round operations map onto the gateway's Atom types:
//! `SubBytes` (S-box lanes), `MixColumns` (GF(2⁸) column multipliers),
//! `AddRoundKey` (XOR lanes) and the key-schedule core.

/// The AES S-box.
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiplication by `x` in GF(2⁸) with the AES polynomial.
#[must_use]
pub fn xtime(a: u8) -> u8 {
    let shifted = a << 1;
    if a & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

/// Expanded AES-128 key schedule: 11 round keys of 16 bytes.
#[must_use]
pub fn key_schedule(key: &[u8; 16]) -> [[u8; 16]; 11] {
    let mut w = [[0u8; 4]; 44];
    for i in 0..4 {
        w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
    }
    for i in 4..44 {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            temp.rotate_left(1);
            for b in &mut temp {
                *b = SBOX[usize::from(*b)];
            }
            temp[0] ^= RCON[i / 4 - 1];
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ temp[j];
        }
    }
    core::array::from_fn(|round| {
        let mut rk = [0u8; 16];
        for c in 0..4 {
            rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * round + c]);
        }
        rk
    })
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[usize::from(*b)];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    // Column-major state: byte (row r, column c) at index 4c + r.
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        let t = col[0] ^ col[1] ^ col[2] ^ col[3];
        let base = col[0];
        state[4 * c] ^= t ^ xtime(col[0] ^ col[1]);
        state[4 * c + 1] ^= t ^ xtime(col[1] ^ col[2]);
        state[4 * c + 2] ^= t ^ xtime(col[2] ^ col[3]);
        state[4 * c + 3] ^= t ^ xtime(col[3] ^ base);
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

/// Encrypts one 16-byte block with the expanded key schedule.
#[must_use]
pub fn encrypt_block(block: &[u8; 16], round_keys: &[[u8; 16]; 11]) -> [u8; 16] {
    let mut state = *block;
    add_round_key(&mut state, &round_keys[0]);
    for rk in &round_keys[1..10] {
        sub_bytes(&mut state);
        shift_rows(&mut state);
        mix_columns(&mut state);
        add_round_key(&mut state, rk);
    }
    sub_bytes(&mut state);
    shift_rows(&mut state);
    add_round_key(&mut state, &round_keys[10]);
    state
}

/// Encrypts a payload in CTR mode (big-endian 32-bit counter in the last
/// nonce word), returning the ciphertext.
#[must_use]
pub fn encrypt_ctr(payload: &[u8], key: &[u8; 16], nonce: &[u8; 12]) -> Vec<u8> {
    let round_keys = key_schedule(key);
    let mut out = Vec::with_capacity(payload.len());
    for (i, chunk) in payload.chunks(16).enumerate() {
        let mut counter_block = [0u8; 16];
        counter_block[..12].copy_from_slice(nonce);
        counter_block[12..].copy_from_slice(&(i as u32 + 1).to_be_bytes());
        let keystream = encrypt_block(&counter_block, &round_keys);
        for (j, &p) in chunk.iter().enumerate() {
            out.push(p ^ keystream[j]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B: key 2b7e..., plaintext 3243f6a8...
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plain = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let want = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let rk = key_schedule(&key);
        assert_eq!(encrypt_block(&plain, &rk), want);
    }

    #[test]
    fn fips197_key_expansion_first_and_last_words() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let rk = key_schedule(&key);
        assert_eq!(rk[0][..4], key[..4]);
        // w[43] = b6 63 0c a6 (FIPS-197 Appendix A.1).
        assert_eq!(rk[10][12..], [0xb6, 0x63, 0x0c, 0xa6]);
    }

    #[test]
    fn ctr_mode_roundtrips() {
        let key = [7u8; 16];
        let nonce = [3u8; 12];
        let payload: Vec<u8> = (0..100).map(|i| (i * 31 % 251) as u8).collect();
        let cipher = encrypt_ctr(&payload, &key, &nonce);
        assert_ne!(cipher, payload);
        let plain = encrypt_ctr(&cipher, &key, &nonce);
        assert_eq!(plain, payload);
    }

    #[test]
    fn ctr_keystream_differs_per_block() {
        let key = [1u8; 16];
        let nonce = [0u8; 12];
        let zeros = vec![0u8; 32];
        let ks = encrypt_ctr(&zeros, &key, &nonce);
        assert_ne!(ks[..16], ks[16..32]);
    }

    #[test]
    fn xtime_matches_definition() {
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47);
        assert_eq!(xtime(0x80), 0x1b);
    }
}
