//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each experiment of the evaluation section has one function in
//! [`experiments`] returning structured results, a printing helper in
//! [`report`], a standalone binary (`cargo run --release -p rispp-bench
//! --bin fig7` etc.) and a Criterion bench. The per-experiment index lives
//! in the repository's `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
