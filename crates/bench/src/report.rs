//! Table/series formatting for the experiment binaries and benches.

use rispp_core::SchedulerKind;
use rispp_model::SiId;
use rispp_sim::RunStats;

use crate::experiments::{Fig4Row, SchedulerSweep};

/// Formats cycles as the paper does: millions with one decimal.
#[must_use]
pub fn mcycles(cycles: u64) -> String {
    format!("{:.1}", cycles as f64 / 1e6)
}

/// Renders the Figure 7 series (execution time vs. #ACs per scheduler).
#[must_use]
pub fn fig7_table(sweep: &SchedulerSweep) -> String {
    let mut out = String::new();
    out.push_str("Figure 7: execution time [M cycles] encoding the CIF sequence\n");
    out.push_str(&format!(
        "  0 ACs (pure software): {} M cycles (paper: 7,403 M)\n",
        mcycles(sweep.software_cycles)
    ));
    out.push_str("  #ACs");
    for kind in SchedulerKind::ALL {
        out.push_str(&format!("{:>10}", kind.abbreviation()));
    }
    out.push_str(&format!("{:>10}\n", "Molen"));
    for p in &sweep.points {
        out.push_str(&format!("  {:>4}", p.containers));
        for c in p.cycles {
            out.push_str(&format!("{:>10}", mcycles(c)));
        }
        out.push_str(&format!("{:>10}\n", mcycles(p.molen_cycles)));
    }
    out
}

/// Renders Table 2 (speedups HEF vs ASF, ASF vs Molen, HEF vs Molen).
#[must_use]
pub fn table2(sweep: &SchedulerSweep) -> String {
    let idx = |k: SchedulerKind| {
        SchedulerKind::ALL
            .iter()
            .position(|&x| x == k)
            .expect("kind in ALL")
    };
    let hef = idx(SchedulerKind::Hef);
    let asf = idx(SchedulerKind::Asf);
    let mut out = String::new();
    out.push_str("Table 2: speedups across Atom Container counts\n");
    out.push_str("  #ACs   HEF/ASF   ASF/Molen   HEF/Molen\n");
    let mut hef_molen = Vec::new();
    for p in &sweep.points {
        let s_hef_asf = p.cycles[asf] as f64 / p.cycles[hef] as f64;
        let s_asf_molen = p.molen_cycles as f64 / p.cycles[asf] as f64;
        let s_hef_molen = p.molen_cycles as f64 / p.cycles[hef] as f64;
        hef_molen.push(s_hef_molen);
        out.push_str(&format!(
            "  {:>4}   {:>7.2}   {:>9.2}   {:>9.2}\n",
            p.containers, s_hef_asf, s_asf_molen, s_hef_molen
        ));
    }
    let avg = hef_molen.iter().sum::<f64>() / hef_molen.len().max(1) as f64;
    let max = hef_molen.iter().cloned().fold(0.0f64, f64::max);
    out.push_str(&format!(
        "  HEF vs Molen: avg {avg:.2}x (paper 1.71x), max {max:.2}x (paper 2.38x)\n"
    ));
    out
}

/// Renders the Figure 2 series: SI executions per 100 K cycles for the ME
/// hot spot, with and without stepwise SI upgrades.
#[must_use]
pub fn fig2_series(with_upgrade: &RunStats, without: &RunStats, buckets: usize) -> String {
    let a = with_upgrade.combined_buckets();
    let b = without.combined_buckets();
    let mut out = String::new();
    out.push_str("Figure 2: SAD+SATD executions per 100K cycles (ME hot spot)\n");
    out.push_str("  t[100K]   with upgrade   no upgrade\n");
    for i in 0..buckets.min(a.len().max(b.len())) {
        out.push_str(&format!(
            "  {:>7}   {:>12}   {:>10}\n",
            i,
            a.get(i).copied().unwrap_or(0),
            b.get(i).copied().unwrap_or(0)
        ));
    }
    out.push_str(&format!(
        "  totals: with {} cycles, without {} cycles (upgrade {:.2}x faster)\n",
        with_upgrade.total_cycles,
        without.total_cycles,
        without.total_cycles as f64 / with_upgrade.total_cycles as f64
    ));
    out
}

/// Renders the Figure 4 availability tables (good vs. bad atom order).
#[must_use]
pub fn fig4_table(good: &[Fig4Row], bad: &[Fig4Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 4: fastest available Molecule after each Atom load\n");
    out.push_str("  #loaded   good schedule   bad schedule\n");
    for (g, b) in good.iter().zip(bad) {
        let fmt = |r: &Fig4Row| {
            r.molecule
                .map(|m| format!("{} (lat {})", m, r.fastest_latency.unwrap_or(0)))
                .unwrap_or_else(|| "software".to_string())
        };
        out.push_str(&format!(
            "  {:>7}   {:<13}   {:<12}\n",
            g.atoms_loaded,
            fmt(g),
            fmt(b)
        ));
    }
    out
}

/// Renders the Figure 5 upgrade paths per scheduler.
#[must_use]
pub fn fig5_table(paths: &[(SchedulerKind, Vec<(u16, usize)>)]) -> String {
    let mut out = String::new();
    out.push_str("Figure 5: Molecule upgrade paths for two SIs\n");
    for (kind, path) in paths {
        let steps: Vec<String> = path
            .iter()
            .map(|&(si, v)| format!("SI{}·m{}", si + 1, v + 1))
            .collect();
        out.push_str(&format!("  {:>4}: {}\n", kind.abbreviation(), steps.join(" -> ")));
    }
    out
}

/// Renders the Figure 8 detail: per-SI latency steps and execution buckets.
#[must_use]
pub fn fig8_table(stats: &RunStats, sis: &[(SiId, &str)], buckets: usize) -> String {
    let mut out = String::new();
    out.push_str("Figure 8: HEF detail (10 ACs) — latency steps\n");
    for &(si, name) in sis {
        let tl = stats
            .latency_timeline
            .get(si.index())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let steps: Vec<String> = tl
            .iter()
            .take(12)
            .map(|e| format!("@{:.1}: {}", e.at as f64 / 100_000.0, e.latency))
            .collect();
        out.push_str(&format!("  {:<10} {}\n", name, steps.join("  ")));
    }
    out.push_str("  executions per 100K-cycle bucket:\n");
    out.push_str("  t[100K]");
    for &(_, name) in sis {
        out.push_str(&format!("{:>10}", name));
    }
    out.push('\n');
    for b in 0..buckets {
        out.push_str(&format!("  {:>7}", b));
        for &(si, _) in sis {
            out.push_str(&format!("{:>10}", stats.executions_in_bucket(si, b)));
        }
        out.push('\n');
    }
    out
}

/// Renders Table 1 (implemented SIs).
#[must_use]
pub fn table1(rows: &[(String, usize, usize)]) -> String {
    let mut out = String::new();
    out.push_str("Table 1: implemented SIs (paper values in parentheses)\n");
    out.push_str("  SI           #atom-types   #molecules\n");
    let paper: [(usize, usize); 9] = [
        (1, 3),
        (4, 20),
        (3, 12),
        (1, 2),
        (2, 7),
        (3, 11),
        (2, 4),
        (1, 3),
        (2, 5),
    ];
    for (i, (name, types, mols)) in rows.iter().enumerate() {
        let (pt, pm) = paper.get(i).copied().unwrap_or((0, 0));
        out.push_str(&format!(
            "  {name:<12} {types:>6} ({pt:>2})   {mols:>5} ({pm:>2})\n"
        ));
    }
    out
}

/// Renders Table 3 (HEF scheduler hardware results).
#[must_use]
pub fn table3(
    paper: &rispp_hw::AreaReport,
    estimate: &rispp_hw::AreaReport,
    fsm: &rispp_hw::FsmRun,
) -> String {
    let atom = rispp_hw::AreaReport::paper_average_atom();
    let mut out = String::new();
    out.push_str("Table 3: HEF scheduler hardware implementation\n");
    out.push_str("  characteristic      paper HEF   model HEF   avg atom\n");
    out.push_str(&format!(
        "  # slices            {:>9}   {:>9}   {:>8}\n",
        paper.slices, estimate.slices, atom.slices
    ));
    out.push_str(&format!(
        "  # LUTs              {:>9}   {:>9}   {:>8}\n",
        paper.luts, estimate.luts, atom.luts
    ));
    out.push_str(&format!(
        "  # FFs               {:>9}   {:>9}   {:>8}\n",
        paper.ffs, estimate.ffs, atom.ffs
    ));
    out.push_str(&format!(
        "  # MULT18X18         {:>9}   {:>9}   {:>8}\n",
        paper.mult18x18, estimate.mult18x18, atom.mult18x18
    ));
    out.push_str(&format!(
        "  gate equivalents    {:>9}   {:>9}   {:>8}\n",
        paper.gate_equivalents, estimate.gate_equivalents, atom.gate_equivalents
    ));
    out.push_str(&format!(
        "  clock delay [ns]    {:>9.3}   {:>9.3}   {:>8.3}\n",
        paper.clock_delay_ns, estimate.clock_delay_ns, atom.clock_delay_ns
    ));
    out.push_str(&format!(
        "  device utilisation: {:.2}% (paper 3.83%), fits one AC: {}\n",
        paper.device_utilisation_percent(),
        paper.fits_one_atom_container()
    ));
    out.push_str(&format!(
        "  FSM: {} cycles / {:.2} µs per scheduling decision ({} rounds) — far below one 874 µs atom load\n",
        fsm.cycles,
        fsm.wall_time_us(paper.clock_delay_ns),
        fsm.rounds
    ));
    out
}

/// Renders an ablation result list.
#[must_use]
pub fn ablation_table(title: &str, rows: &[(String, u64)]) -> String {
    let mut out = format!("{title}\n");
    let best = rows.iter().map(|&(_, c)| c).min().unwrap_or(1);
    for (label, cycles) in rows {
        out.push_str(&format!(
            "  {:<16} {:>9} M cycles  ({:+.2}% vs best)\n",
            label,
            mcycles(*cycles),
            (*cycles as f64 / best as f64 - 1.0) * 100.0
        ));
    }
    out
}
