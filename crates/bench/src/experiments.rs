//! Structured experiment runners, one per paper table/figure.

use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

use rispp_core::SchedulerKind;
use rispp_h264::{EncoderConfig, EncoderWorkload, HotSpot};
use rispp_sim::{
    simulate, FaultConfig, ProgressObserver, RunStats, SimConfig, SimObserver, SweepJob,
    SweepRunner, SystemKind, Trace,
};

/// The AC sweep of Figure 7 / Table 2.
pub const AC_SWEEP: std::ops::RangeInclusive<u16> = 5..=24;

/// One row of the Figure 7 sweep: execution time per scheduler at a given
/// Atom Container count.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Atom Containers.
    pub containers: u16,
    /// Total cycles per scheduler, in [`SchedulerKind::ALL`] order
    /// (ASF, FSFR, SJF, HEF).
    pub cycles: [u64; 4],
    /// Total cycles of the Molen-like baseline.
    pub molen_cycles: u64,
}

/// Results of the full Figure 7 / Table 2 sweep.
#[derive(Debug, Clone)]
pub struct SchedulerSweep {
    /// Pure-software execution time (the paper's 7,403 M cycles point).
    pub software_cycles: u64,
    /// One entry per AC count in ascending order.
    pub points: Vec<SweepPoint>,
}

impl SchedulerSweep {
    /// Cycles of `kind` at `containers`.
    #[must_use]
    pub fn cycles(&self, containers: u16, kind: SchedulerKind) -> Option<u64> {
        let idx = SchedulerKind::ALL.iter().position(|&k| k == kind)?;
        self.points
            .iter()
            .find(|p| p.containers == containers)
            .map(|p| p.cycles[idx])
    }

    /// Speedup of HEF over Molen at each point (paper Table 2 bottom row).
    #[must_use]
    pub fn hef_vs_molen(&self) -> Vec<(u16, f64)> {
        let hef = SchedulerKind::ALL
            .iter()
            .position(|&k| k == SchedulerKind::Hef)
            .expect("HEF is in ALL");
        self.points
            .iter()
            .map(|p| (p.containers, p.molen_cycles as f64 / p.cycles[hef] as f64))
            .collect()
    }
}

/// Generates the paper's 140-frame CIF workload (expensive; cache it).
#[must_use]
pub fn paper_workload() -> EncoderWorkload {
    EncoderWorkload::paper_cif()
}

/// A reduced workload for quick experiments and CI.
#[must_use]
pub fn quick_workload(frames: u32) -> EncoderWorkload {
    let mut config = EncoderConfig::paper_cif();
    config.frames = frames;
    EncoderWorkload::generate(&config)
}

/// Runs the Figure 7 / Table 2 sweep over `containers` for the given trace,
/// fanning the independent `(AC count, system)` simulations across the
/// [`SweepRunner`]'s worker threads (thread count from `RISPP_THREADS` or
/// the machine's parallelism). Results are deterministic regardless of the
/// worker count.
#[must_use]
pub fn scheduler_sweep<I: IntoIterator<Item = u16>>(trace: &Trace, containers: I) -> SchedulerSweep {
    scheduler_sweep_on(&SweepRunner::from_env(), trace, containers)
}

/// [`scheduler_sweep`] on an explicit runner (thread-scaling benchmarks and
/// determinism tests).
#[must_use]
pub fn scheduler_sweep_on<I: IntoIterator<Item = u16>>(
    runner: &SweepRunner,
    trace: &Trace,
    containers: I,
) -> SchedulerSweep {
    scheduler_sweep_observed(runner, trace, containers, |_, _| {})
}

/// [`scheduler_sweep_on`] with live progress: `report(finished, total)` is
/// invoked after every completed run, from whichever worker finished it
/// (a [`ProgressObserver`] per job over one shared counter). The returned
/// statistics are bit-identical to the unobserved sweep.
#[must_use]
pub fn scheduler_sweep_observed<I, R>(
    runner: &SweepRunner,
    trace: &Trace,
    containers: I,
    report: R,
) -> SchedulerSweep
where
    I: IntoIterator<Item = u16>,
    R: Fn(usize, usize) + Sync,
{
    let library = rispp_h264::h264_si_library();
    let acs: Vec<u16> = containers.into_iter().collect();

    // Flatten into one job list: software, then per AC count the four
    // schedulers followed by Molen — 1 + 5·N independent simulations.
    let mut jobs = vec![SweepJob::new(SimConfig::software_only(), trace)];
    for &ac in &acs {
        for &kind in &SchedulerKind::ALL {
            jobs.push(SweepJob::new(SimConfig::rispp(ac, kind), trace));
        }
        jobs.push(SweepJob::new(SimConfig::molen(ac), trace));
    }
    let finished = Arc::new(AtomicUsize::new(0));
    let total = jobs.len();
    let report = &report;
    let results = runner.run_observed(&library, &jobs, |_| {
        let finished = Arc::clone(&finished);
        vec![
            Box::new(ProgressObserver::new(total, finished, move |done, total| {
                report(done, total);
            })) as Box<dyn SimObserver + '_>,
        ]
    });

    let software_cycles = results[0].total_cycles;
    let points = acs
        .iter()
        .enumerate()
        .map(|(i, &ac)| {
            let base = 1 + i * (SchedulerKind::ALL.len() + 1);
            let mut cycles = [0u64; 4];
            for (k, c) in cycles.iter_mut().enumerate() {
                *c = results[base + k].total_cycles;
            }
            SweepPoint {
                containers: ac,
                cycles,
                molen_cycles: results[base + SchedulerKind::ALL.len()].total_cycles,
            }
        })
        .collect();
    SchedulerSweep {
        software_cycles,
        points,
    }
}

/// Figure 2: the ME hot spot with (HEF) and without (Molen-like) stepwise
/// SI upgrades, on a cold fabric. Returns `(with_upgrade, without)`.
#[must_use]
pub fn fig2_upgrade_comparison(trace: &Trace, containers: u16) -> (RunStats, RunStats) {
    let library = rispp_h264::h264_si_library();
    let me_only = trace.filtered(HotSpot::MotionEstimation.id());
    let with = simulate(
        &library,
        &me_only,
        &SimConfig::rispp(containers, SchedulerKind::Hef).with_detail(true),
    );
    let without = simulate(
        &library,
        &me_only,
        &SimConfig {
            system: SystemKind::Molen,
            ..SimConfig::molen(containers)
        }
        .with_detail(true),
    );
    (with, without)
}

/// Figure 8: detailed HEF run (latency timelines + execution buckets).
#[must_use]
pub fn fig8_detail(trace: &Trace, containers: u16) -> RunStats {
    let library = rispp_h264::h264_si_library();
    simulate(
        &library,
        trace,
        &SimConfig::rispp(containers, SchedulerKind::Hef).with_detail(true),
    )
}

/// One row of the Figure 4 example: after loading `atoms_loaded` Atoms,
/// the fastest available Molecule (by latency) of the example SI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig4Row {
    /// Number of Atoms loaded so far.
    pub atoms_loaded: u32,
    /// Latency of the fastest available Molecule, or `None` (software).
    pub fastest_latency: Option<u32>,
    /// Name tag of that Molecule (`"m1"`, `"m2"`, `"m3"`).
    pub molecule: Option<&'static str>,
}

/// Figure 4: the schedule-quality example. One SI with Molecules
/// `m1 = (2,1)`, `m2 = (2,2)`, `m3 = (4,2)` (and the wrong-mix
/// `m4 = (1,3)`); `m3` is selected. Returns the availability table for a
/// good (HEF) schedule and a deliberately bad one, exactly mirroring the
/// paper's table.
#[must_use]
pub fn fig4_schedules() -> (Vec<Fig4Row>, Vec<Fig4Row>) {
    use rispp_core::{AtomScheduler, HefScheduler, ScheduleRequest, SelectedMolecule};
    use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibraryBuilder};

    let universe = AtomUniverse::from_types([AtomTypeInfo::new("A1"), AtomTypeInfo::new("A2")])
        .expect("unique names");
    let mut b = SiLibraryBuilder::new(universe);
    b.special_instruction("FIG4", 1_000)
        .expect("unique name")
        .molecule(Molecule::from_counts([2, 1]), 60)
        .expect("valid")
        .molecule(Molecule::from_counts([2, 2]), 40)
        .expect("valid")
        .molecule(Molecule::from_counts([4, 2]), 20)
        .expect("valid")
        .molecule(Molecule::from_counts([1, 3]), 55)
        .expect("valid");
    let library = b.build().expect("valid library");
    let si = library.by_name("FIG4").expect("just built");
    let m3 = si
        .variants()
        .iter()
        .position(|v| v.atoms == Molecule::from_counts([4, 2]))
        .expect("m3 exists");
    let request = ScheduleRequest::new(
        &library,
        vec![SelectedMolecule::new(SiId(0), m3)],
        Molecule::zero(2),
        vec![1_000],
    )
    .expect("valid request");

    let name_of = |lat: u32| -> &'static str {
        match lat {
            60 => "m1",
            40 => "m2",
            20 => "m3",
            55 => "m4",
            _ => "?",
        }
    };
    let availability = |order: &[usize]| -> Vec<Fig4Row> {
        let mut avail = Molecule::zero(2);
        let mut rows = Vec::new();
        for (i, &unit) in order.iter().enumerate() {
            avail = avail.saturating_add(&Molecule::unit(2, unit));
            let fastest = si.fastest_available(&avail);
            rows.push(Fig4Row {
                atoms_loaded: (i + 1) as u32,
                fastest_latency: fastest.map(|v| v.latency),
                molecule: fastest.map(|v| name_of(v.latency)),
            });
        }
        rows
    };

    let good_schedule = HefScheduler.schedule(&request);
    let good_order: Vec<usize> = good_schedule.atoms().map(|a| a.index()).collect();
    // The bad schedule of Figure 4: all A1 atoms first, then all A2.
    let bad_order = vec![0, 0, 0, 0, 1, 1];
    (availability(&good_order), availability(&bad_order))
}

/// Figure 5: upgrade paths (`(SI, variant)` milestones) of the four
/// schedulers for two SIs with three Molecules each.
#[must_use]
pub fn fig5_paths() -> Vec<(SchedulerKind, Vec<(u16, usize)>)> {
    use rispp_core::{ScheduleRequest, SelectedMolecule};
    use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibraryBuilder};

    let universe = AtomUniverse::from_types([AtomTypeInfo::new("A1"), AtomTypeInfo::new("A2")])
        .expect("unique names");
    let mut b = SiLibraryBuilder::new(universe);
    b.special_instruction("SI1", 1_000)
        .expect("unique name")
        .molecule(Molecule::from_counts([1, 1]), 120)
        .expect("valid")
        .molecule(Molecule::from_counts([2, 1]), 70)
        .expect("valid")
        .molecule(Molecule::from_counts([3, 2]), 30)
        .expect("valid");
    b.special_instruction("SI2", 800)
        .expect("unique name")
        .molecule(Molecule::from_counts([0, 1]), 200)
        .expect("valid")
        .molecule(Molecule::from_counts([1, 2]), 90)
        .expect("valid")
        .molecule(Molecule::from_counts([2, 3]), 45)
        .expect("valid");
    let library = b.build().expect("valid library");
    let request = ScheduleRequest::new(
        &library,
        vec![
            SelectedMolecule::new(SiId(0), 2),
            SelectedMolecule::new(SiId(1), 2),
        ],
        Molecule::zero(2),
        vec![900, 400],
    )
    .expect("valid request");

    SchedulerKind::ALL
        .iter()
        .map(|&kind| {
            let schedule = kind.create().schedule(&request);
            let path = schedule
                .upgrades()
                .into_iter()
                .map(|(si, v)| (si.0, v))
                .collect();
            (kind, path)
        })
        .collect()
}

/// One row of Table 1: SI name, atom types used, Molecule count.
#[must_use]
pub fn table1_inventory() -> Vec<(String, usize, usize)> {
    rispp_h264::h264_si_library()
        .iter()
        .map(|si| (si.name().to_string(), si.atom_type_count(), si.molecule_count()))
        .collect()
}

/// Table 3: paper synthesis results next to the parametric estimate, plus
/// the FSM's scheduling latency on a full H.264 EE request.
#[must_use]
pub fn table3_hardware() -> (rispp_hw::AreaReport, rispp_hw::AreaReport, rispp_hw::FsmRun) {
    use rispp_core::{GreedySelector, ScheduleRequest, SelectionRequest};
    use rispp_h264::SiKind;
    use rispp_model::Molecule;

    let library = rispp_h264::h264_si_library();
    let demands = vec![
        (SiKind::Dct.id(), 9_504),
        (SiKind::Ht2x2.id(), 792),
        (SiKind::Ht4x4.id(), 80),
        (SiKind::Mc.id(), 360),
        (SiKind::IPredHdc.id(), 16),
        (SiKind::IPredVdc.id(), 20),
    ];
    let selection = GreedySelector.select(&SelectionRequest::new(&library, &demands, 20));
    let mut expected = vec![0u64; library.len()];
    for (si, e) in demands {
        expected[si.index()] = e;
    }
    let request = ScheduleRequest::new(&library, selection, Molecule::zero(library.arity()), expected)
        .expect("valid request");
    let run = rispp_hw::HefFsm::new().run(&request);
    (
        rispp_hw::AreaReport::paper_hef(),
        rispp_hw::area_estimate(&rispp_hw::AreaParameters::default()),
        run,
    )
}

/// Fault-rate ladder (ppm) of the resilience benchmark: fault-free up to
/// one abort per four loads.
pub const FAULT_RATE_LADDER_PPM: [u32; 7] = [0, 1_000, 5_000, 10_000, 50_000, 100_000, 250_000];

/// One point of the resilience curve: the HEF system's speedup over pure
/// software and its self-healing counters at a uniform fault rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePoint {
    /// Uniform fault rate in parts per million.
    pub rate_ppm: u32,
    /// Total execution cycles of the HEF run at this rate.
    pub total_cycles: u64,
    /// Speedup over the fault-free software baseline (`>= 1.0` whenever
    /// graceful degradation holds: the cISA trap is the worst case).
    pub speedup_vs_software: f64,
    /// Fault events injected by the fabric.
    pub faults_injected: u64,
    /// Loads re-enqueued by the recovery policy.
    pub load_retries: u64,
    /// Containers taken out of service.
    pub containers_quarantined: u64,
    /// Hot-spot re-plans that came back with no hardware at all.
    pub degraded_to_software: u64,
    /// Reconfiguration-port cycles wasted on loads that never became usable.
    pub fault_cycles_lost: u64,
}

/// Results of the resilience sweep: the software floor plus one
/// [`ResiliencePoint`] per fault rate in ascending order.
#[derive(Debug, Clone)]
pub struct ResilienceSweep {
    /// Pure-software (0 AC) execution cycles — the graceful-degradation
    /// floor.
    pub software_cycles: u64,
    /// One point per fault rate.
    pub points: Vec<ResiliencePoint>,
}

impl ResilienceSweep {
    /// Whether the speedup curve degrades monotonically (non-increasing
    /// with the fault rate) while staying at or above the software floor.
    #[must_use]
    pub fn is_gracefully_degrading(&self) -> bool {
        self.points.iter().all(|p| p.speedup_vs_software >= 1.0)
            && self
                .points
                .windows(2)
                .all(|w| w[1].speedup_vs_software <= w[0].speedup_vs_software)
    }
}

/// Runs the speedup-vs-fault-rate sweep on the HEF scheduler: one
/// fault-injected simulation per `(rate, seed)` pair (plus the fault-free
/// software baseline), fanned across the runner's workers and averaged
/// over the seeds per rate — one seed is a single noisy sample of the
/// fault process, several smooth the curve into the expected behaviour.
/// Every fault stream is seeded per job, so the sweep is deterministic
/// for any worker count.
///
/// # Panics
///
/// Panics if `seeds` is empty.
#[must_use]
pub fn resilience_sweep(
    runner: &SweepRunner,
    trace: &Trace,
    containers: u16,
    rates_ppm: &[u32],
    seeds: &[u64],
) -> ResilienceSweep {
    assert!(!seeds.is_empty(), "at least one fault seed is required");
    let library = rispp_h264::h264_si_library();
    let mut jobs = vec![SweepJob::new(SimConfig::software_only(), trace)];
    for &rate_ppm in rates_ppm {
        for &seed in seeds {
            let fault = FaultConfig {
                rate_ppm,
                seed,
                max_retries: FaultConfig::uniform(0.0).max_retries,
            };
            jobs.push(SweepJob::new(
                SimConfig::rispp(containers, SchedulerKind::Hef).with_fault(fault),
                trace,
            ));
        }
    }
    let results = runner.run(&library, &jobs);
    let software_cycles = results[0].total_cycles;
    let n = seeds.len() as u64;
    let points = rates_ppm
        .iter()
        .enumerate()
        .map(|(i, &rate_ppm)| {
            let samples = &results[1 + i * seeds.len()..1 + (i + 1) * seeds.len()];
            let mean = |f: fn(&RunStats) -> u64| samples.iter().map(f).sum::<u64>() / n;
            let total_cycles = mean(|s| s.total_cycles);
            ResiliencePoint {
                rate_ppm,
                total_cycles,
                speedup_vs_software: software_cycles as f64 / total_cycles.max(1) as f64,
                faults_injected: mean(|s| s.faults_injected),
                load_retries: mean(|s| s.load_retries),
                containers_quarantined: mean(|s| s.containers_quarantined),
                degraded_to_software: mean(|s| s.degraded_to_software),
                fault_cycles_lost: mean(|s| s.fault_cycles_lost),
            }
        })
        .collect();
    ResilienceSweep {
        software_cycles,
        points,
    }
}

/// Ablation: forecast policies (and the oracle bound) on the HEF system,
/// run in parallel on the default [`SweepRunner`]. Returns
/// `(label, total cycles)` per policy.
#[must_use]
pub fn ablation_forecast(trace: &Trace, containers: u16) -> Vec<(String, u64)> {
    use rispp_monitor::ForecastPolicy;
    let library = rispp_h264::h264_si_library();
    let base = SimConfig::rispp(containers, SchedulerKind::Hef);
    let policies = [
        ("last-value", ForecastPolicy::LastValue),
        ("ewma w=2", ForecastPolicy::ewma(2)),
        ("ewma w=4", ForecastPolicy::ewma(4)),
        ("cumulative avg", ForecastPolicy::CumulativeAverage),
    ];
    let mut jobs: Vec<SweepJob<'_>> = policies
        .iter()
        .map(|&(_, policy)| SweepJob::new(base.with_forecast(policy), trace))
        .collect();
    jobs.push(SweepJob::new(base.with_oracle(true), trace));
    let results = SweepRunner::from_env().run(&library, &jobs);
    policies
        .iter()
        .map(|&(label, _)| label)
        .chain(std::iter::once("oracle"))
        .zip(&results)
        .map(|(label, stats)| (label.to_string(), stats.total_cycles))
        .collect()
}

/// Ablation: reconfiguration-port bandwidth sweep (ICAP generations), run
/// in parallel on the default [`SweepRunner`]. Returns
/// `(bandwidth MB/s, HEF cycles)`.
#[must_use]
pub fn ablation_bandwidth(trace: &Trace, containers: u16) -> Vec<(u64, u64)> {
    let library = rispp_h264::h264_si_library();
    let bandwidths = [33u64, 66, 132, 264, 800];
    let jobs: Vec<SweepJob<'_>> = bandwidths
        .iter()
        .map(|&mbps| {
            SweepJob::new(
                SimConfig::rispp(containers, SchedulerKind::Hef)
                    .with_port_bandwidth(mbps * 1_000_000),
                trace,
            )
        })
        .collect();
    let results = SweepRunner::from_env().run(&library, &jobs);
    bandwidths
        .iter()
        .zip(&results)
        .map(|(&mbps, stats)| (mbps, stats.total_cycles))
        .collect()
}
