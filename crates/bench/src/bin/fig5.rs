//! Regenerates Figure 5: the FSFR/ASF/SJF/HEF upgrade paths for two SIs.

use rispp_bench::experiments::fig5_paths;
use rispp_bench::report::fig5_table;

fn main() {
    println!("{}", fig5_table(&fig5_paths()));
}
