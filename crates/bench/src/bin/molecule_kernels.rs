//! Micro-benchmarks the word-packed (SWAR) [`Molecule`] kernels against
//! the scalar reference implementation in [`rispp_model::scalar`].
//!
//! Times `union`, `residual` and `total_atoms` at arities 4/8/16/32 (the
//! inline small-buffer range) and reports per-op nanoseconds for both
//! paths. With `--json` the results are written as a machine-readable
//! record (default `BENCH_kernels.json`) so CI and the README can track
//! kernel-level speedups separately from end-to-end sweep throughput.
//!
//! Usage: `molecule_kernels [iterations] [--json [PATH]]`

use std::hint::black_box;
use std::time::Instant;

use rispp_model::{scalar, Molecule};

/// Deterministic xorshift so every run benches identical inputs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Atom counts in `0..48`, the realistic per-SI demand range.
    fn counts(&mut self, arity: usize) -> Vec<u16> {
        (0..arity).map(|_| (self.next() % 48) as u16).collect()
    }
}

/// Times `f` over `iters` iterations (after a 10% warmup) and returns
/// nanoseconds per call.
fn bench_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    started.elapsed().as_nanos() as f64 / f64::from(iters)
}

struct Record {
    op: &'static str,
    arity: usize,
    scalar_ns: f64,
    swar_ns: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iters: u32 = 200_000;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--json" {
            let path = args.get(i + 1).filter(|a| !a.starts_with("--")).cloned();
            if path.is_some() {
                i += 1;
            }
            json_path = Some(path.unwrap_or_else(|| "BENCH_kernels.json".to_string()));
        } else if let Ok(n) = args[i].parse() {
            iters = n;
        } else {
            eprintln!("usage: molecule_kernels [iterations] [--json [PATH]]");
            std::process::exit(2);
        }
        i += 1;
    }

    let mut rng = Rng(0x5eed_cafe_f00d_d00d);
    let mut records = Vec::new();
    println!("{:<14} {:>6} {:>12} {:>12} {:>9}", "op", "arity", "scalar_ns", "swar_ns", "speedup");
    for &arity in &[4usize, 8, 16, 32] {
        let a = rng.counts(arity);
        let b = rng.counts(arity);
        let ma = Molecule::from_counts(a.iter().copied());
        let mb = Molecule::from_counts(b.iter().copied());

        let ops: [(&'static str, f64, f64); 5] = [
            (
                "union",
                bench_ns(iters, || {
                    black_box(scalar::union(black_box(&a), black_box(&b)));
                }),
                bench_ns(iters, || {
                    black_box(black_box(&ma).union(black_box(&mb)));
                }),
            ),
            (
                "residual",
                bench_ns(iters, || {
                    black_box(scalar::residual(black_box(&a), black_box(&b)));
                }),
                bench_ns(iters, || {
                    black_box(black_box(&ma).residual(black_box(&mb)));
                }),
            ),
            (
                "total_atoms",
                bench_ns(iters, || {
                    black_box(scalar::total_atoms(black_box(&a)));
                }),
                bench_ns(iters, || {
                    black_box(black_box(&ma).total_atoms());
                }),
            ),
            // The fused reductions are what the selector/scheduler hot
            // paths actually call per candidate — no result molecule is
            // materialised on either side.
            (
                "union_atoms",
                bench_ns(iters, || {
                    black_box(scalar::union_atoms(black_box(&a), black_box(&b)));
                }),
                bench_ns(iters, || {
                    black_box(black_box(&ma).union_atoms(black_box(&mb)));
                }),
            ),
            (
                "residual_atoms",
                bench_ns(iters, || {
                    black_box(scalar::residual_atoms(black_box(&a), black_box(&b)));
                }),
                bench_ns(iters, || {
                    black_box(black_box(&ma).residual_atoms(black_box(&mb)));
                }),
            ),
        ];
        for (op, scalar_ns, swar_ns) in ops {
            println!(
                "{op:<14} {arity:>6} {scalar_ns:>12.2} {swar_ns:>12.2} {:>8.2}x",
                scalar_ns / swar_ns.max(1e-9)
            );
            records.push(Record {
                op,
                arity,
                scalar_ns,
                swar_ns,
            });
        }
    }

    if let Some(path) = json_path {
        let mut body = String::new();
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                body.push_str(",\n");
            }
            body.push_str(&format!(
                "    {{\"op\": \"{}\", \"arity\": {}, \"scalar_ns\": {:.2}, \"swar_ns\": {:.2}}}",
                r.op, r.arity, r.scalar_ns, r.swar_ns
            ));
        }
        let json = format!(
            "{{\n  \"benchmark\": \"molecule_kernels\",\n  \"iterations\": {iters},\n  \"results\": [\n{body}\n  ]\n}}\n"
        );
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
