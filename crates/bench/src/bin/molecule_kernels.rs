//! Micro-benchmarks every available [`Molecule`] kernel tier — the scalar
//! reference, the portable u64 SWAR tier and (when the CPU supports it)
//! the AVX2 wide tier — plus the *dispatched* public `Molecule` API, which
//! routes through the per-process tier selection.
//!
//! Times the zip kernels (`union`, `residual`) and the fused reductions
//! (`total_atoms`, `union_atoms`, `residual_atoms`) at arities 4/8/16/32
//! (the inline small-buffer range) and reports per-op nanoseconds for each
//! tier. With `--json` the results are written as a self-describing record
//! (default `BENCH_kernels.json`) listing which tiers were available and
//! which one the dispatch selected, so CI and the README can track
//! kernel-level speedups separately from end-to-end sweep throughput.
//!
//! `RISPP_KERNEL_TIER=scalar|swar|wide|auto` overrides what the dispatched
//! rows run on; naming an unavailable tier is a startup error.
//!
//! Usage: `molecule_kernels [iterations] [--json [PATH]]`

use std::hint::black_box;
use std::time::Instant;

use rispp_model::kernels::{scalar, swar, wide};
use rispp_model::{init_tier_from_env, KernelTier, Molecule};

/// Deterministic xorshift so every run benches identical inputs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Atom counts in `0..48`, the realistic per-SI demand range.
    fn counts(&mut self, arity: usize) -> Vec<u16> {
        (0..arity).map(|_| (self.next() % 48) as u16).collect()
    }
}

/// Times `f` over `iters` iterations (after a 10% warmup) and returns
/// nanoseconds per call.
fn bench_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    started.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Per-(op, arity) nanoseconds: one slot per tier (in [`KernelTier::ALL`]
/// order, `None` when unavailable) plus the dispatched `Molecule` call.
struct Record {
    op: &'static str,
    arity: usize,
    tier_ns: [Option<f64>; 3],
    dispatched_ns: f64,
}

/// Benches one op shape on every available tier and on the dispatched
/// public API.
fn record(
    op: &'static str,
    arity: usize,
    iters: u32,
    mut tier_fn: impl FnMut(KernelTier),
    mut dispatched_fn: impl FnMut(),
) -> Record {
    let mut tier_ns = [None; 3];
    for (slot, tier) in KernelTier::ALL.into_iter().enumerate() {
        if tier.is_available() {
            tier_ns[slot] = Some(bench_ns(iters, || tier_fn(tier)));
        }
    }
    Record {
        op,
        arity,
        tier_ns,
        dispatched_ns: bench_ns(iters, &mut dispatched_fn),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iters: u32 = 200_000;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--json" {
            let path = args.get(i + 1).filter(|a| !a.starts_with("--")).cloned();
            if path.is_some() {
                i += 1;
            }
            json_path = Some(path.unwrap_or_else(|| "BENCH_kernels.json".to_string()));
        } else if let Ok(n) = args[i].parse() {
            iters = n;
        } else {
            eprintln!("usage: molecule_kernels [iterations] [--json [PATH]]");
            std::process::exit(2);
        }
        i += 1;
    }

    let selected = match init_tier_from_env() {
        Ok(tier) => tier,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let available: Vec<KernelTier> = KernelTier::ALL
        .into_iter()
        .filter(|t| t.is_available())
        .collect();
    eprintln!(
        "tiers available: {}; dispatch selected: {selected}",
        available
            .iter()
            .map(|t| t.name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut rng = Rng(0x5eed_cafe_f00d_d00d);
    let mut records = Vec::new();
    println!(
        "{:<14} {:>6} {:>11} {:>11} {:>11} {:>13}",
        "op", "arity", "scalar_ns", "swar_ns", "wide_ns", "dispatched_ns"
    );
    for &arity in &[4usize, 8, 16, 32] {
        let a = rng.counts(arity);
        let b = rng.counts(arity);
        let ma = Molecule::from_counts(a.iter().copied());
        let mb = Molecule::from_counts(b.iter().copied());
        let mut out = vec![0u16; arity];

        // The zip kernels are compared on their `_into` forms so every
        // tier (and the dispatched API, which reuses buffers internally)
        // does the same work: no per-call allocation anywhere.
        let zip = |tier: KernelTier| -> fn(&[u16], &[u16], &mut [u16]) {
            match tier {
                KernelTier::Scalar => scalar::union_into,
                KernelTier::Swar => swar::union_into,
                KernelTier::Wide => wide::union_into,
            }
        };
        records.push(record(
            "union",
            arity,
            iters,
            |tier| zip(tier)(black_box(&a), black_box(&b), black_box(&mut out)),
            || {
                black_box(black_box(&ma).union(black_box(&mb)));
            },
        ));
        let zip = |tier: KernelTier| -> fn(&[u16], &[u16], &mut [u16]) {
            match tier {
                KernelTier::Scalar => scalar::residual_into,
                KernelTier::Swar => swar::residual_into,
                KernelTier::Wide => wide::residual_into,
            }
        };
        records.push(record(
            "residual",
            arity,
            iters,
            |tier| zip(tier)(black_box(&a), black_box(&b), black_box(&mut out)),
            || {
                black_box(black_box(&ma).residual(black_box(&mb)));
            },
        ));
        records.push(record(
            "total_atoms",
            arity,
            iters,
            |tier| {
                black_box(match tier {
                    KernelTier::Scalar => scalar::total_atoms(black_box(&a)),
                    KernelTier::Swar => swar::total_atoms(black_box(&a)),
                    KernelTier::Wide => wide::total_atoms(black_box(&a)),
                });
            },
            || {
                black_box(black_box(&ma).total_atoms());
            },
        ));
        // The fused reductions are what the selector/scheduler hot paths
        // actually call per candidate — no result molecule is
        // materialised on either side.
        records.push(record(
            "union_atoms",
            arity,
            iters,
            |tier| {
                black_box(match tier {
                    KernelTier::Scalar => scalar::union_atoms(black_box(&a), black_box(&b)),
                    KernelTier::Swar => swar::union_atoms(black_box(&a), black_box(&b)),
                    KernelTier::Wide => wide::union_atoms(black_box(&a), black_box(&b)),
                });
            },
            || {
                black_box(black_box(&ma).union_atoms(black_box(&mb)));
            },
        ));
        records.push(record(
            "residual_atoms",
            arity,
            iters,
            |tier| {
                black_box(match tier {
                    KernelTier::Scalar => scalar::residual_atoms(black_box(&a), black_box(&b)),
                    KernelTier::Swar => swar::residual_atoms(black_box(&a), black_box(&b)),
                    KernelTier::Wide => wide::residual_atoms(black_box(&a), black_box(&b)),
                });
            },
            || {
                black_box(black_box(&ma).residual_atoms(black_box(&mb)));
            },
        ));
    }

    let fmt_ns = |ns: Option<f64>| match ns {
        Some(v) => format!("{v:>11.2}"),
        None => format!("{:>11}", "-"),
    };
    for r in &records {
        println!(
            "{:<14} {:>6} {} {} {} {:>13.2}",
            r.op,
            r.arity,
            fmt_ns(r.tier_ns[0]),
            fmt_ns(r.tier_ns[1]),
            fmt_ns(r.tier_ns[2]),
            r.dispatched_ns
        );
    }

    if let Some(path) = json_path {
        let tiers: Vec<String> = available.iter().map(|t| format!("\"{t}\"")).collect();
        let mut body = String::new();
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                body.push_str(",\n");
            }
            let mut fields = format!("\"op\": \"{}\", \"arity\": {}", r.op, r.arity);
            for (slot, tier) in KernelTier::ALL.into_iter().enumerate() {
                if let Some(ns) = r.tier_ns[slot] {
                    fields.push_str(&format!(", \"{}_ns\": {ns:.2}", tier.name()));
                }
            }
            fields.push_str(&format!(", \"dispatched_ns\": {:.2}", r.dispatched_ns));
            body.push_str(&format!("    {{{fields}}}"));
        }
        let json = format!(
            "{{\n  \"benchmark\": \"molecule_kernels\",\n  \"iterations\": {iters},\n  \
             \"tiers_available\": [{}],\n  \"dispatch_selected\": \"{selected}\",\n  \
             \"results\": [\n{body}\n  ]\n}}\n",
            tiers.join(", ")
        );
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
