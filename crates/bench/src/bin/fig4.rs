//! Regenerates Figure 4: Molecule availability after each Atom load for a
//! good vs. a bad schedule.

use rispp_bench::experiments::fig4_schedules;
use rispp_bench::report::fig4_table;

fn main() {
    let (good, bad) = fig4_schedules();
    println!("{}", fig4_table(&good, &bad));
}
