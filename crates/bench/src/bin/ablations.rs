//! Ablation studies beyond the paper: forecast policy (including the
//! perfect-knowledge oracle of Section 4.2) and reconfiguration-bandwidth
//! sweeps.
//!
//! Usage: `ablations [frames]` (default 30).

use rispp_bench::experiments::{ablation_bandwidth, ablation_forecast, quick_workload};
use rispp_bench::report::ablation_table;

fn main() {
    let frames: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let workload = quick_workload(frames);
    let forecast = ablation_forecast(workload.trace(), 15);
    println!(
        "{}",
        ablation_table("Ablation: forecast policy (HEF, 15 ACs)", &forecast)
    );
    let bw: Vec<(String, u64)> = ablation_bandwidth(workload.trace(), 15)
        .into_iter()
        .map(|(mbps, cycles)| (format!("{mbps} MB/s"), cycles))
        .collect();
    println!(
        "{}",
        ablation_table("Ablation: reconfiguration bandwidth (HEF, 15 ACs)", &bw)
    );
}
