//! Regenerates Figure 7: execution time vs. #Atom Containers per scheduler.
//!
//! Usage: `fig7 [frames] [--json [PATH]]` (default 140 frames, the paper's
//! setting). With `--json` a machine-readable benchmark record of the sweep
//! — wall-clock, worker threads, simulated cycles and throughput — is
//! written to `PATH` (default `BENCH_sweep.json`).

use std::time::Instant;

use rispp_bench::experiments::{quick_workload, scheduler_sweep_observed, AC_SWEEP};
use rispp_bench::report::fig7_table;
use rispp_core::{PlanCacheHandle, SchedulerKind};
use rispp_sim::SweepRunner;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut frames: u32 = 140;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--json" {
            let path = args
                .get(i + 1)
                .filter(|a| !a.starts_with("--"))
                .cloned();
            if path.is_some() {
                i += 1;
            }
            json_path = Some(path.unwrap_or_else(|| "BENCH_sweep.json".to_string()));
        } else if let Ok(n) = args[i].parse() {
            frames = n;
        } else {
            eprintln!("usage: fig7 [frames] [--json [PATH]]");
            std::process::exit(2);
        }
        i += 1;
    }

    let tier = match rispp_model::init_tier_from_env() {
        Ok(tier) => tier,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    eprintln!("encoding {frames} CIF frames...");
    let workload = quick_workload(frames);
    let s = workload.summary();
    eprintln!(
        "workload: {} SI executions, {:.0} ME executions/frame, PSNR {:.1} dB",
        workload.trace().total_si_executions(),
        s.me_executions_per_frame,
        s.mean_psnr_y
    );
    // Cross-job plan cache (results stay bit-identical at any thread
    // count; only how often the planner actually runs changes).
    let runner = SweepRunner::from_env().with_plan_cache(PlanCacheHandle::default());
    let ac_count = AC_SWEEP.clone().count();
    let jobs = 1 + ac_count * (SchedulerKind::ALL.len() + 1);
    eprintln!(
        "sweeping {AC_SWEEP:?} ACs x 4 schedulers + Molen ({jobs} simulations) on {} thread(s), \
         kernel tier {tier}...",
        runner.threads()
    );
    let started = Instant::now();
    let sweep = scheduler_sweep_observed(&runner, workload.trace(), AC_SWEEP, |done, total| {
        eprint!("\r  {done}/{total} simulations");
        if done == total {
            eprintln!();
        }
    });
    let wall = started.elapsed();
    println!("{}", fig7_table(&sweep));
    println!("{}", rispp_bench::report::table2(&sweep));

    if let Some(path) = json_path {
        let simulated_cycles: u64 = sweep.software_cycles
            + sweep
                .points
                .iter()
                .map(|p| p.cycles.iter().sum::<u64>() + p.molen_cycles)
                .sum::<u64>();
        let wall_s = wall.as_secs_f64();
        let json = format!(
            "{{\n  \"benchmark\": \"fig7_scheduler_sweep\",\n  \"frames\": {frames},\n  \"threads\": {},\n  \"kernel_tier\": \"{tier}\",\n  \"jobs\": {jobs},\n  \"wall_clock_s\": {wall_s:.6},\n  \"simulated_cycles\": {simulated_cycles},\n  \"simulated_cycles_per_s\": {:.0},\n  \"jobs_per_s\": {:.3}\n}}\n",
            runner.threads(),
            simulated_cycles as f64 / wall_s.max(1e-9),
            jobs as f64 / wall_s.max(1e-9),
        );
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
