//! Regenerates Figure 7: execution time vs. #Atom Containers per scheduler.
//!
//! Usage: `fig7 [frames]` (default 140, the paper's setting).

use rispp_bench::experiments::{quick_workload, scheduler_sweep, AC_SWEEP};
use rispp_bench::report::fig7_table;

fn main() {
    let frames: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(140);
    eprintln!("encoding {frames} CIF frames...");
    let workload = quick_workload(frames);
    let s = workload.summary();
    eprintln!(
        "workload: {} SI executions, {:.0} ME executions/frame, PSNR {:.1} dB",
        workload.trace().total_si_executions(),
        s.me_executions_per_frame,
        s.mean_psnr_y
    );
    eprintln!("sweeping {:?} ACs x 4 schedulers + Molen...", AC_SWEEP);
    let sweep = scheduler_sweep(workload.trace(), AC_SWEEP);
    println!("{}", fig7_table(&sweep));
    println!("{}", rispp_bench::report::table2(&sweep));
}
