//! Regenerates Table 1: the implemented H.264 Special Instructions.

use rispp_bench::experiments::table1_inventory;
use rispp_bench::report::table1;

fn main() {
    println!("{}", table1(&table1_inventory()));
}
