//! Regenerates the resilience curve: HEF speedup over pure software as the
//! uniform fault rate rises, together with the self-healing counters.
//!
//! Usage: `resilience [frames] [--json [PATH]]` (default 20 frames). With
//! `--json` a machine-readable record of the sweep is written to `PATH`
//! (default `BENCH_resilience.json`).

use std::fmt::Write as _;
use std::time::Instant;

use rispp_bench::experiments::{quick_workload, resilience_sweep, FAULT_RATE_LADDER_PPM};
use rispp_sim::{FaultConfig, SweepRunner};

const CONTAINERS: u16 = 15;

/// Seeds averaged per fault rate: one seed is a single sample of the fault
/// process; five smooth the curve into its expected shape.
const SEEDS: [u64; 5] = [
    FaultConfig::DEFAULT_SEED,
    0x5EED_0001,
    0x5EED_0002,
    0x5EED_0003,
    0x5EED_0004,
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut frames: u32 = 20;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--json" {
            let path = args.get(i + 1).filter(|a| !a.starts_with("--")).cloned();
            if path.is_some() {
                i += 1;
            }
            json_path = Some(path.unwrap_or_else(|| "BENCH_resilience.json".to_string()));
        } else if let Ok(n) = args[i].parse() {
            frames = n;
        } else {
            eprintln!("usage: resilience [frames] [--json [PATH]]");
            std::process::exit(2);
        }
        i += 1;
    }

    eprintln!("encoding {frames} CIF frames...");
    let workload = quick_workload(frames);
    let runner = SweepRunner::from_env();
    eprintln!(
        "sweeping {} fault rates x {} seeds on HEF/{CONTAINERS} ACs on {} thread(s)...",
        FAULT_RATE_LADDER_PPM.len(),
        SEEDS.len(),
        runner.threads()
    );
    let started = Instant::now();
    let sweep = resilience_sweep(
        &runner,
        workload.trace(),
        CONTAINERS,
        &FAULT_RATE_LADDER_PPM,
        &SEEDS,
    );
    let wall = started.elapsed();

    println!(
        "software floor: {} cycles ({:.1} M)",
        sweep.software_cycles,
        sweep.software_cycles as f64 / 1e6
    );
    println!("  fault rate   speedup    faults   retries  quarantined  degraded");
    for p in &sweep.points {
        println!(
            "  {:>10.4}{:>10.2}x{:>10}{:>10}{:>13}{:>10}",
            f64::from(p.rate_ppm) / 1e6,
            p.speedup_vs_software,
            p.faults_injected,
            p.load_retries,
            p.containers_quarantined,
            p.degraded_to_software
        );
    }
    let graceful = sweep.is_gracefully_degrading();
    println!(
        "graceful degradation (monotone, >= 1.00x floor): {}",
        if graceful { "yes" } else { "NO" }
    );

    if let Some(path) = json_path {
        let mut points = String::new();
        for (i, p) in sweep.points.iter().enumerate() {
            let _ = write!(
                points,
                "{}    {{\"fault_rate_ppm\": {}, \"total_cycles\": {}, \"speedup_vs_software\": {:.4}, \
                 \"faults_injected\": {}, \"load_retries\": {}, \"containers_quarantined\": {}, \
                 \"degraded_to_software\": {}, \"fault_cycles_lost\": {}}}",
                if i == 0 { "" } else { ",\n" },
                p.rate_ppm,
                p.total_cycles,
                p.speedup_vs_software,
                p.faults_injected,
                p.load_retries,
                p.containers_quarantined,
                p.degraded_to_software,
                p.fault_cycles_lost
            );
        }
        let json = format!(
            "{{\n  \"benchmark\": \"resilience_fault_sweep\",\n  \"frames\": {frames},\n  \
             \"containers\": {CONTAINERS},\n  \"scheduler\": \"HEF\",\n  \"threads\": {},\n  \
             \"seeds_per_rate\": {},\n  \"software_cycles\": {},\n  \"graceful_degradation\": {graceful},\n  \
             \"wall_clock_s\": {:.6},\n  \"points\": [\n{points}\n  ]\n}}\n",
            runner.threads(),
            SEEDS.len(),
            sweep.software_cycles,
            wall.as_secs_f64(),
        );
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if !graceful {
        std::process::exit(1);
    }
}
