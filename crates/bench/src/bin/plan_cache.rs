//! Plan-cache microbenchmark: the cost of one hot-spot entry planned
//! from scratch vs replayed from a steady-state [`PlanCache`] hit, plus
//! the observed hit rate of the steady-state workload.
//!
//! The workload re-enters one pinned-profile hot spot (the oracle path,
//! so the evolving forecast cannot perturb the plan key) with a dwell
//! long enough for every scheduled Atom load to complete: after the
//! first few entries the fabric state cycles exactly, so every further
//! entry replays the memoised decision. The bench fails (exit 1) if the
//! steady-state hit rate drops below 70% — the regression gate for the
//! committed `BENCH_plan.json`.
//!
//! Usage: `plan_cache [iterations] [--json [PATH]]` (default 4000
//! iterations; `PATH` defaults to `BENCH_plan.json`).
//!
//! [`PlanCache`]: rispp_core::PlanCache

use std::time::Instant;

use rispp_core::{PlanCacheHandle, PlanCacheStats, RunTimeManager};
use rispp_h264::{h264_si_library, HotSpot, SiKind};
use rispp_model::{SiId, SiLibrary};

/// Design-time per-macroblock demand estimates for a CIF frame (396 MBs),
/// matching `EncoderWorkload`'s hint table.
fn demands() -> Vec<(SiId, u64)> {
    let mb = 396u64;
    vec![
        (SiKind::Sad.id(), 45 * mb),
        (SiKind::Satd.id(), 25 * mb),
        (SiKind::Dct.id(), 24 * mb),
        (SiKind::Ht2x2.id(), 2 * mb),
        (SiKind::Ht4x4.id(), mb / 4),
        (SiKind::Mc.id(), mb),
        (SiKind::IPredHdc.id(), mb / 8),
        (SiKind::IPredVdc.id(), mb / 8),
        (SiKind::LfBs4.id(), 6 * mb),
    ]
}

/// Runs `iters` timed pinned-profile entries on `mgr` after `warmup`
/// untimed ones, returning ns per entry.
fn run_entries(
    mgr: &mut RunTimeManager<'_>,
    demands: &[(SiId, u64)],
    warmup: u32,
    iters: u32,
) -> f64 {
    let dwell = 10_000_000u64;
    let mut now = 0u64;
    let hs = HotSpot::MotionEstimation.id();
    for _ in 0..warmup {
        mgr.enter_hot_spot_with_profile(hs, demands, now).expect("valid profile");
        now += dwell;
        mgr.exit_hot_spot(now);
        now += 100;
    }
    let t = Instant::now();
    for _ in 0..iters {
        mgr.enter_hot_spot_with_profile(hs, demands, now).expect("valid profile");
        now += dwell;
        mgr.exit_hot_spot(now);
        now += 100;
    }
    t.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn build(library: &SiLibrary, cache: Option<PlanCacheHandle>) -> RunTimeManager<'_> {
    let mut b = RunTimeManager::builder(library).containers(20);
    if let Some(handle) = cache {
        b = b.plan_cache(handle);
    }
    b.build()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iters: u32 = 4000;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--json" {
            let path = args.get(i + 1).filter(|a| !a.starts_with("--")).cloned();
            if path.is_some() {
                i += 1;
            }
            json_path = Some(path.unwrap_or_else(|| "BENCH_plan.json".to_string()));
        } else if let Ok(n) = args[i].parse() {
            iters = n;
        } else {
            eprintln!("usage: plan_cache [iterations] [--json [PATH]]");
            std::process::exit(2);
        }
        i += 1;
    }
    let tier = match rispp_model::init_tier_from_env() {
        Ok(tier) => tier,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let library = h264_si_library();
    let demands = demands();
    let warmup = iters / 10 + 1;

    let mut cold = build(&library, None);
    let cold_ns = run_entries(&mut cold, &demands, warmup, iters);
    println!("cold plan (no cache):   {cold_ns:10.0} ns/entry");

    let mut warm = build(&library, Some(PlanCacheHandle::default()));
    let warm_ns = run_entries(&mut warm, &demands, warmup, iters);
    let stats: PlanCacheStats = warm.plan_cache_stats();
    let lookups = stats.hits + stats.misses;
    let hit_rate = stats.hits as f64 / (lookups.max(1)) as f64;
    println!("warm plan (cache hit):  {warm_ns:10.0} ns/entry");
    println!(
        "speedup {:.2}x, {} hits / {} misses ({:.1}% hit rate)",
        cold_ns / warm_ns.max(1e-9),
        stats.hits,
        stats.misses,
        hit_rate * 100.0
    );

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"benchmark\": \"plan_cache\",\n  \"iterations\": {iters},\n  \
             \"kernel_tier\": \"{tier}\",\n  \"cold_ns_per_entry\": {cold_ns:.0},\n  \
             \"warm_ns_per_entry\": {warm_ns:.0},\n  \"speedup\": {:.3},\n  \
             \"hits\": {},\n  \"misses\": {},\n  \"insertions\": {},\n  \
             \"hit_rate\": {hit_rate:.4}\n}}\n",
            cold_ns / warm_ns.max(1e-9),
            stats.hits,
            stats.misses,
            stats.insertions,
        );
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if hit_rate < 0.7 {
        eprintln!(
            "error: steady-state hit rate {:.1}% is below the 70% floor",
            hit_rate * 100.0
        );
        std::process::exit(1);
    }
}
