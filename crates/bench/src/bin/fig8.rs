//! Regenerates Figure 8: detailed HEF behaviour (per-SI latency steps and
//! execution frequency) for the first two hot spots — Motion Estimation
//! and Encoding Engine — of one encoded frame at 10 ACs.

use rispp_bench::experiments::{fig8_detail, quick_workload};
use rispp_bench::report::fig8_table;
use rispp_h264::SiKind;
use rispp_sim::Trace;

fn main() {
    // Frame 0 is the all-intra anchor frame; the paper's figure covers the
    // ME and EE hot spots of a P frame, so replay frame 1's ME + EE on a
    // cold fabric.
    let workload = quick_workload(2);
    let invocations = workload.trace().invocations()[3..=4].to_vec();
    let stats = fig8_detail(&Trace::from_invocations(invocations), 10);
    let sis = [
        (SiKind::Sad.id(), "SAD"),
        (SiKind::Satd.id(), "SATD"),
        (SiKind::Mc.id(), "MC"),
        (SiKind::Dct.id(), "DCT"),
    ];
    println!("{}", fig8_table(&stats, &sis, 24));
}
