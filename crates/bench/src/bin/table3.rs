//! Regenerates Table 3: hardware implementation results of the HEF
//! scheduler (paper synthesis numbers, parametric model, FSM timing).

use rispp_bench::experiments::table3_hardware;
use rispp_bench::report::table3;

fn main() {
    let (paper, estimate, fsm) = table3_hardware();
    println!("{}", table3(&paper, &estimate, &fsm));
}
