//! Phase profiler: splits one fig7-style run into time spent in
//! `enter_hot_spot` (selection + scheduling) vs burst execution (fabric
//! stepping, batched + per-burst) vs engine overhead, by wrapping the
//! backend in a timing shim. The shim delegates the buffer-reusing and
//! batched entry points (and the poll gates) so the profiled run takes
//! exactly the hot paths a bare backend would. Wall-clock based — use it
//! to find which phase to optimise, not for absolute numbers.
//! `gprofng`-class profilers are unreliable in this container; this
//! binary is the substitute.
//!
//! Honours `RISPP_KERNEL_TIER`; the selected kernel tier is printed at
//! startup.

use std::borrow::Cow;
use std::time::{Duration, Instant};

use rispp_bench::experiments::quick_workload;
use rispp_core::{BurstSegment, SchedulerKind};
use rispp_model::SiId;
use rispp_sim::{simulate_with, Burst, ExecutionSystem, SimConfig};

struct Timed<'a> {
    inner: Box<dyn ExecutionSystem + 'a>,
    enter: Duration,
    burst: Duration,
    burst_single: Duration,
    exit: Duration,
    calls: u64,
    batched_calls: u64,
    batched_bursts: u64,
    segments: u64,
    enters: u64,
}

impl ExecutionSystem for Timed<'_> {
    fn label(&self) -> Cow<'static, str> {
        self.inner.label()
    }
    fn enter_hot_spot(&mut self, invocation: &rispp_sim::Invocation, now: u64) {
        let t = Instant::now();
        self.inner.enter_hot_spot(invocation, now);
        self.enter += t.elapsed();
        self.enters += 1;
    }
    fn execute_burst(
        &mut self,
        si: SiId,
        count: u32,
        overhead: u32,
        start: u64,
    ) -> Vec<BurstSegment> {
        let t = Instant::now();
        let r = self.inner.execute_burst(si, count, overhead, start);
        self.burst += t.elapsed();
        self.calls += 1;
        self.segments += r.len() as u64;
        r
    }
    fn execute_burst_into(
        &mut self,
        si: SiId,
        count: u32,
        overhead: u32,
        start: u64,
        out: &mut Vec<BurstSegment>,
    ) {
        let t = Instant::now();
        self.inner.execute_burst_into(si, count, overhead, start, out);
        let dt = t.elapsed();
        self.burst += dt;
        self.burst_single += dt;
        self.calls += 1;
        self.segments += out.len() as u64;
    }
    fn execute_bursts_batched(
        &mut self,
        bursts: &[Burst],
        start: u64,
        out: &mut Vec<BurstSegment>,
    ) -> usize {
        let t = Instant::now();
        let consumed = self.inner.execute_bursts_batched(bursts, start, out);
        self.burst += t.elapsed();
        self.batched_calls += 1;
        self.batched_bursts += consumed as u64;
        self.segments += out.len() as u64;
        consumed
    }
    fn exit_hot_spot(&mut self, now: u64) {
        let t = Instant::now();
        self.inner.exit_hot_spot(now);
        self.exit += t.elapsed();
    }
    fn reconfiguration_stats(&self) -> (u64, u64) {
        self.inner.reconfiguration_stats()
    }
    fn recovery_stats(&self) -> rispp_core::RecoveryStats {
        self.inner.recovery_stats()
    }
    fn has_pending_activity(&self) -> bool {
        self.inner.has_pending_activity()
    }
    fn recovery_active(&self) -> bool {
        self.inner.recovery_active()
    }
    fn telemetry_active(&self) -> bool {
        self.inner.telemetry_active()
    }
    fn drain_decisions(&mut self, out: &mut Vec<rispp_core::DecisionExplain>) {
        self.inner.drain_decisions(out);
    }
    fn drain_fabric_journal(&mut self, out: &mut Vec<rispp_fabric::FabricJournalEntry>) {
        self.inner.drain_fabric_journal(out);
    }
}

fn main() {
    match rispp_model::init_tier_from_env() {
        Ok(tier) => eprintln!("kernel tier: {tier}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
    let frames: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40);
    let workload = quick_workload(frames);
    let trace = workload.trace();
    let library = rispp_h264::h264_si_library();

    for kind in SchedulerKind::ALL {
        let mut enter = Duration::ZERO;
        let mut burst = Duration::ZERO;
        let mut burst_single = Duration::ZERO;
        let mut exit = Duration::ZERO;
        let mut total = Duration::ZERO;
        for ac in 5..=24u16 {
            let config = SimConfig::rispp(ac, kind);
            let mut sys = Timed {
                inner: config.build_system(&library),
                enter: Duration::ZERO,
                burst: Duration::ZERO,
                burst_single: Duration::ZERO,
                exit: Duration::ZERO,
                calls: 0,
                batched_calls: 0,
                batched_bursts: 0,
                segments: 0,
                enters: 0,
            };
            let t = Instant::now();
            simulate_with(&mut sys, trace, &mut []);
            total += t.elapsed();
            enter += sys.enter;
            burst += sys.burst;
            burst_single += sys.burst_single;
            exit += sys.exit;
            if ac == 20 {
                eprintln!(
                    "  ac=20 {}: {} enters, {} batched calls ({} bursts), {} per-burst calls, {} segments",
                    kind.abbreviation(),
                    sys.enters,
                    sys.batched_calls,
                    sys.batched_bursts,
                    sys.calls,
                    sys.segments
                );
            }
        }
        println!(
            "{:5} total {:8.1}ms  enter {:8.1}ms ({:4.1}%)  burst {:8.1}ms ({:4.1}%, single {:6.1}ms)  exit {:6.1}ms  engine {:6.1}ms",
            kind.abbreviation(),
            total.as_secs_f64() * 1e3,
            enter.as_secs_f64() * 1e3,
            enter.as_secs_f64() / total.as_secs_f64() * 100.0,
            burst.as_secs_f64() * 1e3,
            burst.as_secs_f64() / total.as_secs_f64() * 100.0,
            burst_single.as_secs_f64() * 1e3,
            exit.as_secs_f64() * 1e3,
            (total - enter - burst - exit).as_secs_f64() * 1e3,
        );
    }
    // Molen baseline for reference.
    let mut total = Duration::ZERO;
    for ac in 5..=24u16 {
        let config = SimConfig::molen(ac);
        let mut sys = config.build_system(&library);
        let t = Instant::now();
        simulate_with(sys.as_mut(), trace, &mut []);
        total += t.elapsed();
    }
    println!("Molen total {:8.1}ms", total.as_secs_f64() * 1e3);
}
