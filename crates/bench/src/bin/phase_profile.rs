//! Phase profiler: splits one fig7-style run into time spent in
//! `enter_hot_spot` (selection + scheduling) vs `execute_burst` (fabric
//! stepping) vs engine overhead, by wrapping the backend in a timing
//! shim. Wall-clock based — use it to find which phase to optimise, not
//! for absolute numbers. `gprofng`-class profilers are unreliable in
//! this container; this binary is the substitute.

use std::borrow::Cow;
use std::time::{Duration, Instant};

use rispp_bench::experiments::quick_workload;
use rispp_core::{BurstSegment, SchedulerKind};
use rispp_model::SiId;
use rispp_sim::{simulate_with, ExecutionSystem, SimConfig};

struct Timed<'a> {
    inner: Box<dyn ExecutionSystem + 'a>,
    enter: Duration,
    burst: Duration,
    exit: Duration,
    calls: u64,
    segments: u64,
    enters: u64,
}

impl ExecutionSystem for Timed<'_> {
    fn label(&self) -> Cow<'static, str> {
        self.inner.label()
    }
    fn enter_hot_spot(&mut self, invocation: &rispp_sim::Invocation, now: u64) {
        let t = Instant::now();
        self.inner.enter_hot_spot(invocation, now);
        self.enter += t.elapsed();
        self.enters += 1;
    }
    fn execute_burst(
        &mut self,
        si: SiId,
        count: u32,
        overhead: u32,
        start: u64,
    ) -> Vec<BurstSegment> {
        let t = Instant::now();
        let r = self.inner.execute_burst(si, count, overhead, start);
        self.burst += t.elapsed();
        self.calls += 1;
        self.segments += r.len() as u64;
        r
    }
    fn exit_hot_spot(&mut self, now: u64) {
        let t = Instant::now();
        self.inner.exit_hot_spot(now);
        self.exit += t.elapsed();
    }
    fn reconfiguration_stats(&self) -> (u64, u64) {
        self.inner.reconfiguration_stats()
    }
}

fn main() {
    let frames: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40);
    let workload = quick_workload(frames);
    let trace = workload.trace();
    let library = rispp_h264::h264_si_library();

    for kind in SchedulerKind::ALL {
        let mut enter = Duration::ZERO;
        let mut burst = Duration::ZERO;
        let mut exit = Duration::ZERO;
        let mut total = Duration::ZERO;
        for ac in 5..=24u16 {
            let config = SimConfig::rispp(ac, kind);
            let mut sys = Timed {
                inner: config.build_system(&library),
                enter: Duration::ZERO,
                burst: Duration::ZERO,
                exit: Duration::ZERO,
                calls: 0,
                segments: 0,
                enters: 0,
            };
            let t = Instant::now();
            simulate_with(&mut sys, trace, &mut []);
            total += t.elapsed();
            enter += sys.enter;
            burst += sys.burst;
            exit += sys.exit;
            if ac == 20 {
                eprintln!("  ac=20 {}: {} enters, {} bursts, {} segments", kind.abbreviation(), sys.enters, sys.calls, sys.segments);
            }
        }
        println!(
            "{:5} total {:8.1}ms  enter {:8.1}ms ({:4.1}%)  burst {:8.1}ms ({:4.1}%)  exit {:6.1}ms  engine {:6.1}ms",
            kind.abbreviation(),
            total.as_secs_f64() * 1e3,
            enter.as_secs_f64() * 1e3,
            enter.as_secs_f64() / total.as_secs_f64() * 100.0,
            burst.as_secs_f64() * 1e3,
            burst.as_secs_f64() / total.as_secs_f64() * 100.0,
            exit.as_secs_f64() * 1e3,
            (total - enter - burst - exit).as_secs_f64() * 1e3,
        );
    }
    // Molen baseline for reference.
    let mut total = Duration::ZERO;
    for ac in 5..=24u16 {
        let config = SimConfig::molen(ac);
        let mut sys = config.build_system(&library);
        let t = Instant::now();
        simulate_with(sys.as_mut(), trace, &mut []);
        total += t.elapsed();
    }
    println!("Molen total {:8.1}ms", total.as_secs_f64() * 1e3);
}
