//! Scheduler-path microbenchmarks: isolates the cost of one hot-spot
//! entry (the paper's "decide within a fraction of one Atom load"
//! requirement) into Molecule selection, Atom scheduling per scheduler,
//! and the full [`RunTimeManager::enter_hot_spot`] pipeline.
//!
//! Usage: `sched_micro [iterations]` (default 2000).

use std::time::Instant;

use rispp_core::{
    GreedySelector, PlanCacheHandle, RunTimeManager, ScheduleRequest, SchedulerKind,
    SelectionRequest, UpgradeBuffers,
};
use rispp_h264::{h264_si_library, HotSpot, SiKind};
use rispp_model::{Molecule, SiId};

/// Design-time per-macroblock demand estimates for a CIF frame (396 MBs),
/// matching `EncoderWorkload`'s hint table.
fn demands() -> Vec<(SiId, u64)> {
    let mb = 396u64;
    vec![
        (SiKind::Sad.id(), 45 * mb),
        (SiKind::Satd.id(), 25 * mb),
        (SiKind::Dct.id(), 24 * mb),
        (SiKind::Ht2x2.id(), 2 * mb),
        (SiKind::Ht4x4.id(), mb / 4),
        (SiKind::Mc.id(), mb),
        (SiKind::IPredHdc.id(), mb / 8),
        (SiKind::IPredVdc.id(), mb / 8),
        (SiKind::LfBs4.id(), 6 * mb),
    ]
}

fn bench<F: FnMut()>(label: &str, iters: u32, mut f: F) -> f64 {
    // Warm-up.
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = t.elapsed().as_nanos() as f64 / f64::from(iters);
    println!("{label:32} {ns:10.0} ns/op");
    ns
}

fn main() {
    let iters: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000);
    let library = h264_si_library();
    let demands = demands();
    let containers = 20u16;

    // Molecule selection alone.
    let sel_req = SelectionRequest::new(&library, &demands, containers);
    let mut sink = 0usize;
    bench("GreedySelector::select", iters, || {
        sink += GreedySelector.select(&sel_req).len();
    });

    // Each scheduler on the selection, cold fabric, reused buffers.
    let selected = GreedySelector.select(&sel_req);
    let expected: Vec<u64> = {
        let mut v = vec![0u64; library.len()];
        for &(si, e) in &demands {
            v[si.index()] = e;
        }
        v
    };
    let mut buffers = UpgradeBuffers::new();
    for kind in SchedulerKind::ALL {
        let scheduler = kind.create();
        let label = format!("schedule_with ({})", kind.abbreviation());
        bench(&label, iters, || {
            let request = ScheduleRequest::new(
                &library,
                selected.clone(),
                Molecule::zero(library.arity()),
                expected.clone(),
            )
            .expect("request is valid");
            let schedule = scheduler.schedule_with(&request, &mut buffers);
            sink += schedule.len();
            buffers.reclaim(schedule);
        });
    }

    // The full hot-spot entry pipeline, alternating between two hot spots
    // so each entry re-plans against the other's leftover fabric state.
    let mut mgr = RunTimeManager::builder(&library)
        .containers(containers)
        .build();
    let hints = demands;
    let mut now = 0u64;
    bench("RunTimeManager::enter_hot_spot", iters, || {
        let hs = if now.is_multiple_of(2) {
            HotSpot::MotionEstimation.id()
        } else {
            HotSpot::EncodingEngine.id()
        };
        mgr.enter_hot_spot(hs, &hints, now * 1000).expect("valid");
        now += 1;
    });

    // Plan-cache cold vs warm: identical pinned-profile entries (the
    // oracle path, so the evolving forecast cannot perturb the key) with
    // a dwell long enough for every scheduled load to complete — planned
    // from scratch on every entry vs replayed from a steady-state hit.
    let dwell = 10_000_000u64;
    let mut cold_mgr = RunTimeManager::builder(&library).containers(containers).build();
    let mut now = 0u64;
    bench("enter_with_profile (cold plan)", iters, || {
        cold_mgr
            .enter_hot_spot_with_profile(HotSpot::MotionEstimation.id(), &hints, now)
            .expect("valid");
        now += dwell;
        cold_mgr.exit_hot_spot(now);
        now += 100;
    });
    let mut warm_mgr = RunTimeManager::builder(&library)
        .containers(containers)
        .plan_cache(PlanCacheHandle::default())
        .build();
    let mut now = 0u64;
    bench("enter_with_profile (warm plan)", iters, || {
        warm_mgr
            .enter_hot_spot_with_profile(HotSpot::MotionEstimation.id(), &hints, now)
            .expect("valid");
        now += dwell;
        warm_mgr.exit_hot_spot(now);
        now += 100;
    });
    let stats = warm_mgr.plan_cache_stats();
    let rate = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64 * 100.0;
    println!(
        "plan cache: {} hits / {} misses ({rate:.1}% hit rate)",
        stats.hits, stats.misses
    );

    // Keep the sink observable so the optimiser cannot delete the loops.
    assert!(sink > 0);
}
