//! Regenerates Figure 2: ME hot-spot SI executions per 100 K cycles, with
//! vs. without stepwise SI upgrade, on a cold fabric with 7 ACs.
//!
//! Usage: `fig2 [frames]` (default 4; the paper plots roughly one cold ME
//! run plus its successor).

use rispp_bench::experiments::{fig2_upgrade_comparison, quick_workload};
use rispp_bench::report::fig2_series;

fn main() {
    let frames: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let workload = quick_workload(frames);
    let (with, without) = fig2_upgrade_comparison(workload.trace(), 7);
    println!(
        "ME executions: {} (paper: 31,977 for one hot-spot run)",
        with.total_executions()
    );
    println!("{}", fig2_series(&with, &without, 24));
}
