//! Regenerates Table 2: speedups of HEF vs. ASF, ASF vs. Molen and HEF vs.
//! Molen across 5–24 Atom Containers.
//!
//! Usage: `table2 [frames]` (default 140, the paper's setting).

use rispp_bench::experiments::{quick_workload, scheduler_sweep, AC_SWEEP};
use rispp_bench::report::table2;

fn main() {
    let frames: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(140);
    eprintln!("encoding {frames} CIF frames and sweeping {AC_SWEEP:?} ACs...");
    let workload = quick_workload(frames);
    let sweep = scheduler_sweep(workload.trace(), AC_SWEEP);
    println!("{}", table2(&sweep));
}
