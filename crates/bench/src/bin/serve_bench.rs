//! Benchmarks the `rispp-serve` daemon core: sustained job throughput
//! with p50/p99 latency on a warm trace cache, plus a queue-capacity
//! sweep demonstrating monotone backpressure (larger queues reject
//! strictly less of a fixed offered burst).
//!
//! Usage: `serve_bench [frames] [--json [PATH]]` (default 3 frames).
//! With `--json` a machine-readable record is written to `PATH`
//! (default `BENCH_serve.json`).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

use rispp_core::SchedulerKind;
use rispp_h264::h264_si_library;
use rispp_model::SiId;
use rispp_monitor::HotSpotId;
use rispp_serve::{encode_trace, JobSpec, JobStatus, Server, ServerConfig, SubmitResult};
use rispp_sim::{Burst, Invocation, SimConfig, SweepRunner, Trace};
use rispp_telemetry::Metric;

/// Jobs measured in the sustained-throughput phase.
const THROUGHPUT_JOBS: usize = 96;
/// Outstanding-submission window for the closed throughput loop.
const WINDOW: usize = 32;
/// Burst offered to every queue capacity in the backpressure sweep.
const SWEEP_OFFERED: usize = 64;
const SWEEP_CAPACITIES: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn job(id: String, containers: u16, trace_payload: String) -> JobSpec {
    JobSpec {
        id,
        config: SimConfig::rispp(containers, SchedulerKind::Hef),
        trace_payload,
        deadline_ms: None,
        chaos_panics: 0,
    }
}

/// A long-running inline trace: occupies a worker until cancelled, so a
/// sweep burst meets a deterministically full worker pool.
fn blocker_payload() -> String {
    let trace = Trace::from_invocations(
        (0..500_000)
            .map(|_| Invocation {
                hot_spot: HotSpotId(0),
                prologue_cycles: 10,
                bursts: vec![Burst {
                    si: SiId(0),
                    count: 40,
                    overhead: 2,
                }],
                hints: vec![(SiId(0), 40)],
            })
            .collect(),
    );
    encode_trace(&trace)
}

/// Tiny inline trace for sweep-burst jobs: admission cost dominates.
fn tiny_payload() -> String {
    encode_trace(&Trace::from_invocations(vec![Invocation {
        hot_spot: HotSpotId(0),
        prologue_cycles: 10,
        bursts: vec![Burst {
            si: SiId(0),
            count: 100,
            overhead: 2,
        }],
        hints: vec![(SiId(0), 100)],
    }]))
}

struct Throughput {
    workers: usize,
    wall_s: f64,
    jobs_per_s: f64,
    p50_ms: u64,
    p99_ms: u64,
}

/// Closed-loop throughput on a warm cache: at most [`WINDOW`] jobs
/// outstanding, fig7-shaped configs cycling the container ladder.
fn throughput_phase(frames: u32) -> Throughput {
    let workers = SweepRunner::from_env().threads();
    let server = Server::start(
        h264_si_library(),
        ServerConfig {
            workers,
            queue_capacity: WINDOW + 1,
            ..ServerConfig::default()
        },
    );
    let payload = format!("fig7:{frames}");

    // Warm the trace cache (fig7 generation is the expensive path).
    let SubmitResult::Enqueued(warm) = server.submit(job("warm".into(), 15, payload.clone()))
    else {
        panic!("warmup refused");
    };
    assert_eq!(warm.outcome.recv().expect("warmup").status, JobStatus::Completed);

    let started = Instant::now();
    let mut outstanding = VecDeque::new();
    for i in 0..THROUGHPUT_JOBS {
        let containers = 4 + (i % 12) as u16;
        match server.submit(job(format!("job-{i}"), containers, payload.clone())) {
            SubmitResult::Enqueued(t) => outstanding.push_back(t),
            SubmitResult::Refused(o) => panic!("job-{i} refused: {:?}", o.status),
        }
        if outstanding.len() >= WINDOW {
            let t: rispp_serve::JobTicket = outstanding.pop_front().expect("window");
            assert_eq!(t.outcome.recv().expect("outcome").status, JobStatus::Completed);
        }
    }
    for t in outstanding {
        assert_eq!(t.outcome.recv().expect("outcome").status, JobStatus::Completed);
    }
    let wall_s = started.elapsed().as_secs_f64();

    let snapshot = server.metrics_snapshot();
    let (p50_ms, p99_ms) = match snapshot.get("rispp_serve_job_latency_ms") {
        Some(Metric::Histogram(h)) => (
            h.quantile(0.5).unwrap_or(0),
            h.quantile(0.99).unwrap_or(0),
        ),
        _ => (0, 0),
    };
    server.await_drained();
    Throughput {
        workers,
        wall_s,
        jobs_per_s: THROUGHPUT_JOBS as f64 / wall_s,
        p50_ms,
        p99_ms,
    }
}

struct SweepPoint {
    capacity: usize,
    accepted: usize,
    rejected: usize,
}

/// Offers a fixed burst to a server whose workers are pinned on
/// blockers: accepted == queue capacity, so rejections fall strictly as
/// the queue grows — the backpressure curve.
fn backpressure_sweep() -> Vec<SweepPoint> {
    let blocker = blocker_payload();
    let tiny = tiny_payload();
    SWEEP_CAPACITIES
        .iter()
        .map(|&capacity| {
            let workers = 2;
            let server = Server::start(
                h264_si_library(),
                ServerConfig {
                    workers,
                    queue_capacity: capacity,
                    ..ServerConfig::default()
                },
            );
            // Pin every worker on a blocker before offering the burst.
            let blockers: Vec<_> = (0..workers)
                .map(|i| {
                    match server.submit(job(format!("blocker-{i}"), 2, blocker.clone())) {
                        SubmitResult::Enqueued(t) => t,
                        SubmitResult::Refused(o) => panic!("blocker refused: {:?}", o.status),
                    }
                })
                .collect();
            while server.inflight() < workers {
                std::thread::yield_now();
            }

            let mut accepted = Vec::new();
            let mut rejected = 0usize;
            for i in 0..SWEEP_OFFERED {
                match server.submit(job(format!("burst-{i}"), 4, tiny.clone())) {
                    SubmitResult::Enqueued(t) => accepted.push(t),
                    SubmitResult::Refused(o) => {
                        assert!(
                            matches!(o.status, JobStatus::Rejected { .. }),
                            "unexpected refusal: {:?}",
                            o.status
                        );
                        rejected += 1;
                    }
                }
            }
            for t in &blockers {
                t.cancel.cancel();
            }
            for t in blockers.into_iter().chain(accepted.drain(..)) {
                let _ = t.outcome.recv();
            }
            let point = SweepPoint {
                capacity,
                accepted: SWEEP_OFFERED - rejected,
                rejected,
            };
            server.await_drained();
            point
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut frames: u32 = 3;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--json" {
            let path = args.get(i + 1).filter(|a| !a.starts_with("--")).cloned();
            if path.is_some() {
                i += 1;
            }
            json_path = Some(path.unwrap_or_else(|| "BENCH_serve.json".to_string()));
        } else if let Ok(n) = args[i].parse() {
            frames = n;
        } else {
            eprintln!("usage: serve_bench [frames] [--json [PATH]]");
            std::process::exit(2);
        }
        i += 1;
    }

    eprintln!("throughput phase: {THROUGHPUT_JOBS} fig7:{frames} jobs, window {WINDOW}...");
    let throughput = throughput_phase(frames);
    println!(
        "sustained: {:.1} jobs/s on {} workers ({} jobs in {:.3} s), latency p50 <= {} ms, p99 <= {} ms",
        throughput.jobs_per_s,
        throughput.workers,
        THROUGHPUT_JOBS,
        throughput.wall_s,
        throughput.p50_ms,
        throughput.p99_ms
    );

    eprintln!("backpressure sweep: burst of {SWEEP_OFFERED} vs queue capacities {SWEEP_CAPACITIES:?}...");
    let sweep = backpressure_sweep();
    println!("  capacity  accepted  rejected");
    for p in &sweep {
        println!("  {:>8}  {:>8}  {:>8}", p.capacity, p.accepted, p.rejected);
    }
    let monotone = sweep.windows(2).all(|w| w[1].rejected < w[0].rejected);
    println!(
        "monotone backpressure (rejections strictly fall with capacity): {}",
        if monotone { "yes" } else { "NO" }
    );

    if let Some(path) = json_path {
        let mut points = String::new();
        for (i, p) in sweep.iter().enumerate() {
            let _ = write!(
                points,
                "{}    {{\"queue_capacity\": {}, \"offered\": {SWEEP_OFFERED}, \"accepted\": {}, \"rejected\": {}}}",
                if i == 0 { "" } else { ",\n" },
                p.capacity,
                p.accepted,
                p.rejected
            );
        }
        let json = format!(
            "{{\n  \"benchmark\": \"serve_daemon\",\n  \"frames\": {frames},\n  \
             \"workers\": {},\n  \"jobs\": {THROUGHPUT_JOBS},\n  \"window\": {WINDOW},\n  \
             \"wall_clock_s\": {:.6},\n  \"jobs_per_s\": {:.3},\n  \
             \"latency_p50_ms\": {},\n  \"latency_p99_ms\": {},\n  \
             \"monotone_backpressure\": {monotone},\n  \"backpressure_sweep\": [\n{points}\n  ]\n}}\n",
            throughput.workers,
            throughput.wall_s,
            throughput.jobs_per_s,
            throughput.p50_ms,
            throughput.p99_ms,
        );
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if !monotone {
        std::process::exit(1);
    }
}
