//! Micro-benchmarks of the run-time system itself: how long one
//! scheduling decision takes per strategy, the Molecule selection step,
//! and the HEF hardware FSM model. The paper's point that the HEF decision
//! is cheap relative to one 874 µs Atom load must hold for the software
//! implementation too.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rispp_core::{
    GreedySelector, ScheduleRequest, SchedulerKind, SelectionRequest,
};
use rispp_h264::{h264_si_library, SiKind};
use rispp_hw::HefFsm;
use rispp_model::Molecule;

fn ee_request(library: &rispp_model::SiLibrary) -> ScheduleRequest<'_> {
    let demands = vec![
        (SiKind::Dct.id(), 9_504),
        (SiKind::Ht2x2.id(), 792),
        (SiKind::Ht4x4.id(), 80),
        (SiKind::Mc.id(), 360),
        (SiKind::IPredHdc.id(), 16),
        (SiKind::IPredVdc.id(), 20),
    ];
    let selection = GreedySelector.select(&SelectionRequest::new(library, &demands, 20));
    let mut expected = vec![0u64; library.len()];
    for (si, e) in demands {
        expected[si.index()] = e;
    }
    ScheduleRequest::new(library, selection, Molecule::zero(library.arity()), expected)
        .expect("valid request")
}

fn bench_schedulers(c: &mut Criterion) {
    let library = h264_si_library();
    let request = ee_request(&library);
    let mut group = c.benchmark_group("schedule_ee_hotspot");
    for kind in SchedulerKind::ALL {
        let scheduler = kind.create();
        group.bench_function(kind.abbreviation(), |b| {
            b.iter(|| scheduler.schedule(&request))
        });
    }
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let library = h264_si_library();
    let demands = vec![
        (SiKind::Dct.id(), 9_504),
        (SiKind::Ht2x2.id(), 792),
        (SiKind::Mc.id(), 360),
    ];
    c.bench_function("greedy_selection_20ac", |b| {
        b.iter_batched(
            || SelectionRequest::new(&library, &demands, 20),
            |req| GreedySelector.select(&req),
            BatchSize::SmallInput,
        )
    });
}

fn bench_hef_fsm(c: &mut Criterion) {
    let library = h264_si_library();
    let request = ee_request(&library);
    c.bench_function("hef_fsm_model", |b| b.iter(|| HefFsm::new().run(&request)));
}

fn config() -> Criterion {
    Criterion::default().sample_size(50)
}

criterion_group! {
    name = schedulers;
    config = config();
    targets = bench_schedulers, bench_selection, bench_hef_fsm
}
criterion_main!(schedulers);
