//! One Criterion bench per paper table/figure: each group prints the
//! regenerated series once (on a CI-sized workload) and then measures the
//! cost of regenerating it. The full-scale series are produced by the
//! `fig*`/`table*` binaries (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use rispp_bench::experiments::{
    ablation_bandwidth, ablation_forecast, fig2_upgrade_comparison, fig4_schedules, fig5_paths,
    fig8_detail, quick_workload, scheduler_sweep, table1_inventory, table3_hardware,
};
use rispp_bench::report;
use rispp_h264::SiKind;
use rispp_sim::Trace;

const BENCH_FRAMES: u32 = 6;

fn bench_fig2(c: &mut Criterion) {
    let workload = quick_workload(BENCH_FRAMES);
    let (with, without) = fig2_upgrade_comparison(workload.trace(), 7);
    println!("{}", report::fig2_series(&with, &without, 16));
    c.bench_function("fig2_upgrade_comparison", |b| {
        b.iter(|| fig2_upgrade_comparison(workload.trace(), 7))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let (good, bad) = fig4_schedules();
    println!("{}", report::fig4_table(&good, &bad));
    c.bench_function("fig4_schedules", |b| b.iter(fig4_schedules));
}

fn bench_fig5(c: &mut Criterion) {
    println!("{}", report::fig5_table(&fig5_paths()));
    c.bench_function("fig5_paths", |b| b.iter(fig5_paths));
}

fn bench_fig7_table2(c: &mut Criterion) {
    let workload = quick_workload(BENCH_FRAMES);
    let sweep = scheduler_sweep(workload.trace(), [6u16, 12, 18, 24]);
    println!("{}", report::fig7_table(&sweep));
    println!("{}", report::table2(&sweep));
    c.bench_function("fig7_scheduler_sweep_point", |b| {
        b.iter(|| scheduler_sweep(workload.trace(), [12u16]))
    });
}

fn bench_fig8(c: &mut Criterion) {
    let workload = quick_workload(2);
    let me_ee = Trace::from_invocations(workload.trace().invocations()[3..=4].to_vec());
    let stats = fig8_detail(&me_ee, 10);
    let sis = [
        (SiKind::Sad.id(), "SAD"),
        (SiKind::Satd.id(), "SATD"),
        (SiKind::Mc.id(), "MC"),
        (SiKind::Dct.id(), "DCT"),
    ];
    println!("{}", report::fig8_table(&stats, &sis, 16));
    c.bench_function("fig8_detail", |b| b.iter(|| fig8_detail(&me_ee, 10)));
}

fn bench_table1(c: &mut Criterion) {
    println!("{}", report::table1(&table1_inventory()));
    c.bench_function("table1_inventory", |b| b.iter(table1_inventory));
}

fn bench_table3(c: &mut Criterion) {
    let (paper, estimate, fsm) = table3_hardware();
    println!("{}", report::table3(&paper, &estimate, &fsm));
    c.bench_function("table3_hef_fsm", |b| b.iter(table3_hardware));
}

fn bench_ablations(c: &mut Criterion) {
    let workload = quick_workload(BENCH_FRAMES);
    let forecast = ablation_forecast(workload.trace(), 15);
    println!(
        "{}",
        report::ablation_table("Ablation: forecast policy (HEF, 15 ACs)", &forecast)
    );
    let bw: Vec<(String, u64)> = ablation_bandwidth(workload.trace(), 15)
        .into_iter()
        .map(|(mbps, cycles)| (format!("{mbps} MB/s"), cycles))
        .collect();
    println!(
        "{}",
        report::ablation_table("Ablation: reconfiguration bandwidth (HEF, 15 ACs)", &bw)
    );
    c.bench_function("ablation_forecast", |b| {
        b.iter(|| ablation_forecast(workload.trace(), 15))
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = experiments;
    config = config();
    targets = bench_fig2, bench_fig4, bench_fig5, bench_fig7_table2, bench_fig8,
              bench_table1, bench_table3, bench_ablations
}
criterion_main!(experiments);
