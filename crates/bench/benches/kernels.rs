//! Micro-benchmarks of the H.264 kernels the Special Instructions
//! accelerate — the software baselines whose cost the SI latency model
//! abstracts.

use criterion::{criterion_group, criterion_main, Criterion};
use rispp_h264::kernels::dct::transform_roundtrip;
use rispp_h264::kernels::deblock::{filter_vertical_edge_bs4, Thresholds};
use rispp_h264::kernels::mc::compensate_16x16;
use rispp_h264::kernels::sad::sad_16x16;
use rispp_h264::kernels::satd::satd_nxn;
use rispp_h264::{Encoder, EncoderConfig, Plane};
use std::hint::black_box;

fn textured_plane(w: usize, h: usize) -> Plane {
    let mut p = Plane::filled(w, h, 0);
    for y in 0..h {
        for x in 0..w {
            let v = 128.0 + 60.0 * ((x as f64) * 0.33).sin() + 40.0 * ((y as f64) * 0.27).cos();
            p.set_sample(x, y, v.clamp(0.0, 255.0) as u8);
        }
    }
    p
}

fn bench_kernels(c: &mut Criterion) {
    let cur = textured_plane(64, 64);
    let reference = textured_plane(64, 64);
    c.bench_function("sad_16x16", |b| {
        b.iter(|| sad_16x16(black_box(&cur), black_box(&reference), 16, 16, 3, -2))
    });

    let a: Vec<u8> = (0..256).map(|i| (i * 13 % 251) as u8).collect();
    let bb: Vec<u8> = (0..256).map(|i| (i * 7 % 241) as u8).collect();
    c.bench_function("satd_16x16", |b| {
        b.iter(|| satd_nxn(black_box(&a), black_box(&bb), 16))
    });

    let residual: [i32; 16] = core::array::from_fn(|i| (i as i32 * 5 % 23) - 11);
    c.bench_function("dct_quant_roundtrip_4x4", |b| {
        b.iter(|| transform_roundtrip(black_box(&residual), 28))
    });

    let mut out = [0u8; 256];
    c.bench_function("mc_quarter_pel_16x16", |b| {
        b.iter(|| {
            compensate_16x16(black_box(&reference), 16, 16, 5, 7, &mut out);
            out[0]
        })
    });

    c.bench_function("deblock_bs4_vertical_edge", |b| {
        b.iter_with_setup(
            || textured_plane(32, 32),
            |mut plane| filter_vertical_edge_bs4(&mut plane, 16, 0, Thresholds::for_qp(28)),
        )
    });
}

fn bench_encoder(c: &mut Criterion) {
    c.bench_function("encode_tiny_frame", |b| {
        b.iter_with_setup(
            || Encoder::new(EncoderConfig::tiny(1)),
            |mut enc| enc.encode_next_frame(),
        )
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(30)
}

criterion_group! {
    name = kernels;
    config = config();
    targets = bench_kernels, bench_encoder
}
criterion_main!(kernels);
