//! Throughput of the cycle-level execution engine per system kind: how
//! fast the simulator replays the encoder trace (simulated cycles per
//! wall-clock second is the figure of merit for large sweeps).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rispp_bench::experiments::quick_workload;
use rispp_core::SchedulerKind;
use rispp_h264::h264_si_library;
use rispp_sim::{simulate, SimConfig};

fn bench_engine(c: &mut Criterion) {
    let library = h264_si_library();
    let workload = quick_workload(4);
    let trace = workload.trace();
    let executions = trace.total_si_executions();

    let mut group = c.benchmark_group("simulate_4_frames");
    group.throughput(Throughput::Elements(executions));
    group.bench_function("rispp_hef_15ac", |b| {
        b.iter(|| simulate(&library, trace, &SimConfig::rispp(15, SchedulerKind::Hef)))
    });
    group.bench_function("rispp_hef_15ac_detail", |b| {
        b.iter(|| {
            simulate(
                &library,
                trace,
                &SimConfig::rispp(15, SchedulerKind::Hef).with_detail(true),
            )
        })
    });
    group.bench_function("molen_15ac", |b| {
        b.iter(|| simulate(&library, trace, &SimConfig::molen(15)))
    });
    group.bench_function("software_only", |b| {
        b.iter(|| simulate(&library, trace, &SimConfig::software_only()))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = engine;
    config = config();
    targets = bench_engine
}
criterion_main!(engine);
