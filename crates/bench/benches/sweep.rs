//! Thread-scaling benchmark of the parallel sweep engine: the Figure 7
//! scheduler sweep on a reduced workload at 1/2/4/8 worker threads.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rispp_bench::experiments::{quick_workload, scheduler_sweep_on};
use rispp_core::SchedulerKind;
use rispp_sim::SweepRunner;

fn bench_sweep_threads(c: &mut Criterion) {
    let workload = quick_workload(8);
    let trace = workload.trace();
    let acs = 5u16..=14;
    let jobs = 1 + acs.clone().count() * (SchedulerKind::ALL.len() + 1);

    let mut group = c.benchmark_group("scheduler_sweep");
    group.throughput(Throughput::Elements(jobs as u64));
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let runner = SweepRunner::with_threads(threads);
        group.bench_function(&format!("threads_{threads}"), |b| {
            b.iter(|| scheduler_sweep_on(&runner, trace, acs.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_threads);
criterion_main!(benches);
