//! Minimal recursive-descent JSON parser.
//!
//! The workspace has no serde (offline, vendored-only dependencies), but
//! the telemetry acceptance tests and the CLI trace validator need to
//! *read back* the JSON the crate writes. This parser accepts standard
//! JSON (RFC 8259) with no extensions; it is built for correctness on
//! small documents, not throughput.

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset at which parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object as an ordered list of `(key, value)` members.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Object member lookup (linear; `None` for non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The object members, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: accept, combine when paired,
                            // replace lone surrogates.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(code).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    if b < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(char::from(b));
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar. Only the bytes
                    // of this scalar are validated — validating the whole
                    // remaining input here would make string parsing
                    // quadratic on megabyte documents.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let rest = &self.bytes[self.pos..end];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = JsonValue::parse(
            "{\"a\":[1,2.5,-3],\"b\":{\"c\":null,\"d\":true},\"e\":\"x\\ny\"}",
        )
        .unwrap();
        assert_eq!(doc.get("a").and_then(JsonValue::as_array).map(<[_]>::len), Some(3));
        assert_eq!(doc.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(doc.get("b").and_then(|b| b.get("d")).and_then(JsonValue::as_bool), Some(true));
        assert_eq!(doc.get("e").and_then(JsonValue::as_str), Some("x\ny"));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("{\"a\":}").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("tru").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = JsonValue::parse("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
    }

    #[test]
    fn integer_accessor_rejects_fractions() {
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("42.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("-1").unwrap().as_u64(), None);
    }
}
