//! Incremental Chrome trace-event JSON writer.
//!
//! Emits the legacy "JSON Array Format" that both `chrome://tracing` and
//! Perfetto (<https://ui.perfetto.dev>) load directly: an object with a
//! `traceEvents` array of `ph: "X"` (complete/duration), `ph: "i"`
//! (instant), `ph: "C"` (counter) and `ph: "M"` (metadata) events.
//!
//! Timestamps (`ts`) and durations (`dur`) are microseconds in the trace
//! format; the simulator maps **1 simulated cycle to 1 µs**, so a span of
//! 4 000 cycles reads as 4 ms on the Perfetto timeline. Tracks are
//! addressed by `(pid, tid)` pairs and named with metadata events.

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal, appending to
/// `out` (no surrounding quotes).
pub fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Builds a Chrome trace-event JSON document incrementally.
///
/// ```
/// use rispp_telemetry::TraceBuilder;
/// let mut t = TraceBuilder::new();
/// t.process_name(1, "Atom Containers");
/// t.thread_name(1, 0, "AC0");
/// t.complete(1, 0, "load Atom3", 100, 4_000);
/// t.instant(1, 0, "quarantined", 9_000);
/// let json = t.finish();
/// assert!(json.starts_with("{\"traceEvents\":["));
/// ```
#[derive(Debug)]
pub struct TraceBuilder {
    out: String,
    any: bool,
    events: usize,
}

impl Default for TraceBuilder {
    fn default() -> Self {
        TraceBuilder::new()
    }
}

impl TraceBuilder {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        TraceBuilder {
            out: String::from("{\"traceEvents\":[\n"),
            any: false,
            events: 0,
        }
    }

    /// Number of events emitted so far (metadata included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events
    }

    /// Whether no events have been emitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    fn sep(&mut self) {
        if self.any {
            self.out.push_str(",\n");
        }
        self.any = true;
        self.events += 1;
    }

    /// Names the process (track group) `pid`.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.sep();
        self.out.push_str("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":");
        let _ = write!(self.out, "{pid},\"tid\":0,\"args\":{{\"name\":\"");
        escape_json_into(name, &mut self.out);
        self.out.push_str("\"}}");
    }

    /// Names the thread (track) `(pid, tid)`.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.sep();
        self.out.push_str("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":");
        let _ = write!(self.out, "{pid},\"tid\":{tid},\"args\":{{\"name\":\"");
        escape_json_into(name, &mut self.out);
        self.out.push_str("\"}}");
    }

    /// Emits a complete (`ph: "X"`) span of `dur` cycles starting at `ts`.
    pub fn complete(&mut self, pid: u64, tid: u64, name: &str, ts: u64, dur: u64) {
        self.complete_with_args(pid, tid, name, ts, dur, None);
    }

    /// Emits a complete span with an optional pre-rendered JSON `args`
    /// object (must be a valid JSON object literal, e.g. `{"si":3}`).
    pub fn complete_with_args(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts: u64,
        dur: u64,
        args_json: Option<&str>,
    ) {
        self.sep();
        self.out.push_str("{\"ph\":\"X\",\"name\":\"");
        escape_json_into(name, &mut self.out);
        let _ = write!(self.out, "\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur}");
        if let Some(args) = args_json {
            let _ = write!(self.out, ",\"args\":{args}");
        }
        self.out.push('}');
    }

    /// Emits a thread-scoped instant (`ph: "i"`) event at `ts`.
    pub fn instant(&mut self, pid: u64, tid: u64, name: &str, ts: u64) {
        self.instant_with_args(pid, tid, name, ts, None);
    }

    /// Emits an instant event with an optional pre-rendered JSON `args`
    /// object.
    pub fn instant_with_args(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts: u64,
        args_json: Option<&str>,
    ) {
        self.sep();
        self.out.push_str("{\"ph\":\"i\",\"s\":\"t\",\"name\":\"");
        escape_json_into(name, &mut self.out);
        let _ = write!(self.out, "\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}");
        if let Some(args) = args_json {
            let _ = write!(self.out, ",\"args\":{args}");
        }
        self.out.push('}');
    }

    /// Emits a counter (`ph: "C"`) sample: one stacked series per
    /// `(name, value)` pair in `series`.
    pub fn counter(&mut self, pid: u64, name: &str, ts: u64, series: &[(&str, u64)]) {
        self.sep();
        self.out.push_str("{\"ph\":\"C\",\"name\":\"");
        escape_json_into(name, &mut self.out);
        let _ = write!(self.out, "\",\"pid\":{pid},\"tid\":0,\"ts\":{ts},\"args\":{{");
        for (i, (k, v)) in series.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push('"');
            escape_json_into(k, &mut self.out);
            let _ = write!(self.out, "\":{v}");
        }
        self.out.push_str("}}");
    }

    /// Closes the document and returns the JSON text.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn builds_parseable_trace() {
        let mut t = TraceBuilder::new();
        t.process_name(1, "Atom \"Containers\"");
        t.thread_name(1, 2, "AC2");
        t.complete_with_args(1, 2, "load Atom3", 10, 400, Some("{\"atom\":3}"));
        t.instant(1, 2, "quarantined", 900);
        t.counter(1, "port busy", 0, &[("busy", 1)]);
        assert_eq!(t.len(), 5);
        let doc = JsonValue::parse(&t.finish()).expect("trace must parse");
        let events = doc.get("traceEvents").and_then(JsonValue::as_array).unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].get("ph").and_then(JsonValue::as_str), Some("M"));
        assert_eq!(
            events[2].get("dur").and_then(JsonValue::as_u64),
            Some(400)
        );
        assert_eq!(
            events[2].get("args").and_then(|a| a.get("atom")).and_then(JsonValue::as_u64),
            Some(3)
        );
    }

    #[test]
    fn escapes_control_characters() {
        let mut s = String::new();
        escape_json_into("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn empty_trace_still_parses() {
        let doc = JsonValue::parse(&TraceBuilder::new().finish()).unwrap();
        let events = doc.get("traceEvents").and_then(JsonValue::as_array).unwrap();
        assert!(events.is_empty());
    }
}
