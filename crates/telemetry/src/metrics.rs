//! Deterministic cycle-domain metrics: counters, gauges, histograms.
//!
//! All values are integers (cycles, counts) so snapshots are `Eq` and
//! bit-identical across runs and thread counts. Names follow the
//! Prometheus convention and may carry a label set inline, e.g.
//! `rispp_si_executions_total{si="3"}`; the registry itself treats the
//! whole string as an opaque BTree key, which is what makes ordering —
//! and therefore every exposition format — deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::perfetto::escape_json_into;

/// Default histogram bucket upper bounds (cycles), roughly powers of four:
/// wide enough for single-SI latencies (tens of cycles) through whole
/// reconfiguration stalls (hundreds of thousands).
pub const DEFAULT_BOUNDS: [u64; 11] = [
    1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576,
];

/// A fixed-bound histogram over `u64` observations.
///
/// `counts` has one slot per bound plus a final overflow (`+Inf`) slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Histogram {
    /// Creates an empty histogram with the given upper bounds (must be
    /// strictly increasing; an implicit `+Inf` bucket is appended).
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.observe_n(value, 1);
    }

    /// Records `n` identical observations of `value` in O(buckets): the
    /// burst-segment case, where thousands of executions share one latency.
    pub fn observe_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.count += n;
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Bucket upper bounds (without the implicit `+Inf`).
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final slot is the `+Inf` overflow bucket.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper-bound estimate of the `q`-quantile (`q` clamped to
    /// `[0, 1]`): the upper bound of the first bucket whose cumulative
    /// count reaches `ceil(q * count)`. Observations in the `+Inf`
    /// overflow bucket report the largest finite bound (the histogram
    /// cannot resolve beyond it). Returns `None` for an empty histogram
    /// or one with no finite bounds.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || self.bounds.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil without floats drifting: rank in [1, count].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (slot, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                let bound_slot = slot.min(self.bounds.len() - 1);
                return Some(self.bounds[bound_slot]);
            }
        }
        Some(*self.bounds.last().expect("non-empty bounds"))
    }

    /// Adds `other` into `self` bucket-wise. Both histograms must share
    /// the same bounds (they do when both came from the same metric name).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "merging histograms with different bucket bounds"
        );
        for (slot, &c) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot += c;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.count += other.count;
    }
}

/// One named metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-written (or summed, on merge) signed level.
    Gauge(i64),
    /// Distribution of `u64` observations.
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A mutable registry of metrics, written to by observers during a run.
///
/// Writes are keyed by full metric name (including any inline label set);
/// a name is bound to the kind of its first write, and later writes of a
/// different kind panic — that is always a programming error, never a
/// data-dependent condition.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
    /// Labels stitched into every written metric name (e.g.
    /// `trace_id="7",tenant="0",attempt="1"`); empty means names pass
    /// through untouched, byte-identical to a registry without the
    /// feature.
    base_labels: String,
    /// Reusable buffer for decorated names, so steady-state writes with
    /// base labels do not allocate per sample.
    scratch: String,
}

impl PartialEq for MetricsRegistry {
    fn eq(&self, other: &Self) -> bool {
        // The scratch buffer is transient state, not identity.
        self.metrics == other.metrics && self.base_labels == other.base_labels
    }
}

impl Eq for MetricsRegistry {}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Sets the label set stitched into every metric name written from
    /// now on: `name` becomes `name{labels}` and `name{k="v"}` becomes
    /// `name{k="v",labels}`. Used to stamp a causal trace id (request id,
    /// tenant, attempt) onto every series a run produces. Pass an empty
    /// string to stop decorating. Metrics already written keep their
    /// names.
    pub fn set_base_labels(&mut self, labels: &str) {
        self.base_labels = labels.to_owned();
    }

    /// The label set currently stitched into written metric names
    /// (empty when undecorated).
    #[must_use]
    pub fn base_labels(&self) -> &str {
        &self.base_labels
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.entry(name, || Metric::Counter(0)) {
            Metric::Counter(v) => *v += delta,
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: i64) {
        match self.entry(name, || Metric::Gauge(0)) {
            Metric::Gauge(v) => *v = value,
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Adds `delta` (possibly negative) to the gauge `name`.
    pub fn gauge_add(&mut self, name: &str, delta: i64) {
        match self.entry(name, || Metric::Gauge(0)) {
            Metric::Gauge(v) => *v += delta,
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Records `value` into the histogram `name` with [`DEFAULT_BOUNDS`].
    pub fn observe(&mut self, name: &str, value: u64) {
        self.observe_with_bounds(name, value, &DEFAULT_BOUNDS);
    }

    /// Records `value` into the histogram `name`, creating it with the
    /// given bounds on first use.
    pub fn observe_with_bounds(&mut self, name: &str, value: u64, bounds: &[u64]) {
        match self.entry(name, || Metric::Histogram(Histogram::new(bounds))) {
            Metric::Histogram(h) => h.observe(value),
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Records `n` identical observations of `value` into the histogram
    /// `name` with [`DEFAULT_BOUNDS`] (see [`Histogram::observe_n`]).
    pub fn observe_n(&mut self, name: &str, value: u64, n: u64) {
        match self.entry(name, || Metric::Histogram(Histogram::new(&DEFAULT_BOUNDS))) {
            Metric::Histogram(h) => h.observe_n(value, n),
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    fn entry(&mut self, name: &str, make: impl FnOnce() -> Metric) -> &mut Metric {
        if self.base_labels.is_empty() {
            if !self.metrics.contains_key(name) {
                self.metrics.insert(name.to_owned(), make());
            }
            return self.metrics.get_mut(name).expect("just inserted");
        }
        // Stitch the base labels into the name via the reusable scratch
        // buffer; the String is only cloned on first sighting of a name.
        self.scratch.clear();
        match name.strip_suffix('}') {
            Some(open) => {
                self.scratch.push_str(open);
                self.scratch.push(',');
            }
            None => {
                self.scratch.push_str(name);
                self.scratch.push('{');
            }
        }
        self.scratch.push_str(&self.base_labels);
        self.scratch.push('}');
        if !self.metrics.contains_key(&self.scratch) {
            self.metrics.insert(self.scratch.clone(), make());
        }
        self.metrics.get_mut(&self.scratch).expect("just inserted")
    }

    /// Freezes the current state into an immutable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self.metrics.clone(),
        }
    }

    /// Consumes the registry into a snapshot without cloning.
    #[must_use]
    pub fn into_snapshot(self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self.metrics,
        }
    }
}

/// An immutable, mergeable view of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsSnapshot {
    /// Merges `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise. Merge is associative and commutative over
    /// disjoint-or-matching keys, so folding per-job snapshots in job
    /// order yields the same result at any sweep thread count.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, metric) in &other.metrics {
            match self.metrics.get_mut(name) {
                None => {
                    self.metrics.insert(name.clone(), metric.clone());
                }
                Some(Metric::Counter(a)) => match metric {
                    Metric::Counter(b) => *a += b,
                    other => panic!("metric {name} merge kind mismatch ({})", other.kind()),
                },
                Some(Metric::Gauge(a)) => match metric {
                    Metric::Gauge(b) => *a += b,
                    other => panic!("metric {name} merge kind mismatch ({})", other.kind()),
                },
                Some(Metric::Histogram(a)) => match metric {
                    Metric::Histogram(b) => a.merge(b),
                    other => panic!("metric {name} merge kind mismatch ({})", other.kind()),
                },
            }
        }
    }

    /// Looks up a metric by full name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// The counter `name`, or 0 when absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The gauge `name`, or 0 when absent.
    #[must_use]
    pub fn gauge(&self, name: &str) -> i64 {
        match self.metrics.get(name) {
            Some(Metric::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Iterates metrics in deterministic (BTree) name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics in the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the snapshot holds no metrics.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Renders the snapshot as a single deterministic JSON object:
    /// `{"schema_version":1,"metrics":{name:{...},...}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.metrics.len() * 48);
        out.push_str("{\"schema_version\":1,\"metrics\":{");
        for (i, (name, metric)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json_into(name, &mut out);
            out.push_str("\":");
            match metric {
                Metric::Counter(v) => {
                    let _ = write!(out, "{{\"type\":\"counter\",\"value\":{v}}}");
                }
                Metric::Gauge(v) => {
                    let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{v}}}");
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                        h.count(),
                        h.sum()
                    );
                    for (j, &c) in h.counts().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        match h.bounds().get(j) {
                            Some(b) => {
                                let _ = write!(out, "{{\"le\":{b},\"count\":{c}}}");
                            }
                            None => {
                                let _ = write!(out, "{{\"le\":\"+Inf\",\"count\":{c}}}");
                            }
                        }
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("}}\n");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (one `# TYPE` line per metric family, cumulative histogram
    /// buckets, deterministic ordering).
    #[must_use]
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::with_capacity(64 + self.metrics.len() * 64);
        let mut last_family = String::new();
        for (name, metric) in &self.metrics {
            let family = name.split('{').next().unwrap_or(name);
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} {}", metric.kind());
                last_family = family.to_owned();
            }
            match metric {
                Metric::Counter(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                Metric::Gauge(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                Metric::Histogram(h) => {
                    // Histogram names never carry labels in this crate, so
                    // `{le=…}` can be appended directly.
                    let mut cumulative = 0u64;
                    for (j, &c) in h.counts().iter().enumerate() {
                        cumulative += c;
                        match h.bounds().get(j) {
                            Some(b) => {
                                let _ =
                                    writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cumulative}");
                            }
                            None => {
                                let _ =
                                    writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                            }
                        }
                    }
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut r = MetricsRegistry::new();
        r.counter_add("a_total", 2);
        r.counter_add("a_total", 3);
        r.gauge_set("g", 7);
        r.gauge_add("g", -2);
        let s = r.snapshot();
        assert_eq!(s.counter("a_total"), 5);
        assert_eq!(s.gauge("g"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[10, 100]);
        h.observe(5);
        h.observe(10);
        h.observe(50);
        h.observe(1_000);
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1_065);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.observe_with_bounds("h", 5, &[10, 100]);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 2);
        b.counter_add("only_b", 9);
        b.observe_with_bounds("h", 50, &[10, 100]);

        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), 3);
        assert_eq!(ab.counter("only_b"), 9);
        match ab.get("h") {
            Some(Metric::Histogram(h)) => assert_eq!(h.count(), 2),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn prometheus_text_is_cumulative_and_typed() {
        let mut r = MetricsRegistry::new();
        r.observe_with_bounds("lat", 5, &[10, 100]);
        r.observe_with_bounds("lat", 50, &[10, 100]);
        r.counter_add("runs_total", 1);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_bucket{le=\"100\"} 2"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_sum 55"));
        assert!(text.contains("lat_count 2"));
        assert!(text.contains("# TYPE runs_total counter"));
    }

    #[test]
    fn labelled_families_emit_one_type_line() {
        let mut r = MetricsRegistry::new();
        r.counter_add("x_total{si=\"0\"}", 1);
        r.counter_add("x_total{si=\"1\"}", 2);
        let text = r.snapshot().to_prometheus_text();
        assert_eq!(text.matches("# TYPE x_total counter").count(), 1);
        assert!(text.contains("x_total{si=\"0\"} 1"));
        assert!(text.contains("x_total{si=\"1\"} 2"));
    }

    #[test]
    fn json_is_deterministic() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("b", -4);
        r.counter_add("a", 1);
        let s = r.snapshot();
        assert_eq!(s.to_json(), s.to_json());
        assert!(s.to_json().starts_with("{\"schema_version\":1,\"metrics\":{\"a\""));
    }
    #[test]
    fn quantile_walks_cumulative_buckets() {
        let mut h = Histogram::new(&[10, 100, 1_000]);
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..50 {
            h.observe(5); // bucket <=10
        }
        for _ in 0..40 {
            h.observe(60); // bucket <=100
        }
        for _ in 0..10 {
            h.observe(600); // bucket <=1000
        }
        assert_eq!(h.quantile(0.0), Some(10));
        assert_eq!(h.quantile(0.5), Some(10));
        assert_eq!(h.quantile(0.51), Some(100));
        assert_eq!(h.quantile(0.9), Some(100));
        assert_eq!(h.quantile(0.99), Some(1_000));
        assert_eq!(h.quantile(1.0), Some(1_000));
    }

    #[test]
    fn quantile_clamps_overflow_to_largest_finite_bound() {
        let mut h = Histogram::new(&[10]);
        h.observe(1_000_000); // +Inf bucket
        assert_eq!(h.quantile(0.5), Some(10));
        assert_eq!(h.quantile(1.0), Some(10));
    }

    #[test]
    fn quantile_of_empty_histogram_is_none_at_every_q() {
        let h = Histogram::new(&[10, 100]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), None, "q={q}");
        }
        // Out-of-range q values clamp, they do not invent answers.
        assert_eq!(h.quantile(-1.0), None);
        assert_eq!(h.quantile(2.0), None);
    }

    #[test]
    fn histogram_with_only_the_inf_bucket_counts_but_cannot_quantile() {
        // No finite bounds: every observation lands in the implicit +Inf
        // overflow slot. Count and sum still accumulate, but no quantile
        // can be resolved — there is no finite bound to report.
        let mut h = Histogram::new(&[]);
        h.observe(7);
        h.observe_n(1_000_000, 3);
        assert_eq!(h.counts(), &[4]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 3_000_007);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), None, "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merging_disjoint_bucket_layouts_panics() {
        let mut a = Histogram::new(&[10, 100]);
        a.observe(5);
        let mut b = Histogram::new(&[16, 256]);
        b.observe(5);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn snapshot_merge_panics_on_same_name_disjoint_bounds() {
        let mut a = MetricsRegistry::new();
        a.observe_with_bounds("h", 5, &[10, 100]);
        let mut b = MetricsRegistry::new();
        b.observe_with_bounds("h", 5, &[16]);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
    }

    #[test]
    fn merging_an_empty_snapshot_is_identity() {
        let mut r = MetricsRegistry::new();
        r.counter_add("c", 3);
        r.observe_with_bounds("h", 5, &[10]);
        let mut s = r.snapshot();
        let before = s.clone();
        s.merge(&MetricsSnapshot::default());
        assert_eq!(s, before);
        // And empty-merge-full equals full.
        let mut empty = MetricsSnapshot::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn base_labels_decorate_bare_and_labelled_names() {
        let mut r = MetricsRegistry::new();
        r.counter_add("before_total", 1);
        r.set_base_labels("trace_id=\"9\",tenant=\"0\",attempt=\"1\"");
        assert_eq!(r.base_labels(), "trace_id=\"9\",tenant=\"0\",attempt=\"1\"");
        r.counter_add("plain_total", 2);
        r.counter_add("labelled_total{si=\"3\"}", 4);
        r.gauge_set("depth", 5);
        r.observe_with_bounds("lat", 7, &[10]);
        let s = r.snapshot();
        // Metrics written before decoration keep their names.
        assert_eq!(s.counter("before_total"), 1);
        assert_eq!(
            s.counter("plain_total{trace_id=\"9\",tenant=\"0\",attempt=\"1\"}"),
            2
        );
        assert_eq!(
            s.counter("labelled_total{si=\"3\",trace_id=\"9\",tenant=\"0\",attempt=\"1\"}"),
            4
        );
        assert_eq!(s.gauge("depth{trace_id=\"9\",tenant=\"0\",attempt=\"1\"}"), 5);
        assert!(s
            .get("lat{trace_id=\"9\",tenant=\"0\",attempt=\"1\"}")
            .is_some());
        // Clearing the labels restores pass-through names.
        r.set_base_labels("");
        r.counter_add("plain_total", 1);
        assert_eq!(r.snapshot().counter("plain_total"), 1);
    }
}
