//! Self-describing flight-recorder diagnostic bundles.
//!
//! A bundle is one JSONL file spilled by a flight recorder when a job
//! dies (panic, deadline timeout, retry exhaustion, poison-listing). It
//! is *self-describing*: the first line names the format, the failure
//! reason and the causal identity (trace id, tenant, attempt), so a
//! bundle can be understood years later without the config that produced
//! it. The layout is:
//!
//! 1. one header line (`{"bundle":"rispp-flight",...}`) — see
//!    [`BundleMeta`];
//! 2. the retained event tail: schema-v4 event rows exactly as the
//!    streaming event log would have written them (bit-identical to the
//!    suffix of a `--log-events` file recorded with the same context);
//! 3. zero or more `{"bundle_section":"explain",...}` lines — compact
//!    renderings of the last retained scheduler decisions;
//! 4. zero or more `{"bundle_section":"journal","entry":{...}}` lines —
//!    the last retained fabric container transitions;
//! 5. an optional `{"bundle_section":"perfetto","trace":{...}}` line
//!    embedding a Chrome trace-event fragment of the retained tail;
//! 6. a final `{"bundle_section":"end","lines":N}` line, so truncated
//!    bundles are detected instead of silently under-reporting.
//!
//! The writer side is string-append only (no I/O here); the reader side
//! ([`Bundle::parse`]) is the foundation of `rispp-cli forensics`.

use std::fmt::Write as _;

use crate::json::JsonValue;
use crate::perfetto::escape_json_into;

/// Version of the bundle container format. Independent of the event-log
/// schema version, which is carried per bundle in
/// [`BundleMeta::event_schema_version`].
pub const BUNDLE_FORMAT_VERSION: u32 = 1;

/// The header line of a diagnostic bundle: identity, failure reason and
/// the counters a reader needs to judge completeness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BundleMeta {
    /// Why the bundle was dumped (e.g. `panicked`, `timeout`,
    /// `poisoned`).
    pub reason: String,
    /// The serve-side job id the run belonged to (empty when unknown).
    pub job_id: String,
    /// Causal trace id minted at admission.
    pub trace_id: u64,
    /// Tenant the run was attributed to.
    pub tenant: u16,
    /// Retry attempt the bundle captured.
    pub attempt: u32,
    /// JSONL event-log schema version of the event-tail rows.
    pub event_schema_version: u32,
    /// FNV-1a hash of the job's canonical config encoding (the poison
    /// list and plan-cache namespace key).
    pub config_hash: u64,
    /// Plan-cache hits observed by the run (0 when unavailable).
    pub plan_hits: u64,
    /// Plan-cache misses observed by the run (0 when unavailable).
    pub plan_misses: u64,
    /// Events that fell off the ring before the dump.
    pub events_dropped: u64,
    /// Decision explains that fell off their ring before the dump.
    pub decisions_dropped: u64,
    /// Journal entries that fell off their ring before the dump.
    pub journal_dropped: u64,
}

/// Appends the bundle header line for `meta` to `out`.
pub fn write_bundle_header(out: &mut String, meta: &BundleMeta) {
    out.push_str("{\"bundle\":\"rispp-flight\",\"bundle_version\":");
    let _ = write!(out, "{BUNDLE_FORMAT_VERSION}");
    out.push_str(",\"reason\":\"");
    escape_json_into(&meta.reason, out);
    out.push_str("\",\"job_id\":\"");
    escape_json_into(&meta.job_id, out);
    // config_hash is a full u64; JSON readers parsing numbers as f64
    // would corrupt it above 2^53, so it travels as fixed-width hex.
    let _ = writeln!(
        out,
        "\",\"trace_id\":{},\"tenant\":{},\"attempt\":{},\"event_schema_version\":{},\"config_hash\":\"{:016x}\",\"plan_hits\":{},\"plan_misses\":{},\"events_dropped\":{},\"decisions_dropped\":{},\"journal_dropped\":{}}}",
        meta.trace_id,
        meta.tenant,
        meta.attempt,
        meta.event_schema_version,
        meta.config_hash,
        meta.plan_hits,
        meta.plan_misses,
        meta.events_dropped,
        meta.decisions_dropped,
        meta.journal_dropped,
    );
}

/// Appends one retained-decision line: the decision's cycle and a
/// compact one-line summary.
pub fn write_explain_line(out: &mut String, now: u64, summary: &str) {
    let _ = write!(out, "{{\"bundle_section\":\"explain\",\"now\":{now},\"summary\":\"");
    escape_json_into(summary, out);
    out.push_str("\"}\n");
}

/// Appends one retained-journal line wrapping `row` — a complete JSON
/// object rendered by the event-log writer (without its trailing
/// newline).
pub fn write_journal_line(out: &mut String, row: &str) {
    out.push_str("{\"bundle_section\":\"journal\",\"entry\":");
    out.push_str(row.trim_end());
    out.push_str("}\n");
}

/// Appends the Perfetto-fragment line embedding `trace_json` (a complete
/// Chrome trace-event JSON object). [`crate::TraceBuilder`] output spans
/// multiple lines; the newlines are inter-token whitespace (string
/// contents escape theirs), so they are dropped to keep the bundle one
/// object per line.
pub fn write_perfetto_line(out: &mut String, trace_json: &str) {
    out.push_str("{\"bundle_section\":\"perfetto\",\"trace\":");
    out.extend(trace_json.trim_end().chars().filter(|&c| c != '\n' && c != '\r'));
    out.push_str("}\n");
}

/// Appends the final end line. `lines` is the number of lines written
/// before it (header + tail + sections); readers use it to detect
/// truncation.
pub fn write_end_line(out: &mut String, lines: usize) {
    let _ = writeln!(out, "{{\"bundle_section\":\"end\",\"lines\":{lines}}}");
}

/// A parsed diagnostic bundle.
#[derive(Debug, Clone, Default)]
pub struct Bundle {
    /// The header metadata.
    pub meta: BundleMeta,
    /// Parsed event-tail rows, in emission order.
    pub events: Vec<JsonValue>,
    /// The raw event-tail lines exactly as written (for bit-identity
    /// checks against `--log-events` suffixes).
    pub event_lines: Vec<String>,
    /// Retained decision summaries as `(cycle, summary)` pairs.
    pub explains: Vec<(u64, String)>,
    /// Parsed retained-journal rows.
    pub journal: Vec<JsonValue>,
    /// The embedded Perfetto fragment, re-serialised, if present.
    pub perfetto: Option<String>,
    /// Whether the end line was present and its line count matched.
    pub complete: bool,
}

fn field_u64(value: &JsonValue, name: &str) -> Result<u64, String> {
    value
        .get(name)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("bundle header missing numeric `{name}`"))
}

impl Bundle {
    /// Parses a bundle file's text. Fails loudly on a missing or
    /// malformed header, unknown bundle versions, and unparseable lines;
    /// a missing or mismatched end line is reported softly via
    /// [`Bundle::complete`] so a truncated bundle can still be read.
    pub fn parse(text: &str) -> Result<Bundle, String> {
        let mut lines = text.lines();
        let header_line = lines.next().ok_or("empty bundle")?;
        let header = JsonValue::parse(header_line)
            .map_err(|e| format!("bundle header is not JSON: {e}"))?;
        if header.get("bundle").and_then(JsonValue::as_str) != Some("rispp-flight") {
            return Err("not a rispp-flight bundle (missing `\"bundle\":\"rispp-flight\"` header)".into());
        }
        let version = field_u64(&header, "bundle_version")?;
        if version != u64::from(BUNDLE_FORMAT_VERSION) {
            return Err(format!(
                "unsupported bundle_version {version} (this reader understands {BUNDLE_FORMAT_VERSION})"
            ));
        }
        let config_hash_hex = header
            .get("config_hash")
            .and_then(JsonValue::as_str)
            .ok_or("bundle header missing `config_hash`")?;
        let config_hash = u64::from_str_radix(config_hash_hex, 16)
            .map_err(|_| format!("bundle config_hash `{config_hash_hex}` is not hex"))?;
        let meta = BundleMeta {
            reason: header
                .get("reason")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_owned(),
            job_id: header
                .get("job_id")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_owned(),
            trace_id: field_u64(&header, "trace_id")?,
            tenant: u16::try_from(field_u64(&header, "tenant")?)
                .map_err(|_| "bundle tenant out of range")?,
            attempt: u32::try_from(field_u64(&header, "attempt")?)
                .map_err(|_| "bundle attempt out of range")?,
            event_schema_version: u32::try_from(field_u64(&header, "event_schema_version")?)
                .map_err(|_| "bundle event_schema_version out of range")?,
            config_hash,
            plan_hits: field_u64(&header, "plan_hits")?,
            plan_misses: field_u64(&header, "plan_misses")?,
            events_dropped: field_u64(&header, "events_dropped")?,
            decisions_dropped: field_u64(&header, "decisions_dropped")?,
            journal_dropped: field_u64(&header, "journal_dropped")?,
        };

        let mut bundle = Bundle {
            meta,
            ..Bundle::default()
        };
        // `seen` counts the lines before the current one (header = 1),
        // so `seen + 1` is the current 1-based line number.
        for (seen, line) in (1usize..).zip(lines) {
            let value =
                JsonValue::parse(line).map_err(|e| format!("bundle line {} : {e}", seen + 1))?;
            match value.get("bundle_section").and_then(JsonValue::as_str) {
                None => {
                    if value.get("event").and_then(JsonValue::as_str).is_none() {
                        return Err(format!("bundle line {}: neither event nor section", seen + 1));
                    }
                    bundle.event_lines.push(line.to_owned());
                    bundle.events.push(value);
                }
                Some("explain") => {
                    let now = field_u64(&value, "now")
                        .map_err(|_| format!("explain line {} missing `now`", seen + 1))?;
                    let summary = value
                        .get("summary")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_owned();
                    bundle.explains.push((now, summary));
                }
                Some("journal") => {
                    let entry = value
                        .get("entry")
                        .cloned()
                        .ok_or_else(|| format!("journal line {} missing `entry`", seen + 1))?;
                    bundle.journal.push(entry);
                }
                Some("perfetto") => {
                    if value.get("trace").is_some() {
                        // Keep the raw embedded object text for re-export.
                        let raw = line
                            .strip_prefix("{\"bundle_section\":\"perfetto\",\"trace\":")
                            .and_then(|rest| rest.strip_suffix('}'))
                            .unwrap_or(line);
                        bundle.perfetto = Some(raw.to_owned());
                    }
                }
                Some("end") => {
                    let lines_before = field_u64(&value, "lines").unwrap_or(0);
                    bundle.complete = lines_before == seen as u64;
                    return Ok(bundle);
                }
                Some(other) => {
                    return Err(format!("bundle line {}: unknown section `{other}`", seen + 1));
                }
            }
        }
        // Ran out of lines without an end marker: truncated.
        bundle.complete = false;
        Ok(bundle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> BundleMeta {
        BundleMeta {
            reason: "panicked".into(),
            job_id: "job-7".into(),
            trace_id: 42,
            tenant: 1,
            attempt: 3,
            event_schema_version: 4,
            config_hash: 0xDEAD_BEEF_0123_4567,
            plan_hits: 10,
            plan_misses: 2,
            events_dropped: 5,
            decisions_dropped: 0,
            journal_dropped: 1,
        }
    }

    fn sample_bundle_text() -> String {
        let mut out = String::new();
        write_bundle_header(&mut out, &meta());
        out.push_str("{\"event\":\"hot_spot_entered\",\"hot_spot\":0,\"now\":0,\"origin\":\"annotated\",\"trace_id\":42,\"trace_tenant\":1,\"attempt\":3}\n");
        out.push_str("{\"event\":\"run_finished\",\"total_cycles\":99,\"reconfigurations\":0,\"reconfiguration_cycles\":0,\"trace_id\":42,\"trace_tenant\":1,\"attempt\":3}\n");
        write_explain_line(&mut out, 55, "decision @ cycle 55: 2 selected, 1 upgrade");
        write_journal_line(
            &mut out,
            "{\"event\":\"container_transition\",\"kind\":\"load_started\",\"container\":0,\"atom\":1,\"at\":5,\"finish\":9}",
        );
        write_perfetto_line(&mut out, "{\"traceEvents\":[]}");
        let lines = out.lines().count();
        write_end_line(&mut out, lines);
        out
    }

    #[test]
    fn bundle_round_trips_through_the_parser() {
        let text = sample_bundle_text();
        let bundle = Bundle::parse(&text).expect("parses");
        assert!(bundle.complete, "end line must validate");
        assert_eq!(bundle.meta, meta());
        assert_eq!(bundle.events.len(), 2);
        assert_eq!(bundle.event_lines.len(), 2);
        assert!(bundle.event_lines[0].contains("\"trace_id\":42"));
        assert_eq!(bundle.explains.len(), 1);
        assert_eq!(bundle.explains[0].0, 55);
        assert_eq!(bundle.journal.len(), 1);
        assert_eq!(
            bundle.journal[0].get("kind").and_then(JsonValue::as_str),
            Some("load_started")
        );
        assert_eq!(bundle.perfetto.as_deref(), Some("{\"traceEvents\":[]}"));
    }

    #[test]
    fn truncated_bundle_reads_but_reports_incomplete() {
        let text = sample_bundle_text();
        // Drop the end line.
        let truncated: String = text
            .lines()
            .filter(|l| !l.contains("\"end\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let bundle = Bundle::parse(&truncated).expect("still parses");
        assert!(!bundle.complete);
        assert_eq!(bundle.events.len(), 2);
    }

    #[test]
    fn wrong_magic_and_version_fail_loudly() {
        assert!(Bundle::parse("").is_err());
        assert!(Bundle::parse("{\"event\":\"schema\"}").is_err());
        let mut m = meta();
        m.reason = "x".into();
        let mut out = String::new();
        write_bundle_header(&mut out, &m);
        let bad = out.replace("\"bundle_version\":1", "\"bundle_version\":999");
        let err = Bundle::parse(&bad).unwrap_err();
        assert!(err.contains("unsupported bundle_version 999"), "{err}");
    }

    #[test]
    fn config_hash_survives_the_hex_round_trip() {
        let mut out = String::new();
        let mut m = meta();
        m.config_hash = u64::MAX; // would corrupt through f64
        write_bundle_header(&mut out, &m);
        write_end_line(&mut out, 1);
        let bundle = Bundle::parse(&out).expect("parses");
        assert_eq!(bundle.meta.config_hash, u64::MAX);
    }
}
