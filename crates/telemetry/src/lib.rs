//! Cycle-domain telemetry primitives for the RISPP reproduction.
//!
//! Everything in this crate measures **simulated cycles**, never wall-clock
//! time: the run-time system under study is deterministic, so its telemetry
//! must be too. Three building blocks, all dependency-free:
//!
//! * [`MetricsRegistry`] — a deterministic registry of counters, gauges and
//!   histograms keyed by name (BTree-ordered), with [`MetricsSnapshot`]
//!   supporting cross-job [`MetricsSnapshot::merge`] and both JSON and
//!   Prometheus-text exposition.
//! * [`TraceBuilder`] — an incremental Chrome trace-event JSON writer
//!   (duration/instant/counter/metadata events) whose output loads in
//!   Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`. Simulated
//!   cycles are rendered as microseconds (1 cycle = 1 µs).
//! * [`JsonValue`] — a minimal recursive-descent JSON parser used by tests
//!   and the CLI trace validator (the workspace has no serde).
//! * [`Bundle`] / [`BundleMeta`] — the self-describing flight-recorder
//!   diagnostic-bundle format (writer helpers + parser) consumed by
//!   `rispp-cli forensics`.
//!
//! The crate deliberately knows nothing about the simulator: `rispp-sim`
//! hosts the observers that translate simulation events into these
//! primitives, so the dependency arrow points the cheap way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod json;
pub mod metrics;
pub mod perfetto;

pub use bundle::{Bundle, BundleMeta, BUNDLE_FORMAT_VERSION};
pub use json::{JsonError, JsonValue};
pub use metrics::{Histogram, Metric, MetricsRegistry, MetricsSnapshot};
pub use perfetto::{escape_json_into, TraceBuilder};
