//! Property-based tests of the codec kernels: transform/quantisation
//! error bounds, metric axioms for SAD/SATD, interpolation invariants and
//! deblocking safety.

use proptest::prelude::*;
use rispp_h264::kernels::dct::{forward_quantised, reconstruct_residual, transform_roundtrip};
use rispp_h264::kernels::entropy::{estimate_block_bits, run_level, zigzag_scan, zigzag_unscan};
use rispp_h264::kernels::hadamard::{forward_ht2x2, inverse_ht2x2};
use rispp_h264::kernels::mc::{clip3, pack_half_pel, point_filter, sample_quarter_pel};
use rispp_h264::kernels::sad::sad_block;
use rispp_h264::kernels::satd::satd_4x4;
use rispp_h264::Plane;

fn residual() -> impl Strategy<Value = [i32; 16]> {
    proptest::collection::vec(-255i32..=255, 16).prop_map(|v| {
        let mut a = [0i32; 16];
        a.copy_from_slice(&v);
        a
    })
}

fn block() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 16)
}

proptest! {
    #[test]
    fn transform_roundtrip_error_bounded_by_quantisation_step(r in residual(), qp in 0u8..=51) {
        // The reconstruction error per sample is bounded by the rescale
        // step of the QP (≈ V·2^(qp/6); generous envelope 2^(qp/6+5)).
        let recon = transform_roundtrip(&r, qp);
        let bound = 1i64 << (i64::from(qp / 6) + 5);
        for (a, b) in r.iter().zip(&recon) {
            prop_assert!(
                i64::from((a - b).abs()) <= bound,
                "qp {qp}: {a} vs {b} exceeds {bound}"
            );
        }
    }

    #[test]
    fn quantisation_never_increases_coefficient_count(r in residual(), qp in 20u8..=51) {
        let coarse = forward_quantised(&r, qp);
        let fine = forward_quantised(&r, qp.saturating_sub(15));
        let nz = |b: &[i32; 16]| b.iter().filter(|&&v| v != 0).count();
        prop_assert!(nz(&coarse) <= nz(&fine));
    }

    #[test]
    fn reconstruct_of_zero_coefficients_is_zero(qp in 0u8..=51) {
        prop_assert_eq!(reconstruct_residual(&[0i32; 16], qp), [0i32; 16]);
    }

    #[test]
    fn sad_is_a_metric(a in block(), b in block(), c in block()) {
        let d_ab = sad_block(&a, &b, 4);
        let d_ba = sad_block(&b, &a, 4);
        prop_assert_eq!(d_ab, d_ba); // symmetry
        prop_assert_eq!(sad_block(&a, &a, 4), 0); // identity
        // Triangle inequality (L1 is a metric).
        prop_assert!(d_ab <= sad_block(&a, &c, 4) + sad_block(&c, &b, 4));
    }

    #[test]
    fn satd_symmetric_and_zero_on_identity(a in block(), b in block()) {
        prop_assert_eq!(satd_4x4(&a, &b, 4), satd_4x4(&b, &a, 4));
        prop_assert_eq!(satd_4x4(&a, &a, 4), 0);
    }

    #[test]
    fn satd_bounded_by_sad_scaling(a in block(), b in block()) {
        // |H x|_1 ≤ 16 |x|_1 for the 4×4 Hadamard, so SATD ≤ 8·SAD, and
        // SATD ≥ SAD/2 (DC row of H sums all samples).
        let sad = sad_block(&a, &b, 4);
        let satd = satd_4x4(&a, &b, 4);
        prop_assert!(satd <= 8 * sad + 8);
        prop_assert!(2 * satd + 1 >= sad / 2);
    }

    #[test]
    fn ht2x2_roundtrip_is_linear_scaling(dc in proptest::collection::vec(-1000i32..1000, 4)) {
        let x = [dc[0], dc[1], dc[2], dc[3]];
        let y = inverse_ht2x2(&forward_ht2x2(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert_eq!(*b, a * 4);
        }
    }

    #[test]
    fn point_filter_preserves_constants(v in 0u8..=255) {
        let x = i32::from(v);
        let filtered = point_filter(x, x, x, x, x, x);
        prop_assert_eq!(pack_half_pel(filtered), v);
    }

    #[test]
    fn quarter_pel_samples_stay_in_convex_hull_of_constants(v in 0u8..=255, fx in 0i64..4, fy in 0i64..4) {
        let plane = Plane::filled(32, 32, v);
        let s = sample_quarter_pel(&plane, 64 + fx as isize, 64 + fy as isize);
        prop_assert_eq!(s, v, "constant plane must interpolate to itself");
    }

    #[test]
    fn clip3_is_idempotent_and_bounded(x in -100_000i32..100_000) {
        let c = clip3(0, 255, x);
        prop_assert!((0..=255).contains(&c));
        prop_assert_eq!(clip3(0, 255, c), c);
    }

    #[test]
    fn zigzag_roundtrip(r in residual()) {
        prop_assert_eq!(zigzag_unscan(&zigzag_scan(&r)), r);
    }

    #[test]
    fn run_level_reconstructs_nonzero_count(r in residual()) {
        let scanned = zigzag_scan(&r);
        let pairs = run_level(&scanned);
        let nz = r.iter().filter(|&&v| v != 0).count();
        prop_assert_eq!(pairs.len(), nz);
        let total: u64 = pairs.iter().map(|&(run, _)| u64::from(run) + 1).sum();
        prop_assert!(total <= 16);
    }

    #[test]
    fn bit_estimate_is_positive_and_bounded(r in residual()) {
        let bits = estimate_block_bits(&r);
        prop_assert!(bits >= 1);
        // 16 coefficients × (level ≤ 9 bits + sign + run) + header.
        prop_assert!(bits <= 16 * 24 + 8);
    }
}
