use std::fmt;

/// Macroblock edge length in luma samples.
pub const MB_SIZE: usize = 16;

/// A rectangular plane of 8-bit samples (one colour component).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plane {
    width: usize,
    height: usize,
    samples: Vec<u8>,
}

impl Plane {
    /// Creates a plane filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    #[must_use]
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be positive");
        Plane {
            width,
            height,
            samples: vec![value; width * height],
        }
    }

    /// Creates a plane from row-major samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != width * height`.
    #[must_use]
    pub fn from_samples(width: usize, height: usize, samples: Vec<u8>) -> Self {
        assert_eq!(samples.len(), width * height, "sample count mismatch");
        Plane {
            width,
            height,
            samples,
        }
    }

    /// Plane width in samples.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in samples.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw row-major samples.
    #[must_use]
    pub fn samples(&self) -> &[u8] {
        &self.samples
    }

    /// Sample at `(x, y)`, with coordinates clamped to the plane borders
    /// (H.264 unrestricted motion vectors pad by edge extension).
    #[must_use]
    pub fn sample_clamped(&self, x: isize, y: isize) -> u8 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.samples[y * self.width + x]
    }

    /// Sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[must_use]
    pub fn sample(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "sample out of bounds");
        self.samples[y * self.width + x]
    }

    /// Sets the sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set_sample(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "sample out of bounds");
        self.samples[y * self.width + x] = value;
    }

    /// Copies the `n×n` block at `(x, y)` into `out` (row-major), clamping
    /// reads at the borders.
    pub fn read_block(&self, x: isize, y: isize, n: usize, out: &mut [u8]) {
        debug_assert!(out.len() >= n * n);
        for row in 0..n {
            for col in 0..n {
                out[row * n + col] = self.sample_clamped(x + col as isize, y + row as isize);
            }
        }
    }

    /// Writes the `n×n` block `data` (row-major) at `(x, y)`, clipping to
    /// the plane bounds.
    pub fn write_block(&mut self, x: usize, y: usize, n: usize, data: &[u8]) {
        debug_assert!(data.len() >= n * n);
        for row in 0..n {
            let py = y + row;
            if py >= self.height {
                break;
            }
            for col in 0..n {
                let px = x + col;
                if px >= self.width {
                    break;
                }
                self.samples[py * self.width + px] = data[row * n + col];
            }
        }
    }

    /// Sum of squared differences against another plane (PSNR building
    /// block).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn sse(&self, other: &Plane) -> u64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        self.samples
            .iter()
            .zip(&other.samples)
            .map(|(&a, &b)| {
                let d = i64::from(a) - i64::from(b);
                (d * d) as u64
            })
            .sum()
    }

    /// Peak signal-to-noise ratio in dB against a reference plane.
    #[must_use]
    pub fn psnr(&self, reference: &Plane) -> f64 {
        let sse = self.sse(reference);
        if sse == 0 {
            return f64::INFINITY;
        }
        let mse = sse as f64 / (self.width * self.height) as f64;
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

/// A YCbCr 4:2:0 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Luma plane.
    pub y: Plane,
    /// Blue-difference chroma plane (half resolution).
    pub cb: Plane,
    /// Red-difference chroma plane (half resolution).
    pub cr: Plane,
}

impl Frame {
    /// Creates a mid-grey frame of the given luma dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are not multiples of [`MB_SIZE`].
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width.is_multiple_of(MB_SIZE) && height.is_multiple_of(MB_SIZE),
            "frame dimensions must be multiples of the macroblock size"
        );
        Frame {
            y: Plane::filled(width, height, 128),
            cb: Plane::filled(width / 2, height / 2, 128),
            cr: Plane::filled(width / 2, height / 2, 128),
        }
    }

    /// Luma width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.y.width()
    }

    /// Luma height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.y.height()
    }

    /// Macroblock columns.
    #[must_use]
    pub fn mb_cols(&self) -> usize {
        self.width() / MB_SIZE
    }

    /// Macroblock rows.
    #[must_use]
    pub fn mb_rows(&self) -> usize {
        self.height() / MB_SIZE
    }

    /// Total macroblocks (396 for CIF).
    #[must_use]
    pub fn mb_count(&self) -> usize {
        self.mb_cols() * self.mb_rows()
    }

    /// Luma PSNR against a reference frame.
    #[must_use]
    pub fn psnr_y(&self, reference: &Frame) -> f64 {
        self.y.psnr(&reference.y)
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} 4:2:0 frame", self.width(), self.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cif_geometry() {
        let f = Frame::new(352, 288);
        assert_eq!(f.mb_cols(), 22);
        assert_eq!(f.mb_rows(), 18);
        assert_eq!(f.mb_count(), 396);
        assert_eq!(f.cb.width(), 176);
        assert_eq!(f.to_string(), "352x288 4:2:0 frame");
    }

    #[test]
    fn clamped_sampling_extends_edges() {
        let mut p = Plane::filled(4, 4, 0);
        p.set_sample(0, 0, 77);
        p.set_sample(3, 3, 99);
        assert_eq!(p.sample_clamped(-5, -5), 77);
        assert_eq!(p.sample_clamped(10, 10), 99);
    }

    #[test]
    fn block_roundtrip() {
        let mut p = Plane::filled(8, 8, 0);
        let data: Vec<u8> = (0..16).collect();
        p.write_block(2, 2, 4, &data);
        let mut out = [0u8; 16];
        p.read_block(2, 2, 4, &mut out);
        assert_eq!(&out[..], &data[..]);
        assert_eq!(p.sample(2, 2), 0);
        assert_eq!(p.sample(5, 5), 15);
    }

    #[test]
    fn write_block_clips_at_border() {
        let mut p = Plane::filled(4, 4, 0);
        let data = [9u8; 16];
        p.write_block(2, 2, 4, &data);
        assert_eq!(p.sample(3, 3), 9);
        // No panic and untouched interior.
        assert_eq!(p.sample(1, 1), 0);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let p = Plane::filled(16, 16, 100);
        assert!(p.psnr(&p).is_infinite());
        let mut q = p.clone();
        q.set_sample(0, 0, 101);
        assert!(p.psnr(&q) > 40.0);
    }

    #[test]
    #[should_panic(expected = "multiples")]
    fn unaligned_frame_panics() {
        let _ = Frame::new(100, 100);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_sample_panics() {
        let p = Plane::filled(2, 2, 0);
        let _ = p.sample(2, 0);
    }
}
