//! The H.264 Special Instruction library of paper Table 1: nine SIs over
//! nine Atom types, with exactly the paper's Molecule counts per SI.
//!
//! Per-Molecule latencies are hand-crafted tables, like the paper's
//! hand-developed Molecules: the smallest Molecule of an SI is roughly 3×
//! faster than the base-processor trap path (one Atom is already a wide,
//! pipelined data path), and each further upgrade step shaves another
//! 1.3–2×, spanning the multi-decade latency ladders visible in the
//! paper's Figure 8. The [`rispp_model::latency::StageModel`] micro-model
//! was used to sanity-check the relative shape of these tables.

use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibrary, SiLibraryBuilder};

/// The eleven Atom types of the H.264 library, in universe order.
///
/// The Hadamard butterfly (`HTrans`, used by SATD and the secondary DC
/// transforms) and the integer-DCT butterfly with its shift/add scaling
/// (`ITrans`) are distinct data paths, so Motion Estimation and the
/// Encoding Engine share only a few Atom types — which is why hot-spot
/// switches keep the reconfiguration port busy and the Atom loading
/// *order* matters (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum AtomKind {
    /// Sum of absolute values (SAD rows, SATD coefficient summation).
    Sav = 0,
    /// Quad subtraction (residual generation).
    QSub = 1,
    /// Hadamard butterfly stage (SATD, secondary DC transforms).
    HTrans = 2,
    /// Operand repacking between transform stages.
    Repack = 3,
    /// Integer-DCT butterfly with shift/add scaling.
    ITrans = 4,
    /// Quantisation/rescale multiplier stage.
    QuantRescale = 5,
    /// The 6-tap (1,−5,20,20,−5,1) interpolation filter of Figure 3.
    PointFilter = 6,
    /// Byte packing of filtered samples (Figure 3).
    BytePack = 7,
    /// Clamping to the 8-bit sample range (Figure 3).
    Clip3 = 8,
    /// Horizontal collapse-add (intra prediction sums).
    CollapseAdd = 9,
    /// Conditional subtract/compare (deblocking filter decisions).
    CondSub = 10,
}

impl AtomKind {
    /// All atom kinds in universe order.
    pub const ALL: [AtomKind; 11] = [
        AtomKind::Sav,
        AtomKind::QSub,
        AtomKind::HTrans,
        AtomKind::Repack,
        AtomKind::ITrans,
        AtomKind::QuantRescale,
        AtomKind::PointFilter,
        AtomKind::BytePack,
        AtomKind::Clip3,
        AtomKind::CollapseAdd,
        AtomKind::CondSub,
    ];

    /// Universe index of this atom kind.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AtomKind::Sav => "SAV",
            AtomKind::QSub => "QSub",
            AtomKind::HTrans => "HTrans",
            AtomKind::Repack => "Repack",
            AtomKind::ITrans => "ITrans",
            AtomKind::QuantRescale => "QuantRescale",
            AtomKind::PointFilter => "PointFilter",
            AtomKind::BytePack => "BytePack",
            AtomKind::Clip3 => "Clip3",
            AtomKind::CollapseAdd => "CollapseAdd",
            AtomKind::CondSub => "CondSub",
        }
    }

    /// Partial-bitstream size in bytes; the eleven sizes average exactly
    /// the paper's 60,488 bytes.
    #[must_use]
    pub fn bitstream_bytes(self) -> u32 {
        match self {
            AtomKind::Sav => 58_000,
            AtomKind::QSub => 52_000,
            AtomKind::HTrans => 66_000,
            AtomKind::Repack => 48_000,
            AtomKind::ITrans => 70_000,
            AtomKind::QuantRescale => 54_000,
            AtomKind::PointFilter => 82_000,
            AtomKind::BytePack => 56_000,
            AtomKind::Clip3 => 46_000,
            AtomKind::CollapseAdd => 64_000,
            AtomKind::CondSub => 69_368,
        }
    }

    /// Synthesised slice count; the eleven sizes average exactly the
    /// paper's 421 slices (Table 3).
    #[must_use]
    pub fn slices(self) -> u32 {
        match self {
            AtomKind::Sav => 430,
            AtomKind::QSub => 340,
            AtomKind::HTrans => 510,
            AtomKind::Repack => 300,
            AtomKind::ITrans => 560,
            AtomKind::QuantRescale => 420,
            AtomKind::PointFilter => 640,
            AtomKind::BytePack => 330,
            AtomKind::Clip3 => 270,
            AtomKind::CollapseAdd => 420,
            AtomKind::CondSub => 411,
        }
    }
}

/// The nine Special Instructions of Table 1, in library order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum SiKind {
    /// Sum of Absolute Differences (ME).
    Sad = 0,
    /// Sum of Absolute Transformed Differences (ME).
    Satd = 1,
    /// Forward + inverse 4×4 integer transform with (de)quantisation (EE).
    Dct = 2,
    /// Forward + inverse 2×2 chroma-DC Hadamard (EE).
    Ht2x2 = 3,
    /// Forward + inverse 4×4 luma-DC Hadamard (EE).
    Ht4x4 = 4,
    /// Quarter-pel luma motion compensation (EE).
    Mc = 5,
    /// Intra prediction, horizontal + DC modes (EE).
    IPredHdc = 6,
    /// Intra prediction, vertical + DC modes (EE).
    IPredVdc = 7,
    /// Deblocking filter, boundary strength 4 (LF).
    LfBs4 = 8,
}

impl SiKind {
    /// All SIs in library order.
    pub const ALL: [SiKind; 9] = [
        SiKind::Sad,
        SiKind::Satd,
        SiKind::Dct,
        SiKind::Ht2x2,
        SiKind::Ht4x4,
        SiKind::Mc,
        SiKind::IPredHdc,
        SiKind::IPredVdc,
        SiKind::LfBs4,
    ];

    /// The [`SiId`] of this SI in the library built by
    /// [`h264_si_library`].
    #[must_use]
    pub fn id(self) -> SiId {
        SiId(self as u16)
    }

    /// Display name as used in the paper's Table 1.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SiKind::Sad => "SAD",
            SiKind::Satd => "SATD",
            SiKind::Dct => "(I)DCT",
            SiKind::Ht2x2 => "(I)HT 2x2",
            SiKind::Ht4x4 => "(I)HT 4x4",
            SiKind::Mc => "MC",
            SiKind::IPredHdc => "IPred HDC",
            SiKind::IPredVdc => "IPred VDC",
            SiKind::LfBs4 => "LF_BS4",
        }
    }

    /// Base-processor (trap) latency in cycles.
    #[must_use]
    pub fn software_latency(self) -> u32 {
        match self {
            SiKind::Sad => 850,
            SiKind::Satd => 2_200,
            SiKind::Dct => 450,
            SiKind::Ht2x2 => 260,
            SiKind::Ht4x4 => 700,
            SiKind::Mc => 10_000,
            SiKind::IPredHdc => 900,
            SiKind::IPredVdc => 850,
            SiKind::LfBs4 => 2_600,
        }
    }
}

const N: usize = 11;

fn vector(entries: &[(AtomKind, u16)]) -> Molecule {
    let mut counts = [0u16; N];
    for &(kind, c) in entries {
        counts[kind.index()] = c;
    }
    Molecule::from_counts(counts)
}

/// Builds the H.264 SI library of paper Table 1.
///
/// Per SI: atom types used and Molecule count match the paper exactly
/// (SAD 1/3, SATD 4/20, (I)DCT 3/12, (I)HT 2×2 1/2, (I)HT 4×4 2/7,
/// MC 3/11, IPred HDC 2/4, IPred VDC 1/3, LF_BS4 2/5).
///
/// # Panics
///
/// Never panics for the built-in tables; the builder validates them.
#[must_use]
pub fn h264_si_library() -> SiLibrary {
    let universe = AtomUniverse::from_types(AtomKind::ALL.iter().map(|&k| {
        AtomTypeInfo::new(k.name())
            .with_bitstream_bytes(k.bitstream_bytes())
            .with_slices(k.slices())
    }))
    .expect("atom names are unique");

    let mut b = SiLibraryBuilder::new(universe);
    use AtomKind::*;

    // SAD: the 16x16 block is reduced in 4-sample groups by SAV atoms.
    add_si(
        &mut b,
        SiKind::Sad,
        &[(&[(Sav, 1)], 300), (&[(Sav, 2)], 120), (&[(Sav, 4)], 18)],
    );

    // SATD over a 16x16 region (16 Hadamard tiles): QSub -> HTrans -> SAV
    // with Repack between stages; 20 molecules including deliberately
    // unbalanced mixes (the m4 phenomenon of Section 4.3).
    add_si(
        &mut b,
        SiKind::Satd,
        &[
            (&[(QSub, 1), (HTrans, 1), (Sav, 1), (Repack, 1)], 750),
            (&[(QSub, 1), (HTrans, 2), (Sav, 1), (Repack, 1)], 560),
            (&[(QSub, 2), (HTrans, 2), (Sav, 1), (Repack, 1)], 460),
            (&[(QSub, 2), (HTrans, 2), (Sav, 2), (Repack, 1)], 380),
            (&[(QSub, 2), (HTrans, 2), (Sav, 2), (Repack, 2)], 330),
            (&[(QSub, 2), (HTrans, 4), (Sav, 2), (Repack, 2)], 240),
            (&[(QSub, 4), (HTrans, 4), (Sav, 2), (Repack, 2)], 200),
            (&[(QSub, 4), (HTrans, 4), (Sav, 4), (Repack, 2)], 160),
            (&[(QSub, 4), (HTrans, 4), (Sav, 4), (Repack, 4)], 110),
            (&[(QSub, 4), (HTrans, 8), (Sav, 4), (Repack, 4)], 24),
            (&[(QSub, 1), (HTrans, 4), (Sav, 1), (Repack, 1)], 520),
            (&[(QSub, 2), (HTrans, 4), (Sav, 1), (Repack, 1)], 430),
            (&[(QSub, 1), (HTrans, 2), (Sav, 2), (Repack, 1)], 540),
            (&[(QSub, 2), (HTrans, 4), (Sav, 2), (Repack, 1)], 300),
            (&[(QSub, 2), (HTrans, 8), (Sav, 2), (Repack, 2)], 210),
            (&[(QSub, 4), (HTrans, 8), (Sav, 2), (Repack, 2)], 180),
            (&[(QSub, 1), (HTrans, 1), (Sav, 2), (Repack, 1)], 720),
            (&[(QSub, 2), (HTrans, 1), (Sav, 2), (Repack, 2)], 640),
            (&[(QSub, 1), (HTrans, 8), (Sav, 1), (Repack, 1)], 500),
            (&[(QSub, 2), (HTrans, 2), (Sav, 4), (Repack, 2)], 310),
        ],
    );

    // (I)DCT: forward + inverse integer transform with requantisation on
    // its own data path (ITrans butterflies + QuantRescale multipliers).
    add_si(
        &mut b,
        SiKind::Dct,
        &[
            (&[(ITrans, 1), (QuantRescale, 1), (Repack, 1)], 160),
            (&[(ITrans, 1), (QuantRescale, 1), (Repack, 2)], 150),
            (&[(ITrans, 1), (QuantRescale, 2), (Repack, 1)], 140),
            (&[(ITrans, 1), (QuantRescale, 2), (Repack, 2)], 130),
            (&[(ITrans, 2), (QuantRescale, 1), (Repack, 1)], 110),
            (&[(ITrans, 2), (QuantRescale, 1), (Repack, 2)], 100),
            (&[(ITrans, 2), (QuantRescale, 2), (Repack, 1)], 88),
            (&[(ITrans, 2), (QuantRescale, 2), (Repack, 2)], 70),
            (&[(ITrans, 4), (QuantRescale, 1), (Repack, 1)], 85),
            (&[(ITrans, 4), (QuantRescale, 1), (Repack, 2)], 78),
            (&[(ITrans, 4), (QuantRescale, 2), (Repack, 1)], 40),
            (&[(ITrans, 4), (QuantRescale, 2), (Repack, 2)], 14),
        ],
    );

    // (I)HT 2x2 chroma DC.
    add_si(
        &mut b,
        SiKind::Ht2x2,
        &[(&[(HTrans, 1)], 90), (&[(HTrans, 2)], 20)],
    );

    // (I)HT 4x4 luma DC.
    add_si(
        &mut b,
        SiKind::Ht4x4,
        &[
            (&[(HTrans, 1), (Repack, 1)], 260),
            (&[(HTrans, 2), (Repack, 1)], 190),
            (&[(HTrans, 2), (Repack, 2)], 150),
            (&[(HTrans, 4), (Repack, 1)], 140),
            (&[(HTrans, 4), (Repack, 2)], 80),
            (&[(HTrans, 8), (Repack, 2)], 56),
            (&[(HTrans, 8), (Repack, 4)], 16),
        ],
    );

    // MC: 6-tap PointFilter chains with BytePack and Clip3, Figure 3.
    add_si(
        &mut b,
        SiKind::Mc,
        &[
            (&[(PointFilter, 1), (BytePack, 1), (Clip3, 1)], 3_400),
            (&[(PointFilter, 2), (BytePack, 1), (Clip3, 1)], 2_400),
            (&[(PointFilter, 2), (BytePack, 2), (Clip3, 1)], 1_900),
            (&[(PointFilter, 2), (BytePack, 2), (Clip3, 2)], 1_700),
            (&[(PointFilter, 3), (BytePack, 2), (Clip3, 2)], 1_250),
            (&[(PointFilter, 4), (BytePack, 2), (Clip3, 2)], 950),
            (&[(PointFilter, 4), (BytePack, 4), (Clip3, 2)], 720),
            (&[(PointFilter, 4), (BytePack, 4), (Clip3, 4)], 600),
            (&[(PointFilter, 6), (BytePack, 4), (Clip3, 4)], 380),
            (&[(PointFilter, 8), (BytePack, 4), (Clip3, 4)], 170),
            (&[(PointFilter, 8), (BytePack, 8), (Clip3, 8)], 52),
        ],
    );

    // IPred HDC.
    add_si(
        &mut b,
        SiKind::IPredHdc,
        &[
            (&[(CollapseAdd, 1), (Repack, 1)], 320),
            (&[(CollapseAdd, 2), (Repack, 1)], 210),
            (&[(CollapseAdd, 2), (Repack, 2)], 150),
            (&[(CollapseAdd, 4), (Repack, 2)], 40),
        ],
    );

    // IPred VDC.
    add_si(
        &mut b,
        SiKind::IPredVdc,
        &[
            (&[(CollapseAdd, 1)], 300),
            (&[(CollapseAdd, 2)], 150),
            (&[(CollapseAdd, 4)], 35),
        ],
    );

    // LF_BS4.
    add_si(
        &mut b,
        SiKind::LfBs4,
        &[
            (&[(CondSub, 1), (Clip3, 1)], 900),
            (&[(CondSub, 2), (Clip3, 1)], 600),
            (&[(CondSub, 2), (Clip3, 2)], 420),
            (&[(CondSub, 4), (Clip3, 2)], 230),
            (&[(CondSub, 4), (Clip3, 4)], 60),
        ],
    );

    b.build().expect("library tables are valid")
}

fn add_si(
    b: &mut SiLibraryBuilder,
    kind: SiKind,
    table: &[(&[(AtomKind, u16)], u32)],
) {
    let mut si = b
        .special_instruction(kind.name(), kind.software_latency())
        .expect("unique name");
    for (entries, latency) in table {
        si.molecule(vector(entries), *latency)
            .expect("distinct molecules");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_matches_table_1() {
        let lib = h264_si_library();
        assert_eq!(lib.len(), 9);
        assert_eq!(lib.arity(), 11);
        let expected: [(SiKind, usize, usize); 9] = [
            (SiKind::Sad, 1, 3),
            (SiKind::Satd, 4, 20),
            (SiKind::Dct, 3, 12),
            (SiKind::Ht2x2, 1, 2),
            (SiKind::Ht4x4, 2, 7),
            (SiKind::Mc, 3, 11),
            (SiKind::IPredHdc, 2, 4),
            (SiKind::IPredVdc, 1, 3),
            (SiKind::LfBs4, 2, 5),
        ];
        for (kind, atom_types, molecules) in expected {
            let si = lib.si(kind.id()).expect("nine SIs");
            assert_eq!(si.name(), kind.name());
            assert_eq!(si.atom_type_count(), atom_types, "{}", kind.name());
            assert_eq!(si.molecule_count(), molecules, "{}", kind.name());
        }
    }

    #[test]
    fn average_bitstream_matches_paper() {
        let lib = h264_si_library();
        assert_eq!(lib.universe().average_bitstream_bytes(), 60_488);
    }

    #[test]
    fn average_atom_slices_match_table_3() {
        let total: u32 = AtomKind::ALL.iter().map(|k| k.slices()).sum();
        assert_eq!(total / 11, 421);
    }

    #[test]
    fn every_molecule_is_faster_than_software() {
        let lib = h264_si_library();
        for si in lib.iter() {
            for v in si.variants() {
                assert!(
                    v.latency < si.software_latency(),
                    "{}: molecule {} @{} not faster than software {}",
                    si.name(),
                    v.atoms,
                    v.latency,
                    si.software_latency()
                );
            }
        }
    }

    #[test]
    fn bigger_molecules_of_balanced_chains_are_faster() {
        let lib = h264_si_library();
        for kind in SiKind::ALL {
            let si = lib.si(kind.id()).expect("nine SIs");
            let smallest = si.smallest_variant();
            let largest = si.largest_variant();
            assert!(largest.latency < smallest.latency, "{}", kind.name());
        }
    }

    #[test]
    fn satd_has_wrong_mix_molecules() {
        // At least one SATD molecule pair: more atoms but slower (the m4
        // phenomenon of Section 4.3).
        let lib = h264_si_library();
        let si = lib.si(SiKind::Satd.id()).expect("satd");
        let vs = si.variants();
        let exists = vs.iter().any(|a| {
            vs.iter().any(|b| {
                a.atoms.total_atoms() > b.atoms.total_atoms() && a.latency > b.latency
            })
        });
        assert!(exists, "expected at least one unbalanced SATD molecule");
    }

    #[test]
    fn si_kind_ids_are_stable() {
        for (i, kind) in SiKind::ALL.iter().enumerate() {
            assert_eq!(kind.id().index(), i);
        }
        for (i, atom) in AtomKind::ALL.iter().enumerate() {
            assert_eq!(atom.index(), i);
        }
    }

    #[test]
    fn cross_hot_spot_sharing_is_partial() {
        // SATD (ME) and (I)HT 4x4 (EE) share the Hadamard data path, but
        // SATD and (I)DCT share only the Repack stage: hot-spot switches
        // must reload most of the fabric, which is what makes the Atom
        // loading order matter.
        let lib = h264_si_library();
        let sup = |kind: SiKind| {
            Molecule::supremum(
                lib.si(kind.id()).unwrap().variants().iter().map(|v| &v.atoms),
            )
            .unwrap()
        };
        let satd_ht = sup(SiKind::Satd).intersect(&sup(SiKind::Ht4x4));
        assert!(satd_ht.total_atoms() > 0, "Hadamard path is shared");
        let satd_dct = sup(SiKind::Satd).intersect(&sup(SiKind::Dct));
        assert_eq!(
            satd_dct.atom_type_count(),
            1,
            "SATD and DCT share only Repack: {satd_dct}"
        );
    }
}
