//! H.264 encoder substrate for the RISPP benchmarks.
//!
//! The paper evaluates its run-time system with an ITU-T H.264 video
//! encoder (CIF, 140 frames) whose processing migrates between three
//! computational hot spots per frame: **Motion Estimation** (ME),
//! **Encoding Engine** (EE) and **Loop Filter** (LF). This crate provides
//! everything needed to regenerate that workload without the authors'
//! encoder or input sequence:
//!
//! * [`kernels`] — real implementations of the accelerated kernels:
//!   SAD, SATD (Hadamard), the 4×4 integer (I)DCT with quantisation, the
//!   2×2/4×4 Hadamard DC transforms, 6-tap half-pel + quarter-pel motion
//!   compensation, intra DC/H/V prediction and the BS4 strong deblocking
//!   filter.
//! * [`SyntheticVideo`] — a seeded CIF sequence generator (moving objects,
//!   global pan, sensor noise) standing in for the paper's real video.
//! * [`Encoder`] — a macroblock pipeline (ME → mode decision → transform/
//!   quantisation → reconstruction → deblocking) that counts every Special
//!   Instruction invocation while actually encoding.
//! * [`h264_si_library`] — the Table-1 SI library: 9 SIs over 9 Atom
//!   types with exactly the paper's Molecule counts per SI.
//! * [`EncoderWorkload`] — conversion of an encoder run into a
//!   [`rispp_sim::Trace`] for the execution engine.
//!
//! # Examples
//!
//! ```
//! use rispp_h264::{h264_si_library, EncoderConfig, EncoderWorkload};
//!
//! let library = h264_si_library();
//! assert_eq!(library.len(), 9);
//! // A tiny 4-frame QCIF run (the benchmarks use 140 CIF frames).
//! let workload = EncoderWorkload::generate(&EncoderConfig::tiny(4));
//! assert_eq!(workload.trace().len(), 4 * 3); // ME, EE, LF per frame
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encoder;
mod frame;
pub mod kernels;
mod me;
mod si_library;
mod video;
mod workload;

pub use encoder::{Encoder, EncoderConfig, FrameReport, MbMode};
pub use frame::{Frame, Plane, MB_SIZE};
pub use me::{MotionEstimator, MotionVector, SearchOutcome};
pub use si_library::{h264_si_library, AtomKind, SiKind};
pub use video::SyntheticVideo;
pub use workload::{EncoderWorkload, HotSpot, WorkloadSummary};
