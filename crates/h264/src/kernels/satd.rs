//! Sum of Absolute Transformed Differences — the `SATD` Special
//! Instruction (Table 1: 4 Atom types `QSub`, `Transform`, `SAV`,
//! `Repack`; 20 Molecules).
//!
//! SATD applies a 4×4 Hadamard transform to the residual block and sums the
//! absolute transform coefficients; H.264 encoders use it for sub-pel
//! refinement and mode decision because it approximates the post-transform
//! bit cost better than SAD.

/// In-place 4-point Hadamard butterfly.
fn hadamard4(a: &mut [i32; 4]) {
    let s0 = a[0] + a[2];
    let s1 = a[1] + a[3];
    let d0 = a[0] - a[2];
    let d1 = a[1] - a[3];
    a[0] = s0 + s1;
    a[1] = s0 - s1;
    a[2] = d0 + d1;
    a[3] = d0 - d1;
}

/// 2-D 4×4 Hadamard transform of a residual block (row-major, in place).
pub fn hadamard_4x4(block: &mut [i32; 16]) {
    for r in 0..4 {
        let mut row = [block[4 * r], block[4 * r + 1], block[4 * r + 2], block[4 * r + 3]];
        hadamard4(&mut row);
        block[4 * r..4 * r + 4].copy_from_slice(&row);
    }
    for c in 0..4 {
        let mut col = [block[c], block[c + 4], block[c + 8], block[c + 12]];
        hadamard4(&mut col);
        block[c] = col[0];
        block[c + 4] = col[1];
        block[c + 8] = col[2];
        block[c + 12] = col[3];
    }
}

/// SATD of a 4×4 residual between blocks `a` and `b` (row-major, stride
/// `stride`), using the standard `(Σ|H(a−b)|)/2` normalisation.
#[must_use]
pub fn satd_4x4(a: &[u8], b: &[u8], stride: usize) -> u32 {
    let mut diff = [0i32; 16];
    for r in 0..4 {
        for c in 0..4 {
            diff[4 * r + c] = i32::from(a[r * stride + c]) - i32::from(b[r * stride + c]);
        }
    }
    hadamard_4x4(&mut diff);
    let sum: i32 = diff.iter().map(|&v| v.abs()).sum();
    (sum as u32).div_ceil(2)
}

/// SATD of an `n×n` region (n multiple of 4) as the sum of its 4×4 tiles.
///
/// # Panics
///
/// Panics (debug) if `n` is not a multiple of 4 or the slices are short.
#[must_use]
pub fn satd_nxn(a: &[u8], b: &[u8], n: usize) -> u32 {
    debug_assert_eq!(n % 4, 0);
    debug_assert!(a.len() >= n * n && b.len() >= n * n);
    let mut acc = 0u32;
    for ty in (0..n).step_by(4) {
        for tx in (0..n).step_by(4) {
            let off = ty * n + tx;
            acc += satd_4x4(&a[off..], &b[off..], n);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_blocks_have_zero_satd() {
        let a = [100u8; 16];
        assert_eq!(satd_4x4(&a, &a, 4), 0);
    }

    #[test]
    fn hadamard_is_involutive_up_to_scale() {
        // H(H(x)) = 16·x for the unnormalised 2-D transform.
        let original: [i32; 16] = core::array::from_fn(|i| i as i32 * 3 - 20);
        let mut block = original;
        hadamard_4x4(&mut block);
        hadamard_4x4(&mut block);
        for (o, t) in original.iter().zip(&block) {
            assert_eq!(*t, o * 16);
        }
    }

    #[test]
    fn dc_difference_transforms_to_single_coefficient() {
        // A constant residual of +4 has all energy in the DC coefficient:
        // |H| sums to 16·4 = 64, SATD = 32.
        let a = [60u8; 16];
        let b = [56u8; 16];
        assert_eq!(satd_4x4(&a, &b, 4), 32);
    }

    #[test]
    fn satd_upper_bounds_scaled_sad() {
        // Parseval-style sanity: SATD ≥ SAD/2 for random-ish content.
        let a: Vec<u8> = (0..16).map(|i| (i * 13 % 251) as u8).collect();
        let b: Vec<u8> = (0..16).map(|i| (i * 7 % 241) as u8).collect();
        let sad: u32 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| u32::from(x.abs_diff(y)))
            .sum();
        assert!(satd_4x4(&a, &b, 4) >= sad / 2);
    }

    #[test]
    fn tiled_satd_sums_tiles() {
        let a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        // Put a +8 constant difference in exactly one 4×4 tile.
        for r in 0..4 {
            for c in 0..4 {
                b[r * 8 + c] = 8;
            }
        }
        assert_eq!(satd_nxn(&a, &b, 8), satd_4x4(&a, &b, 8));
        assert_eq!(satd_nxn(&a, &b, 8), 64);
    }

    #[test]
    fn satd_is_symmetric() {
        let a: Vec<u8> = (0..16).map(|i| (i * 31 % 256) as u8).collect();
        let b: Vec<u8> = (0..16).map(|i| (255 - i * 9 % 256) as u8).collect();
        assert_eq!(satd_4x4(&a, &b, 4), satd_4x4(&b, &a, 4));
    }
}
