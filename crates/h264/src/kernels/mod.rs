//! The computational kernels the RISPP Special Instructions accelerate.
//!
//! Each module implements one SI family of paper Table 1 in plain Rust;
//! the encoder invokes these functions while counting SI executions, so the
//! workload traces are backed by real kernel mathematics on real (synthetic)
//! pixels rather than fabricated counts.

pub mod dct;
pub mod entropy;
pub mod deblock;
pub mod hadamard;
pub mod intra;
pub mod mc;
pub mod sad;
pub mod satd;
