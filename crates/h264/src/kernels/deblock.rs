//! In-loop deblocking, boundary strength 4 — the `LF_BS4` Special
//! Instruction (Table 1: 2 Atom types `CondSub`, `Clip3`; 5 Molecules).
//!
//! BS4 is the strong filter applied to intra-macroblock edges. The
//! conditional strong/weak choice per line (`|p0−q0| < (α>>2)+2` etc.) is
//! the `CondSub` Atom; the output clamping is `Clip3`.

use crate::frame::Plane;

/// Alpha/beta thresholds for a (simplified, QP-indexed) filter decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thresholds {
    /// Edge-activity threshold α.
    pub alpha: i32,
    /// Side-activity threshold β.
    pub beta: i32,
}

impl Thresholds {
    /// Standard-shaped thresholds for quantisation parameter `qp`.
    #[must_use]
    pub fn for_qp(qp: u8) -> Self {
        // Shapes follow Table 8-16 of the standard closely enough for
        // workload purposes: exponential in QP, zero below QP 16.
        let q = i32::from(qp.min(51));
        let alpha = if q < 16 { 0 } else { ((q - 12) * (q - 12)) / 8 };
        let beta = if q < 16 { 0 } else { (q - 10) / 2 };
        Thresholds { alpha, beta }
    }
}

/// Filters one line of samples across an edge with boundary strength 4.
///
/// `p` holds the four samples left/above of the edge (`p[0]` nearest), `q`
/// the four samples right/below. Returns the filtered `(p0..p2, q0..q2)`
/// samples, or `None` when the filter decision rejects the line.
#[must_use]
pub fn filter_line_bs4(p: &[u8; 4], q: &[u8; 4], t: Thresholds) -> Option<([u8; 3], [u8; 3])> {
    let pi: Vec<i32> = p.iter().map(|&v| i32::from(v)).collect();
    let qi: Vec<i32> = q.iter().map(|&v| i32::from(v)).collect();
    // Filter-on decision (CondSub atom).
    if (pi[0] - qi[0]).abs() >= t.alpha
        || (pi[1] - pi[0]).abs() >= t.beta
        || (qi[1] - qi[0]).abs() >= t.beta
    {
        return None;
    }
    let clip = |x: i32| x.clamp(0, 255) as u8;
    let strong_p = (pi[2] - pi[0]).abs() < t.beta && (pi[0] - qi[0]).abs() < (t.alpha >> 2) + 2;
    let strong_q = (qi[2] - qi[0]).abs() < t.beta && (pi[0] - qi[0]).abs() < (t.alpha >> 2) + 2;
    let new_p = if strong_p {
        [
            clip((pi[2] + 2 * pi[1] + 2 * pi[0] + 2 * qi[0] + qi[1] + 4) >> 3),
            clip((pi[2] + pi[1] + pi[0] + qi[0] + 2) >> 2),
            clip((2 * pi[3] + 3 * pi[2] + pi[1] + pi[0] + qi[0] + 4) >> 3),
        ]
    } else {
        [clip((2 * pi[1] + pi[0] + qi[1] + 2) >> 2), p[1], p[2]]
    };
    let new_q = if strong_q {
        [
            clip((qi[2] + 2 * qi[1] + 2 * qi[0] + 2 * pi[0] + pi[1] + 4) >> 3),
            clip((qi[2] + qi[1] + qi[0] + pi[0] + 2) >> 2),
            clip((2 * qi[3] + 3 * qi[2] + qi[1] + qi[0] + pi[0] + 4) >> 3),
        ]
    } else {
        [clip((2 * qi[1] + qi[0] + pi[1] + 2) >> 2), q[1], q[2]]
    };
    Some((new_p, new_q))
}

/// Applies the BS4 filter to a full 16-sample vertical edge at column `x`
/// (filtering across columns `x-4..x+4`) for the MB rows `y..y+16`.
/// Returns the number of lines actually filtered.
pub fn filter_vertical_edge_bs4(plane: &mut Plane, x: usize, y: usize, t: Thresholds) -> u32 {
    if x < 4 || x + 4 > plane.width() {
        return 0;
    }
    let mut filtered = 0;
    for row in 0..16 {
        let yy = y + row;
        if yy >= plane.height() {
            break;
        }
        let p = [
            plane.sample(x - 1, yy),
            plane.sample(x - 2, yy),
            plane.sample(x - 3, yy),
            plane.sample(x - 4, yy),
        ];
        let q = [
            plane.sample(x, yy),
            plane.sample(x + 1, yy),
            plane.sample(x + 2, yy),
            plane.sample(x + 3, yy),
        ];
        if let Some((np, nq)) = filter_line_bs4(&p, &q, t) {
            for (i, &v) in np.iter().enumerate() {
                plane.set_sample(x - 1 - i, yy, v);
            }
            for (i, &v) in nq.iter().enumerate() {
                plane.set_sample(x + i, yy, v);
            }
            filtered += 1;
        }
    }
    filtered
}

/// Applies the BS4 filter to a full 16-sample horizontal edge at row `y`
/// for the MB columns `x..x+16`. Returns the number of lines filtered.
pub fn filter_horizontal_edge_bs4(plane: &mut Plane, x: usize, y: usize, t: Thresholds) -> u32 {
    if y < 4 || y + 4 > plane.height() {
        return 0;
    }
    let mut filtered = 0;
    for col in 0..16 {
        let xx = x + col;
        if xx >= plane.width() {
            break;
        }
        let p = [
            plane.sample(xx, y - 1),
            plane.sample(xx, y - 2),
            plane.sample(xx, y - 3),
            plane.sample(xx, y - 4),
        ];
        let q = [
            plane.sample(xx, y),
            plane.sample(xx, y + 1),
            plane.sample(xx, y + 2),
            plane.sample(xx, y + 3),
        ];
        if let Some((np, nq)) = filter_line_bs4(&p, &q, t) {
            for (i, &v) in np.iter().enumerate() {
                plane.set_sample(xx, y - 1 - i, v);
            }
            for (i, &v) in nq.iter().enumerate() {
                plane.set_sample(xx, y + i, v);
            }
            filtered += 1;
        }
    }
    filtered
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Thresholds = Thresholds {
        alpha: 40,
        beta: 8,
    };

    #[test]
    fn flat_edge_stays_flat() {
        let p = [100u8; 4];
        let q = [100u8; 4];
        let (np, nq) = filter_line_bs4(&p, &q, T).expect("flat edge passes decision");
        assert_eq!(np, [100u8; 3]);
        assert_eq!(nq, [100u8; 3]);
    }

    #[test]
    fn strong_discontinuity_is_not_filtered() {
        // |p0 - q0| ≥ α: a real image edge, must be preserved.
        let p = [200u8, 200, 200, 200];
        let q = [100u8, 100, 100, 100];
        assert!(filter_line_bs4(&p, &q, T).is_none());
    }

    #[test]
    fn small_blocking_step_is_smoothed() {
        let p = [104u8, 104, 104, 104];
        let q = [96u8, 96, 96, 96];
        let (np, nq) = filter_line_bs4(&p, &q, T).expect("blocking artefact passes");
        // The step across the edge must shrink.
        let before = i32::from(p[0]) - i32::from(q[0]);
        let after = i32::from(np[0]) - i32::from(nq[0]);
        assert!(after.abs() < before.abs(), "{before} -> {after}");
    }

    #[test]
    fn vertical_edge_filter_counts_lines() {
        let mut plane = Plane::filled(32, 32, 100);
        // Create a mild step at column 16.
        for y in 0..32 {
            for x in 16..32 {
                plane.set_sample(x, y, 94);
            }
        }
        let n = filter_vertical_edge_bs4(&mut plane, 16, 0, T);
        assert_eq!(n, 16);
        // Edge is smoothed.
        assert!(plane.sample(15, 0) < 100);
        assert!(plane.sample(16, 0) > 94);
    }

    #[test]
    fn horizontal_edge_filter_counts_lines() {
        let mut plane = Plane::filled(32, 32, 100);
        for y in 16..32 {
            for x in 0..32 {
                plane.set_sample(x, y, 106);
            }
        }
        let n = filter_horizontal_edge_bs4(&mut plane, 0, 16, T);
        assert_eq!(n, 16);
    }

    #[test]
    fn qp_thresholds_are_monotone() {
        let a = Thresholds::for_qp(20);
        let b = Thresholds::for_qp(35);
        assert!(b.alpha > a.alpha);
        assert!(b.beta >= a.beta);
        assert_eq!(Thresholds::for_qp(10).alpha, 0);
    }

    #[test]
    fn border_edges_are_skipped() {
        let mut plane = Plane::filled(16, 16, 100);
        assert_eq!(filter_vertical_edge_bs4(&mut plane, 0, 0, T), 0);
        assert_eq!(filter_horizontal_edge_bs4(&mut plane, 0, 0, T), 0);
    }
}
