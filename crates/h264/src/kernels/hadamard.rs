//! Secondary Hadamard transforms of the DC coefficients — the `(I)HT 4×4`
//! (luma DC, intra 16×16 mode) and `(I)HT 2×2` (chroma DC) Special
//! Instructions (Table 1: 7 and 2 Molecules).

use super::satd::hadamard_4x4;

/// Forward 4×4 Hadamard of the 16 luma DC coefficients, with the
/// standard's `(x)/2` scaling.
#[must_use]
pub fn forward_ht4x4(dc: &[i32; 16]) -> [i32; 16] {
    let mut b = *dc;
    hadamard_4x4(&mut b);
    for v in &mut b {
        *v = (*v + 1) >> 1;
    }
    b
}

/// Inverse 4×4 Hadamard of the luma DC coefficients (unscaled butterfly;
/// rescaling happens in the dequantisation step of the caller).
#[must_use]
pub fn inverse_ht4x4(dc: &[i32; 16]) -> [i32; 16] {
    let mut b = *dc;
    hadamard_4x4(&mut b);
    b
}

/// Forward 2×2 Hadamard of the 4 chroma DC coefficients
/// `[dc00, dc01, dc10, dc11]`.
#[must_use]
pub fn forward_ht2x2(dc: &[i32; 4]) -> [i32; 4] {
    [
        dc[0] + dc[1] + dc[2] + dc[3],
        dc[0] - dc[1] + dc[2] - dc[3],
        dc[0] + dc[1] - dc[2] - dc[3],
        dc[0] - dc[1] - dc[2] + dc[3],
    ]
}

/// Inverse 2×2 Hadamard (self-inverse up to the factor 4).
#[must_use]
pub fn inverse_ht2x2(dc: &[i32; 4]) -> [i32; 4] {
    forward_ht2x2(dc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ht2x2_roundtrip_scales_by_four() {
        let x = [7i32, -3, 12, 0];
        let y = inverse_ht2x2(&forward_ht2x2(&x));
        for (a, b) in x.iter().zip(&y) {
            assert_eq!(*b, a * 4);
        }
    }

    #[test]
    fn ht2x2_of_constant_is_pure_dc() {
        let y = forward_ht2x2(&[5, 5, 5, 5]);
        assert_eq!(y, [20, 0, 0, 0]);
    }

    #[test]
    fn ht4x4_constant_input_concentrates_energy() {
        let y = forward_ht4x4(&[3i32; 16]);
        assert_eq!(y[0], 24); // 16·3 = 48, halved with rounding.
        assert!(y[1..].iter().all(|&v| v == 0));
    }

    #[test]
    fn ht4x4_forward_then_inverse_scales_linearly() {
        let x: [i32; 16] = core::array::from_fn(|i| i as i32 * 2 - 16);
        // fwd (with /2) then inverse = 8× the input (16/2).
        let y = inverse_ht4x4(&forward_ht4x4(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((b - a * 8).abs() <= 8, "{a} -> {b}");
        }
    }
}
