//! The H.264 4×4 integer transform with quantisation — the `(I)DCT`
//! Special Instruction (Table 1: 3 Atom types, 12 Molecules).
//!
//! Forward: `W = C·X·Cᵀ` with the integer core matrix
//! `[[1,1,1,1],[2,1,-1,-2],[1,-1,-1,1],[1,-2,2,-1]]`; quantisation and
//! rescaling follow the standard's V/M tables (simplified to the QP%6
//! structure with the post-scaling folded in, which is bit-faithful for the
//! round trip used here).

/// Forward 4×4 integer core transform (in place, row-major).
pub fn forward_4x4(block: &mut [i32; 16]) {
    for r in 0..4 {
        let o = 4 * r;
        let (a, b, c, d) = (block[o], block[o + 1], block[o + 2], block[o + 3]);
        let s0 = a + d;
        let s1 = b + c;
        let s2 = b - c;
        let s3 = a - d;
        block[o] = s0 + s1;
        block[o + 1] = 2 * s3 + s2;
        block[o + 2] = s0 - s1;
        block[o + 3] = s3 - 2 * s2;
    }
    for c in 0..4 {
        let (a, b, x, d) = (block[c], block[c + 4], block[c + 8], block[c + 12]);
        let s0 = a + d;
        let s1 = b + x;
        let s2 = b - x;
        let s3 = a - d;
        block[c] = s0 + s1;
        block[c + 4] = 2 * s3 + s2;
        block[c + 8] = s0 - s1;
        block[c + 12] = s3 - 2 * s2;
    }
}

/// Inverse 4×4 integer core transform (in place), including the final
/// `(x + 32) >> 6` rounding of the standard.
pub fn inverse_4x4(block: &mut [i32; 16]) {
    for r in 0..4 {
        let o = 4 * r;
        let (a, b, c, d) = (block[o], block[o + 1], block[o + 2], block[o + 3]);
        let e0 = a + c;
        let e1 = a - c;
        let e2 = (b >> 1) - d;
        let e3 = b + (d >> 1);
        block[o] = e0 + e3;
        block[o + 1] = e1 + e2;
        block[o + 2] = e1 - e2;
        block[o + 3] = e0 - e3;
    }
    for c in 0..4 {
        let (a, b, x, d) = (block[c], block[c + 4], block[c + 8], block[c + 12]);
        let e0 = a + x;
        let e1 = a - x;
        let e2 = (b >> 1) - d;
        let e3 = b + (d >> 1);
        block[c] = (e0 + e3 + 32) >> 6;
        block[c + 4] = (e1 + e2 + 32) >> 6;
        block[c + 8] = (e1 - e2 + 32) >> 6;
        block[c + 12] = (e0 - e3 + 32) >> 6;
    }
}

/// H.264 quantisation multiplier table `MF` for QP%6 (positions 0: DC-ish,
/// 1: off-diagonal, 2: corner), scaled for the forward path.
const MF: [[i32; 3]; 6] = [
    [13107, 5243, 8066],
    [11916, 4660, 7490],
    [10082, 4194, 6554],
    [9362, 3647, 5825],
    [8192, 3355, 5243],
    [7282, 2893, 4559],
];

/// Rescale table `V` for QP%6.
const V: [[i32; 3]; 6] = [
    [10, 16, 13],
    [11, 18, 14],
    [13, 20, 16],
    [14, 23, 18],
    [16, 25, 20],
    [18, 29, 23],
];

fn position_class(r: usize, c: usize) -> usize {
    match (r % 2, c % 2) {
        (0, 0) => 0,
        (1, 1) => 1,
        _ => 2,
    }
}

/// Quantises transform coefficients at quantisation parameter `qp`
/// (0..=51), in place.
pub fn quantise(block: &mut [i32; 16], qp: u8) {
    let qp = usize::from(qp.min(51));
    let shift = 15 + qp / 6;
    let round = (1i64 << shift) / 3;
    for r in 0..4 {
        for c in 0..4 {
            let i = 4 * r + c;
            let m = i64::from(MF[qp % 6][position_class(r, c)]);
            let v = i64::from(block[i]);
            let q = (v.abs() * m + round) >> shift;
            block[i] = (if v < 0 { -q } else { q }) as i32;
        }
    }
}

/// Rescales (dequantises) coefficients at `qp`, in place.
pub fn dequantise(block: &mut [i32; 16], qp: u8) {
    let qp = usize::from(qp.min(51));
    let scale = qp / 6;
    for r in 0..4 {
        for c in 0..4 {
            let i = 4 * r + c;
            block[i] = (block[i] * V[qp % 6][position_class(r, c)]) << scale;
        }
    }
}

/// Forward transform + quantisation: the coefficients an entropy coder
/// would see.
#[must_use]
pub fn forward_quantised(residual: &[i32; 16], qp: u8) -> [i32; 16] {
    let mut block = *residual;
    forward_4x4(&mut block);
    quantise(&mut block, qp);
    block
}

/// Rescales and inverse-transforms quantised coefficients back into a
/// reconstructed residual.
#[must_use]
pub fn reconstruct_residual(quantised: &[i32; 16], qp: u8) -> [i32; 16] {
    let mut block = *quantised;
    dequantise(&mut block, qp);
    inverse_4x4(&mut block);
    block
}

/// Full residual round trip at `qp`: forward transform, quantise,
/// dequantise, inverse transform. Returns the reconstructed residual.
#[must_use]
pub fn transform_roundtrip(residual: &[i32; 16], qp: u8) -> [i32; 16] {
    reconstruct_residual(&forward_quantised(residual, qp), qp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_of_zero_is_zero() {
        let mut b = [0i32; 16];
        forward_4x4(&mut b);
        assert_eq!(b, [0i32; 16]);
        inverse_4x4(&mut b);
        assert_eq!(b, [0i32; 16]);
    }

    #[test]
    fn dc_energy_concentrates() {
        let mut b = [10i32; 16];
        forward_4x4(&mut b);
        assert_eq!(b[0], 160); // 16 × 10
        assert!(b[1..].iter().all(|&v| v == 0));
    }

    #[test]
    fn forward_inverse_roundtrip_without_quantisation() {
        // C⁻¹·C with the standard's scaling gives identity after >>6 when
        // the inverse's built-in rounding is used on 64×-scaled inputs: use
        // the full pipeline at QP 0 instead, which must be near-lossless.
        let residual: [i32; 16] = core::array::from_fn(|i| (i as i32 % 7) - 3);
        let recon = transform_roundtrip(&residual, 0);
        for (a, b) in residual.iter().zip(&recon) {
            assert!((a - b).abs() <= 1, "qp0 roundtrip error: {a} vs {b}");
        }
    }

    #[test]
    fn higher_qp_is_coarser() {
        let residual: [i32; 16] = core::array::from_fn(|i| (i as i32 * 5 % 23) - 11);
        let err = |qp: u8| -> i64 {
            let recon = transform_roundtrip(&residual, qp);
            residual
                .iter()
                .zip(&recon)
                .map(|(a, b)| i64::from((a - b).abs()))
                .sum()
        };
        assert!(err(40) >= err(20));
        assert!(err(20) >= err(4));
    }

    #[test]
    fn quantisation_zeroes_small_coefficients_at_high_qp() {
        let mut b = [1i32; 16];
        forward_4x4(&mut b);
        quantise(&mut b, 51);
        assert!(b[1..].iter().all(|&v| v == 0));
    }

    #[test]
    fn split_pipeline_equals_roundtrip() {
        let residual: [i32; 16] = core::array::from_fn(|i| (i as i32 * 7 % 31) - 15);
        for qp in [0u8, 16, 28, 40, 51] {
            let q = forward_quantised(&residual, qp);
            assert_eq!(reconstruct_residual(&q, qp), transform_roundtrip(&residual, qp));
        }
    }

    #[test]
    fn quantisation_preserves_sign() {
        let mut b: [i32; 16] = core::array::from_fn(|i| if i % 2 == 0 { 500 } else { -500 });
        quantise(&mut b, 10);
        for (i, &v) in b.iter().enumerate() {
            if i % 2 == 0 {
                assert!(v > 0);
            } else {
                assert!(v < 0);
            }
        }
    }
}
