//! Zig-zag scanning and a CAVLC-flavoured bit-cost estimate for quantised
//! 4×4 blocks.
//!
//! Entropy coding runs on the base processor in the paper's encoder (it is
//! part of the EE hot-spot prologue, not an SI), but its *cost model*
//! makes the encoder's rate statistics meaningful: the workload summary
//! reports estimated bits per frame alongside PSNR.

/// The H.264 zig-zag scan order for 4×4 blocks.
pub const ZIGZAG_4X4: [usize; 16] = [0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15];

/// Reorders a row-major 4×4 coefficient block into zig-zag scan order.
#[must_use]
pub fn zigzag_scan(block: &[i32; 16]) -> [i32; 16] {
    core::array::from_fn(|i| block[ZIGZAG_4X4[i]])
}

/// Inverse of [`zigzag_scan`].
#[must_use]
pub fn zigzag_unscan(scanned: &[i32; 16]) -> [i32; 16] {
    let mut out = [0i32; 16];
    for (i, &v) in scanned.iter().enumerate() {
        out[ZIGZAG_4X4[i]] = v;
    }
    out
}

/// Run-level representation of a zig-zag scanned block: `(run, level)`
/// pairs of zero-run lengths before each non-zero coefficient.
#[must_use]
pub fn run_level(scanned: &[i32; 16]) -> Vec<(u8, i32)> {
    let mut out = Vec::new();
    let mut run = 0u8;
    for &v in scanned {
        if v == 0 {
            run += 1;
        } else {
            out.push((run, v));
            run = 0;
        }
    }
    out
}

/// CAVLC-flavoured bit estimate for one quantised 4×4 block: a fixed cost
/// for the coefficient-count token plus per-coefficient costs growing
/// logarithmically with magnitude and linearly with run length.
#[must_use]
pub fn estimate_block_bits(block: &[i32; 16]) -> u32 {
    let scanned = zigzag_scan(block);
    let pairs = run_level(&scanned);
    if pairs.is_empty() {
        return 1; // coded_block_flag only
    }
    let mut bits = 4 + pairs.len() as u32; // totalcoeff + trailing ones
    for (run, level) in pairs {
        let magnitude = level.unsigned_abs();
        bits += 33 - magnitude.leading_zeros(); // |level| suffix
        bits += 1; // sign
        bits += u32::from(run.min(6)) / 2 + 1; // run_before
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 16];
        for &i in &ZIGZAG_4X4 {
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn scan_unscan_roundtrips() {
        let block: [i32; 16] = core::array::from_fn(|i| i as i32 * 3 - 7);
        assert_eq!(zigzag_unscan(&zigzag_scan(&block)), block);
    }

    #[test]
    fn zigzag_orders_low_frequencies_first() {
        // A DC-only block has its single coefficient at scan position 0.
        let mut block = [0i32; 16];
        block[0] = 9;
        let scanned = zigzag_scan(&block);
        assert_eq!(scanned[0], 9);
        assert!(scanned[1..].iter().all(|&v| v == 0));
    }

    #[test]
    fn run_level_counts_zero_runs() {
        let mut block = [0i32; 16];
        block[0] = 5;
        block[4] = -2; // zig-zag position 2
        let pairs = run_level(&zigzag_scan(&block));
        assert_eq!(pairs, vec![(0, 5), (1, -2)]);
    }

    #[test]
    fn empty_block_costs_one_bit() {
        assert_eq!(estimate_block_bits(&[0i32; 16]), 1);
    }

    #[test]
    fn more_energy_costs_more_bits() {
        let small: [i32; 16] = core::array::from_fn(|i| i32::from(i == 0));
        let big: [i32; 16] = core::array::from_fn(|i| (16 - i as i32) * 4);
        assert!(estimate_block_bits(&big) > estimate_block_bits(&small));
    }

    #[test]
    fn bits_monotone_in_magnitude() {
        let mut a = [0i32; 16];
        let mut b = [0i32; 16];
        a[0] = 2;
        b[0] = 200;
        assert!(estimate_block_bits(&b) > estimate_block_bits(&a));
    }
}
