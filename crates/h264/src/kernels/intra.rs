//! Intra 16×16 prediction — the `IPred HDC` (horizontal + DC) and
//! `IPred VDC` (vertical + DC) Special Instructions (Table 1: 4 and 3
//! Molecules, using the `CollapseAdd` and `Repack` Atom types).

use crate::frame::Plane;

/// Neighbour availability for a macroblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Neighbours {
    /// The row above the MB is inside the frame.
    pub above: bool,
    /// The column left of the MB is inside the frame.
    pub left: bool,
}

/// DC prediction value of the 16×16 MB at `(x, y)` from the reconstructed
/// plane, following the standard's availability rules (mean of available
/// neighbours; 128 when none).
#[must_use]
pub fn predict_dc_16x16(recon: &Plane, x: usize, y: usize, n: Neighbours) -> u8 {
    let mut sum = 0u32;
    let mut count = 0u32;
    if n.above && y > 0 {
        for col in 0..16 {
            sum += u32::from(recon.sample(x + col, y - 1));
        }
        count += 16;
    }
    if n.left && x > 0 {
        for row in 0..16 {
            sum += u32::from(recon.sample(x - 1, y + row));
        }
        count += 16;
    }
    (sum + count / 2)
        .checked_div(count)
        .map_or(128, |avg| avg as u8)
}

/// Horizontal prediction: each row is filled with the left neighbour
/// sample. Falls back to DC when the left column is unavailable.
pub fn predict_h_16x16(
    recon: &Plane,
    x: usize,
    y: usize,
    n: Neighbours,
    out: &mut [u8; 256],
) {
    if !(n.left && x > 0) {
        out.fill(predict_dc_16x16(recon, x, y, n));
        return;
    }
    for row in 0..16 {
        let v = recon.sample(x - 1, y + row);
        out[row * 16..row * 16 + 16].fill(v);
    }
}

/// Vertical prediction: each column is filled with the sample above.
/// Falls back to DC when the row above is unavailable.
pub fn predict_v_16x16(
    recon: &Plane,
    x: usize,
    y: usize,
    n: Neighbours,
    out: &mut [u8; 256],
) {
    if !(n.above && y > 0) {
        out.fill(predict_dc_16x16(recon, x, y, n));
        return;
    }
    for col in 0..16 {
        let v = recon.sample(x + col, y - 1);
        for row in 0..16 {
            out[row * 16 + col] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_with_borders() -> Plane {
        let mut p = Plane::filled(48, 48, 0);
        for i in 0..48 {
            p.set_sample(i, 15, 200); // row above MB at (16,16)
            p.set_sample(15, i, 100); // column left of MB at (16,16)
        }
        p
    }

    const BOTH: Neighbours = Neighbours {
        above: true,
        left: true,
    };

    #[test]
    fn dc_is_mean_of_neighbours() {
        let p = plane_with_borders();
        // 16 samples of 200 + 16 of 100 -> mean 150.
        assert_eq!(predict_dc_16x16(&p, 16, 16, BOTH), 150);
    }

    #[test]
    fn dc_without_neighbours_is_128() {
        let p = plane_with_borders();
        let none = Neighbours {
            above: false,
            left: false,
        };
        assert_eq!(predict_dc_16x16(&p, 16, 16, none), 128);
        // Top-left MB has no in-frame neighbours regardless of flags.
        assert_eq!(predict_dc_16x16(&p, 0, 0, BOTH), 128);
    }

    #[test]
    fn horizontal_prediction_propagates_left_column() {
        let p = plane_with_borders();
        let mut out = [0u8; 256];
        predict_h_16x16(&p, 16, 16, BOTH, &mut out);
        assert!(out.iter().all(|&v| v == 100));
    }

    #[test]
    fn vertical_prediction_propagates_top_row() {
        let p = plane_with_borders();
        let mut out = [0u8; 256];
        predict_v_16x16(&p, 16, 16, BOTH, &mut out);
        assert!(out.iter().all(|&v| v == 200));
    }

    #[test]
    fn unavailable_neighbours_fall_back_to_dc() {
        let p = plane_with_borders();
        let mut out = [0u8; 256];
        predict_h_16x16(
            &p,
            16,
            16,
            Neighbours {
                above: true,
                left: false,
            },
            &mut out,
        );
        // DC over the top row only: 200.
        assert!(out.iter().all(|&v| v == 200));
    }

    #[test]
    fn dc_only_left() {
        let p = plane_with_borders();
        let left_only = Neighbours {
            above: false,
            left: true,
        };
        assert_eq!(predict_dc_16x16(&p, 16, 16, left_only), 100);
    }
}
