//! Quarter-pel luma motion compensation — the `MC` Special Instruction
//! (Table 1: 3 Atom types `PointFilter`, `BytePack`, `Clip3`; 11
//! Molecules; composition shown in paper Figure 3).
//!
//! Half-pel samples come from the standard 6-tap filter
//! `(1, −5, 20, 20, −5, 1)` (the `PointFilter` Atom); results are clipped
//! to 8 bits (`Clip3`) and packed back to bytes (`BytePack`); quarter-pel
//! samples average the neighbouring integer/half-pel samples.

use crate::frame::Plane;

/// The H.264 6-tap half-pel interpolation kernel — one application of the
/// `PointFilter` Atom of Figure 3.
#[must_use]
pub fn point_filter(a: i32, b: i32, c: i32, d: i32, e: i32, f: i32) -> i32 {
    a - 5 * b + 20 * c + 20 * d - 5 * e + f
}

/// The `Clip3` Atom: clamps `x` into `[lo, hi]`.
#[must_use]
pub fn clip3(lo: i32, hi: i32, x: i32) -> i32 {
    x.clamp(lo, hi)
}

/// Rounds and clips a 6-tap filter output to an 8-bit sample — the
/// `Clip3` + `BytePack` tail of the Figure 3 data path.
#[must_use]
pub fn pack_half_pel(filtered: i32) -> u8 {
    clip3(0, 255, (filtered + 16) >> 5) as u8
}

/// Horizontal half-pel sample at integer position `(x, y)` (between
/// `(x, y)` and `(x+1, y)`).
#[must_use]
pub fn half_pel_h(plane: &Plane, x: isize, y: isize) -> u8 {
    let s = |dx: isize| i32::from(plane.sample_clamped(x + dx, y));
    pack_half_pel(point_filter(s(-2), s(-1), s(0), s(1), s(2), s(3)))
}

/// Vertical half-pel sample at integer position `(x, y)`.
#[must_use]
pub fn half_pel_v(plane: &Plane, x: isize, y: isize) -> u8 {
    let s = |dy: isize| i32::from(plane.sample_clamped(x, y + dy));
    pack_half_pel(point_filter(s(-2), s(-1), s(0), s(1), s(2), s(3)))
}

/// Diagonal half-pel sample: vertical 6-tap over horizontal 6-tap
/// intermediates (20-bit intermediate precision as in the standard).
#[must_use]
pub fn half_pel_hv(plane: &Plane, x: isize, y: isize) -> u8 {
    let h = |dy: isize| {
        let s = |dx: isize| i32::from(plane.sample_clamped(x + dx, y + dy));
        point_filter(s(-2), s(-1), s(0), s(1), s(2), s(3))
    };
    let v = point_filter(h(-2), h(-1), h(0), h(1), h(2), h(3));
    clip3(0, 255, (v + 512) >> 10) as u8
}

/// Samples the luma plane at quarter-pel position
/// `(4·x_int + frac_x, 4·y_int + frac_y)` with `frac ∈ [0, 3]`.
#[must_use]
pub fn sample_quarter_pel(plane: &Plane, x4: isize, y4: isize) -> u8 {
    let xi = x4.div_euclid(4);
    let yi = y4.div_euclid(4);
    let fx = x4.rem_euclid(4);
    let fy = y4.rem_euclid(4);
    let full = |dx: isize, dy: isize| plane.sample_clamped(xi + dx, yi + dy);
    let avg = |a: u8, b: u8| ((u16::from(a) + u16::from(b) + 1) >> 1) as u8;
    match (fx, fy) {
        (0, 0) => full(0, 0),
        (2, 0) => half_pel_h(plane, xi, yi),
        (0, 2) => half_pel_v(plane, xi, yi),
        (2, 2) => half_pel_hv(plane, xi, yi),
        (1, 0) => avg(full(0, 0), half_pel_h(plane, xi, yi)),
        (3, 0) => avg(half_pel_h(plane, xi, yi), full(1, 0)),
        (0, 1) => avg(full(0, 0), half_pel_v(plane, xi, yi)),
        (0, 3) => avg(half_pel_v(plane, xi, yi), full(0, 1)),
        (1, 2) => avg(half_pel_v(plane, xi, yi), half_pel_hv(plane, xi, yi)),
        (3, 2) => avg(half_pel_hv(plane, xi, yi), half_pel_v(plane, xi + 1, yi)),
        (2, 1) => avg(half_pel_h(plane, xi, yi), half_pel_hv(plane, xi, yi)),
        (2, 3) => avg(half_pel_hv(plane, xi, yi), half_pel_h(plane, xi, yi + 1)),
        (1, 1) => avg(half_pel_h(plane, xi, yi), half_pel_v(plane, xi, yi)),
        (3, 1) => avg(half_pel_h(plane, xi, yi), half_pel_v(plane, xi + 1, yi)),
        (1, 3) => avg(half_pel_h(plane, xi, yi + 1), half_pel_v(plane, xi, yi)),
        (3, 3) => avg(half_pel_h(plane, xi, yi + 1), half_pel_v(plane, xi + 1, yi)),
        _ => unreachable!("fractions are in [0,3]"),
    }
}

/// Motion-compensates a 16×16 luma block: reads `reference` at the
/// quarter-pel motion vector `(mvx4, mvy4)` (quarter-pel units) for the
/// macroblock at `(mb_x, mb_y)` and writes the prediction into `out`.
pub fn compensate_16x16(
    reference: &Plane,
    mb_x: usize,
    mb_y: usize,
    mvx4: isize,
    mvy4: isize,
    out: &mut [u8; 256],
) {
    for row in 0..16 {
        for col in 0..16 {
            let x4 = 4 * (mb_x as isize + col as isize) + mvx4;
            let y4 = 4 * (mb_y as isize + row as isize) + mvy4;
            out[row * 16 + col] = sample_quarter_pel(reference, x4, y4);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_filter_matches_reference_taps() {
        assert_eq!(point_filter(1, 1, 1, 1, 1, 1), 32);
        assert_eq!(point_filter(0, 0, 1, 0, 0, 0), 20);
        assert_eq!(point_filter(0, 1, 0, 0, 0, 0), -5);
    }

    #[test]
    fn constant_plane_interpolates_to_constant() {
        let p = Plane::filled(32, 32, 77);
        assert_eq!(half_pel_h(&p, 10, 10), 77);
        assert_eq!(half_pel_v(&p, 10, 10), 77);
        assert_eq!(half_pel_hv(&p, 10, 10), 77);
        for fx in 0..4 {
            for fy in 0..4 {
                assert_eq!(sample_quarter_pel(&p, 40 + fx, 40 + fy), 77);
            }
        }
    }

    #[test]
    fn zero_mv_compensation_copies_block() {
        let mut p = Plane::filled(32, 32, 0);
        for y in 0..16 {
            for x in 0..16 {
                p.set_sample(x, y, (x * 16 + y) as u8);
            }
        }
        let mut out = [0u8; 256];
        compensate_16x16(&p, 0, 0, 0, 0, &mut out);
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(out[y * 16 + x], p.sample(x, y));
            }
        }
    }

    #[test]
    fn half_pel_between_step_edge_is_smoothed() {
        // Step edge 0|255: the half-pel sample between them must be strictly
        // between the extremes.
        let mut p = Plane::filled(16, 4, 0);
        for y in 0..4 {
            for x in 8..16 {
                p.set_sample(x, y, 255);
            }
        }
        let h = half_pel_h(&p, 7, 1);
        assert!(h > 0 && h < 255, "got {h}");
    }

    #[test]
    fn clip3_bounds() {
        assert_eq!(clip3(0, 255, -7), 0);
        assert_eq!(clip3(0, 255, 300), 255);
        assert_eq!(clip3(0, 255, 128), 128);
    }

    #[test]
    fn quarter_pel_average_is_monotone() {
        let mut p = Plane::filled(32, 4, 0);
        for y in 0..4 {
            for x in 0..32 {
                p.set_sample(x, y, (x * 8).min(255) as u8);
            }
        }
        // Along an increasing ramp, quarter positions are non-decreasing.
        let s0 = sample_quarter_pel(&p, 40, 8);
        let s1 = sample_quarter_pel(&p, 41, 8);
        let s2 = sample_quarter_pel(&p, 42, 8);
        let s3 = sample_quarter_pel(&p, 43, 8);
        let s4 = sample_quarter_pel(&p, 44, 8);
        assert!(s0 <= s1 && s1 <= s2 && s2 <= s3 && s3 <= s4, "{s0} {s1} {s2} {s3} {s4}");
    }

    #[test]
    fn negative_mv_uses_euclidean_fractions() {
        let p = Plane::filled(8, 8, 50);
        // x4 = -3 -> xi = -1, fx = 1: clamped constant plane stays 50.
        assert_eq!(sample_quarter_pel(&p, -3, -3), 50);
    }
}
