//! Sum of Absolute Differences — the `SAD` Special Instruction
//! (Table 1: 1 Atom type `SAV`, 3 Molecules).

use crate::frame::Plane;

/// SAD between two `n×n` row-major blocks.
///
/// # Panics
///
/// Panics (debug) if the slices are shorter than `n*n`.
#[must_use]
pub fn sad_block(a: &[u8], b: &[u8], n: usize) -> u32 {
    debug_assert!(a.len() >= n * n && b.len() >= n * n);
    let mut acc = 0u32;
    for i in 0..n * n {
        acc += u32::from(a[i].abs_diff(b[i]));
    }
    acc
}

/// SAD of the 16×16 block at `(x, y)` in `cur` against the block at
/// `(x + mvx, y + mvy)` in `reference` (border-clamped).
#[must_use]
pub fn sad_16x16(cur: &Plane, reference: &Plane, x: usize, y: usize, mvx: isize, mvy: isize) -> u32 {
    let mut acc = 0u32;
    for row in 0..16 {
        for col in 0..16 {
            let c = cur.sample(x + col, y + row);
            let r = reference.sample_clamped(
                x as isize + col as isize + mvx,
                y as isize + row as isize + mvy,
            );
            acc += u32::from(c.abs_diff(r));
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_blocks_have_zero_sad() {
        let a = vec![37u8; 256];
        assert_eq!(sad_block(&a, &a, 16), 0);
    }

    #[test]
    fn sad_counts_absolute_differences() {
        let a = [10u8, 20, 30, 40];
        let b = [12u8, 18, 35, 40];
        assert_eq!(sad_block(&a, &b, 2), 2 + 2 + 5);
    }

    #[test]
    fn sad_is_symmetric() {
        let a = [0u8, 255, 17, 200];
        let b = [255u8, 0, 18, 100];
        assert_eq!(sad_block(&a, &b, 2), sad_block(&b, &a, 2));
    }

    #[test]
    fn plane_sad_with_zero_mv_matches_block_sad() {
        let mut cur = Plane::filled(32, 32, 0);
        let mut rf = Plane::filled(32, 32, 0);
        for i in 0..16 {
            cur.set_sample(i, 0, 100);
            rf.set_sample(i, 0, 90);
        }
        assert_eq!(sad_16x16(&cur, &rf, 0, 0, 0, 0), 16 * 10);
    }

    #[test]
    fn plane_sad_clamps_out_of_range_mv() {
        let cur = Plane::filled(32, 32, 50);
        let rf = Plane::filled(32, 32, 50);
        // Large MV reads clamped border samples: still all 50 -> SAD 0.
        assert_eq!(sad_16x16(&cur, &rf, 16, 16, 1000, -1000), 0);
    }

    #[test]
    fn max_sad_is_bounded() {
        let a = vec![0u8; 256];
        let b = vec![255u8; 256];
        assert_eq!(sad_block(&a, &b, 16), 256 * 255);
    }
}
