//! The macroblock encoding pipeline: ME → mode decision → transform /
//! quantisation → reconstruction → deblocking, with Special Instruction
//! accounting per hot spot.
//!
//! The encoder actually computes every kernel on real pixels, so the SI
//! execution counts it reports are *measured*, content-dependent values —
//! the property the RISPP monitor and scheduler react to.

use crate::frame::{Frame, MB_SIZE};
use crate::kernels::dct::{forward_quantised, reconstruct_residual};
use crate::kernels::entropy::estimate_block_bits;
use crate::kernels::deblock::{
    filter_horizontal_edge_bs4, filter_vertical_edge_bs4, Thresholds,
};
use crate::kernels::hadamard::{forward_ht2x2, forward_ht4x4, inverse_ht2x2, inverse_ht4x4};
use crate::kernels::intra::{predict_dc_16x16, predict_h_16x16, predict_v_16x16, Neighbours};
use crate::kernels::mc::compensate_16x16;
use crate::kernels::sad::sad_block;
use crate::me::{MotionEstimator, MotionVector};
use crate::si_library::SiKind;
use crate::video::SyntheticVideo;

/// Encoder parameters.
#[derive(Debug, Clone, Copy)]
pub struct EncoderConfig {
    /// Luma width (multiple of 16).
    pub width: usize,
    /// Luma height (multiple of 16).
    pub height: usize,
    /// Number of frames to encode.
    pub frames: u32,
    /// Synthetic-video seed.
    pub seed: u64,
    /// Quantisation parameter (0–51).
    pub qp: u8,
    /// Lagrangian-style bias added to intra cost to prefer inter coding.
    pub intra_bias: u32,
    /// Motion estimator settings.
    pub me: MotionEstimator,
}

impl EncoderConfig {
    /// The paper's benchmark: 140 CIF (352×288) frames.
    #[must_use]
    pub fn paper_cif() -> Self {
        EncoderConfig {
            width: 352,
            height: 288,
            frames: 140,
            seed: 2008,
            qp: 28,
            intra_bias: 150,
            me: MotionEstimator::default(),
        }
    }

    /// A tiny 64×48 configuration for fast tests.
    #[must_use]
    pub fn tiny(frames: u32) -> Self {
        EncoderConfig {
            width: 64,
            height: 48,
            frames,
            seed: 7,
            qp: 28,
            intra_bias: 600,
            me: MotionEstimator::default(),
        }
    }
}

/// Coding mode chosen for a macroblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MbMode {
    /// Motion-compensated from the previous reconstructed frame.
    Inter,
    /// Intra, horizontal/DC prediction (`IPred HDC` SI).
    IntraHdc,
    /// Intra, vertical/DC prediction (`IPred VDC` SI).
    IntraVdc,
}

/// Per-frame encoding outcome: the SI executions of each hot spot, broken
/// down per macroblock (so the trace keeps the per-MB interleaving), plus
/// quality metrics.
#[derive(Debug, Clone)]
pub struct FrameReport {
    /// Frame index.
    pub index: u32,
    /// ME hot spot: per MB, `(si, executions)` bursts in program order.
    pub me_bursts: Vec<Vec<(SiKind, u32)>>,
    /// EE hot spot: per MB bursts.
    pub ee_bursts: Vec<Vec<(SiKind, u32)>>,
    /// LF hot spot: per MB bursts.
    pub lf_bursts: Vec<Vec<(SiKind, u32)>>,
    /// Number of intra-coded macroblocks.
    pub intra_mbs: u32,
    /// Luma PSNR of the reconstructed frame against the source.
    pub psnr_y: f64,
    /// CAVLC-flavoured estimate of the coded luma residual bits.
    pub estimated_bits: u64,
}

impl FrameReport {
    /// Total executions of `si` in this frame, over all hot spots.
    #[must_use]
    pub fn executions(&self, si: SiKind) -> u64 {
        [&self.me_bursts, &self.ee_bursts, &self.lf_bursts]
            .iter()
            .flat_map(|phase| phase.iter().flatten())
            .filter(|&&(kind, _)| kind == si)
            .map(|&(_, n)| u64::from(n))
            .sum()
    }

    /// Total SI executions of the ME hot spot (Figure 2 reports ~32 K per
    /// CIF frame).
    #[must_use]
    pub fn me_executions(&self) -> u64 {
        self.me_bursts
            .iter()
            .flatten()
            .map(|&(_, n)| u64::from(n))
            .sum()
    }
}

/// The H.264 encoder over synthetic video.
#[derive(Debug)]
pub struct Encoder {
    config: EncoderConfig,
    video: SyntheticVideo,
    reference: Option<Frame>,
    mv_predictors: Vec<MotionVector>,
}

impl Encoder {
    /// Creates an encoder for the given configuration.
    #[must_use]
    pub fn new(config: EncoderConfig) -> Self {
        let mbs = (config.width / MB_SIZE) * (config.height / MB_SIZE);
        Encoder {
            config,
            video: SyntheticVideo::new(config.width, config.height, config.seed),
            reference: None,
            mv_predictors: vec![MotionVector::default(); mbs],
        }
    }

    /// The encoder configuration.
    #[must_use]
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Encodes the next frame, returning its report, and keeps the
    /// reconstructed frame as the reference for the next one.
    pub fn encode_next_frame(&mut self) -> FrameReport {
        let source = self.video.next_frame();
        let index = self.video.frame_index() - 1;
        let mb_cols = source.mb_cols();
        let mb_rows = source.mb_rows();
        let mut recon = Frame::new(source.width(), source.height());
        let mut modes = vec![MbMode::IntraVdc; mb_cols * mb_rows];

        let mut me_bursts = Vec::with_capacity(mb_cols * mb_rows);
        let mut ee_bursts = Vec::with_capacity(mb_cols * mb_rows);
        let mut lf_bursts = Vec::with_capacity(mb_cols * mb_rows);
        let mut intra_mbs = 0u32;
        let mut estimated_bits = 0u64;

        // --- Hot spot 1: Motion Estimation ------------------------------
        let mut search_results = vec![None; mb_cols * mb_rows];
        if let Some(reference) = &self.reference {
            for mb_y in 0..mb_rows {
                for mb_x in 0..mb_cols {
                    let mb = mb_y * mb_cols + mb_x;
                    let out = self.config.me.search(
                        &source.y,
                        &reference.y,
                        mb_x * MB_SIZE,
                        mb_y * MB_SIZE,
                        self.mv_predictors[mb],
                    );
                    me_bursts.push(vec![
                        (SiKind::Sad, out.sad_count),
                        (SiKind::Satd, out.satd_count),
                    ]);
                    self.mv_predictors[mb] = out.mv;
                    search_results[mb] = Some(out);
                }
            }
        }

        // --- Hot spot 2: Encoding Engine ---------------------------------
        let mut src_block = [0u8; 256];
        let mut pred = [0u8; 256];
        for mb_y in 0..mb_rows {
            for mb_x in 0..mb_cols {
                let mb = mb_y * mb_cols + mb_x;
                let x = mb_x * MB_SIZE;
                let y = mb_y * MB_SIZE;
                source
                    .y
                    .read_block(x as isize, y as isize, MB_SIZE, &mut src_block);

                let neighbours = Neighbours {
                    above: mb_y > 0,
                    left: mb_x > 0,
                };
                // Candidate intra predictions (from the reconstruction in
                // progress, as a real encoder does).
                let mut pred_h = [0u8; 256];
                let mut pred_v = [0u8; 256];
                predict_h_16x16(&recon.y, x, y, neighbours, &mut pred_h);
                predict_v_16x16(&recon.y, x, y, neighbours, &mut pred_v);
                let dc = predict_dc_16x16(&recon.y, x, y, neighbours);
                let cost_h = sad_block(&src_block, &pred_h, MB_SIZE);
                let cost_v = sad_block(&src_block, &pred_v, MB_SIZE);
                let pred_dc = [dc; 256];
                let cost_dc = sad_block(&src_block, &pred_dc, MB_SIZE);
                let (intra_mode, intra_pred, intra_cost) = if cost_h <= cost_v.min(cost_dc) {
                    (MbMode::IntraHdc, pred_h, cost_h)
                } else if cost_v <= cost_dc {
                    (MbMode::IntraVdc, pred_v, cost_v)
                } else {
                    // DC belongs to both SI groups; attribute to VDC.
                    (MbMode::IntraVdc, pred_dc, cost_dc)
                };

                // Inter candidate (when a reference exists).
                let mut bursts: Vec<(SiKind, u32)> = Vec::with_capacity(5);
                let mode = match (&self.reference, search_results[mb]) {
                    (Some(reference), Some(sr)) => {
                        compensate_16x16(&reference.y, x, y, sr.mv.x4, sr.mv.y4, &mut pred);
                        let inter_cost = sad_block(&src_block, &pred, MB_SIZE);
                        if intra_cost + self.config.intra_bias < inter_cost {
                            pred = intra_pred;
                            intra_mode
                        } else {
                            MbMode::Inter
                        }
                    }
                    _ => {
                        pred = intra_pred;
                        intra_mode
                    }
                };
                modes[mb] = mode;
                match mode {
                    MbMode::Inter => bursts.push((SiKind::Mc, 1)),
                    MbMode::IntraHdc => {
                        intra_mbs += 1;
                        bursts.push((SiKind::IPredHdc, 1));
                    }
                    MbMode::IntraVdc => {
                        intra_mbs += 1;
                        bursts.push((SiKind::IPredVdc, 1));
                    }
                }

                // Residual coding: 16 luma 4×4 blocks + 8 chroma 4×4
                // blocks = 24 (I)DCT SI executions.
                let mut recon_block = [0u8; 256];
                let mut luma_dc = [0i32; 16];
                for by in 0..4 {
                    for bx in 0..4 {
                        let mut residual = [0i32; 16];
                        for r in 0..4 {
                            for c in 0..4 {
                                let i = (4 * by + r) * 16 + (4 * bx + c);
                                residual[4 * r + c] =
                                    i32::from(src_block[i]) - i32::from(pred[i]);
                            }
                        }
                        luma_dc[4 * by + bx] = residual.iter().sum::<i32>() / 16;
                        let quantised = forward_quantised(&residual, self.config.qp);
                        estimated_bits += u64::from(estimate_block_bits(&quantised));
                        let rec = reconstruct_residual(&quantised, self.config.qp);
                        for r in 0..4 {
                            for c in 0..4 {
                                let i = (4 * by + r) * 16 + (4 * bx + c);
                                recon_block[i] =
                                    (i32::from(pred[i]) + rec[4 * r + c]).clamp(0, 255) as u8;
                            }
                        }
                    }
                }
                bursts.push((SiKind::Dct, 24));

                // Secondary DC transforms: 4×4 luma DC for intra 16×16
                // MBs, 2×2 chroma DC for every MB.
                if mode != MbMode::Inter {
                    let fwd = forward_ht4x4(&luma_dc);
                    let _inv = inverse_ht4x4(&fwd);
                    bursts.push((SiKind::Ht4x4, 1));
                }
                let chroma_dc = [
                    i32::from(source.cb.sample(x / 2, y / 2)),
                    i32::from(source.cb.sample(x / 2 + 4, y / 2)),
                    i32::from(source.cb.sample(x / 2, y / 2 + 4)),
                    i32::from(source.cb.sample(x / 2 + 4, y / 2 + 4)),
                ];
                let _ = inverse_ht2x2(&forward_ht2x2(&chroma_dc));
                bursts.push((SiKind::Ht2x2, 2));

                recon.y.write_block(x, y, MB_SIZE, &recon_block);
                ee_bursts.push(bursts);
            }
        }

        // --- Hot spot 3: Loop Filter -------------------------------------
        // BS4 strong filtering of macroblock boundary edges; one SI
        // execution covers four edge lines.
        let thresholds = Thresholds::for_qp(self.config.qp);
        for mb_y in 0..mb_rows {
            for mb_x in 0..mb_cols {
                let x = mb_x * MB_SIZE;
                let y = mb_y * MB_SIZE;
                let mut bursts = Vec::with_capacity(2);
                if mb_x > 0 {
                    let lines = filter_vertical_edge_bs4(&mut recon.y, x, y, thresholds);
                    if lines > 0 {
                        bursts.push((SiKind::LfBs4, lines.div_ceil(4)));
                    }
                }
                if mb_y > 0 {
                    let lines = filter_horizontal_edge_bs4(&mut recon.y, x, y, thresholds);
                    if lines > 0 {
                        bursts.push((SiKind::LfBs4, lines.div_ceil(4)));
                    }
                }
                lf_bursts.push(bursts);
            }
        }

        let psnr_y = recon.psnr_y(&source);
        self.reference = Some(recon);
        FrameReport {
            index,
            me_bursts,
            ee_bursts,
            lf_bursts,
            intra_mbs,
            psnr_y,
            estimated_bits,
        }
    }

    /// Encodes the configured number of frames.
    #[must_use]
    pub fn encode_sequence(mut self) -> Vec<FrameReport> {
        (0..self.config.frames)
            .map(|_| self.encode_next_frame())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_frame_is_all_intra() {
        let mut enc = Encoder::new(EncoderConfig::tiny(1));
        let report = enc.encode_next_frame();
        assert_eq!(report.intra_mbs, 12);
        assert!(report.me_bursts.is_empty());
        assert_eq!(report.executions(SiKind::Mc), 0);
        assert_eq!(report.executions(SiKind::Dct), 24 * 12);
    }

    #[test]
    fn inter_frames_run_motion_estimation() {
        let mut enc = Encoder::new(EncoderConfig::tiny(2));
        let _ = enc.encode_next_frame();
        let p = enc.encode_next_frame();
        assert_eq!(p.me_bursts.len(), 12);
        assert!(p.executions(SiKind::Sad) > 0);
        assert!(p.executions(SiKind::Satd) > 0);
        assert!(p.executions(SiKind::Mc) > 0, "most MBs should be inter");
        assert!(p.intra_mbs < 12);
    }

    #[test]
    fn reconstruction_quality_is_reasonable() {
        let mut enc = Encoder::new(EncoderConfig::tiny(3));
        for _ in 0..2 {
            let _ = enc.encode_next_frame();
        }
        let p = enc.encode_next_frame();
        assert!(
            p.psnr_y > 28.0,
            "QP 28 reconstruction should exceed 28 dB, got {:.1}",
            p.psnr_y
        );
    }

    #[test]
    fn loop_filter_runs_on_internal_boundaries() {
        let mut enc = Encoder::new(EncoderConfig::tiny(1));
        let p = enc.encode_next_frame();
        let lf = p.executions(SiKind::LfBs4);
        // 12 MBs, interior edges only; each filtered edge is ≥1 execution.
        assert!(lf > 0, "BS4 must fire on blocking artefacts");
        // Upper bound: 2 edges × 4 executions × 12 MBs.
        assert!(lf <= 96);
    }

    #[test]
    fn chroma_dc_transform_counted_per_mb() {
        let mut enc = Encoder::new(EncoderConfig::tiny(1));
        let p = enc.encode_next_frame();
        assert_eq!(p.executions(SiKind::Ht2x2), 2 * 12);
        // All-intra frame: one HT4x4 per MB.
        assert_eq!(p.executions(SiKind::Ht4x4), 12);
    }

    #[test]
    fn higher_qp_spends_fewer_bits() {
        let mut low = EncoderConfig::tiny(2);
        low.qp = 20;
        let mut high = EncoderConfig::tiny(2);
        high.qp = 40;
        let bits_low: u64 = Encoder::new(low).encode_sequence().iter().map(|r| r.estimated_bits).sum();
        let bits_high: u64 = Encoder::new(high).encode_sequence().iter().map(|r| r.estimated_bits).sum();
        assert!(bits_high < bits_low, "{bits_high} !< {bits_low}");
    }

    #[test]
    fn encoding_is_deterministic() {
        let a: Vec<u64> = Encoder::new(EncoderConfig::tiny(3))
            .encode_sequence()
            .iter()
            .map(|r| r.executions(SiKind::Sad))
            .collect();
        let b: Vec<u64> = Encoder::new(EncoderConfig::tiny(3))
            .encode_sequence()
            .iter()
            .map(|r| r.executions(SiKind::Sad))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn me_executions_are_content_dependent() {
        let reports = Encoder::new(EncoderConfig::tiny(6)).encode_sequence();
        let counts: Vec<u64> = reports[1..].iter().map(FrameReport::me_executions).collect();
        // Not all frames issue identical ME work.
        assert!(counts.windows(2).any(|w| w[0] != w[1]), "{counts:?}");
    }
}
