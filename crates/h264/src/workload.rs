//! Conversion of encoder runs into execution-engine traces.

use rispp_model::SiId;
use rispp_monitor::HotSpotId;
use rispp_sim::{Burst, Invocation, Trace};

use crate::encoder::{Encoder, EncoderConfig, FrameReport};
use crate::si_library::SiKind;

/// The three computational hot spots of the H.264 encoder (paper Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum HotSpot {
    /// Motion Estimation (SAD, SATD).
    MotionEstimation = 0,
    /// Encoding Engine (MC, (I)DCT, (I)HT, IPred).
    EncodingEngine = 1,
    /// Loop Filter (LF_BS4).
    LoopFilter = 2,
}

impl HotSpot {
    /// All hot spots in per-frame execution order.
    pub const ALL: [HotSpot; 3] = [
        HotSpot::MotionEstimation,
        HotSpot::EncodingEngine,
        HotSpot::LoopFilter,
    ];

    /// The engine-level hot spot id.
    #[must_use]
    pub fn id(self) -> HotSpotId {
        HotSpotId(self as u16)
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HotSpot::MotionEstimation => "Motion Estimation",
            HotSpot::EncodingEngine => "Encoding Engine",
            HotSpot::LoopFilter => "Loop Filter",
        }
    }
}

/// Base-processor cycles spent per SI execution on loop control and
/// operand staging.
pub const SI_OVERHEAD_CYCLES: u32 = 10;

/// Base-processor cycles at each hot-spot entry (control code, parameter
/// blocks, entropy-coding work folded into the EE prologue).
const PROLOGUE_CYCLES: [u64; 3] = [40_000, 90_000, 25_000];

/// Aggregate statistics of a generated workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSummary {
    /// Encoded frames.
    pub frames: u32,
    /// Macroblocks per frame.
    pub mb_per_frame: u32,
    /// Total executions per SI.
    pub per_si: Vec<(SiKind, u64)>,
    /// Mean luma PSNR of the reconstruction.
    pub mean_psnr_y: f64,
    /// Fraction of intra-coded macroblocks (over inter frames).
    pub intra_mb_fraction: f64,
    /// Mean ME hot-spot SI executions per inter frame (the paper reports
    /// 31,977 SAD+SATD executions for an ME hot spot).
    pub me_executions_per_frame: f64,
    /// Mean estimated coded luma bits per frame (rate sanity check).
    pub mean_kbits_per_frame: f64,
}

/// An encoder run converted into a [`Trace`] plus summary statistics.
#[derive(Debug, Clone)]
pub struct EncoderWorkload {
    trace: Trace,
    summary: WorkloadSummary,
}

impl EncoderWorkload {
    /// Runs the encoder with `config` and converts the result.
    #[must_use]
    pub fn generate(config: &EncoderConfig) -> Self {
        let reports = Encoder::new(*config).encode_sequence();
        EncoderWorkload::from_reports(config, &reports)
    }

    /// The paper's 140-frame CIF benchmark workload (expensive: encodes
    /// ~55 K macroblocks; generate once and reuse).
    #[must_use]
    pub fn paper_cif() -> Self {
        EncoderWorkload::generate(&EncoderConfig::paper_cif())
    }

    /// Converts existing frame reports (e.g. from a custom encoder run).
    #[must_use]
    pub fn from_reports(config: &EncoderConfig, reports: &[FrameReport]) -> Self {
        let mb = ((config.width / 16) * (config.height / 16)) as u64;
        // Design-time hints: static per-MB estimates scaled by MB count.
        let me_hints = vec![
            (SiKind::Sad.id(), 45 * mb),
            (SiKind::Satd.id(), 25 * mb),
        ];
        let ee_hints = vec![
            (SiKind::Dct.id(), 24 * mb),
            (SiKind::Ht2x2.id(), 2 * mb),
            (SiKind::Ht4x4.id(), mb / 4),
            (SiKind::Mc.id(), mb),
            (SiKind::IPredHdc.id(), mb / 8),
            (SiKind::IPredVdc.id(), mb / 8),
        ];
        let lf_hints = vec![(SiKind::LfBs4.id(), 6 * mb)];

        let mut trace = Trace::default();
        let mut per_si = vec![0u64; SiKind::ALL.len()];
        let mut psnr_sum = 0.0;
        let mut intra = 0u64;
        let mut inter_frames = 0u64;
        let mut me_exec_sum = 0u64;
        let mut bits_sum = 0u64;

        for report in reports {
            psnr_sum += report.psnr_y;
            bits_sum += report.estimated_bits;
            if !report.me_bursts.is_empty() {
                inter_frames += 1;
                me_exec_sum += report.me_executions();
                intra += u64::from(report.intra_mbs);
            }
            // Hot-spot phase: per-MB burst lists plus its design-time hints.
            type Phase<'a> = (&'a HotSpot, &'a Vec<Vec<(SiKind, u32)>>, &'a [(SiId, u64)]);
            let phases: [Phase<'_>; 3] = [
                (&HotSpot::MotionEstimation, &report.me_bursts, &me_hints),
                (&HotSpot::EncodingEngine, &report.ee_bursts, &ee_hints),
                (&HotSpot::LoopFilter, &report.lf_bursts, &lf_hints),
            ];
            for (hot_spot, mb_bursts, hints) in phases {
                let bursts: Vec<Burst> = mb_bursts
                    .iter()
                    .flatten()
                    .filter(|&&(_, n)| n > 0)
                    .map(|&(kind, n)| {
                        per_si[kind.id().index()] += u64::from(n);
                        Burst {
                            si: kind.id(),
                            count: n,
                            overhead: SI_OVERHEAD_CYCLES,
                        }
                    })
                    .collect();
                trace.push(Invocation {
                    hot_spot: hot_spot.id(),
                    prologue_cycles: PROLOGUE_CYCLES[hot_spot.id().index()],
                    bursts,
                    hints: hints.to_vec(),
                });
            }
        }

        let summary = WorkloadSummary {
            frames: reports.len() as u32,
            mb_per_frame: mb as u32,
            per_si: SiKind::ALL
                .iter()
                .map(|&k| (k, per_si[k.id().index()]))
                .collect(),
            mean_psnr_y: if reports.is_empty() {
                0.0
            } else {
                psnr_sum / reports.len() as f64
            },
            intra_mb_fraction: if inter_frames == 0 {
                0.0
            } else {
                intra as f64 / (inter_frames * mb) as f64
            },
            me_executions_per_frame: if inter_frames == 0 {
                0.0
            } else {
                me_exec_sum as f64 / inter_frames as f64
            },
            mean_kbits_per_frame: if reports.is_empty() {
                0.0
            } else {
                bits_sum as f64 / 1_000.0 / reports.len() as f64
            },
        };
        EncoderWorkload { trace, summary }
    }

    /// The execution-engine trace (three hot-spot invocations per frame).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Aggregate workload statistics.
    #[must_use]
    pub fn summary(&self) -> &WorkloadSummary {
        &self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_three_hot_spots_per_frame() {
        let w = EncoderWorkload::generate(&EncoderConfig::tiny(4));
        assert_eq!(w.trace().len(), 12);
        let hs: Vec<u16> = w
            .trace()
            .invocations()
            .iter()
            .map(|i| i.hot_spot.0)
            .collect();
        assert_eq!(&hs[..6], &[0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn summary_counts_match_trace() {
        let w = EncoderWorkload::generate(&EncoderConfig::tiny(3));
        let total: u64 = w.summary().per_si.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, w.trace().total_si_executions());
        assert!(total > 0);
    }

    #[test]
    fn hints_cover_every_executed_si() {
        let w = EncoderWorkload::generate(&EncoderConfig::tiny(2));
        for inv in w.trace().invocations() {
            for b in &inv.bursts {
                assert!(
                    inv.hints.iter().any(|&(si, _)| si == b.si),
                    "burst SI {:?} missing from hints",
                    b.si
                );
            }
        }
    }

    #[test]
    fn summary_reports_quality_and_intra_stats() {
        let w = EncoderWorkload::generate(&EncoderConfig::tiny(4));
        assert!(w.summary().mean_psnr_y > 25.0);
        assert!(w.summary().intra_mb_fraction <= 1.0);
        assert!(w.summary().me_executions_per_frame > 0.0);
        assert!(w.summary().mean_kbits_per_frame > 0.0);
        assert_eq!(w.summary().frames, 4);
        assert_eq!(w.summary().mb_per_frame, 12);
    }

    #[test]
    fn hot_spot_metadata() {
        assert_eq!(HotSpot::MotionEstimation.id().index(), 0);
        assert_eq!(HotSpot::LoopFilter.name(), "Loop Filter");
        assert_eq!(HotSpot::ALL.len(), 3);
    }
}
