use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::frame::{Frame, Plane};

/// Deterministic synthetic CIF-style video generator.
///
/// Stands in for the paper's real 140-frame CIF sequence: a textured
/// background with global panning, several moving foreground objects with
/// individual velocities, a mid-sequence motion burst (so the SI
/// execution profile changes over time, the "non-predictable application
/// behaviour" the run-time system reacts to) and mild sensor noise.
///
/// # Examples
///
/// ```
/// use rispp_h264::SyntheticVideo;
///
/// let mut video = SyntheticVideo::cif(42);
/// let first = video.next_frame();
/// let second = video.next_frame();
/// assert_eq!(first.mb_count(), 396);
/// assert_ne!(first, second); // motion between frames
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticVideo {
    width: usize,
    height: usize,
    rng: SmallRng,
    frame_index: u32,
    objects: Vec<MovingObject>,
}

#[derive(Debug, Clone, Copy)]
struct MovingObject {
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
    w: usize,
    h: usize,
    luma: u8,
}

impl SyntheticVideo {
    /// A CIF (352×288) sequence with the given seed.
    #[must_use]
    pub fn cif(seed: u64) -> Self {
        SyntheticVideo::new(352, 288, seed)
    }

    /// A sequence of arbitrary MB-aligned dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are not multiples of 16.
    #[must_use]
    pub fn new(width: usize, height: usize, seed: u64) -> Self {
        assert!(width.is_multiple_of(16) && height.is_multiple_of(16));
        let mut rng = SmallRng::seed_from_u64(seed);
        let objects = (0..5)
            .map(|i| MovingObject {
                x: rng.gen_range(0.0..width as f64 * 0.8),
                y: rng.gen_range(0.0..height as f64 * 0.8),
                vx: rng.gen_range(-3.0..3.0),
                vy: rng.gen_range(-2.0..2.0),
                w: 24 + 12 * (i % 3),
                h: 20 + 10 * (i % 4),
                luma: 60 + (i as u8) * 35,
            })
            .collect();
        SyntheticVideo {
            width,
            height,
            rng,
            frame_index: 0,
            objects,
        }
    }

    /// Current frame index (0-based, incremented by [`Self::next_frame`]).
    #[must_use]
    pub fn frame_index(&self) -> u32 {
        self.frame_index
    }

    /// Renders the next frame and advances the scene.
    pub fn next_frame(&mut self) -> Frame {
        let t = f64::from(self.frame_index);
        // Global pan accelerates in the middle third of a 140-frame clip
        // (a motion burst), and a scene cut at frame 70 jumps the
        // background: both shift the SI execution profile at run time, the
        // "non-predictable application behaviour" the paper targets.
        let burst = if (47.0..94.0).contains(&t) { 2.5 } else { 1.0 };
        let cut = if t >= 70.0 { 900.0 } else { 0.0 };
        let pan_x = t * 0.8 * burst + cut;
        let pan_y = t * 0.3 + cut * 0.4;

        let mut y_samples = Vec::with_capacity(self.width * self.height);
        for yy in 0..self.height {
            for xx in 0..self.width {
                // Textured background: two low-frequency gradients.
                let gx = (xx as f64 + pan_x) * 0.05;
                let gy = (yy as f64 + pan_y) * 0.07;
                let v = 110.0 + 35.0 * (gx.sin() + gy.cos());
                y_samples.push(v.clamp(0.0, 255.0) as u8);
            }
        }
        let mut y = Plane::from_samples(self.width, self.height, y_samples);

        // Foreground objects.
        for obj in &self.objects {
            let ox = obj.x as isize;
            let oy = obj.y as isize;
            for dy in 0..obj.h as isize {
                for dx in 0..obj.w as isize {
                    let px = ox + dx;
                    let py = oy + dy;
                    if px >= 0 && py >= 0 && (px as usize) < self.width && (py as usize) < self.height
                    {
                        // Simple shading for internal texture.
                        let shade = ((dx * 5 + dy * 3) % 32) as u8;
                        y.set_sample(px as usize, py as usize, obj.luma.saturating_add(shade));
                    }
                }
            }
        }

        // Sensor noise (±2 levels).
        for yy in 0..self.height {
            for xx in 0..self.width {
                let n: i16 = self.rng.gen_range(-2..=2);
                let v = i16::from(y.sample(xx, yy)) + n;
                y.set_sample(xx, yy, v.clamp(0, 255) as u8);
            }
        }

        // Advance the scene.
        for obj in &mut self.objects {
            obj.x += obj.vx * burst;
            obj.y += obj.vy * burst;
            if obj.x < -(obj.w as f64) {
                obj.x = self.width as f64;
            }
            if obj.x > self.width as f64 {
                obj.x = -(obj.w as f64);
            }
            if obj.y < -(obj.h as f64) {
                obj.y = self.height as f64;
            }
            if obj.y > self.height as f64 {
                obj.y = -(obj.h as f64);
            }
        }
        self.frame_index += 1;

        // Chroma: downsampled smooth fields (chroma SIs are not modelled
        // separately; EE chroma work is folded into the overhead cycles).
        let cw = self.width / 2;
        let ch = self.height / 2;
        let mut cb = Plane::filled(cw, ch, 128);
        let mut cr = Plane::filled(cw, ch, 128);
        for yy in 0..ch {
            for xx in 0..cw {
                cb.set_sample(xx, yy, (110 + (xx + yy) % 30) as u8);
                cr.set_sample(xx, yy, (120 + (xx * 2 + yy) % 20) as u8);
            }
        }
        Frame { y, cb, cr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let mut a = SyntheticVideo::cif(7);
        let mut b = SyntheticVideo::cif(7);
        assert_eq!(a.next_frame(), b.next_frame());
        assert_eq!(a.next_frame(), b.next_frame());
        assert_eq!(a.frame_index(), 2);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SyntheticVideo::cif(1);
        let mut b = SyntheticVideo::cif(2);
        assert_ne!(a.next_frame(), b.next_frame());
    }

    #[test]
    fn consecutive_frames_have_motion_but_similarity() {
        let mut v = SyntheticVideo::cif(3);
        let f0 = v.next_frame();
        let f1 = v.next_frame();
        let psnr = f1.psnr_y(&f0);
        // Moving content: not identical, but strongly correlated.
        assert!(psnr.is_finite());
        assert!(psnr > 12.0, "frames too different: {psnr} dB");
        assert!(psnr < 50.0, "frames too similar: {psnr} dB");
    }

    #[test]
    fn motion_burst_increases_frame_difference() {
        let mut v = SyntheticVideo::cif(4);
        let mut frames = Vec::new();
        for _ in 0..100 {
            frames.push(v.next_frame());
        }
        let calm = frames[10].psnr_y(&frames[9]);
        let burst = frames[60].psnr_y(&frames[59]);
        assert!(burst < calm, "burst {burst} should be below calm {calm}");
    }

    #[test]
    #[should_panic]
    fn unaligned_dimensions_panic() {
        let _ = SyntheticVideo::new(100, 100, 0);
    }
}
