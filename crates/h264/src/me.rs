//! Motion estimation for 16×16 macroblocks: a UMHexagonS-flavoured
//! integer-pel search (SAD-based, with early termination) followed by
//! half/quarter-pel refinement (SATD-based) — the paper's ME hot spot,
//! whose two SIs execute ~32 K times per CIF frame (Figure 2 reports
//! 31,977 for one run of the hot spot).

use crate::frame::Plane;
use crate::kernels::mc::compensate_16x16;
use crate::kernels::sad::sad_16x16;
use crate::kernels::satd::satd_nxn;

/// A motion vector in quarter-pel units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MotionVector {
    /// Horizontal component (quarter-pel).
    pub x4: isize,
    /// Vertical component (quarter-pel).
    pub y4: isize,
}

/// Result of estimating one macroblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Best motion vector found (quarter-pel units).
    pub mv: MotionVector,
    /// SATD cost of the best sub-pel candidate.
    pub best_cost: u32,
    /// Integer-pel SAD evaluations performed (executions of the SAD SI).
    pub sad_count: u32,
    /// Sub-pel SATD evaluations performed (executions of the SATD SI).
    pub satd_count: u32,
}

/// Configurable motion estimator.
#[derive(Debug, Clone, Copy)]
pub struct MotionEstimator {
    /// Integer search range in pel (± around the predictor).
    pub range: isize,
    /// Early-termination SAD threshold: a candidate below this stops the
    /// integer search (static background terminates quickly, which makes
    /// the SI execution counts content-dependent as in the paper).
    pub early_exit_sad: u32,
}

impl Default for MotionEstimator {
    fn default() -> Self {
        MotionEstimator {
            range: 16,
            early_exit_sad: 380,
        }
    }
}

/// Square/diamond pattern offsets for the coarse search rounds.
const DIAMOND_LARGE: [(isize, isize); 12] = [
    (-2, 0),
    (2, 0),
    (0, -2),
    (0, 2),
    (-1, -1),
    (1, -1),
    (-1, 1),
    (1, 1),
    (-4, 0),
    (4, 0),
    (0, -4),
    (0, 4),
];
const DIAMOND_SMALL: [(isize, isize); 4] = [(-1, 0), (1, 0), (0, -1), (0, 1)];

impl MotionEstimator {
    /// Estimates the MB at `(mb_x, mb_y)` (sample coordinates) of `cur`
    /// against `reference`, starting from `predictor` (quarter-pel).
    #[must_use]
    pub fn search(
        &self,
        cur: &Plane,
        reference: &Plane,
        mb_x: usize,
        mb_y: usize,
        predictor: MotionVector,
    ) -> SearchOutcome {
        let mut sad_count = 0u32;
        let eval = |mx: isize, my: isize, counter: &mut u32| -> u32 {
            *counter += 1;
            sad_16x16(cur, reference, mb_x, mb_y, mx, my)
        };

        // Integer-pel: start at predictor and (0,0), then diamond rounds.
        let pred_int = (predictor.x4 >> 2, predictor.y4 >> 2);
        let mut best_mv = (0isize, 0isize);
        let mut best = eval(0, 0, &mut sad_count);
        if pred_int != (0, 0) {
            let c = eval(pred_int.0, pred_int.1, &mut sad_count);
            if c < best {
                best = c;
                best_mv = pred_int;
            }
        }
        if best >= self.early_exit_sad {
            // Large-diamond rounds until no improvement or range exhausted.
            let mut rounds = 0;
            loop {
                let mut improved = false;
                for &(dx, dy) in &DIAMOND_LARGE {
                    let cand = (best_mv.0 + dx, best_mv.1 + dy);
                    if cand.0.abs() > self.range || cand.1.abs() > self.range {
                        continue;
                    }
                    let c = eval(cand.0, cand.1, &mut sad_count);
                    if c < best {
                        best = c;
                        best_mv = cand;
                        improved = true;
                    }
                }
                rounds += 1;
                if !improved || best < self.early_exit_sad || rounds >= 8 {
                    break;
                }
            }
            // Small-diamond polish.
            for &(dx, dy) in &DIAMOND_SMALL {
                let cand = (best_mv.0 + dx, best_mv.1 + dy);
                if cand.0.abs() > self.range || cand.1.abs() > self.range {
                    continue;
                }
                let c = eval(cand.0, cand.1, &mut sad_count);
                if c < best {
                    best = c;
                    best_mv = cand;
                }
            }
        }

        // Sub-pel refinement with SATD: half-pel ring, then two quarter-pel
        // polish rings around the running best (8 + 8 + 8 positions +
        // centre).
        let mut cur_block = [0u8; 256];
        cur.read_block(mb_x as isize, mb_y as isize, 16, &mut cur_block);
        let mut satd_count = 0u32;
        let mut pred_block = [0u8; 256];
        let mut best_q = (best_mv.0 * 4, best_mv.1 * 4);
        let mut eval_q = |x4: isize, y4: isize, counter: &mut u32| -> u32 {
            *counter += 1;
            compensate_16x16(reference, mb_x, mb_y, x4, y4, &mut pred_block);
            satd_nxn(&cur_block, &pred_block, 16)
        };
        let mut best_cost = eval_q(best_q.0, best_q.1, &mut satd_count);
        for step in [2isize, 1, 1] {
            let centre = best_q;
            for dy in [-step, 0, step] {
                for dx in [-step, 0, step] {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let c = eval_q(centre.0 + dx, centre.1 + dy, &mut satd_count);
                    if c < best_cost {
                        best_cost = c;
                        best_q = (centre.0 + dx, centre.1 + dy);
                    }
                }
            }
        }

        SearchOutcome {
            mv: MotionVector {
                x4: best_q.0,
                y4: best_q.1,
            },
            best_cost,
            sad_count,
            satd_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Plane;

    /// Builds current/reference planes where the current frame's content
    /// sits at offset `(dx, dy)` in the reference (i.e. the true motion
    /// vector is `(dx, dy)` integer pel). The texture is a smooth,
    /// non-periodic sum of sinusoids so the SAD surface has a unique
    /// minimum that a diamond search can descend to.
    fn shifted_pair(dx: isize, dy: isize) -> (Plane, Plane) {
        let w = 96;
        let h = 96;
        let tex = |x: f64, y: f64| -> u8 {
            let v = 128.0 + 60.0 * (x * 0.35).sin() + 40.0 * (y * 0.28).cos()
                + 20.0 * ((x + y) * 0.11).sin();
            v.clamp(0.0, 255.0) as u8
        };
        let mut reference = Plane::filled(w, h, 0);
        for y in 0..h {
            for x in 0..w {
                reference.set_sample(x, y, tex(x as f64, y as f64));
            }
        }
        let mut cur = Plane::filled(w, h, 0);
        for y in 0..h {
            for x in 0..w {
                cur.set_sample(
                    x,
                    y,
                    reference.sample_clamped(x as isize + dx, y as isize + dy),
                );
            }
        }
        (cur, reference)
    }

    #[test]
    fn finds_integer_translation() {
        let (cur, reference) = shifted_pair(2, -1);
        let me = MotionEstimator::default();
        let out = me.search(&cur, &reference, 32, 32, MotionVector::default());
        assert_eq!(out.mv.x4, 2 * 4, "mv {:?}", out.mv);
        assert_eq!(out.mv.y4, -4);
        assert_eq!(out.best_cost, 0);
    }

    #[test]
    fn static_content_terminates_early() {
        let (cur, reference) = shifted_pair(0, 0);
        let me = MotionEstimator::default();
        let out = me.search(&cur, &reference, 32, 32, MotionVector::default());
        // Perfect match at (0,0): only the initial probe(s) + subpel ring.
        assert!(out.sad_count <= 2, "sad_count {}", out.sad_count);
        assert_eq!(out.mv, MotionVector::default());
    }

    #[test]
    fn moving_content_searches_more() {
        let (cur_static, ref_static) = shifted_pair(0, 0);
        let (cur_moving, ref_moving) = shifted_pair(6, 4);
        let me = MotionEstimator::default();
        let s = me.search(&cur_static, &ref_static, 32, 32, MotionVector::default());
        let m = me.search(&cur_moving, &ref_moving, 32, 32, MotionVector::default());
        assert!(m.sad_count > s.sad_count);
    }

    #[test]
    fn predictor_accelerates_search() {
        let (cur, reference) = shifted_pair(8, 0);
        let me = MotionEstimator::default();
        let cold = me.search(&cur, &reference, 32, 32, MotionVector::default());
        let hot = me.search(&cur, &reference, 32, 32, MotionVector { x4: 32, y4: 0 });
        assert!(hot.sad_count <= cold.sad_count);
        assert_eq!(hot.mv.x4, 32);
    }

    #[test]
    fn satd_count_is_bounded_by_rings() {
        let (cur, reference) = shifted_pair(1, 1);
        let me = MotionEstimator::default();
        let out = me.search(&cur, &reference, 32, 32, MotionVector::default());
        // 1 centre + 3 rings × 8 = 25 max.
        assert!(out.satd_count >= 1 && out.satd_count <= 25);
    }
}
