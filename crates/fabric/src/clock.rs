use std::fmt;

/// A clock domain, converting between wall time and cycle counts.
///
/// The RISPP prototype runs the base processor and Atom Containers at
/// 100 MHz; all simulator timing is expressed in cycles of this clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockDomain {
    hz: u64,
}

impl ClockDomain {
    /// The prototype's 100 MHz processor clock.
    pub const PROTOTYPE: ClockDomain = ClockDomain { hz: 100_000_000 };

    /// Creates a clock domain with the given frequency.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    #[must_use]
    pub fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "clock frequency must be positive");
        ClockDomain { hz }
    }

    /// The frequency in Hz.
    #[must_use]
    pub fn hz(self) -> u64 {
        self.hz
    }

    /// Number of cycles elapsing in `us` microseconds (rounded up).
    #[must_use]
    pub fn cycles_for_us(self, us: f64) -> u64 {
        (us * self.hz as f64 / 1e6).ceil() as u64
    }

    /// Duration in microseconds of `cycles` cycles.
    #[must_use]
    pub fn us_for_cycles(self, cycles: u64) -> f64 {
        cycles as f64 * 1e6 / self.hz as f64
    }
}

impl Default for ClockDomain {
    fn default() -> Self {
        ClockDomain::PROTOTYPE
    }
}

impl fmt::Display for ClockDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MHz", self.hz / 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_is_100mhz() {
        assert_eq!(ClockDomain::PROTOTYPE.hz(), 100_000_000);
        assert_eq!(ClockDomain::default(), ClockDomain::PROTOTYPE);
        assert_eq!(ClockDomain::PROTOTYPE.to_string(), "100 MHz");
    }

    #[test]
    fn us_cycle_roundtrip() {
        let clk = ClockDomain::PROTOTYPE;
        assert_eq!(clk.cycles_for_us(874.03), 87_403);
        let us = clk.us_for_cycles(87_403);
        assert!((us - 874.03).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_panics() {
        let _ = ClockDomain::from_hz(0);
    }
}
