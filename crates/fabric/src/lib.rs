//! Reconfigurable-fabric simulator for the RISPP run-time system.
//!
//! Models the hardware substrate of the RISPP prototype (DATE'08, Section 5):
//! a set of *Atom Containers* ([`AtomContainer`]) — small reconfigurable
//! regions that can each hold one Atom — fed by a single reconfiguration
//! port ([`ReconfigPortConfig`], the SelectMAP/ICAP interface of the Xilinx
//! xc2v3000 board at 66 MB/s). Loading one Atom takes the partial-bitstream
//! size divided by the port bandwidth, ~874 µs on average in the paper.
//!
//! The central type is [`Fabric`]: it accepts a queue of atom-load requests
//! (the output of an SI scheduler), serialises them through the port, and
//! reports at which cycle each Atom becomes available. The run-time system
//! polls [`Fabric::advance_to`] as simulated time progresses and reads the
//! currently [`Fabric::available`] atoms to pick the fastest Molecule per
//! SI execution.
//!
//! # Examples
//!
//! ```
//! use rispp_fabric::{Fabric, FabricConfig};
//! use rispp_model::{AtomTypeInfo, AtomUniverse, AtomTypeId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let universe = AtomUniverse::from_types([AtomTypeInfo::new("SAV")])?;
//! let mut fabric = Fabric::new(FabricConfig::prototype(4), &universe);
//! fabric.enqueue_load(AtomTypeId(0));
//! let events = fabric.advance_to(10_000_000);
//! assert_eq!(events.len(), 1);
//! assert_eq!(fabric.available().count(0), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod container;
mod error;
mod fabric;
pub mod fault;
mod port;

pub use clock::ClockDomain;
pub use container::{AtomContainer, ContainerId, ContainerState};
pub use error::FabricError;
pub use fabric::{
    Fabric, FabricConfig, FabricEvent, FabricJournalEntry, FabricStats, LoadCompleted,
};
pub use fault::FaultModel;
pub use port::ReconfigPortConfig;
