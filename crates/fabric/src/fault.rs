//! Deterministic fault model for the reconfigurable fabric.
//!
//! Partial-reconfiguration fabrics fail in three characteristic ways, all of
//! which this module models with *seeded, reproducible* draws:
//!
//! 1. **CRC aborts** — a bitstream transfer is corrupted in flight and the
//!    configuration port rejects it at the end of the load. The port cycles
//!    are wasted and the target container ends up empty.
//! 2. **SEU corruption** — a single-event upset flips configuration bits of
//!    a *loaded* Atom some time after the load completes; the Atom becomes
//!    unusable until it is scrubbed and reloaded.
//! 3. **Permanent failures** — a container's reconfigurable tile dies for
//!    good at a scheduled cycle and must be quarantined.
//!
//! All randomness comes from one `xorshift64*` stream per [`Fabric`]
//! (seeded from [`FaultModel::seed`]), so a run is bit-identical regardless
//! of how many sweep threads execute it, and a model with every rate at
//! zero behaves exactly like no model at all.
//!
//! [`Fabric`]: crate::Fabric

/// Probability denominator: rates are expressed in parts per million so the
/// model stays `Copy + Eq + Hash` (no floats in configuration).
pub const PPM: u32 = 1_000_000;

/// Default horizon for permanent-failure scheduling (cycles). At the
/// prototype's 100 MHz this is 300 ms — early enough that even short
/// simulations observe scheduled tile deaths.
pub const DEFAULT_FAILURE_HORIZON: u64 = 30_000_000;

/// Seeded fault-injection parameters for a [`Fabric`](crate::Fabric).
///
/// All rates are integers (parts per million) so the model can ride inside
/// `Copy + Eq` simulation configs. A model where every rate is zero is
/// *null*: it draws nothing beyond the per-load CRC check and produces
/// bit-identical behaviour to a fabric without any model attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FaultModel {
    /// Seed of the per-fabric `xorshift64*` stream.
    pub seed: u64,
    /// Probability (ppm) that any single bitstream load aborts with a CRC
    /// error at the end of the transfer.
    pub crc_abort_ppm: u32,
    /// Expected SEU corruptions per loaded Atom per 10⁹ cycles. The
    /// lifetime of each loaded Atom is drawn from the corresponding
    /// exponential distribution when its load completes.
    pub seu_per_gcycle: u32,
    /// Probability (ppm) that a given container suffers a permanent tile
    /// failure somewhere inside the failure horizon.
    pub permanent_failure_ppm: u32,
    /// Horizon (cycles) within which scheduled permanent failures occur,
    /// uniformly distributed. Zero falls back to
    /// [`DEFAULT_FAILURE_HORIZON`].
    pub permanent_failure_horizon: u64,
}

impl FaultModel {
    /// A model that injects nothing (all rates zero).
    #[must_use]
    pub fn none() -> Self {
        FaultModel::default()
    }

    /// Whether every rate is zero (the model never perturbs a run).
    #[must_use]
    pub fn is_null(&self) -> bool {
        self.crc_abort_ppm == 0 && self.seu_per_gcycle == 0 && self.permanent_failure_ppm == 0
    }

    /// A single-knob model: `rate` in `[0, 1]` scales all three mechanisms.
    ///
    /// CRC aborts hit `rate` of all loads; loaded Atoms suffer SEUs at
    /// `rate · 1000` per gigacycle (mean lifetime `10⁹ / (rate·1000)`
    /// cycles, i.e. 20 M cycles at `rate = 0.05`); each container has a
    /// `min(4·rate, 1)` chance of a permanent failure inside the default
    /// horizon.
    #[must_use]
    pub fn uniform(rate: f64, seed: u64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        FaultModel::uniform_ppm((rate * f64::from(PPM)).round() as u32, seed)
    }

    /// [`FaultModel::uniform`] with the rate already expressed in ppm.
    #[must_use]
    pub fn uniform_ppm(rate_ppm: u32, seed: u64) -> Self {
        let rate_ppm = rate_ppm.min(PPM);
        FaultModel {
            seed,
            crc_abort_ppm: rate_ppm,
            // ppm → per-gigacycle: 0.05 (50 000 ppm) → 50 SEU/gigacycle.
            seu_per_gcycle: rate_ppm / 1_000,
            permanent_failure_ppm: rate_ppm.saturating_mul(4).min(PPM),
            permanent_failure_horizon: DEFAULT_FAILURE_HORIZON,
        }
    }

    /// The effective permanent-failure horizon (default applied).
    #[must_use]
    pub fn failure_horizon(&self) -> u64 {
        if self.permanent_failure_horizon == 0 {
            DEFAULT_FAILURE_HORIZON
        } else {
            self.permanent_failure_horizon
        }
    }
}

/// `xorshift64*`: tiny, fast, and deterministic across platforms. Quality
/// is more than sufficient for fault draws and keeps the crate free of
/// external RNG dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        // Mix the seed so nearby seeds produce unrelated streams and the
        // all-zero fixed point is unreachable.
        let mut s = seed ^ 0x9E37_79B9_7F4A_7C15;
        if s == 0 {
            s = 0x2545_F491_4F6C_DD1D;
        }
        XorShift64 { state: s }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// `true` with probability `ppm / 10⁶`.
    pub(crate) fn chance_ppm(&mut self, ppm: u32) -> bool {
        self.next_u64() % u64::from(PPM) < u64::from(ppm)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub(crate) fn unit_f64(&mut self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let scale = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * scale
    }

    /// Exponential lifetime draw for a loaded Atom: mean `10⁹ / rate`
    /// cycles, clamped to at least one cycle so corruption never lands on
    /// the load-completion instant itself.
    pub(crate) fn seu_lifetime(&mut self, seu_per_gcycle: u32) -> u64 {
        let u = self.unit_f64();
        let mean = 1e9 / f64::from(seu_per_gcycle);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cycles = (-(1.0 - u).ln() * mean).round() as u64;
        cycles.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_model_detection() {
        assert!(FaultModel::none().is_null());
        assert!(FaultModel::uniform(0.0, 42).is_null());
        assert!(!FaultModel::uniform(0.05, 42).is_null());
    }

    #[test]
    fn uniform_scales_all_mechanisms() {
        let m = FaultModel::uniform(0.05, 7);
        assert_eq!(m.crc_abort_ppm, 50_000);
        assert_eq!(m.seu_per_gcycle, 50);
        assert_eq!(m.permanent_failure_ppm, 200_000);
        assert_eq!(m.failure_horizon(), DEFAULT_FAILURE_HORIZON);
        // Saturation at certainty.
        let m = FaultModel::uniform(0.9, 7);
        assert_eq!(m.permanent_failure_ppm, PPM);
    }

    #[test]
    fn rng_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(123);
        let mut b = XorShift64::new(123);
        for _ in 0..64 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
        }
        // Zero seed must not collapse to a stuck stream.
        let mut z = XorShift64::new(0x9E37_79B9_7F4A_7C15); // mixes to zero pre-guard
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn chance_ppm_extremes() {
        let mut rng = XorShift64::new(9);
        assert!(!(0..1_000).any(|_| rng.chance_ppm(0)));
        assert!((0..1_000).all(|_| rng.chance_ppm(PPM)));
    }

    #[test]
    fn seu_lifetime_is_positive_and_roughly_exponential() {
        let mut rng = XorShift64::new(11);
        let draws: Vec<u64> = (0..2_000).map(|_| rng.seu_lifetime(50)).collect();
        assert!(draws.iter().all(|&c| c >= 1));
        // Mean should be in the right ballpark of 1e9/50 = 20M cycles.
        #[allow(clippy::cast_precision_loss)]
        let mean = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
        assert!((10e6..40e6).contains(&mean), "mean lifetime {mean:.0}");
    }
}
