use std::fmt;

use crate::container::ContainerId;

/// Errors reported by the fabric layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FabricError {
    /// The reconfiguration port was configured with zero bandwidth, so no
    /// bitstream can ever be transferred.
    ZeroBandwidth,
    /// The referenced container does not exist in this fabric.
    UnknownContainer(ContainerId),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::ZeroBandwidth => {
                write!(f, "reconfiguration-port bandwidth must be positive")
            }
            FabricError::UnknownContainer(id) => {
                write!(f, "container {id} does not exist in this fabric")
            }
        }
    }
}

impl std::error::Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(FabricError::ZeroBandwidth.to_string().contains("bandwidth"));
        assert!(FabricError::UnknownContainer(ContainerId(3))
            .to_string()
            .contains("AC3"));
    }
}
