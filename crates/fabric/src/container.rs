use std::fmt;

use rispp_model::AtomTypeId;

/// Identifier of one Atom Container within a [`Fabric`](crate::Fabric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContainerId(pub u16);

impl ContainerId {
    /// Zero-based index of this container.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AC{}", self.0)
    }
}

/// Occupancy state of an Atom Container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// No Atom configured (power-on state).
    Empty,
    /// A partial bitstream is currently streaming into this container;
    /// the Atom becomes usable at cycle `finish`.
    Loading {
        /// Atom type being configured.
        atom: AtomTypeId,
        /// Absolute cycle at which the reconfiguration completes.
        finish: u64,
    },
    /// An Atom is configured and usable.
    Loaded {
        /// Atom type held by the container.
        atom: AtomTypeId,
    },
    /// The configured Atom was corrupted by an SEU and is unusable until
    /// the container is scrubbed (reloaded).
    Faulty {
        /// Atom type whose configuration was corrupted.
        atom: AtomTypeId,
    },
    /// The container's tile failed permanently; it can never hold an Atom
    /// again and is excluded from placement and eviction.
    Quarantined,
}

/// One Atom Container: a small reconfigurable region holding one Atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomContainer {
    id: ContainerId,
    state: ContainerState,
    /// Cycle at which the held atom was last used by an SI execution;
    /// consulted by the eviction policy.
    last_used: u64,
}

impl AtomContainer {
    /// Creates an empty container.
    #[must_use]
    pub fn new(id: ContainerId) -> Self {
        AtomContainer {
            id,
            state: ContainerState::Empty,
            last_used: 0,
        }
    }

    /// This container's identifier.
    #[must_use]
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// Current occupancy state.
    #[must_use]
    pub fn state(&self) -> ContainerState {
        self.state
    }

    /// The usable atom, if the container is in the `Loaded` state.
    #[must_use]
    pub fn loaded_atom(&self) -> Option<AtomTypeId> {
        match self.state {
            ContainerState::Loaded { atom } => Some(atom),
            _ => None,
        }
    }

    /// The corrupted atom, if the container is in the `Faulty` state.
    #[must_use]
    pub fn faulty_atom(&self) -> Option<AtomTypeId> {
        match self.state {
            ContainerState::Faulty { atom } => Some(atom),
            _ => None,
        }
    }

    /// Whether this container is permanently out of service.
    #[must_use]
    pub fn is_quarantined(&self) -> bool {
        matches!(self.state, ContainerState::Quarantined)
    }

    /// Cycle of the last recorded use (0 if never used).
    #[must_use]
    pub fn last_used(&self) -> u64 {
        self.last_used
    }

    pub(crate) fn begin_load(&mut self, atom: AtomTypeId, finish: u64) {
        self.state = ContainerState::Loading { atom, finish };
    }

    pub(crate) fn finish_load(&mut self) -> Option<AtomTypeId> {
        if let ContainerState::Loading { atom, .. } = self.state {
            self.state = ContainerState::Loaded { atom };
            Some(atom)
        } else {
            None
        }
    }

    pub(crate) fn mark_used(&mut self, now: u64) {
        self.last_used = now;
    }

    /// SEU hit: a loaded atom's configuration is corrupted in place.
    pub(crate) fn corrupt(&mut self) -> Option<AtomTypeId> {
        if let ContainerState::Loaded { atom } = self.state {
            self.state = ContainerState::Faulty { atom };
            Some(atom)
        } else {
            None
        }
    }

    /// CRC abort: a streaming load is rejected; the region is left blank.
    pub(crate) fn abort_load(&mut self) {
        if matches!(self.state, ContainerState::Loading { .. }) {
            self.state = ContainerState::Empty;
        }
    }

    /// Permanent tile failure: the container leaves service for good.
    pub(crate) fn quarantine(&mut self) {
        self.state = ContainerState::Quarantined;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut ac = AtomContainer::new(ContainerId(3));
        assert_eq!(ac.state(), ContainerState::Empty);
        assert_eq!(ac.loaded_atom(), None);
        ac.begin_load(AtomTypeId(1), 500);
        assert_eq!(ac.loaded_atom(), None);
        assert_eq!(ac.finish_load(), Some(AtomTypeId(1)));
        assert_eq!(ac.loaded_atom(), Some(AtomTypeId(1)));
        ac.mark_used(42);
        assert_eq!(ac.last_used(), 42);
    }

    #[test]
    fn finish_without_loading_is_none() {
        let mut ac = AtomContainer::new(ContainerId(0));
        assert_eq!(ac.finish_load(), None);
    }

    #[test]
    fn container_id_display() {
        assert_eq!(ContainerId(7).to_string(), "AC7");
        assert_eq!(ContainerId(7).index(), 7);
    }

    #[test]
    fn fault_lifecycle() {
        let mut ac = AtomContainer::new(ContainerId(0));
        ac.begin_load(AtomTypeId(2), 100);
        // A CRC abort blanks the region.
        ac.abort_load();
        assert_eq!(ac.state(), ContainerState::Empty);
        // Corruption only applies to loaded atoms.
        assert_eq!(ac.corrupt(), None);
        ac.begin_load(AtomTypeId(2), 200);
        ac.finish_load();
        assert_eq!(ac.corrupt(), Some(AtomTypeId(2)));
        assert_eq!(ac.loaded_atom(), None);
        assert_eq!(ac.faulty_atom(), Some(AtomTypeId(2)));
        // Quarantine is terminal.
        ac.quarantine();
        assert!(ac.is_quarantined());
        assert_eq!(ac.faulty_atom(), None);
    }
}
