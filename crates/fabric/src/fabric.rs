use std::collections::VecDeque;

use rispp_model::{AtomTypeId, AtomUniverse, Molecule};

use crate::container::{AtomContainer, ContainerId, ContainerState};
use crate::error::FabricError;
use crate::fault::{FaultModel, XorShift64};
use crate::port::ReconfigPortConfig;

/// Static configuration of a [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Number of Atom Containers (the paper sweeps 5–24).
    pub containers: u16,
    /// Reconfiguration-port parameters.
    pub port: ReconfigPortConfig,
}

impl FabricConfig {
    /// The prototype fabric with the given number of Atom Containers.
    #[must_use]
    pub fn prototype(containers: u16) -> Self {
        FabricConfig {
            containers,
            port: ReconfigPortConfig::prototype(),
        }
    }
}

/// Completion event: `atom` became usable at cycle `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadCompleted {
    /// The atom type that finished reconfiguring.
    pub atom: AtomTypeId,
    /// Container that now holds the atom.
    pub container: ContainerId,
    /// Absolute completion cycle.
    pub at: u64,
}

/// Everything that can happen on the fabric while time advances.
///
/// Returned in chronological order by [`Fabric::advance_events`]. The first
/// variant is the only one a fault-free fabric ever produces; the rest are
/// injected by the [`FaultModel`] or by an explicit
/// [`Fabric::quarantine`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricEvent {
    /// An atom finished reconfiguring and is usable.
    Completed(LoadCompleted),
    /// A bitstream transfer was rejected (CRC abort or the target tile died
    /// mid-load); the container is empty and the port cycles are lost.
    LoadAborted {
        /// Atom whose load was rejected.
        atom: AtomTypeId,
        /// Container the load was streaming into.
        container: ContainerId,
        /// Cycle at which the abort was detected.
        at: u64,
    },
    /// An SEU corrupted a loaded atom; it left the available set and the
    /// container is [`ContainerState::Faulty`] until scrubbed (reloaded).
    AtomCorrupted {
        /// The corrupted atom type.
        atom: AtomTypeId,
        /// Container holding the corrupted configuration.
        container: ContainerId,
        /// Cycle of the upset.
        at: u64,
    },
    /// A container's tile failed permanently and was quarantined.
    ContainerFailed {
        /// The quarantined container.
        container: ContainerId,
        /// Cycle of the failure.
        at: u64,
    },
}

/// One entry in the fabric's optional container-transition journal.
///
/// Unlike [`FabricEvent`] — which reports only what the run-time manager
/// must *react* to — the journal records every container state transition,
/// including load *starts*, so observers can reconstruct the full
/// load→ready→faulty timeline of each Atom Container (e.g. for Perfetto
/// trace export). Disabled by default; see [`Fabric::set_journal_enabled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricJournalEntry {
    /// A bitstream transfer began streaming into `container` at `at` and
    /// will occupy the port until `finish` (unless aborted earlier).
    LoadStarted {
        /// Target container.
        container: ContainerId,
        /// Atom being loaded.
        atom: AtomTypeId,
        /// Cycle the transfer started.
        at: u64,
        /// Cycle the transfer is due to complete.
        finish: u64,
    },
    /// The transfer into `container` completed; the atom is usable.
    LoadFinished {
        /// Container now holding the atom.
        container: ContainerId,
        /// The atom that became usable.
        atom: AtomTypeId,
        /// Completion cycle.
        at: u64,
    },
    /// The transfer was rejected (CRC abort or target tile death).
    LoadAborted {
        /// Container the load was streaming into.
        container: ContainerId,
        /// Atom whose load was rejected.
        atom: AtomTypeId,
        /// Abort cycle.
        at: u64,
    },
    /// An SEU corrupted the loaded atom; the container is faulty until
    /// scrubbed (reloaded).
    AtomCorrupted {
        /// Container holding the corrupted configuration.
        container: ContainerId,
        /// The corrupted atom.
        atom: AtomTypeId,
        /// Cycle of the upset.
        at: u64,
    },
    /// The container was permanently taken out of service.
    ContainerQuarantined {
        /// The quarantined container.
        container: ContainerId,
        /// Quarantine cycle.
        at: u64,
    },
}

/// Aggregate fabric statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FabricStats {
    /// Atom loads requested via [`Fabric::enqueue_load`].
    pub loads_enqueued: u64,
    /// Atom loads completed.
    pub loads_completed: u64,
    /// Loaded atoms overwritten to make room for new ones.
    pub evictions: u64,
    /// Cycles the reconfiguration port spent streaming bitstreams.
    pub port_busy_cycles: u64,
    /// Pending loads dropped by [`Fabric::clear_pending`] (or because every
    /// container was quarantined).
    pub loads_cancelled: u64,
    /// Loads rejected at the end of the transfer (CRC abort, or the target
    /// tile failing mid-load).
    pub loads_aborted: u64,
    /// Loaded atoms corrupted by single-event upsets.
    pub seu_corruptions: u64,
    /// Containers lost to scheduled permanent tile failures.
    pub permanent_failures: u64,
    /// Containers taken out of service, by the fault schedule or via
    /// [`Fabric::quarantine`].
    pub containers_quarantined: u64,
    /// Port cycles wasted on loads that never became usable.
    pub fault_cycles_lost: u64,
    /// Evictions where the victim atom was loaded on behalf of a
    /// *different* application than the one loading (multi-tenant fabrics
    /// only; structurally zero with a single owner or a partitioned split).
    pub evictions_contested: u64,
}

/// A load streaming through the port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct InFlight {
    atom: AtomTypeId,
    container: ContainerId,
    finish: u64,
    cycles: u64,
    /// Pre-drawn CRC verdict, revealed when the transfer completes.
    abort: bool,
    /// Application on whose behalf the load was enqueued (0 for
    /// single-owner fabrics).
    app: u16,
}

/// Priority of a scheduled tile failure (strikes before everything else at
/// the same cycle).
const PRIO_FAIL: u8 = 0;
/// Priority of a scheduled SEU corruption (after failures, before port
/// completions/starts at the same cycle).
const PRIO_CORRUPT: u8 = 1;

/// Runtime state of the fault model: the RNG stream plus the per-container
/// corruption/failure schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FaultState {
    model: FaultModel,
    rng: XorShift64,
    /// Cycle at which the currently loaded atom gets corrupted (drawn at
    /// load completion, cleared on overwrite/quarantine).
    corrupt_at: Vec<Option<u64>>,
    /// Scheduled permanent-failure cycle per container (drawn once at
    /// construction).
    fail_at: Vec<Option<u64>>,
    /// Every pending fault event, flattened into one ascending-sorted list
    /// of `(cycle, priority, container)` keys and maintained in lock-step
    /// with `corrupt_at`/`fail_at` through [`FaultState::set_corrupt_at`] &
    /// co. `next_internal_event` reads `schedule[0]` in O(1) instead of
    /// scanning every container; the sort key reproduces the scan's
    /// ordering exactly (earliest cycle, Fail < Corrupt on ties, lowest
    /// container index last). A sorted `Vec` rather than a heap keeps the
    /// front readable through `&self` and mutations are rare (one per
    /// fault-schedule change, not per burst).
    schedule: Vec<(u64, u8, u16)>,
}

impl FaultState {
    fn insert(&mut self, key: (u64, u8, u16)) {
        let pos = self.schedule.partition_point(|&e| e < key);
        self.schedule.insert(pos, key);
    }

    fn remove(&mut self, key: (u64, u8, u16)) {
        let pos = self
            .schedule
            .binary_search(&key)
            .expect("flattened schedule out of sync with per-container state");
        self.schedule.remove(pos);
    }

    fn container_key(i: usize) -> u16 {
        u16::try_from(i).expect("container index fits u16")
    }

    /// Schedules an SEU corruption of container `i` at cycle `t`.
    fn set_corrupt_at(&mut self, i: usize, t: u64) {
        debug_assert!(self.corrupt_at[i].is_none(), "corruption already scheduled");
        self.corrupt_at[i] = Some(t);
        self.insert((t, PRIO_CORRUPT, Self::container_key(i)));
    }

    /// Cancels a scheduled corruption of container `i`, if any.
    fn clear_corrupt_at(&mut self, i: usize) {
        if let Some(t) = self.corrupt_at[i].take() {
            self.remove((t, PRIO_CORRUPT, Self::container_key(i)));
        }
    }

    /// Cancels the scheduled permanent failure of container `i`, if any.
    fn clear_fail_at(&mut self, i: usize) {
        if let Some(t) = self.fail_at[i].take() {
            self.remove((t, PRIO_FAIL, Self::container_key(i)));
        }
    }
}

/// Internal event kinds, ordered by processing priority at equal cycles:
/// tile failures strike first, then upsets, then the port transfer
/// completes, then the next queued load may start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Fail(usize),
    Corrupt(usize),
    Finish,
    Start,
}

/// The reconfigurable fabric: Atom Containers plus the reconfiguration port.
///
/// Loads are serialised through the single port in FIFO order. Eviction
/// (overwriting a loaded atom) prefers atoms with instances in excess of the
/// *protected* set (normally `sup(M)` of the currently selected Molecules),
/// breaking ties by least-recent use.
///
/// With a [`FaultModel`] attached (see [`Fabric::with_fault_model`]) the
/// fabric additionally injects CRC aborts, SEU corruption and permanent
/// tile failures, all drawn from one seeded stream so runs stay
/// bit-identical regardless of sweep-thread count.
#[derive(Debug, Clone)]
pub struct Fabric {
    config: FabricConfig,
    bitstream_bytes: Vec<u32>,
    containers: Vec<AtomContainer>,
    /// FIFO of `(atom, not_before, app)`: a load never starts before its
    /// `not_before` cycle (retry backoff uses this), and carries the
    /// application tag it was enqueued for (0 for single-owner fabrics).
    queue: VecDeque<(AtomTypeId, u64, u16)>,
    in_flight: Option<InFlight>,
    available: Molecule,
    generation: u64,
    protected: Molecule,
    /// Last cycle each atom *type* was executed. A container's effective
    /// LRU stamp is the later of its own load-completion mark and its
    /// loaded type's entry here, which makes [`Fabric::mark_used`] O(arity)
    /// instead of O(containers) per burst segment.
    type_used: Vec<u64>,
    now: u64,
    stats: FabricStats,
    fault: Option<FaultState>,
    /// Container-transition journal; empty unless enabled.
    journal_enabled: bool,
    journal: Vec<FabricJournalEntry>,
    /// Application that last loaded (or is loading) into each container —
    /// the multi-tenant ownership tag. `None` until the first load starts.
    owners: Vec<Option<u16>>,
    /// Per-application `(loads_completed, port_busy_cycles)`, indexed by
    /// app tag and grown on demand.
    app_stats: Vec<(u64, u64)>,
}

impl Fabric {
    /// Creates a fault-free fabric with all containers empty at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if the port configuration is invalid (zero bandwidth). Callers
    /// accepting untrusted configs should check
    /// [`ReconfigPortConfig::validate`] first.
    #[must_use]
    pub fn new(config: FabricConfig, universe: &AtomUniverse) -> Self {
        config
            .port
            .validate()
            .expect("fabric port configuration must be valid");
        let arity = universe.arity();
        Fabric {
            config,
            bitstream_bytes: universe.iter().map(|(_, t)| t.bitstream_bytes).collect(),
            containers: (0..config.containers)
                .map(|i| AtomContainer::new(ContainerId(i)))
                .collect(),
            queue: VecDeque::new(),
            in_flight: None,
            available: Molecule::zero(arity),
            generation: 0,
            protected: Molecule::zero(arity),
            type_used: vec![0; arity],
            now: 0,
            stats: FabricStats::default(),
            fault: None,
            journal_enabled: false,
            journal: Vec::new(),
            owners: vec![None; usize::from(config.containers)],
            app_stats: Vec::new(),
        }
    }

    /// Creates a fabric with a seeded [`FaultModel`] attached. The
    /// permanent-failure schedule is drawn immediately; CRC and SEU draws
    /// happen as loads start and complete.
    ///
    /// A [null](FaultModel::is_null) model behaves bit-identically to
    /// [`Fabric::new`].
    ///
    /// # Panics
    ///
    /// Panics if the port configuration is invalid (zero bandwidth), as in
    /// [`Fabric::new`].
    #[must_use]
    pub fn with_fault_model(
        config: FabricConfig,
        universe: &AtomUniverse,
        model: FaultModel,
    ) -> Self {
        let mut fabric = Fabric::new(config, universe);
        let mut rng = XorShift64::new(model.seed);
        let horizon = model.failure_horizon().max(1);
        let fail_at: Vec<Option<u64>> = (0..config.containers)
            .map(|_| {
                if rng.chance_ppm(model.permanent_failure_ppm) {
                    Some(1 + rng.next_u64() % horizon)
                } else {
                    None
                }
            })
            .collect();
        let mut schedule: Vec<(u64, u8, u16)> = fail_at
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (t, PRIO_FAIL, FaultState::container_key(i))))
            .collect();
        schedule.sort_unstable();
        fabric.fault = Some(FaultState {
            model,
            rng,
            corrupt_at: vec![None; usize::from(config.containers)],
            fail_at,
            schedule,
        });
        fabric
    }

    /// The attached fault model, if any.
    #[must_use]
    pub fn fault_model(&self) -> Option<&FaultModel> {
        self.fault.as_ref().map(|f| &f.model)
    }

    /// Number of Atom Containers (including quarantined ones).
    #[must_use]
    pub fn container_count(&self) -> u16 {
        self.config.containers
    }

    /// Number of containers still in service (not quarantined). This is
    /// what Molecule selection must plan against on a degraded fabric.
    #[must_use]
    pub fn usable_container_count(&self) -> u16 {
        let usable = self
            .containers
            .iter()
            .filter(|c| !c.is_quarantined())
            .count();
        u16::try_from(usable).expect("container count fits in u16")
    }

    /// The fabric configuration.
    #[must_use]
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Current simulated cycle (last `advance_to` target).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Atoms currently usable, as a Molecule over the atom universe.
    #[must_use]
    pub fn available(&self) -> &Molecule {
        &self.available
    }

    /// Generation counter of the available-atom set: incremented every time
    /// [`available`](Self::available) changes (a load completing, an atom
    /// being evicted, or a fault removing one). Callers caching anything
    /// derived from the available set — e.g. the best Molecule variant per
    /// SI in `RunTimeManager::execute_burst` — only need to recompute when
    /// this value changes.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Snapshot of all containers.
    #[must_use]
    pub fn containers(&self) -> &[AtomContainer] {
        &self.containers
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Load currently streaming through the port, if any:
    /// `(atom, container, finish)`.
    #[must_use]
    pub fn in_flight(&self) -> Option<(AtomTypeId, ContainerId, u64)> {
        self.in_flight
            .map(|fl| (fl.atom, fl.container, fl.finish))
    }

    /// Number of queued (not yet started) loads.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.queue.len()
    }

    /// Whether the port is idle and no loads are queued.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none() && self.queue.is_empty()
    }

    /// Enables (or disables) the container-transition journal. While
    /// enabled, every load start/finish/abort, corruption and quarantine is
    /// appended to an internal buffer that observers drain via
    /// [`Fabric::drain_journal`]. Off by default so fault-free hot paths
    /// never allocate for it.
    pub fn set_journal_enabled(&mut self, enabled: bool) {
        self.journal_enabled = enabled;
        if !enabled {
            self.journal.clear();
        }
    }

    /// Whether the container-transition journal is being recorded.
    #[must_use]
    pub fn journal_enabled(&self) -> bool {
        self.journal_enabled
    }

    /// Moves all buffered journal entries (chronological order) into `out`.
    pub fn drain_journal(&mut self, out: &mut Vec<FabricJournalEntry>) {
        out.append(&mut self.journal);
    }

    #[inline]
    fn record(&mut self, entry: FabricJournalEntry) {
        if self.journal_enabled {
            self.journal.push(entry);
        }
    }

    /// Marks the given atom set as protected from eviction (normally
    /// `sup(M)` of the Molecules selected for the upcoming hot spot).
    ///
    /// # Panics
    ///
    /// Panics if the Molecule arity does not match the universe.
    pub fn set_protected(&mut self, protected: Molecule) {
        assert_eq!(
            protected.arity(),
            self.available.arity(),
            "protected set arity must match universe"
        );
        self.protected = protected;
    }

    /// Appends an atom-load request to the port queue.
    ///
    /// # Panics
    ///
    /// Panics if the atom type is outside the universe.
    pub fn enqueue_load(&mut self, atom: AtomTypeId) {
        self.enqueue_load_after(atom, 0);
    }

    /// Appends an atom-load request that must not start before cycle
    /// `not_before` (retry backoff after an aborted load).
    ///
    /// # Panics
    ///
    /// Panics if the atom type is outside the universe.
    pub fn enqueue_load_after(&mut self, atom: AtomTypeId, not_before: u64) {
        self.enqueue_load_app(0, atom, not_before);
    }

    /// Appends an atom-load request on behalf of application `app` (the
    /// multi-tenant entry point; `app` 0 is the single-owner default). The
    /// tag flows into the container's ownership record when the load starts
    /// and into the per-app port accounting when it completes.
    ///
    /// # Panics
    ///
    /// Panics if the atom type is outside the universe.
    pub fn enqueue_load_app(&mut self, app: u16, atom: AtomTypeId, not_before: u64) {
        assert!(
            atom.index() < self.bitstream_bytes.len(),
            "atom type {atom} outside universe"
        );
        self.stats.loads_enqueued += 1;
        self.queue.push_back((atom, not_before, app));
        self.try_start_next(self.now);
    }

    /// Appends a full schedule (sequence of atom loads) to the queue.
    pub fn enqueue_schedule<I: IntoIterator<Item = AtomTypeId>>(&mut self, atoms: I) {
        self.enqueue_schedule_app(0, atoms);
    }

    /// Appends a full schedule on behalf of application `app`.
    pub fn enqueue_schedule_app<I: IntoIterator<Item = AtomTypeId>>(
        &mut self,
        app: u16,
        atoms: I,
    ) {
        for atom in atoms {
            self.enqueue_load_app(app, atom, 0);
        }
    }

    /// Drops all queued loads (the in-flight bitstream, if any, completes).
    ///
    /// Called on a hot-spot switch when a fresh schedule supersedes the old
    /// one.
    pub fn clear_pending(&mut self) {
        self.stats.loads_cancelled += self.queue.len() as u64;
        self.queue.clear();
    }

    /// Drops the queued loads tagged for application `app`, leaving other
    /// tenants' pending loads in place. With every entry tagged `app` this
    /// is exactly [`Fabric::clear_pending`].
    pub fn clear_pending_app(&mut self, app: u16) {
        let before = self.queue.len();
        self.queue.retain(|&(_, _, a)| a != app);
        self.stats.loads_cancelled += (before - self.queue.len()) as u64;
    }

    /// Application that last loaded (or is loading) into `container`, if
    /// any load ever started there — the multi-tenant ownership tag.
    #[must_use]
    pub fn owner_of(&self, container: ContainerId) -> Option<u16> {
        self.owners.get(container.index()).copied().flatten()
    }

    /// Per-application `(loads_completed, port_busy_cycles)` for `app`;
    /// zero for tags that never loaded.
    #[must_use]
    pub fn app_port_stats(&self, app: u16) -> (u64, u64) {
        self.app_stats
            .get(usize::from(app))
            .copied()
            .unwrap_or((0, 0))
    }

    fn app_stats_mut(&mut self, app: u16) -> &mut (u64, u64) {
        let idx = usize::from(app);
        if idx >= self.app_stats.len() {
            self.app_stats.resize(idx + 1, (0, 0));
        }
        &mut self.app_stats[idx]
    }

    /// Records that atoms of the executing Molecule were used at `now`;
    /// feeds the least-recently-used eviction tie-breaker.
    ///
    /// Only the per-type timestamps are touched (O(arity), independent of
    /// the container count); [`Fabric::effective_last_used`] folds them back
    /// into per-container stamps on the cold eviction path.
    pub fn mark_used(&mut self, atoms: &Molecule, now: u64) {
        for (i, &count) in atoms.counts().iter().enumerate() {
            if count > 0 {
                self.type_used[i] = now;
            }
        }
    }

    /// Mask-based variant of [`Fabric::mark_used`] for burst hot paths:
    /// bit `i` of `mask` marks atom type `i` as executed at `now` (see
    /// [`Molecule::nonzero_mask`]). Runs in O(types used by the Molecule)
    /// — typically one or two — instead of O(arity).
    pub fn mark_used_types(&mut self, mut mask: u64, now: u64) {
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            debug_assert!(i < self.type_used.len(), "mask bit outside universe");
            if let Some(slot) = self.type_used.get_mut(i) {
                *slot = now;
            }
            mask &= mask - 1;
        }
    }

    /// Effective least-recently-used stamp of a container: the later of the
    /// container's own mark (set when its load completed) and the last
    /// execution of its loaded atom's type. Matches per-container marking
    /// exactly because an execution at cycle `t` uses — and under the old
    /// scheme would have stamped — every container already loaded with that
    /// type at `t`, while containers finishing later keep the newer
    /// load-completion mark.
    #[must_use]
    pub fn effective_last_used(&self, container: &AtomContainer) -> u64 {
        match container.loaded_atom() {
            Some(atom) => container.last_used().max(self.type_used[atom.index()]),
            None => container.last_used(),
        }
    }

    /// Permanently removes a container from service (run-time-manager
    /// policy, e.g. after exhausting load retries on a flaky tile). Any
    /// load streaming into it is aborted, a loaded atom leaves the
    /// available set, and the container is never used again.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::UnknownContainer`] for an out-of-range id.
    pub fn quarantine(&mut self, id: ContainerId) -> Result<(), FabricError> {
        if id.index() >= self.containers.len() {
            return Err(FabricError::UnknownContainer(id));
        }
        if self.containers[id.index()].is_quarantined() {
            return Ok(());
        }
        self.quarantine_container(id.index(), self.now);
        self.stats.containers_quarantined += 1;
        self.try_start_next(self.now);
        Ok(())
    }

    /// Advances simulated time to `now`, completing every load that
    /// finishes by then and starting queued loads as the port frees up.
    /// Returns only the completion events in chronological order; use
    /// [`Fabric::advance_events`] to observe fault events too.
    ///
    /// # Panics
    ///
    /// Panics if `now` moves backwards.
    pub fn advance_to(&mut self, now: u64) -> Vec<LoadCompleted> {
        self.advance_events(now)
            .into_iter()
            .filter_map(|e| match e {
                FabricEvent::Completed(done) => Some(done),
                _ => None,
            })
            .collect()
    }

    /// Advances simulated time to `now`, processing port completions,
    /// CRC aborts, SEU corruptions and scheduled tile failures in
    /// chronological order. Returns every event that occurred.
    ///
    /// # Panics
    ///
    /// Panics if `now` moves backwards.
    pub fn advance_events(&mut self, now: u64) -> Vec<FabricEvent> {
        let mut events = Vec::new();
        self.advance_events_into(now, &mut events);
        events
    }

    /// Buffer-reusing form of [`Fabric::advance_events`]: clears `events`
    /// and writes the occurred events into it, so event-driven hot loops
    /// (the arbiter's fabric sync) can step many event windows without
    /// allocating a `Vec` per window.
    ///
    /// # Panics
    ///
    /// Panics if `now` moves backwards.
    pub fn advance_events_into(&mut self, now: u64, events: &mut Vec<FabricEvent>) {
        assert!(now >= self.now, "time must be monotone");
        events.clear();
        while let Some((t, kind)) = self.next_internal_event() {
            if t > now {
                break;
            }
            self.process_event(t, kind, events);
        }
        self.now = now;
    }

    /// Earliest cycle at which the fabric state next changes on its own
    /// (a transfer completing, a backoff-delayed load starting, an upset
    /// or a scheduled tile failure), if any.
    #[must_use]
    pub fn next_event_at(&self) -> Option<u64> {
        self.next_internal_event().map(|(t, _)| t)
    }

    /// Advances the clock to `now` without scanning for events — the fast
    /// path of burst execution once the caller has checked (via
    /// [`Fabric::next_event_at`]) that nothing is due by `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` moves backwards; debug builds also verify that no
    /// due event is being skipped.
    pub fn advance_clock(&mut self, now: u64) {
        assert!(now >= self.now, "time must be monotone");
        debug_assert!(
            self.next_event_at().is_none_or(|e| e > now),
            "advance_clock would skip a due fabric event"
        );
        self.now = now;
    }

    /// Picks the next internal event: minimum cycle, ties broken by
    /// [`EventKind`] priority (failures before upsets before completions
    /// before starts), then by container index.
    ///
    /// Fault events come from the flattened `FaultState::schedule` in O(1);
    /// its `(cycle, priority, container)` sort key encodes exactly this
    /// ordering, and its maintenance invariants (`fail_at` entries only for
    /// non-quarantined containers, `corrupt_at` only for loaded ones) make
    /// the per-container eligibility checks of the old scan redundant.
    fn next_internal_event(&self) -> Option<(u64, EventKind)> {
        let mut best: Option<(u64, u8, EventKind)> = None;
        let consider = |t: u64, prio: u8, kind: EventKind, best: &mut Option<_>| {
            if best.is_none_or(|(bt, bp, _)| (t, prio) < (bt, bp)) {
                *best = Some((t, prio, kind));
            }
        };
        if let Some(f) = &self.fault {
            if let Some(&(t, prio, i)) = f.schedule.first() {
                let kind = match prio {
                    PRIO_FAIL => EventKind::Fail(usize::from(i)),
                    _ => EventKind::Corrupt(usize::from(i)),
                };
                best = Some((t, prio, kind));
            }
        }
        if let Some(fl) = &self.in_flight {
            consider(fl.finish, 2, EventKind::Finish, &mut best);
        } else if let Some(&(_, not_before, _)) = self.queue.front() {
            // Port idle with a queued load: it starts once its backoff
            // window opens (or immediately, at `now`).
            consider(not_before.max(self.now), 3, EventKind::Start, &mut best);
        }
        best.map(|(t, _, kind)| (t, kind))
    }

    fn process_event(&mut self, t: u64, kind: EventKind, events: &mut Vec<FabricEvent>) {
        match kind {
            EventKind::Fail(i) => {
                // Capture a load streaming into the dying tile before the
                // quarantine clears it, so the abort is observable.
                let killed = self.in_flight.filter(|fl| fl.container.index() == i);
                self.quarantine_container(i, t);
                self.stats.permanent_failures += 1;
                self.stats.containers_quarantined += 1;
                events.push(FabricEvent::ContainerFailed {
                    container: ContainerId(u16::try_from(i).expect("container index fits u16")),
                    at: t,
                });
                if let Some(fl) = killed {
                    events.push(FabricEvent::LoadAborted {
                        atom: fl.atom,
                        container: fl.container,
                        at: t,
                    });
                }
                self.try_start_next(t);
            }
            EventKind::Corrupt(i) => {
                if let Some(f) = &mut self.fault {
                    f.clear_corrupt_at(i);
                }
                if let Some(atom) = self.containers[i].corrupt() {
                    self.remove_available(atom);
                    self.stats.seu_corruptions += 1;
                    let container = self.containers[i].id();
                    self.record(FabricJournalEntry::AtomCorrupted { container, atom, at: t });
                    events.push(FabricEvent::AtomCorrupted {
                        atom,
                        container,
                        at: t,
                    });
                }
            }
            EventKind::Finish => {
                let fl = self.in_flight.take().expect("finish event implies in-flight load");
                let i = fl.container.index();
                if fl.abort {
                    self.containers[i].abort_load();
                    self.stats.loads_aborted += 1;
                    self.stats.fault_cycles_lost += fl.cycles;
                    self.record(FabricJournalEntry::LoadAborted {
                        container: fl.container,
                        atom: fl.atom,
                        at: t,
                    });
                    events.push(FabricEvent::LoadAborted {
                        atom: fl.atom,
                        container: fl.container,
                        at: t,
                    });
                } else {
                    let c = &mut self.containers[i];
                    c.finish_load();
                    c.mark_used(t);
                    let idx = fl.atom.index();
                    let have = self.available.count(idx);
                    self.available.set_count(idx, have.saturating_add(1));
                    self.generation += 1;
                    self.stats.loads_completed += 1;
                    self.app_stats_mut(fl.app).0 += 1;
                    if let Some(f) = &mut self.fault {
                        if f.model.seu_per_gcycle > 0 {
                            let lifetime = f.rng.seu_lifetime(f.model.seu_per_gcycle);
                            f.set_corrupt_at(i, t + lifetime);
                        }
                    }
                    self.record(FabricJournalEntry::LoadFinished {
                        container: fl.container,
                        atom: fl.atom,
                        at: t,
                    });
                    events.push(FabricEvent::Completed(LoadCompleted {
                        atom: fl.atom,
                        container: fl.container,
                        at: t,
                    }));
                }
                // The port frees at `t`; the next queued load starts there.
                self.try_start_next(t);
            }
            EventKind::Start => {
                self.try_start_next(t);
            }
        }
    }

    /// Quarantines container `i` in place: kills a load streaming into it
    /// (accounting the port cycles as lost), removes a loaded atom from the
    /// available set and clears the container's fault schedule.
    fn quarantine_container(&mut self, i: usize, at: u64) {
        if let Some(atom) = self.containers[i].loaded_atom() {
            self.remove_available(atom);
        }
        self.containers[i].quarantine();
        if let Some(f) = &mut self.fault {
            f.clear_corrupt_at(i);
            f.clear_fail_at(i);
        }
        if let Some(fl) = self.in_flight.filter(|fl| fl.container.index() == i) {
            self.in_flight = None;
            self.stats.loads_aborted += 1;
            self.stats.fault_cycles_lost += fl.cycles;
            self.record(FabricJournalEntry::LoadAborted {
                container: fl.container,
                atom: fl.atom,
                at,
            });
        }
        self.record(FabricJournalEntry::ContainerQuarantined {
            container: ContainerId(u16::try_from(i).expect("container index fits u16")),
            at,
        });
    }

    fn remove_available(&mut self, atom: AtomTypeId) {
        let idx = atom.index();
        let have = self.available.count(idx);
        self.available.set_count(idx, have - 1);
        self.generation += 1;
    }

    fn try_start_next(&mut self, at: u64) {
        if self.in_flight.is_some() {
            return;
        }
        loop {
            let Some(&(atom, not_before, app)) = self.queue.front() else {
                return;
            };
            if not_before > at {
                // Backoff window still closed; the event loop will start it
                // once `not_before` is reached.
                return;
            }
            let Some(victim) = self.pick_container() else {
                // Every container is quarantined: the load can never be
                // placed. Drop it so the queue cannot wedge the port.
                self.queue.pop_front();
                self.stats.loads_cancelled += 1;
                continue;
            };
            self.queue.pop_front();
            let c = &mut self.containers[victim.index()];
            if let Some(old) = c.loaded_atom() {
                // Partial reconfiguration overwrites the old atom
                // immediately: one instance of the evicted type leaves the
                // available set.
                self.stats.evictions += 1;
                if self.owners[victim.index()].is_some_and(|o| o != app) {
                    self.stats.evictions_contested += 1;
                }
                self.remove_available(old);
            }
            let cycles = self
                .config
                .port
                .load_cycles(self.bitstream_bytes[atom.index()])
                .expect("port config validated at construction");
            let finish = at + cycles;
            self.stats.port_busy_cycles += cycles;
            self.app_stats_mut(app).1 += cycles;
            let abort = match &mut self.fault {
                // One CRC draw per started load, revealed at the end of the
                // transfer (rate zero draws too, keeping the stream stable).
                Some(f) => f.rng.chance_ppm(f.model.crc_abort_ppm),
                None => false,
            };
            if let Some(f) = &mut self.fault {
                // Whatever corruption was scheduled for the overwritten
                // atom no longer applies.
                f.clear_corrupt_at(victim.index());
            }
            self.containers[victim.index()].begin_load(atom, finish);
            self.owners[victim.index()] = Some(app);
            self.record(FabricJournalEntry::LoadStarted {
                container: victim,
                atom,
                at,
                finish,
            });
            self.in_flight = Some(InFlight {
                atom,
                container: victim,
                finish,
                cycles,
                abort,
                app,
            });
            return;
        }
    }

    /// Chooses the container for the next load: an empty one if available,
    /// else a faulty one (scrub-and-reload target), otherwise a loaded
    /// container holding an atom in excess of the protected set (least
    /// recently used first), otherwise the globally least recently used
    /// loaded container. Quarantined containers are never candidates.
    fn pick_container(&self) -> Option<ContainerId> {
        // One pass covers the first two preference tiers and gathers the
        // loaded-instances-per-type counts the eviction tiers need: the
        // first empty container wins outright, the first faulty one is
        // remembered as the scrub target.
        let arity = self.available.arity();
        let mut stack = [0u16; 64];
        let mut heap = Vec::new();
        let loaded: &mut [u16] = if arity <= stack.len() {
            &mut stack[..arity]
        } else {
            heap.resize(arity, 0);
            &mut heap
        };
        let mut faulty = None;
        for c in &self.containers {
            match c.state() {
                ContainerState::Empty => return Some(c.id()),
                ContainerState::Faulty { .. } if faulty.is_none() => faulty = Some(c.id()),
                _ => {}
            }
            if let Some(a) = c.loaded_atom() {
                loaded[a.index()] += 1;
            }
        }
        if faulty.is_some() {
            return faulty;
        }
        // Second pass fuses the last two tiers — least-recently-used among
        // containers holding an atom in excess of the protected set, else
        // least-recently-used loaded overall — tracking both minima at
        // once. Strict `<` keeps `min_by_key`'s first-minimum tie-break.
        let mut excess: Option<(u64, ContainerId)> = None;
        let mut any: Option<(u64, ContainerId)> = None;
        for c in &self.containers {
            let Some(a) = c.loaded_atom() else { continue };
            let eff = self.effective_last_used(c);
            if loaded[a.index()] > self.protected.count(a.index())
                && excess.is_none_or(|(best, _)| eff < best)
            {
                excess = Some((eff, c.id()));
            }
            if any.is_none_or(|(best, _)| eff < best) {
                any = Some((eff, c.id()));
            }
        }
        excess.or(any).map(|(_, id)| id)
    }
}
