use std::collections::VecDeque;

use rispp_model::{AtomTypeId, AtomUniverse, Molecule};

use crate::container::{AtomContainer, ContainerId, ContainerState};
use crate::port::ReconfigPortConfig;

/// Static configuration of a [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Number of Atom Containers (the paper sweeps 5–24).
    pub containers: u16,
    /// Reconfiguration-port parameters.
    pub port: ReconfigPortConfig,
}

impl FabricConfig {
    /// The prototype fabric with the given number of Atom Containers.
    #[must_use]
    pub fn prototype(containers: u16) -> Self {
        FabricConfig {
            containers,
            port: ReconfigPortConfig::prototype(),
        }
    }
}

/// Completion event: `atom` became usable at cycle `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadCompleted {
    /// The atom type that finished reconfiguring.
    pub atom: AtomTypeId,
    /// Container that now holds the atom.
    pub container: ContainerId,
    /// Absolute completion cycle.
    pub at: u64,
}

/// Aggregate fabric statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FabricStats {
    /// Atom loads requested via [`Fabric::enqueue_load`].
    pub loads_enqueued: u64,
    /// Atom loads completed.
    pub loads_completed: u64,
    /// Loaded atoms overwritten to make room for new ones.
    pub evictions: u64,
    /// Cycles the reconfiguration port spent streaming bitstreams.
    pub port_busy_cycles: u64,
    /// Pending loads dropped by [`Fabric::clear_pending`].
    pub loads_cancelled: u64,
}

/// The reconfigurable fabric: Atom Containers plus the reconfiguration port.
///
/// Loads are serialised through the single port in FIFO order. Eviction
/// (overwriting a loaded atom) prefers atoms with instances in excess of the
/// *protected* set (normally `sup(M)` of the currently selected Molecules),
/// breaking ties by least-recent use.
#[derive(Debug, Clone)]
pub struct Fabric {
    config: FabricConfig,
    bitstream_bytes: Vec<u32>,
    containers: Vec<AtomContainer>,
    queue: VecDeque<AtomTypeId>,
    in_flight: Option<(AtomTypeId, ContainerId, u64)>,
    available: Molecule,
    generation: u64,
    protected: Molecule,
    now: u64,
    stats: FabricStats,
}

impl Fabric {
    /// Creates a fabric with all containers empty at cycle 0.
    #[must_use]
    pub fn new(config: FabricConfig, universe: &AtomUniverse) -> Self {
        let arity = universe.arity();
        Fabric {
            config,
            bitstream_bytes: universe.iter().map(|(_, t)| t.bitstream_bytes).collect(),
            containers: (0..config.containers)
                .map(|i| AtomContainer::new(ContainerId(i)))
                .collect(),
            queue: VecDeque::new(),
            in_flight: None,
            available: Molecule::zero(arity),
            generation: 0,
            protected: Molecule::zero(arity),
            now: 0,
            stats: FabricStats::default(),
        }
    }

    /// Number of Atom Containers.
    #[must_use]
    pub fn container_count(&self) -> u16 {
        self.config.containers
    }

    /// The fabric configuration.
    #[must_use]
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Current simulated cycle (last `advance_to` target).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Atoms currently usable, as a Molecule over the atom universe.
    #[must_use]
    pub fn available(&self) -> &Molecule {
        &self.available
    }

    /// Generation counter of the available-atom set: incremented every time
    /// [`available`](Self::available) changes (a load completing or an atom
    /// being evicted). Callers caching anything derived from the available
    /// set — e.g. the best Molecule variant per SI in
    /// `RunTimeManager::execute_burst` — only need to recompute when this
    /// value changes.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Snapshot of all containers.
    #[must_use]
    pub fn containers(&self) -> &[AtomContainer] {
        &self.containers
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Load currently streaming through the port, if any:
    /// `(atom, container, finish)`.
    #[must_use]
    pub fn in_flight(&self) -> Option<(AtomTypeId, ContainerId, u64)> {
        self.in_flight
    }

    /// Number of queued (not yet started) loads.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.queue.len()
    }

    /// Whether the port is idle and no loads are queued.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none() && self.queue.is_empty()
    }

    /// Marks the given atom set as protected from eviction (normally
    /// `sup(M)` of the Molecules selected for the upcoming hot spot).
    ///
    /// # Panics
    ///
    /// Panics if the Molecule arity does not match the universe.
    pub fn set_protected(&mut self, protected: Molecule) {
        assert_eq!(
            protected.arity(),
            self.available.arity(),
            "protected set arity must match universe"
        );
        self.protected = protected;
    }

    /// Appends an atom-load request to the port queue.
    ///
    /// # Panics
    ///
    /// Panics if the atom type is outside the universe.
    pub fn enqueue_load(&mut self, atom: AtomTypeId) {
        assert!(
            atom.index() < self.bitstream_bytes.len(),
            "atom type {atom} outside universe"
        );
        self.stats.loads_enqueued += 1;
        self.queue.push_back(atom);
        self.try_start_next(self.now);
    }

    /// Appends a full schedule (sequence of atom loads) to the queue.
    pub fn enqueue_schedule<I: IntoIterator<Item = AtomTypeId>>(&mut self, atoms: I) {
        for atom in atoms {
            self.enqueue_load(atom);
        }
    }

    /// Drops all queued loads (the in-flight bitstream, if any, completes).
    ///
    /// Called on a hot-spot switch when a fresh schedule supersedes the old
    /// one.
    pub fn clear_pending(&mut self) {
        self.stats.loads_cancelled += self.queue.len() as u64;
        self.queue.clear();
    }

    /// Records that atoms of the executing Molecule were used at `now`;
    /// feeds the least-recently-used eviction tie-breaker.
    pub fn mark_used(&mut self, atoms: &Molecule, now: u64) {
        for c in &mut self.containers {
            if let Some(atom) = c.loaded_atom() {
                if atoms.count(atom.index()) > 0 {
                    c.mark_used(now);
                }
            }
        }
    }

    /// Advances simulated time to `now`, completing every load that
    /// finishes by then and starting queued loads as the port frees up.
    /// Returns the completion events in chronological order.
    ///
    /// # Panics
    ///
    /// Panics if `now` moves backwards.
    pub fn advance_to(&mut self, now: u64) -> Vec<LoadCompleted> {
        assert!(now >= self.now, "time must be monotone");
        let mut events = Vec::new();
        while let Some((atom, container, finish)) = self.in_flight {
            if finish > now {
                break;
            }
            self.in_flight = None;
            let c = &mut self.containers[container.index()];
            c.finish_load();
            c.mark_used(finish);
            self.available = self
                .available
                .saturating_add(&Molecule::unit(self.available.arity(), atom.index()));
            self.generation += 1;
            self.stats.loads_completed += 1;
            events.push(LoadCompleted {
                atom,
                container,
                at: finish,
            });
            // The port frees at `finish`; the next queued load starts there.
            self.try_start_next(finish);
        }
        self.now = now;
        events
    }

    /// Earliest cycle at which the next completion event occurs, if any.
    #[must_use]
    pub fn next_event_at(&self) -> Option<u64> {
        self.in_flight.map(|(_, _, finish)| finish)
    }

    fn try_start_next(&mut self, at: u64) {
        if self.in_flight.is_some() {
            return;
        }
        let Some(atom) = self.queue.pop_front() else {
            return;
        };
        let Some(victim) = self.pick_container() else {
            // No container can accept a load (single container mid-flight);
            // put the request back and wait.
            self.queue.push_front(atom);
            return;
        };
        let c = &mut self.containers[victim.index()];
        if let Some(old) = c.loaded_atom() {
            // Partial reconfiguration overwrites the old atom immediately:
            // one instance of the evicted type leaves the available set.
            let mut counts: Vec<u16> = self.available.counts().to_vec();
            counts[old.index()] -= 1;
            self.available = Molecule::from_counts(counts);
            self.generation += 1;
            self.stats.evictions += 1;
        }
        let cycles = self.config.port.load_cycles(self.bitstream_bytes[atom.index()]);
        let finish = at + cycles;
        self.stats.port_busy_cycles += cycles;
        self.containers[victim.index()].begin_load(atom, finish);
        self.in_flight = Some((atom, victim, finish));
    }

    /// Chooses the container for the next load: an empty one if available,
    /// otherwise a loaded container holding an atom in excess of the
    /// protected set (least recently used first), otherwise the globally
    /// least recently used loaded container.
    fn pick_container(&self) -> Option<ContainerId> {
        if let Some(c) = self
            .containers
            .iter()
            .find(|c| matches!(c.state(), ContainerState::Empty))
        {
            return Some(c.id());
        }
        // Count loaded instances per type to find excess over protected.
        let loaded: Vec<u16> = {
            let mut v = vec![0u16; self.available.arity()];
            for c in &self.containers {
                if let Some(a) = c.loaded_atom() {
                    v[a.index()] += 1;
                }
            }
            v
        };
        let evictable = |c: &&AtomContainer| {
            c.loaded_atom()
                .map(|a| loaded[a.index()] > self.protected.count(a.index()))
                .unwrap_or(false)
        };
        if let Some(c) = self
            .containers
            .iter()
            .filter(evictable)
            .min_by_key(|c| c.last_used())
        {
            return Some(c.id());
        }
        self.containers
            .iter()
            .filter(|c| c.loaded_atom().is_some())
            .min_by_key(|c| c.last_used())
            .map(AtomContainer::id)
    }
}
