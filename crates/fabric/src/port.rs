use crate::error::FabricError;
use crate::ClockDomain;

/// Configuration of the single reconfiguration port (SelectMAP/ICAP).
///
/// The paper's prototype streams partial bitstreams at 66 MB/s nominal
/// bandwidth; the measured average reconfiguration time of one Atom is
/// 874.03 µs. Those two figures together with the average bitstream size
/// (60,488 bytes) imply an *effective* bandwidth slightly above nominal
/// (~69.2 MB/s); [`ReconfigPortConfig::prototype`] uses the effective value
/// so that the measured per-Atom latency is reproduced exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigPortConfig {
    /// Sustained bitstream bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Fixed per-load overhead in cycles (port arbitration, frame sync).
    pub setup_overhead_cycles: u64,
    /// Clock domain used to convert transfer time to cycles.
    pub clock: ClockDomain,
}

impl ReconfigPortConfig {
    /// The prototype's port: effective 69.2 MB/s so that the paper's average
    /// bitstream (60,488 B) loads in the paper's average 874 µs.
    #[must_use]
    pub fn prototype() -> Self {
        ReconfigPortConfig {
            bandwidth_bytes_per_sec: 69_206_000,
            setup_overhead_cycles: 0,
            clock: ClockDomain::PROTOTYPE,
        }
    }

    /// A port with the given nominal bandwidth on the prototype clock.
    #[must_use]
    pub fn with_bandwidth(bandwidth_bytes_per_sec: u64) -> Self {
        ReconfigPortConfig {
            bandwidth_bytes_per_sec,
            setup_overhead_cycles: 0,
            clock: ClockDomain::PROTOTYPE,
        }
    }

    /// Checks that the configuration can actually transfer bitstreams.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::ZeroBandwidth`] if the bandwidth is zero.
    pub fn validate(&self) -> Result<(), FabricError> {
        if self.bandwidth_bytes_per_sec == 0 {
            return Err(FabricError::ZeroBandwidth);
        }
        Ok(())
    }

    /// Cycles needed to load a partial bitstream of `bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::ZeroBandwidth`] if the configured bandwidth is
    /// zero (a transfer would never finish). Construction-time callers are
    /// expected to reject such configs up front via
    /// [`ReconfigPortConfig::validate`].
    pub fn load_cycles(&self, bytes: u32) -> Result<u64, FabricError> {
        self.validate()?;
        #[allow(clippy::cast_precision_loss)]
        let seconds = f64::from(bytes) / self.bandwidth_bytes_per_sec as f64;
        Ok(self.setup_overhead_cycles + self.clock.cycles_for_us(seconds * 1e6))
    }
}

impl Default for ReconfigPortConfig {
    fn default() -> Self {
        ReconfigPortConfig::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_reproduces_874us_per_average_atom() {
        let port = ReconfigPortConfig::prototype();
        let cycles = port.load_cycles(60_488).unwrap();
        let us = port.clock.us_for_cycles(cycles);
        assert!(
            (us - 874.03).abs() < 1.0,
            "average atom should load in ~874 µs, got {us:.2}"
        );
    }

    #[test]
    fn load_time_scales_with_size() {
        let port = ReconfigPortConfig::prototype();
        assert!(port.load_cycles(120_000).unwrap() > 2 * port.load_cycles(59_000).unwrap());
        assert_eq!(port.load_cycles(0).unwrap(), 0);
    }

    #[test]
    fn setup_overhead_is_added_once() {
        let mut port = ReconfigPortConfig::with_bandwidth(66_000_000);
        port.setup_overhead_cycles = 100;
        assert_eq!(port.load_cycles(0).unwrap(), 100);
    }

    #[test]
    fn zero_bandwidth_is_an_error_not_a_panic() {
        let port = ReconfigPortConfig::with_bandwidth(0);
        assert_eq!(port.validate(), Err(FabricError::ZeroBandwidth));
        assert_eq!(port.load_cycles(60_488), Err(FabricError::ZeroBandwidth));
        assert!(ReconfigPortConfig::prototype().validate().is_ok());
    }
}
