//! Behavioural tests of the seeded fault-injection layer: CRC aborts, SEU
//! corruption, permanent tile failures, quarantine, and the determinism
//! guarantees that make fault runs reproducible.

use proptest::prelude::*;
use rispp_fabric::fault::PPM;
use rispp_fabric::{
    ContainerId, ContainerState, Fabric, FabricConfig, FabricError, FabricEvent, FaultModel,
    ReconfigPortConfig,
};
use rispp_model::{AtomTypeId, AtomTypeInfo, AtomUniverse};

fn universe(n: usize) -> AtomUniverse {
    AtomUniverse::from_types((0..n).map(|i| AtomTypeInfo::new(format!("T{i}")))).unwrap()
}

fn per_atom() -> u64 {
    ReconfigPortConfig::prototype().load_cycles(60_488).unwrap()
}

#[test]
fn null_model_is_bit_identical_to_no_model() {
    let u = universe(3);
    let mut plain = Fabric::new(FabricConfig::prototype(2), &u);
    let mut nulled = Fabric::with_fault_model(FabricConfig::prototype(2), &u, FaultModel::uniform(0.0, 0xDEAD));
    assert!(FaultModel::uniform(0.0, 0xDEAD).is_null());
    let script = [0u16, 1, 2, 0, 2, 1, 0];
    for (i, &a) in script.iter().enumerate() {
        plain.enqueue_load(AtomTypeId(a));
        nulled.enqueue_load(AtomTypeId(a));
        let now = (i as u64 + 1) * 40_000;
        assert_eq!(plain.advance_events(now), nulled.advance_events(now));
        assert_eq!(plain.available(), nulled.available());
        assert_eq!(plain.generation(), nulled.generation());
        assert_eq!(plain.in_flight(), nulled.in_flight());
        assert_eq!(plain.next_event_at(), nulled.next_event_at());
    }
    assert_eq!(plain.advance_events(10_000_000), nulled.advance_events(10_000_000));
    assert_eq!(plain.stats(), nulled.stats());
}

#[test]
fn certain_crc_abort_rejects_every_load() {
    let model = FaultModel {
        seed: 1,
        crc_abort_ppm: PPM,
        ..FaultModel::default()
    };
    let mut f = Fabric::with_fault_model(FabricConfig::prototype(2), &universe(2), model);
    f.enqueue_load(AtomTypeId(0));
    let events = f.advance_events(10_000_000);
    assert_eq!(
        events,
        vec![FabricEvent::LoadAborted {
            atom: AtomTypeId(0),
            container: ContainerId(0),
            at: per_atom(),
        }]
    );
    assert_eq!(f.containers()[0].state(), ContainerState::Empty);
    assert_eq!(f.available().total_atoms(), 0);
    assert_eq!(f.stats().loads_aborted, 1);
    assert_eq!(f.stats().loads_completed, 0);
    assert_eq!(f.stats().fault_cycles_lost, per_atom());
    assert!(f.is_idle(), "an aborted load must free the port");
}

#[test]
fn seu_corrupts_then_scrub_reload_recovers() {
    // Mean lifetime 1e9/1e6 = 1000 cycles: corruption lands shortly after
    // the load completes.
    let model = FaultModel {
        seed: 2,
        seu_per_gcycle: 1_000_000,
        ..FaultModel::default()
    };
    let mut f = Fabric::with_fault_model(FabricConfig::prototype(1), &universe(1), model);
    f.enqueue_load(AtomTypeId(0));
    let events = f.advance_events(10_000_000);
    assert_eq!(events.len(), 2, "completion then corruption: {events:?}");
    assert!(matches!(events[0], FabricEvent::Completed(done) if done.atom == AtomTypeId(0)));
    let FabricEvent::AtomCorrupted { atom, container, at } = events[1] else {
        panic!("expected corruption, got {:?}", events[1]);
    };
    assert_eq!(atom, AtomTypeId(0));
    assert_eq!(container, ContainerId(0));
    assert!(at > per_atom(), "corruption strictly after completion");
    assert_eq!(f.containers()[0].state(), ContainerState::Faulty { atom: AtomTypeId(0) });
    assert_eq!(f.available().total_atoms(), 0);
    assert_eq!(f.stats().seu_corruptions, 1);

    // Scrub-and-reload: the faulty container is a load target again.
    f.enqueue_load(AtomTypeId(0));
    let events = f.advance_events(20_000_000);
    assert!(
        matches!(events[0], FabricEvent::Completed(done) if done.container == ContainerId(0)),
        "reload must scrub the faulty container: {events:?}"
    );
    assert_eq!(f.stats().loads_completed, 2);
}

#[test]
fn scheduled_tile_failures_quarantine_containers() {
    let model = FaultModel {
        seed: 3,
        permanent_failure_ppm: PPM,
        permanent_failure_horizon: 50_000,
        ..FaultModel::default()
    };
    let mut f = Fabric::with_fault_model(FabricConfig::prototype(3), &universe(2), model);
    assert_eq!(f.usable_container_count(), 3);
    let events = f.advance_events(100_000);
    let failed = events
        .iter()
        .filter(|e| matches!(e, FabricEvent::ContainerFailed { .. }))
        .count();
    assert_eq!(failed, 3, "all tiles must fail inside the horizon: {events:?}");
    assert_eq!(f.usable_container_count(), 0);
    assert_eq!(f.stats().permanent_failures, 3);
    assert_eq!(f.stats().containers_quarantined, 3);
    assert!(f.containers().iter().all(rispp_fabric::AtomContainer::is_quarantined));

    // Loads on a dead fabric are dropped, not wedged: forward progress.
    f.enqueue_load(AtomTypeId(0));
    assert!(f.is_idle());
    assert_eq!(f.stats().loads_cancelled, 1);
    assert!(f.advance_events(200_000).is_empty());
}

#[test]
fn tile_failure_mid_load_aborts_the_transfer() {
    // The single tile dies inside [1, 10_000], long before the ~87K-cycle
    // load completes.
    let model = FaultModel {
        seed: 4,
        permanent_failure_ppm: PPM,
        permanent_failure_horizon: 10_000,
        ..FaultModel::default()
    };
    let mut f = Fabric::with_fault_model(FabricConfig::prototype(1), &universe(1), model);
    f.enqueue_load(AtomTypeId(0));
    let events = f.advance_events(10_000_000);
    assert_eq!(events.len(), 2, "{events:?}");
    let FabricEvent::ContainerFailed { container, at } = events[0] else {
        panic!("expected failure first, got {:?}", events[0]);
    };
    assert_eq!(container, ContainerId(0));
    assert!(at <= 10_000);
    assert!(
        matches!(events[1], FabricEvent::LoadAborted { atom, at: abort_at, .. }
            if atom == AtomTypeId(0) && abort_at == at),
        "the streaming load dies with the tile: {events:?}"
    );
    assert_eq!(f.stats().loads_completed, 0);
    assert_eq!(f.stats().loads_aborted, 1);
    assert_eq!(f.stats().fault_cycles_lost, per_atom());
    assert!(f.is_idle(), "the port must be freed when its target dies");
}

#[test]
fn manual_quarantine_removes_loaded_atoms() {
    let mut f = Fabric::new(FabricConfig::prototype(2), &universe(2));
    f.enqueue_load(AtomTypeId(0));
    f.advance_to(10_000_000);
    assert_eq!(f.available().counts(), &[1, 0]);
    let gen = f.generation();

    assert_eq!(
        f.quarantine(ContainerId(9)),
        Err(FabricError::UnknownContainer(ContainerId(9)))
    );
    f.quarantine(ContainerId(0)).unwrap();
    assert_eq!(f.available().counts(), &[0, 0]);
    assert!(f.generation() > gen, "removing an atom must invalidate caches");
    assert_eq!(f.usable_container_count(), 1);
    assert_eq!(f.stats().containers_quarantined, 1);
    // Idempotent.
    f.quarantine(ContainerId(0)).unwrap();
    assert_eq!(f.stats().containers_quarantined, 1);
}

#[test]
fn backoff_delays_a_queued_load() {
    let mut f = Fabric::new(FabricConfig::prototype(2), &universe(1));
    f.enqueue_load_after(AtomTypeId(0), 5_000);
    assert!(f.advance_events(4_999).is_empty());
    assert_eq!(f.in_flight(), None, "backoff window still closed");
    assert_eq!(f.next_event_at(), Some(5_000));
    let events = f.advance_events(5_000 + per_atom());
    assert_eq!(
        events,
        vec![FabricEvent::Completed(rispp_fabric::LoadCompleted {
            atom: AtomTypeId(0),
            container: ContainerId(0),
            at: 5_000 + per_atom(),
        })]
    );
}

#[test]
fn loading_container_is_never_an_eviction_victim() {
    // Regression guard: a container in `Loading` state must never be
    // overwritten by a subsequent load (the serial port guarantees the
    // in-flight transfer completes before the next victim is picked).
    let mut f = Fabric::new(FabricConfig::prototype(2), &universe(3));
    f.enqueue_load(AtomTypeId(0));
    f.enqueue_load(AtomTypeId(1));
    f.enqueue_load(AtomTypeId(2));
    f.advance_to(per_atom() / 2);
    assert!(
        matches!(f.containers()[0].state(), ContainerState::Loading { atom, .. } if atom == AtomTypeId(0)),
        "first load must still be streaming"
    );
    let events = f.advance_to(10_000_000);
    assert_eq!(events.len(), 3, "every load must complete: {events:?}");
    assert_eq!(f.stats().loads_completed, 3);
    // The third load evicted a *Loaded* container (exactly one eviction);
    // at no point was a streaming transfer clobbered.
    assert_eq!(f.stats().evictions, 1);
    assert_eq!(f.available().total_atoms(), 2);
}

proptest! {
    /// Identical (seed, rates, load script) → identical event streams and
    /// statistics, step for step. This is the foundation of sweep
    /// determinism under fault injection.
    #[test]
    fn identical_seeds_produce_identical_runs(
        seed in 0u64..u64::MAX,
        rate_ppm in 0u32..200_000,
        loads in proptest::collection::vec(0u16..3, 1..25),
        step in 20_000u64..150_000,
    ) {
        let u = universe(3);
        let model = FaultModel::uniform_ppm(rate_ppm, seed);
        let mut a = Fabric::with_fault_model(FabricConfig::prototype(2), &u, model);
        let mut b = Fabric::with_fault_model(FabricConfig::prototype(2), &u, model);
        for (i, &atom) in loads.iter().enumerate() {
            a.enqueue_load(AtomTypeId(atom));
            b.enqueue_load(AtomTypeId(atom));
            let now = (i as u64 + 1) * step;
            prop_assert_eq!(a.advance_events(now), b.advance_events(now));
            prop_assert_eq!(a.available(), b.available());
            prop_assert_eq!(a.next_event_at(), b.next_event_at());
        }
        prop_assert_eq!(a.advance_events(50_000_000), b.advance_events(50_000_000));
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// Under any fault mix the fabric's books stay balanced: every enqueued
    /// load is completed, aborted, or cancelled, and the available set
    /// always matches the per-container states.
    #[test]
    fn fault_accounting_is_conserved(
        seed in 0u64..u64::MAX,
        rate_ppm in 0u32..500_000,
        loads in proptest::collection::vec(0u16..3, 1..25),
    ) {
        let u = universe(3);
        let model = FaultModel::uniform_ppm(rate_ppm, seed);
        let mut f = Fabric::with_fault_model(FabricConfig::prototype(3), &u, model);
        for (i, &atom) in loads.iter().enumerate() {
            f.enqueue_load(AtomTypeId(atom));
            f.advance_events((i as u64 + 1) * 60_000);
            let mut recount = [0u16; 3];
            for c in f.containers() {
                if let Some(a) = c.loaded_atom() {
                    recount[a.index()] += 1;
                }
            }
            prop_assert_eq!(f.available().counts(), &recount[..]);
        }
        f.advance_events(100_000_000);
        let s = f.stats();
        prop_assert!(f.is_idle());
        prop_assert_eq!(
            s.loads_enqueued,
            s.loads_completed + s.loads_aborted + s.loads_cancelled
        );
        prop_assert!(s.containers_quarantined <= 3);
    }
}
