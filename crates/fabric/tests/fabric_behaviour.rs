//! Behavioural and property tests of the reconfigurable-fabric simulator.

use proptest::prelude::*;
use rispp_fabric::{ContainerState, Fabric, FabricConfig, ReconfigPortConfig};
use rispp_model::{AtomTypeId, AtomTypeInfo, AtomUniverse, Molecule};

fn universe(n: usize) -> AtomUniverse {
    AtomUniverse::from_types((0..n).map(|i| AtomTypeInfo::new(format!("T{i}")))).unwrap()
}

fn fabric(containers: u16, types: usize) -> Fabric {
    Fabric::new(FabricConfig::prototype(containers), &universe(types))
}

#[test]
fn loads_are_serialised_through_the_port() {
    let mut f = fabric(4, 2);
    f.enqueue_load(AtomTypeId(0));
    f.enqueue_load(AtomTypeId(1));
    let per_atom = ReconfigPortConfig::prototype().load_cycles(60_488).unwrap();
    // After one load time only the first atom is there.
    let ev = f.advance_to(per_atom);
    assert_eq!(ev.len(), 1);
    assert_eq!(ev[0].atom, AtomTypeId(0));
    assert_eq!(f.available().counts(), &[1, 0]);
    // Second completes one load time later.
    let ev = f.advance_to(2 * per_atom);
    assert_eq!(ev.len(), 1);
    assert_eq!(f.available().counts(), &[1, 1]);
    assert!(f.is_idle());
    assert_eq!(f.stats().loads_completed, 2);
}

#[test]
fn per_atom_load_time_matches_paper_average() {
    let per_atom = ReconfigPortConfig::prototype().load_cycles(60_488).unwrap();
    // ~874 µs at 100 MHz = ~87,400 cycles.
    assert!((87_000..88_000).contains(&per_atom), "got {per_atom}");
}

#[test]
fn atoms_unavailable_while_loading() {
    let mut f = fabric(2, 1);
    f.enqueue_load(AtomTypeId(0));
    f.advance_to(10);
    assert_eq!(f.available().counts(), &[0]);
    assert!(matches!(
        f.containers()[0].state(),
        ContainerState::Loading { .. }
    ));
    assert!(f.next_event_at().is_some());
}

#[test]
fn eviction_prefers_unprotected_lru() {
    let mut f = fabric(2, 3);
    f.enqueue_load(AtomTypeId(0));
    f.enqueue_load(AtomTypeId(1));
    f.advance_to(1_000_000);
    assert_eq!(f.available().counts(), &[1, 1, 0]);
    // Protect type 1; touch type 0 recently — eviction should still pick
    // type 0's container because type 1 is protected.
    f.set_protected(Molecule::from_counts([0, 1, 0]));
    f.mark_used(&Molecule::from_counts([1, 0, 0]), 999_999);
    f.enqueue_load(AtomTypeId(2));
    f.advance_to(2_000_000);
    assert_eq!(f.available().counts(), &[0, 1, 1]);
    assert_eq!(f.stats().evictions, 1);
}

#[test]
fn eviction_falls_back_to_lru_when_everything_protected() {
    let mut f = fabric(2, 3);
    f.enqueue_load(AtomTypeId(0));
    f.enqueue_load(AtomTypeId(1));
    f.advance_to(1_000_000);
    f.set_protected(Molecule::from_counts([1, 1, 1]));
    f.mark_used(&Molecule::from_counts([1, 0, 0]), 500);
    f.mark_used(&Molecule::from_counts([0, 1, 0]), 900);
    f.enqueue_load(AtomTypeId(2));
    f.advance_to(2_000_000);
    // Type 0 was used least recently -> evicted.
    assert_eq!(f.available().counts(), &[0, 1, 1]);
}

#[test]
fn clear_pending_keeps_in_flight_load() {
    let mut f = fabric(4, 2);
    f.enqueue_load(AtomTypeId(0));
    f.enqueue_load(AtomTypeId(1));
    f.advance_to(10);
    assert_eq!(f.pending_count(), 1);
    f.clear_pending();
    assert_eq!(f.pending_count(), 0);
    assert_eq!(f.stats().loads_cancelled, 1);
    // The in-flight atom still completes.
    let ev = f.advance_to(1_000_000);
    assert_eq!(ev.len(), 1);
    assert_eq!(f.available().counts(), &[1, 0]);
}

#[test]
fn single_container_fabric_replaces_its_atom() {
    let mut f = fabric(1, 2);
    f.enqueue_load(AtomTypeId(0));
    f.enqueue_load(AtomTypeId(1));
    let ev = f.advance_to(10_000_000);
    assert_eq!(ev.len(), 2);
    assert_eq!(f.available().counts(), &[0, 1]);
    assert_eq!(f.stats().evictions, 1);
}

#[test]
#[should_panic(expected = "monotone")]
fn time_cannot_move_backwards() {
    let mut f = fabric(1, 1);
    f.advance_to(100);
    f.advance_to(50);
}

#[test]
#[should_panic(expected = "outside universe")]
fn unknown_atom_type_panics() {
    let mut f = fabric(1, 1);
    f.enqueue_load(AtomTypeId(7));
}

#[test]
fn port_busy_cycles_accumulate() {
    let mut f = fabric(2, 1);
    f.enqueue_load(AtomTypeId(0));
    f.advance_to(10_000_000);
    let per_atom = ReconfigPortConfig::prototype().load_cycles(60_488).unwrap();
    assert_eq!(f.stats().port_busy_cycles, per_atom);
}

proptest! {
    /// The number of loaded atoms never exceeds the container count, the
    /// available vector always matches the per-container states, and events
    /// are chronological.
    #[test]
    fn fabric_invariants(
        loads in proptest::collection::vec(0u16..4, 1..40),
        containers in 1u16..8,
        step in 10_000u64..200_000,
    ) {
        let mut f = fabric(containers, 4);
        let mut last_event = 0u64;
        let mut completed = 0usize;
        for (i, &a) in loads.iter().enumerate() {
            f.enqueue_load(AtomTypeId(a));
            let now = (i as u64 + 1) * step;
            for ev in f.advance_to(now) {
                prop_assert!(ev.at >= last_event);
                prop_assert!(ev.at <= now);
                last_event = ev.at;
                completed += 1;
            }
            prop_assert!(u64::from(f.available().total_atoms() as u16) <= u64::from(containers));
            // Recompute availability from container states.
            let mut recount = [0u16; 4];
            for c in f.containers() {
                if let Some(atom) = c.loaded_atom() {
                    recount[atom.index()] += 1;
                }
            }
            prop_assert_eq!(f.available().counts(), &recount[..]);
        }
        // Drain everything.
        for ev in f.advance_to(u64::from(u32::MAX)) {
            prop_assert!(ev.at >= last_event);
            last_event = ev.at;
            completed += 1;
        }
        prop_assert!(f.is_idle());
        prop_assert_eq!(completed as u64, f.stats().loads_completed);
        prop_assert_eq!(f.stats().loads_completed, loads.len() as u64);
    }
}
