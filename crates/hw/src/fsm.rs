use rispp_core::{Candidate, Schedule, ScheduleRequest, UpgradeContext};

use crate::division_free_benefit_gt;

/// The 12 states of the HEF scheduler FSM.
///
/// The hardware walks candidate memory once per scheduling round: the
/// cleaning test (eq. 4) and the pipelined three-stage benefit comparison
/// (two MULT18X18 products, then the cross-multiplied compare) run per
/// candidate; the winning Molecule's residual atoms are emitted one per
/// cycle into the reconfiguration queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsmState {
    /// Waiting for a scheduling request from the Run-Time Manager.
    Idle,
    /// Latching the request (selected Molecules, available atoms).
    LoadRequest,
    /// Initialising the per-SI `bestLatency` registers.
    InitBest,
    /// Enumerating the candidate set `M′` (eq. 3) into candidate memory.
    Enumerate,
    /// Fetching the next candidate for the cleaning test.
    CleanFetch,
    /// Applying the cleaning rule (eq. 4) to the fetched candidate.
    CleanTest,
    /// Benefit pipeline stage 1: `gain = expected · (bestLatency − lat)`.
    BenefitMulA,
    /// Benefit pipeline stage 2: cross products `gain·c_best`, `gain_best·c`.
    BenefitMulB,
    /// Comparing pipeline outputs and updating the running maximum.
    CompareUpdate,
    /// Committing the winning Molecule (update `a⃗`, `bestLatency`).
    SelectCommit,
    /// Emitting one residual Atom per cycle into the loading queue.
    EmitAtom,
    /// All candidates exhausted; finalising condition (2) and signalling.
    Finalize,
}

impl FsmState {
    /// All 12 states (the paper's FSM size).
    pub const ALL: [FsmState; 12] = [
        FsmState::Idle,
        FsmState::LoadRequest,
        FsmState::InitBest,
        FsmState::Enumerate,
        FsmState::CleanFetch,
        FsmState::CleanTest,
        FsmState::BenefitMulA,
        FsmState::BenefitMulB,
        FsmState::CompareUpdate,
        FsmState::SelectCommit,
        FsmState::EmitAtom,
        FsmState::Finalize,
    ];
}

/// Result of running the FSM on one scheduling request.
#[derive(Debug, Clone)]
pub struct FsmRun {
    /// The computed Atom loading sequence (bit-identical to the software
    /// [`rispp_core::HefScheduler`]).
    pub schedule: Schedule,
    /// Cycles the hardware spent computing it.
    pub cycles: u64,
    /// State-visit histogram, indexed like [`FsmState::ALL`].
    pub state_visits: [u64; 12],
    /// Scheduling rounds executed (one committed Molecule each).
    pub rounds: u32,
}

impl FsmRun {
    /// Wall time of the scheduling decision at the given clock period.
    #[must_use]
    pub fn wall_time_us(&self, clock_ns: f64) -> f64 {
        self.cycles as f64 * clock_ns / 1_000.0
    }
}

/// Cycle-level model of the paper's 12-state HEF scheduler FSM.
///
/// # Examples
///
/// ```
/// use rispp_core::{AtomScheduler, HefScheduler, ScheduleRequest, SelectedMolecule};
/// use rispp_hw::HefFsm;
/// use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibraryBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let universe = AtomUniverse::from_types([AtomTypeInfo::new("A")])?;
/// let mut b = SiLibraryBuilder::new(universe);
/// b.special_instruction("X", 500)?
///     .molecule(Molecule::from_counts([1]), 100)?
///     .molecule(Molecule::from_counts([2]), 40)?;
/// let lib = b.build()?;
/// let req = ScheduleRequest::new(
///     &lib,
///     vec![SelectedMolecule::new(SiId(0), 1)],
///     Molecule::zero(1),
///     vec![300],
/// )?;
/// let run = HefFsm::new().run(&req);
/// assert_eq!(run.schedule, HefScheduler.schedule(&req));
/// assert!(run.cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct HefFsm;

impl HefFsm {
    /// Creates the FSM model.
    #[must_use]
    pub fn new() -> Self {
        HefFsm
    }

    /// Runs the FSM on a scheduling request, producing the schedule and the
    /// hardware cycle count.
    #[must_use]
    pub fn run(&self, request: &ScheduleRequest<'_>) -> FsmRun {
        let mut cycles = 0u64;
        let mut visits = [0u64; 12];
        let mut tick = |state: FsmState, n: u64| {
            let idx = FsmState::ALL
                .iter()
                .position(|&s| s == state)
                .expect("state in ALL");
            visits[idx] += n;
            cycles += n;
        };

        tick(FsmState::Idle, 1);
        tick(FsmState::LoadRequest, 1);

        let mut ctx = UpgradeContext::new(request);
        // bestLatency registers: one init cycle per SI of the library.
        tick(FsmState::InitBest, request.library().len() as u64);
        // Candidate memory fill: one cycle per enumerated candidate.
        tick(FsmState::Enumerate, ctx.candidates().len().max(1) as u64);

        let mut rounds = 0u32;
        let mut emitted = 0usize;
        loop {
            // Cleaning pass: fetch + test per candidate still in memory.
            let before = ctx.candidates().len() as u64;
            let remaining = ctx.clean().len() as u64;
            tick(FsmState::CleanFetch, before.max(1));
            tick(FsmState::CleanTest, before.max(1));
            if remaining == 0 {
                break;
            }

            // Benefit pipeline: 3 stages, one candidate per cycle once the
            // pipeline is full -> remaining + 2 cycles, attributed to the
            // three pipeline states.
            tick(FsmState::BenefitMulA, remaining);
            tick(FsmState::BenefitMulB, remaining);
            tick(FsmState::CompareUpdate, 2);

            let winner = self.pick_winner(&ctx, request);
            match winner {
                Some(index) => {
                    tick(FsmState::SelectCommit, 1);
                    ctx.commit(index);
                    let new_steps = ctx.steps().len() - emitted;
                    tick(FsmState::EmitAtom, new_steps as u64);
                    emitted = ctx.steps().len();
                    rounds += 1;
                }
                None => break,
            }
        }

        ctx.finish();
        let tail = ctx.steps().len() - emitted;
        tick(FsmState::EmitAtom, tail as u64);
        tick(FsmState::Finalize, 1);

        FsmRun {
            schedule: Schedule::from_steps(ctx.into_steps()),
            cycles,
            state_visits: visits,
            rounds,
        }
    }

    /// One scheduling round's winner: the candidate with the highest
    /// benefit, compared division-free exactly as the hardware does.
    fn pick_winner(
        &self,
        ctx: &UpgradeContext<'_, '_>,
        request: &ScheduleRequest<'_>,
    ) -> Option<usize> {
        let mut best: Option<(usize, u64, u64)> = None;
        for (i, c) in ctx.candidates().iter().enumerate() {
            let cost = u64::from(self.additional_atoms(ctx, c));
            let gain = request.expected(c.si)
                * u64::from(ctx.best_latency(c.si).saturating_sub(c.latency));
            let better = match best {
                None => gain > 0,
                Some((_, bg, bc)) => division_free_benefit_gt(gain, 1, cost, bg, 1, bc),
            };
            if better {
                best = Some((i, gain, cost));
            }
        }
        best.map(|(i, _, _)| i)
    }

    fn additional_atoms(&self, ctx: &UpgradeContext<'_, '_>, c: &Candidate) -> u32 {
        ctx.scheduled_atoms().residual(&c.atoms).total_atoms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp_core::{AtomScheduler, HefScheduler, SelectedMolecule};
    use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibrary, SiLibraryBuilder};

    fn library() -> SiLibrary {
        let universe = AtomUniverse::from_types([
            AtomTypeInfo::new("A1"),
            AtomTypeInfo::new("A2"),
            AtomTypeInfo::new("A3"),
        ])
        .unwrap();
        let mut b = SiLibraryBuilder::new(universe);
        b.special_instruction("X", 1_000)
            .unwrap()
            .molecule(Molecule::from_counts([1, 0, 0]), 200)
            .unwrap()
            .molecule(Molecule::from_counts([2, 1, 0]), 90)
            .unwrap()
            .molecule(Molecule::from_counts([3, 2, 0]), 35)
            .unwrap();
        b.special_instruction("Y", 700)
            .unwrap()
            .molecule(Molecule::from_counts([0, 1, 1]), 150)
            .unwrap()
            .molecule(Molecule::from_counts([0, 2, 2]), 55)
            .unwrap();
        b.build().unwrap()
    }

    fn request(lib: &SiLibrary, e0: u64, e1: u64) -> ScheduleRequest<'_> {
        ScheduleRequest::new(
            lib,
            vec![
                SelectedMolecule::new(SiId(0), 2),
                SelectedMolecule::new(SiId(1), 1),
            ],
            Molecule::zero(3),
            vec![e0, e1],
        )
        .unwrap()
    }

    #[test]
    fn fsm_schedule_matches_software_hef() {
        let lib = library();
        for (e0, e1) in [(100, 100), (1_000, 10), (10, 1_000), (0, 0), (7, 7)] {
            let req = request(&lib, e0, e1);
            let fsm = HefFsm::new().run(&req);
            let sw = HefScheduler.schedule(&req);
            assert_eq!(fsm.schedule, sw, "expected counts ({e0},{e1})");
            fsm.schedule.validate(&req).unwrap();
        }
    }

    #[test]
    fn cycle_count_scales_with_candidates() {
        let lib = library();
        let small = HefFsm::new().run(&ScheduleRequest::new(
            &lib,
            vec![SelectedMolecule::new(SiId(1), 0)],
            Molecule::zero(3),
            vec![0, 100],
        )
        .unwrap());
        let big = HefFsm::new().run(&request(&lib, 500, 500));
        assert!(big.cycles > small.cycles);
        assert!(big.rounds >= small.rounds);
    }

    #[test]
    fn state_visits_account_for_all_cycles() {
        let lib = library();
        let run = HefFsm::new().run(&request(&lib, 300, 200));
        assert_eq!(run.state_visits.iter().sum::<u64>(), run.cycles);
        // Idle/LoadRequest/Finalize exactly once.
        assert_eq!(run.state_visits[0], 1);
        assert_eq!(run.state_visits[1], 1);
        assert_eq!(run.state_visits[11], 1);
    }

    #[test]
    fn twelve_states_like_the_paper() {
        assert_eq!(FsmState::ALL.len(), 12);
    }

    #[test]
    fn scheduling_latency_is_microseconds_at_paper_clock() {
        // The paper reports 12.596 ns clock delay; a full scheduling
        // decision must be far below one atom reconfiguration (874 µs).
        let lib = library();
        let run = HefFsm::new().run(&request(&lib, 1_000, 1_000));
        let us = run.wall_time_us(12.596);
        assert!(us < 874.0 / 10.0, "scheduling took {us} µs");
    }
}
