//! Hardware model of the HEF scheduler (paper Section 5, Table 3).
//!
//! The paper implements Highest Efficiency First as a finite state machine
//! with 12 states on the Xilinx xc2v3000, pipelining the benefit
//! computation and replacing the division by a cross-multiplied comparison
//! (`(a·b)·f > (d·e)·c`, valid because the additional-atom counts are
//! always positive). This crate provides:
//!
//! * [`HefFsm`] — a cycle-level model of that state machine. It computes
//!   **exactly** the same Atom schedule as the software
//!   [`rispp_core::HefScheduler`] (unit- and property-tested) while
//!   counting the cycles the hardware would spend.
//! * [`division_free_benefit_gt`] — the comparison trick itself.
//! * [`AreaReport`] / [`area_estimate`] — the Table 3 synthesis numbers
//!   (slices, LUTs, FFs, MULT18X18s, gate equivalents, clock delay) next
//!   to a parametric estimate derived from the FSM structure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod fsm;

pub use area::{area_estimate, AreaParameters, AreaReport};
pub use fsm::{FsmRun, FsmState, HefFsm};

/// The division-free benefit comparison of the paper:
/// `(a·b)/c > (d·e)/f` evaluated as `(a·b)·f > (d·e)·c`.
///
/// Valid whenever `c` and `f` are positive, which holds for the
/// additional-atom counts after candidate cleaning (eq. 4).
///
/// # Examples
///
/// ```
/// use rispp_hw::division_free_benefit_gt;
///
/// // (6·10)/3 = 20  >  (4·9)/2 = 18
/// assert!(division_free_benefit_gt(6, 10, 3, 4, 9, 2));
/// ```
#[must_use]
pub fn division_free_benefit_gt(a: u64, b: u64, c: u64, d: u64, e: u64, f: u64) -> bool {
    debug_assert!(c > 0 && f > 0, "atom counts are positive after cleaning");
    (a as u128 * b as u128) * f as u128 > (d as u128 * e as u128) * c as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_floating_point_division() {
        for a in 0..12u64 {
            for b in [0u64, 1, 7, 100] {
                for c in 1..5u64 {
                    for d in 0..12u64 {
                        for e in [0u64, 3, 50] {
                            for f in 1..5u64 {
                                let exact = (a * b) as f64 / c as f64 > (d * e) as f64 / f as f64;
                                assert_eq!(
                                    division_free_benefit_gt(a, b, c, d, e, f),
                                    exact,
                                    "{a} {b} {c} {d} {e} {f}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn no_overflow_at_large_operands() {
        // 64-bit gains cross-multiplied into 128 bits never wrap.
        assert!(!division_free_benefit_gt(
            u64::MAX / 2,
            2,
            u64::MAX,
            u64::MAX / 2,
            2,
            1
        ));
    }
}
