//! Synthesis-area and timing model for the HEF scheduler hardware
//! (paper Table 3).

/// Structural parameters the area estimate is derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaParameters {
    /// FSM states (12 in the paper).
    pub states: u32,
    /// Atom-type universe size (comparator width of the cleaning test).
    pub atom_types: u32,
    /// Bits per candidate latency/expected-execution operand.
    pub operand_bits: u32,
    /// Candidate-memory depth (maximum Molecules per request).
    pub candidate_depth: u32,
    /// Hardware multipliers for the pipelined benefit computation.
    pub multipliers: u32,
}

impl Default for AreaParameters {
    fn default() -> Self {
        AreaParameters {
            states: 12,
            atom_types: 11,
            operand_bits: 18,
            candidate_depth: 32,
            multipliers: 5,
        }
    }
}

/// One row set of Table 3: resource usage of a synthesised block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Occupied slices.
    pub slices: u32,
    /// Look-up tables.
    pub luts: u32,
    /// Flip-flops.
    pub ffs: u32,
    /// MULT18X18 hard multipliers.
    pub mult18x18: u32,
    /// Gate equivalents.
    pub gate_equivalents: u32,
    /// Clock delay in nanoseconds.
    pub clock_delay_ns: f64,
}

impl AreaReport {
    /// The paper's synthesis results for the HEF scheduler (Table 3).
    #[must_use]
    pub fn paper_hef() -> Self {
        AreaReport {
            slices: 549,
            luts: 915,
            ffs: 297,
            mult18x18: 5,
            gate_equivalents: 30_769,
            clock_delay_ns: 12.596,
        }
    }

    /// The paper's average Atom (Table 3).
    #[must_use]
    pub fn paper_average_atom() -> Self {
        AreaReport {
            slices: 421,
            luts: 839,
            ffs: 45,
            mult18x18: 0,
            gate_equivalents: 6_944,
            clock_delay_ns: 1.284,
        }
    }

    /// Whether this block fits into one Atom Container (1024 slices on the
    /// prototype) — the paper's headline: HEF needs only 3.83 % of the
    /// device and would fit into a single AC.
    #[must_use]
    pub fn fits_one_atom_container(&self) -> bool {
        self.slices <= 1_024
    }

    /// Utilisation of the xc2v3000's 14,336 slices, in percent.
    #[must_use]
    pub fn device_utilisation_percent(&self) -> f64 {
        f64::from(self.slices) * 100.0 / 14_336.0
    }
}

/// Parametric area estimate of the HEF FSM, calibrated against the paper's
/// synthesis flow. The estimate reproduces Table 3 within a few percent at
/// the default parameters and scales with universe size and candidate
/// depth for what-if studies.
#[must_use]
pub fn area_estimate(p: &AreaParameters) -> AreaReport {
    // Control: one-hot state register + next-state logic.
    let control_luts = p.states * 9;
    let control_ffs = p.states;
    // Datapath: cleaning comparators (per atom type), bestLatency update,
    // benefit pipeline registers.
    let datapath_luts = p.atom_types * 38 + p.operand_bits * 16 + p.candidate_depth * 3;
    let datapath_ffs = p.operand_bits * 12 + p.atom_types * 6 + 3;
    let luts = control_luts + datapath_luts;
    let ffs = control_ffs + datapath_ffs;
    // Two LUTs + two FFs per slice on Virtex-II, imperfect packing ~0.85.
    let slices = ((luts.max(ffs) as f64) / 2.0 / 0.85).round() as u32;
    // Gate equivalents: LUT ≈ 12 GE, FF ≈ 8 GE, MULT18X18 ≈ 3,500 GE.
    let gate_equivalents = luts * 12 + ffs * 8 + p.multipliers * 3_500;
    // Critical path: cross-multiply compare chain.
    let clock_delay_ns = 6.0 + 0.36 * f64::from(p.operand_bits);
    AreaReport {
        slices,
        luts,
        ffs,
        mult18x18: p.multipliers,
        gate_equivalents,
        clock_delay_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_matches_paper_within_ten_percent() {
        let est = area_estimate(&AreaParameters::default());
        let paper = AreaReport::paper_hef();
        let close = |a: u32, b: u32| {
            let (a, b) = (f64::from(a), f64::from(b));
            (a - b).abs() / b < 0.10
        };
        assert!(close(est.luts, paper.luts), "luts {} vs {}", est.luts, paper.luts);
        assert!(close(est.ffs, paper.ffs), "ffs {} vs {}", est.ffs, paper.ffs);
        assert!(close(est.slices, paper.slices), "slices {} vs {}", est.slices, paper.slices);
        assert!(
            close(est.gate_equivalents, paper.gate_equivalents),
            "ge {} vs {}",
            est.gate_equivalents,
            paper.gate_equivalents
        );
        assert_eq!(est.mult18x18, paper.mult18x18);
        assert!((est.clock_delay_ns - paper.clock_delay_ns).abs() < 1.5);
    }

    #[test]
    fn hef_fits_one_atom_container() {
        assert!(AreaReport::paper_hef().fits_one_atom_container());
        assert!(area_estimate(&AreaParameters::default()).fits_one_atom_container());
        // Paper: 3.83 % of the device.
        let util = AreaReport::paper_hef().device_utilisation_percent();
        assert!((util - 3.83).abs() < 0.05, "{util}");
    }

    #[test]
    fn estimate_scales_with_universe() {
        let small = area_estimate(&AreaParameters {
            atom_types: 4,
            ..AreaParameters::default()
        });
        let big = area_estimate(&AreaParameters {
            atom_types: 32,
            ..AreaParameters::default()
        });
        assert!(big.luts > small.luts);
        assert!(big.slices > small.slices);
    }

    #[test]
    fn scheduler_is_modestly_larger_than_average_atom() {
        // Paper: HEF needs only 1.30x the slices of the average atom.
        let hef = AreaReport::paper_hef();
        let atom = AreaReport::paper_average_atom();
        let ratio = f64::from(hef.slices) / f64::from(atom.slices);
        assert!((ratio - 1.30).abs() < 0.01);
    }
}
