//! Property test: the 12-state HEF FSM model computes bit-identical
//! schedules to the software HEF scheduler on arbitrary libraries,
//! selections and fabric states — the hardware/software equivalence the
//! paper's prototype relies on.

use proptest::prelude::*;
use rispp_core::{AtomScheduler, HefScheduler, ScheduleRequest, SelectedMolecule};
use rispp_hw::{FsmState, HefFsm};
use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibrary, SiLibraryBuilder};

const ARITY: usize = 5;

#[derive(Debug, Clone)]
struct Scenario {
    library: SiLibrary,
    selected: Vec<SelectedMolecule>,
    available: Molecule,
    expected: Vec<u64>,
}

fn molecule() -> impl Strategy<Value = Molecule> {
    proptest::collection::vec(0u16..4, ARITY)
        .prop_filter("non-empty", |c| c.iter().any(|&x| x > 0))
        .prop_map(Molecule::from_counts)
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1usize..4)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(
                    proptest::collection::vec((molecule(), 1u32..800), 1..7),
                    n,
                ),
                proptest::collection::vec(0u64..5_000, n),
                proptest::collection::vec(0u16..3, ARITY),
                proptest::collection::vec(any::<prop::sample::Index>(), n),
            )
        })
        .prop_map(|(variant_lists, expected, available, picks)| {
            let universe = AtomUniverse::from_types(
                (0..ARITY).map(|i| AtomTypeInfo::new(format!("T{i}"))),
            )
            .expect("unique names");
            let mut builder = SiLibraryBuilder::new(universe);
            for (i, variants) in variant_lists.iter().enumerate() {
                let mut si = builder
                    .special_instruction(format!("SI{i}"), 2_000)
                    .expect("unique names");
                for (atoms, latency) in variants {
                    let _ = si.molecule(atoms.clone(), *latency);
                }
            }
            let library = builder.build().expect("every SI has molecules");
            let selected = (0..library.len())
                .map(|i| {
                    let si = library.si(SiId(i as u16)).expect("in range");
                    SelectedMolecule::new(si.id(), picks[i].index(si.variants().len()))
                })
                .collect();
            Scenario {
                library,
                selected,
                available: Molecule::from_counts(available),
                expected,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn fsm_and_software_hef_agree(sc in scenario()) {
        let request = ScheduleRequest::new(
            &sc.library,
            sc.selected.clone(),
            sc.available.clone(),
            sc.expected.clone(),
        ).expect("valid scenario");
        let run = HefFsm::new().run(&request);
        let software = HefScheduler.schedule(&request);
        prop_assert_eq!(&run.schedule, &software);
        prop_assert!(run.schedule.validate(&request).is_ok());
        // Cycle accounting: visits sum to the total, mandatory states once.
        prop_assert_eq!(run.state_visits.iter().sum::<u64>(), run.cycles);
        prop_assert_eq!(run.state_visits[0], 1); // Idle
        prop_assert_eq!(run.state_visits[11], 1); // Finalize
        prop_assert_eq!(FsmState::ALL.len(), 12);
        // Every committed round emits at least one cycle in SelectCommit.
        prop_assert_eq!(run.state_visits[9], u64::from(run.rounds));
    }
}
