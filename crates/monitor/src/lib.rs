//! Online monitoring of Special Instruction execution frequencies.
//!
//! The RISPP Run-Time Manager observes how often each SI executes within a
//! hot spot and compares the measured count against its previous
//! expectation to update the expectation for the next iteration of the same
//! hot spot (paper Section 3.1, with the light-weight hardware
//! implementation demonstrated in the authors' SASO'07 paper \[24\]).
//!
//! The scheduler consumes these *expected SI executions* as its importance
//! weights, so the whole adaptivity loop is: monitor → forecast → Molecule
//! selection → Atom schedule.
//!
//! # Examples
//!
//! ```
//! use rispp_monitor::{ExecutionMonitor, ForecastPolicy, HotSpotId};
//! use rispp_model::SiId;
//!
//! let mut mon = ExecutionMonitor::new(ForecastPolicy::ewma(2));
//! let me = HotSpotId(0);
//! mon.begin_hot_spot(me);
//! for _ in 0..100 {
//!     mon.record_execution(me, SiId(0));
//! }
//! mon.end_hot_spot(me);
//! assert!(mon.expected(me, SiId(0)) > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;

pub use detector::{DetectedTransition, HotSpotDetector};

use std::collections::HashMap;
use std::fmt;

use rispp_model::SiId;

/// Identifier of a computational hot spot (e.g. Motion Estimation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HotSpotId(pub u16);

impl HotSpotId {
    /// Zero-based index of this hot spot.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for HotSpotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HS{}", self.0)
    }
}

/// How measured execution counts are folded into the expectation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ForecastPolicy {
    /// The next expectation is exactly the last measured count.
    LastValue,
    /// Integer exponential smoothing:
    /// `expected' = ((weight − 1)·expected + measured) / weight`.
    ///
    /// `weight = 2` averages old and new, matching the "compare to previous
    /// expectations and update" description of the paper with a cheap
    /// shift-based hardware realisation.
    Ewma {
        /// Smoothing weight (≥ 1); larger values adapt more slowly.
        weight: u32,
    },
    /// Running average over all observed iterations.
    CumulativeAverage,
}

impl ForecastPolicy {
    /// Convenience constructor for the EWMA policy.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    #[must_use]
    pub fn ewma(weight: u32) -> Self {
        assert!(weight >= 1, "ewma weight must be at least 1");
        ForecastPolicy::Ewma { weight }
    }
}

impl Default for ForecastPolicy {
    fn default() -> Self {
        ForecastPolicy::ewma(2)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SiState {
    expected: u64,
    current: u64,
    iterations: u64,
    total: u64,
}

/// Per-hot-spot, per-SI execution counters with expectation forecasting.
#[derive(Debug, Clone)]
pub struct ExecutionMonitor {
    policy: ForecastPolicy,
    table: HashMap<(HotSpotId, SiId), SiState>,
    active: Option<HotSpotId>,
    /// Execution counts of the *active* hot spot, accumulated flat
    /// (indexed by SI id) and folded into `table` when the hot spot ends
    /// or switches. Replaces a hash-map probe per recorded burst on the
    /// replay hot path with an array add.
    live: Vec<u64>,
}

impl ExecutionMonitor {
    /// Creates a monitor with the given forecast policy.
    #[must_use]
    pub fn new(policy: ForecastPolicy) -> Self {
        ExecutionMonitor {
            policy,
            table: HashMap::new(),
            active: None,
            live: Vec::new(),
        }
    }

    /// Folds the flat live counters of the active hot spot into the table.
    fn flush_live(&mut self) {
        let Some(hs) = self.active else { return };
        for (idx, count) in self.live.iter_mut().enumerate() {
            if *count > 0 {
                self.table
                    .entry((hs, SiId(idx as u16)))
                    .or_default()
                    .current += *count;
                *count = 0;
            }
        }
    }

    /// The configured forecast policy.
    #[must_use]
    pub fn policy(&self) -> ForecastPolicy {
        self.policy
    }

    /// Seeds the expectation for `(hot_spot, si)`, e.g. from design-time
    /// profiling, before the first online iteration.
    pub fn seed(&mut self, hot_spot: HotSpotId, si: SiId, expected: u64) {
        self.table.entry((hot_spot, si)).or_default().expected = expected;
    }

    /// Marks the start of a hot-spot execution; resets its live counters.
    pub fn begin_hot_spot(&mut self, hot_spot: HotSpotId) {
        self.flush_live();
        self.active = Some(hot_spot);
        for ((hs, _), state) in self.table.iter_mut() {
            if *hs == hot_spot {
                state.current = 0;
            }
        }
    }

    /// Records one execution of `si` inside `hot_spot`.
    pub fn record_execution(&mut self, hot_spot: HotSpotId, si: SiId) {
        self.record_executions(hot_spot, si, 1);
    }

    /// Records `count` executions of `si` inside `hot_spot` at once (the
    /// hardware counters of \[24\] are add-accumulate, so bulk recording is
    /// behaviourally identical to repeated single recording).
    pub fn record_executions(&mut self, hot_spot: HotSpotId, si: SiId, count: u64) {
        if self.active == Some(hot_spot) {
            let idx = si.index();
            if idx >= self.live.len() {
                self.live.resize(idx + 1, 0);
            }
            self.live[idx] += count;
        } else {
            let state = self.table.entry((hot_spot, si)).or_default();
            state.current += count;
        }
    }

    /// Marks the end of a hot-spot execution and folds the measured counts
    /// into the per-SI expectations according to the forecast policy.
    pub fn end_hot_spot(&mut self, hot_spot: HotSpotId) {
        self.flush_live();
        if self.active == Some(hot_spot) {
            self.active = None;
        }
        let policy = self.policy;
        for ((hs, _), state) in self.table.iter_mut() {
            if *hs != hot_spot {
                continue;
            }
            let measured = state.current;
            state.total += measured;
            state.iterations += 1;
            state.expected = match policy {
                ForecastPolicy::LastValue => measured,
                ForecastPolicy::Ewma { weight } => {
                    if state.iterations == 1 {
                        // First observation: adopt it outright so that cold
                        // expectations do not linger at zero.
                        measured
                    } else {
                        (state.expected * u64::from(weight - 1) + measured) / u64::from(weight)
                    }
                }
                ForecastPolicy::CumulativeAverage => state.total / state.iterations,
            };
            state.current = 0;
        }
    }

    /// The expected number of executions of `si` in the next iteration of
    /// `hot_spot` (0 when never seen and never seeded).
    #[must_use]
    pub fn expected(&self, hot_spot: HotSpotId, si: SiId) -> u64 {
        self.table
            .get(&(hot_spot, si))
            .map(|s| s.expected)
            .unwrap_or(0)
    }

    /// All `(si, expected)` pairs known for `hot_spot`, in SI-id order.
    #[must_use]
    pub fn expected_profile(&self, hot_spot: HotSpotId) -> Vec<(SiId, u64)> {
        let mut v: Vec<(SiId, u64)> = self
            .table
            .iter()
            .filter(|((hs, _), _)| *hs == hot_spot)
            .map(|((_, si), s)| (*si, s.expected))
            .collect();
        v.sort_by_key(|(si, _)| *si);
        v
    }

    /// Live (not yet folded) count of `si` in the current iteration.
    #[must_use]
    pub fn live_count(&self, hot_spot: HotSpotId, si: SiId) -> u64 {
        let pending = if self.active == Some(hot_spot) {
            self.live.get(si.index()).copied().unwrap_or(0)
        } else {
            0
        };
        pending
            + self
                .table
                .get(&(hot_spot, si))
                .map(|s| s.current)
                .unwrap_or(0)
    }

    /// Number of completed iterations observed for `hot_spot` (max over its
    /// SIs).
    #[must_use]
    pub fn iterations(&self, hot_spot: HotSpotId) -> u64 {
        self.table
            .iter()
            .filter(|((hs, _), _)| *hs == hot_spot)
            .map(|(_, s)| s.iterations)
            .max()
            .unwrap_or(0)
    }
}

impl Default for ExecutionMonitor {
    fn default() -> Self {
        ExecutionMonitor::new(ForecastPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_iteration(mon: &mut ExecutionMonitor, hs: HotSpotId, counts: &[(SiId, u64)]) {
        mon.begin_hot_spot(hs);
        for &(si, n) in counts {
            for _ in 0..n {
                mon.record_execution(hs, si);
            }
        }
        mon.end_hot_spot(hs);
    }

    #[test]
    fn first_observation_is_adopted() {
        let mut mon = ExecutionMonitor::new(ForecastPolicy::ewma(2));
        run_iteration(&mut mon, HotSpotId(0), &[(SiId(0), 120)]);
        assert_eq!(mon.expected(HotSpotId(0), SiId(0)), 120);
    }

    #[test]
    fn ewma_converges_towards_stable_workload() {
        let mut mon = ExecutionMonitor::new(ForecastPolicy::ewma(2));
        run_iteration(&mut mon, HotSpotId(0), &[(SiId(0), 100)]);
        for _ in 0..10 {
            run_iteration(&mut mon, HotSpotId(0), &[(SiId(0), 200)]);
        }
        let e = mon.expected(HotSpotId(0), SiId(0));
        assert!((195..=200).contains(&e), "expected near 200, got {e}");
    }

    #[test]
    fn ewma_tracks_phase_change_gradually() {
        let mut mon = ExecutionMonitor::new(ForecastPolicy::ewma(2));
        run_iteration(&mut mon, HotSpotId(0), &[(SiId(0), 1000)]);
        run_iteration(&mut mon, HotSpotId(0), &[(SiId(0), 0)]);
        assert_eq!(mon.expected(HotSpotId(0), SiId(0)), 500);
    }

    #[test]
    fn last_value_policy_is_memoryless() {
        let mut mon = ExecutionMonitor::new(ForecastPolicy::LastValue);
        run_iteration(&mut mon, HotSpotId(0), &[(SiId(0), 10)]);
        run_iteration(&mut mon, HotSpotId(0), &[(SiId(0), 77)]);
        assert_eq!(mon.expected(HotSpotId(0), SiId(0)), 77);
    }

    #[test]
    fn cumulative_average() {
        let mut mon = ExecutionMonitor::new(ForecastPolicy::CumulativeAverage);
        run_iteration(&mut mon, HotSpotId(0), &[(SiId(0), 10)]);
        run_iteration(&mut mon, HotSpotId(0), &[(SiId(0), 30)]);
        assert_eq!(mon.expected(HotSpotId(0), SiId(0)), 20);
    }

    #[test]
    fn hot_spots_are_isolated() {
        let mut mon = ExecutionMonitor::default();
        run_iteration(&mut mon, HotSpotId(0), &[(SiId(0), 50)]);
        run_iteration(&mut mon, HotSpotId(1), &[(SiId(0), 7)]);
        assert_eq!(mon.expected(HotSpotId(0), SiId(0)), 50);
        assert_eq!(mon.expected(HotSpotId(1), SiId(0)), 7);
    }

    #[test]
    fn seed_provides_cold_start_expectation() {
        let mut mon = ExecutionMonitor::default();
        mon.seed(HotSpotId(0), SiId(3), 400);
        assert_eq!(mon.expected(HotSpotId(0), SiId(3)), 400);
        assert_eq!(mon.expected(HotSpotId(0), SiId(4)), 0);
    }

    #[test]
    fn expected_profile_sorted_by_si() {
        let mut mon = ExecutionMonitor::default();
        run_iteration(&mut mon, HotSpotId(0), &[(SiId(2), 5), (SiId(0), 9)]);
        let profile = mon.expected_profile(HotSpotId(0));
        assert_eq!(profile, vec![(SiId(0), 9), (SiId(2), 5)]);
    }

    #[test]
    fn live_count_resets_each_iteration() {
        let mut mon = ExecutionMonitor::default();
        mon.begin_hot_spot(HotSpotId(0));
        mon.record_execution(HotSpotId(0), SiId(0));
        assert_eq!(mon.live_count(HotSpotId(0), SiId(0)), 1);
        mon.end_hot_spot(HotSpotId(0));
        assert_eq!(mon.live_count(HotSpotId(0), SiId(0)), 0);
        assert_eq!(mon.iterations(HotSpotId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ewma_weight_panics() {
        let _ = ForecastPolicy::ewma(0);
    }

    #[test]
    fn hot_spot_id_display() {
        assert_eq!(HotSpotId(2).to_string(), "HS2");
        assert_eq!(HotSpotId(2).index(), 2);
    }
}
