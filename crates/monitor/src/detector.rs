//! Automatic hot-spot detection from the raw SI execution stream.
//!
//! The paper's companion work [24] demonstrates light-weight hardware that
//! observes SI execution frequencies and detects when the application
//! migrates from one computational hot spot to another (ME → EE → LF in
//! the H.264 encoder) *without* explicit markers in the binary. This
//! module reproduces that mechanism: executions are counted per fixed
//! cycle window; when the dominant SI *signature* of the recent windows
//! changes and stays stable, a transition is reported.

use rispp_model::SiId;

/// A detected hot-spot transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectedTransition {
    /// Cycle at which the new signature became stable.
    pub at: u64,
    /// The dominant SIs of the new phase, most frequent first.
    pub signature: Vec<SiId>,
}

/// Windowed hot-spot detector.
///
/// # Examples
///
/// ```
/// use rispp_monitor::HotSpotDetector;
/// use rispp_model::SiId;
///
/// let mut det = HotSpotDetector::new(10_000, 2);
/// for i in 0..200u64 {
///     det.observe(SiId(0), i * 300);
/// }
/// for i in 200..400u64 {
///     det.observe(SiId(5), i * 300);
/// }
/// let transitions = det.transitions();
/// assert_eq!(transitions.len(), 2); // initial phase + the switch
/// assert_eq!(transitions[1].signature, vec![SiId(5)]);
/// ```
#[derive(Debug, Clone)]
pub struct HotSpotDetector {
    window_cycles: u64,
    stable_windows: u32,
    current_window: u64,
    counts: Vec<(SiId, u64)>,
    last_signature: Vec<SiId>,
    pending_signature: Vec<SiId>,
    pending_count: u32,
    pending_since: u64,
    transitions: Vec<DetectedTransition>,
}

impl HotSpotDetector {
    /// Creates a detector with the given window width (cycles) and the
    /// number of consecutive windows a new signature must persist before a
    /// transition is reported (debouncing).
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles` is zero or `stable_windows` is zero.
    #[must_use]
    pub fn new(window_cycles: u64, stable_windows: u32) -> Self {
        assert!(window_cycles > 0, "window must be positive");
        assert!(stable_windows > 0, "stability threshold must be positive");
        HotSpotDetector {
            window_cycles,
            stable_windows,
            current_window: 0,
            counts: Vec::new(),
            last_signature: Vec::new(),
            pending_signature: Vec::new(),
            pending_count: 0,
            pending_since: 0,
            transitions: Vec::new(),
        }
    }

    /// Records one SI execution at the given cycle.
    ///
    /// # Panics
    ///
    /// Panics if cycles move backwards across window boundaries.
    pub fn observe(&mut self, si: SiId, cycle: u64) {
        let window = cycle / self.window_cycles;
        assert!(window >= self.current_window, "cycles must be monotone");
        while window > self.current_window {
            self.close_window();
            self.current_window += 1;
        }
        match self.counts.iter_mut().find(|(id, _)| *id == si) {
            Some((_, c)) => *c += 1,
            None => self.counts.push((si, 1)),
        }
    }

    /// Flushes the current window and returns all transitions seen so far.
    #[must_use]
    pub fn transitions(&self) -> Vec<DetectedTransition> {
        let mut snapshot = self.clone();
        snapshot.close_window();
        snapshot.transitions
    }

    /// The dominant SIs of the most recently *closed* window.
    #[must_use]
    pub fn last_signature(&self) -> &[SiId] {
        &self.last_signature
    }

    fn close_window(&mut self) {
        if self.counts.is_empty() {
            return;
        }
        // Signature: SIs contributing ≥ 20% of the window's executions,
        // most frequent first.
        let total: u64 = self.counts.iter().map(|&(_, c)| c).sum();
        let mut sorted = std::mem::take(&mut self.counts);
        sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let signature: Vec<SiId> = sorted
            .iter()
            .filter(|&&(_, c)| c * 5 >= total)
            .map(|&(id, _)| id)
            .collect();

        if signature == self.last_signature {
            self.pending_count = 0;
            return;
        }
        if signature == self.pending_signature {
            self.pending_count += 1;
        } else {
            self.pending_signature = signature;
            self.pending_count = 1;
            self.pending_since = self.current_window * self.window_cycles;
        }
        if self.pending_count >= self.stable_windows {
            self.last_signature = self.pending_signature.clone();
            self.transitions.push(DetectedTransition {
                at: self.pending_since,
                signature: self.last_signature.clone(),
            });
            self.pending_count = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(det: &mut HotSpotDetector, si: SiId, from: u64, to: u64, spacing: u64) {
        let mut t = from;
        while t < to {
            det.observe(si, t);
            t += spacing;
        }
    }

    #[test]
    fn detects_phase_change() {
        let mut det = HotSpotDetector::new(100_000, 2);
        feed(&mut det, SiId(0), 0, 1_000_000, 500);
        feed(&mut det, SiId(3), 1_000_000, 2_000_000, 500);
        let tr = det.transitions();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr[0].signature, vec![SiId(0)]);
        assert_eq!(tr[1].signature, vec![SiId(3)]);
        assert!(tr[1].at >= 1_000_000);
    }

    #[test]
    fn mixed_signature_lists_dominant_sis() {
        let mut det = HotSpotDetector::new(100_000, 1);
        // Two SIs interleaved at similar rates.
        for i in 0..2_000u64 {
            det.observe(SiId(0), i * 400);
            det.observe(SiId(1), i * 400 + 200);
        }
        let tr = det.transitions();
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].signature.len(), 2);
    }

    #[test]
    fn debouncing_suppresses_transient_blips() {
        let mut det = HotSpotDetector::new(100_000, 3);
        feed(&mut det, SiId(0), 0, 1_000_000, 500);
        // One noisy window of a different SI.
        feed(&mut det, SiId(7), 1_000_000, 1_100_000, 500);
        feed(&mut det, SiId(0), 1_100_000, 2_000_000, 500);
        let tr = det.transitions();
        assert_eq!(tr.len(), 1, "blip must not be reported: {tr:?}");
        assert_eq!(tr[0].signature, vec![SiId(0)]);
    }

    #[test]
    fn rare_sis_do_not_enter_the_signature() {
        let mut det = HotSpotDetector::new(100_000, 1);
        for i in 0..1_000u64 {
            det.observe(SiId(0), i * 800);
            if i % 50 == 0 {
                det.observe(SiId(8), i * 800 + 1);
            }
        }
        let tr = det.transitions();
        assert_eq!(tr[0].signature, vec![SiId(0)]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_cycles_panic() {
        let mut det = HotSpotDetector::new(1_000, 1);
        det.observe(SiId(0), 5_000);
        det.observe(SiId(0), 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = HotSpotDetector::new(0, 1);
    }
}
