//! Molecule/Atom lattice algebra and Special Instruction model for RISPP.
//!
//! This crate implements the formal foundation of the RISPP (*Rotating
//! Instruction Set Processing Platform*) run-time system from
//! L. Bauer et al., *"Run-time System for an Extensible Embedded Processor
//! with Dynamic Instruction Set"*, DATE 2008, Section 4.1:
//!
//! * [`Molecule`] — a vector in `ℕⁿ` describing how many instances of each
//!   *Atom* type are required to implement a Special Instruction (SI).
//!   Together with the component-wise maximum ([`Molecule::union`]) and
//!   minimum ([`Molecule::intersect`]) the set of Molecules forms a complete
//!   lattice under the component-wise partial order.
//! * [`MoleculeVariant`] / [`SiDefinition`] — an SI together with all of its
//!   hardware implementations (Molecules varying in resource usage and
//!   latency) and its base-processor (trap) fallback latency.
//! * [`SiLibrary`] — a validated collection of SIs sharing one universe of
//!   [`AtomTypeId`]s; the input to Molecule selection and Atom scheduling.
//! * [`latency`] — the stage-based latency micro-model used to derive
//!   plausible per-Molecule latencies for the benchmark SI libraries.
//!
//! # Examples
//!
//! ```
//! use rispp_model::Molecule;
//!
//! let m = Molecule::from_counts([2, 0, 1]);
//! let o = Molecule::from_counts([1, 3, 1]);
//! let sup = m.union(&o);
//! assert_eq!(sup.counts(), &[2, 3, 1]);
//! assert!(m <= sup && o <= sup);
//! // Atoms additionally required to offer `o` when `m` is already loaded:
//! assert_eq!(m.residual(&o).counts(), &[0, 3, 0]);
//! ```

// `deny` rather than `forbid`: the AVX2 wide kernel tier opts back in with
// a scoped `allow` in `kernels::wide`; everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod atom;
mod error;
pub mod kernels;
pub mod latency;
mod molecule;
mod si;

pub use atom::{AtomTypeId, AtomTypeInfo, AtomUniverse};
pub use error::ModelError;
#[doc(hidden)]
pub use kernels::scalar;
pub use kernels::{
    active_tier, default_tier, init_tier_from_env, set_active_tier, KernelTier, TIER_ENV,
};
pub use molecule::{Molecule, INLINE_LANES};
pub use si::{MoleculeVariant, SiDefinition, SiId, SiLibrary, SiLibraryBuilder};
