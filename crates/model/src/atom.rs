use std::fmt;

use crate::ModelError;

/// Identifier of an Atom *type* within an [`AtomUniverse`].
///
/// An Atom is an elementary data path that can be re-loaded into an Atom
/// Container at run time; Molecules request *instances* of Atom types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomTypeId(pub u16);

impl AtomTypeId {
    /// The zero-based index of this atom type.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for AtomTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl From<u16> for AtomTypeId {
    fn from(v: u16) -> Self {
        AtomTypeId(v)
    }
}

/// Descriptive metadata of one Atom type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomTypeInfo {
    /// Human-readable name, e.g. `"PointFilter"`.
    pub name: String,
    /// Size of the partial bitstream implementing this atom, in bytes.
    ///
    /// Due to FPGA-specific constraints (four CLB rows on the xc2v3000
    /// prototype) real bitstream sizes cluster around ~60 KB; the default
    /// used by the benchmark library averages 60,488 bytes as in the paper.
    pub bitstream_bytes: u32,
    /// Synthesised area of one instance in slices (Table 3 reports an
    /// average atom size of 421 slices).
    pub slices: u32,
}

impl AtomTypeInfo {
    /// Creates an atom type with the paper's average bitstream size and
    /// slice count.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        AtomTypeInfo {
            name: name.into(),
            bitstream_bytes: 60_488,
            slices: 421,
        }
    }

    /// Sets the partial-bitstream size in bytes (builder style).
    #[must_use]
    pub fn with_bitstream_bytes(mut self, bytes: u32) -> Self {
        self.bitstream_bytes = bytes;
        self
    }

    /// Sets the per-instance slice count (builder style).
    #[must_use]
    pub fn with_slices(mut self, slices: u32) -> Self {
        self.slices = slices;
        self
    }
}

/// The universe of Atom types a library (and all its Molecules) is defined
/// over; fixes the arity `n` of the Molecule vector space `ℕⁿ`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AtomUniverse {
    types: Vec<AtomTypeInfo>,
}

impl AtomUniverse {
    /// Creates an empty universe.
    #[must_use]
    pub fn new() -> Self {
        AtomUniverse::default()
    }

    /// Creates a universe from a list of atom types.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if two types share a name.
    pub fn from_types<I: IntoIterator<Item = AtomTypeInfo>>(types: I) -> Result<Self, ModelError> {
        let mut u = AtomUniverse::new();
        for t in types {
            u.push(t)?;
        }
        Ok(u)
    }

    /// Adds an atom type, returning its new id.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if the name is already taken.
    pub fn push(&mut self, info: AtomTypeInfo) -> Result<AtomTypeId, ModelError> {
        if self.types.iter().any(|t| t.name == info.name) {
            return Err(ModelError::DuplicateName(info.name));
        }
        let id = AtomTypeId(u16::try_from(self.types.len()).expect("too many atom types"));
        self.types.push(info);
        Ok(id)
    }

    /// Number of atom types (the Molecule arity `n`).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.types.len()
    }

    /// Whether the universe contains no types.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Metadata of atom type `id`, or `None` when out of range.
    #[must_use]
    pub fn info(&self, id: AtomTypeId) -> Option<&AtomTypeInfo> {
        self.types.get(id.index())
    }

    /// Looks an atom type up by name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<AtomTypeId> {
        self.types
            .iter()
            .position(|t| t.name == name)
            .map(|i| AtomTypeId(i as u16))
    }

    /// Iterates over `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AtomTypeId, &AtomTypeInfo)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, t)| (AtomTypeId(i as u16), t))
    }

    /// Average bitstream size over all types, in bytes (0 when empty).
    #[must_use]
    pub fn average_bitstream_bytes(&self) -> u32 {
        if self.types.is_empty() {
            return 0;
        }
        let sum: u64 = self.types.iter().map(|t| u64::from(t.bitstream_bytes)).sum();
        (sum / self.types.len() as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_assigns_sequential_ids() {
        let mut u = AtomUniverse::new();
        let a = u.push(AtomTypeInfo::new("SAV")).unwrap();
        let b = u.push(AtomTypeInfo::new("Transform")).unwrap();
        assert_eq!(a, AtomTypeId(0));
        assert_eq!(b, AtomTypeId(1));
        assert_eq!(u.arity(), 2);
        assert_eq!(u.by_name("Transform"), Some(b));
        assert_eq!(u.by_name("missing"), None);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut u = AtomUniverse::new();
        u.push(AtomTypeInfo::new("SAV")).unwrap();
        let err = u.push(AtomTypeInfo::new("SAV")).unwrap_err();
        assert_eq!(err, ModelError::DuplicateName("SAV".into()));
    }

    #[test]
    fn default_bitstream_matches_paper_average() {
        let info = AtomTypeInfo::new("X");
        assert_eq!(info.bitstream_bytes, 60_488);
        assert_eq!(info.slices, 421);
    }

    #[test]
    fn average_bitstream_bytes() {
        let u = AtomUniverse::from_types([
            AtomTypeInfo::new("a").with_bitstream_bytes(50_000),
            AtomTypeInfo::new("b").with_bitstream_bytes(70_000),
        ])
        .unwrap();
        assert_eq!(u.average_bitstream_bytes(), 60_000);
        assert_eq!(AtomUniverse::new().average_bitstream_bytes(), 0);
    }

    #[test]
    fn atom_type_id_displays_compactly() {
        assert_eq!(AtomTypeId(3).to_string(), "A3");
        assert_eq!(AtomTypeId::from(7u16).index(), 7);
    }
}
