use std::cmp::Ordering;
use std::fmt;
use std::ops::Index;

use crate::ModelError;

/// A Molecule: a vector in `ℕⁿ` giving the desired number of instances of
/// each Atom type (paper Section 4.1).
///
/// Molecules form a complete lattice under the component-wise partial order
/// `≤` with join [`Molecule::union`] (component-wise `max`) and meet
/// [`Molecule::intersect`] (component-wise `min`). The *determinant* `|m|`
/// (total number of atoms) is exposed as [`Molecule::total_atoms`], and the
/// residual operator `⊖` — the minimum set of atoms that additionally have
/// to be offered — as [`Molecule::residual`].
///
/// # Examples
///
/// ```
/// use rispp_model::Molecule;
///
/// let available = Molecule::from_counts([0, 3]);
/// let wanted = Molecule::from_counts([1, 3]);
/// assert_eq!(available.residual(&wanted).total_atoms(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Molecule {
    counts: Vec<u16>,
}

impl Molecule {
    /// Creates the zero Molecule (the neutral element of `∪`) of the given
    /// arity.
    #[must_use]
    pub fn zero(arity: usize) -> Self {
        Molecule {
            counts: vec![0; arity],
        }
    }

    /// Creates a Unit-Molecule `uᵢ`: a single instance of atom type `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= arity`.
    #[must_use]
    pub fn unit(arity: usize, index: usize) -> Self {
        assert!(index < arity, "unit index {index} out of arity {arity}");
        let mut counts = vec![0; arity];
        counts[index] = 1;
        Molecule { counts }
    }

    /// Creates a Molecule from explicit per-type instance counts.
    #[must_use]
    pub fn from_counts<I: IntoIterator<Item = u16>>(counts: I) -> Self {
        Molecule {
            counts: counts.into_iter().collect(),
        }
    }

    /// Number of distinct atom types this Molecule is defined over.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.counts.len()
    }

    /// The raw per-type instance counts.
    #[must_use]
    pub fn counts(&self) -> &[u16] {
        &self.counts
    }

    /// Instance count of atom type `index`, or 0 when out of range.
    #[must_use]
    pub fn count(&self, index: usize) -> u16 {
        self.counts.get(index).copied().unwrap_or(0)
    }

    /// The determinant `|m|`: the total number of atoms required to
    /// implement this Molecule.
    #[must_use]
    pub fn total_atoms(&self) -> u32 {
        self.counts.iter().map(|&c| u32::from(c)).sum()
    }

    /// Number of distinct atom *types* used (non-zero components).
    #[must_use]
    pub fn atom_type_count(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Whether no atoms at all are required.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// The Meta-Molecule `m ∪ o` (component-wise maximum): atoms required to
    /// implement *both* operands.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ; use [`Molecule::checked_union`] for a
    /// fallible variant.
    #[must_use]
    pub fn union(&self, other: &Molecule) -> Molecule {
        self.checked_union(other).expect("molecule arity mismatch")
    }

    /// Fallible variant of [`Molecule::union`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] when the arities differ.
    pub fn checked_union(&self, other: &Molecule) -> Result<Molecule, ModelError> {
        self.zip_with(other, |a, b| a.max(b))
    }

    /// The Meta-Molecule `m ∩ o` (component-wise minimum): atoms that are
    /// collectively needed for both operands.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ; use [`Molecule::checked_intersect`] for
    /// a fallible variant.
    #[must_use]
    pub fn intersect(&self, other: &Molecule) -> Molecule {
        self.checked_intersect(other)
            .expect("molecule arity mismatch")
    }

    /// Fallible variant of [`Molecule::intersect`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] when the arities differ.
    pub fn checked_intersect(&self, other: &Molecule) -> Result<Molecule, ModelError> {
        self.zip_with(other, |a, b| a.min(b))
    }

    /// The residual `self ⊖ other`: the minimum set of atoms that
    /// additionally have to be offered to implement `other`, assuming the
    /// atoms in `self` are already available (saturating component-wise
    /// subtraction `other - self`).
    ///
    /// Note the operand order follows the paper: `a ⊖ m` is "what `m` still
    /// needs on top of `a`".
    ///
    /// # Panics
    ///
    /// Panics if the arities differ; use [`Molecule::checked_residual`] for
    /// a fallible variant.
    #[must_use]
    pub fn residual(&self, other: &Molecule) -> Molecule {
        self.checked_residual(other)
            .expect("molecule arity mismatch")
    }

    /// Fallible variant of [`Molecule::residual`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] when the arities differ.
    pub fn checked_residual(&self, other: &Molecule) -> Result<Molecule, ModelError> {
        self.zip_with(other, |a, o| o.saturating_sub(a))
    }

    /// `|self ⊖ other|` without materialising the residual Molecule:
    /// equivalent to `self.residual(other).total_atoms()` but
    /// allocation-free. The scheduler hot loops score every candidate by
    /// this count each round.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    #[must_use]
    pub fn residual_atoms(&self, other: &Molecule) -> u32 {
        assert_eq!(self.arity(), other.arity(), "molecule arity mismatch");
        self.counts
            .iter()
            .zip(&other.counts)
            .map(|(&a, &o)| u32::from(o.saturating_sub(a)))
            .sum()
    }

    /// Component-wise saturating addition; used to track loaded atoms.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    #[must_use]
    pub fn saturating_add(&self, other: &Molecule) -> Molecule {
        self.zip_with(other, |a, b| a.saturating_add(b))
            .expect("molecule arity mismatch")
    }

    /// The supremum of a set of Molecules: the Meta-Molecule declaring all
    /// atoms needed to implement *any* Molecule of the set.
    ///
    /// Returns `None` for an empty iterator (the paper defines `sup ∅` only
    /// over non-empty subsets for the purposes of scheduling).
    ///
    /// # Panics
    ///
    /// Panics if the Molecules have differing arities.
    pub fn supremum<'a, I: IntoIterator<Item = &'a Molecule>>(set: I) -> Option<Molecule> {
        set.into_iter().fold(None, |acc, m| match acc {
            None => Some(m.clone()),
            Some(a) => Some(a.union(m)),
        })
    }

    /// The infimum of a set of Molecules: atoms collectively needed by *all*
    /// Molecules of the set. Returns `None` for an empty iterator.
    ///
    /// # Panics
    ///
    /// Panics if the Molecules have differing arities.
    pub fn infimum<'a, I: IntoIterator<Item = &'a Molecule>>(set: I) -> Option<Molecule> {
        set.into_iter().fold(None, |acc, m| match acc {
            None => Some(m.clone()),
            Some(a) => Some(a.intersect(m)),
        })
    }

    /// Decomposes this Molecule into a sequence of Unit-Molecule indices:
    /// atom type `i` appears `counts[i]` times, in ascending type order.
    ///
    /// The scheduling function SF of the paper (eq. 1/2) is a permutation of
    /// exactly this multiset.
    #[must_use]
    pub fn to_unit_indices(&self) -> Vec<usize> {
        let mut units = Vec::with_capacity(self.total_atoms() as usize);
        for (i, &c) in self.counts.iter().enumerate() {
            for _ in 0..c {
                units.push(i);
            }
        }
        units
    }

    fn zip_with(
        &self,
        other: &Molecule,
        f: impl Fn(u16, u16) -> u16,
    ) -> Result<Molecule, ModelError> {
        if self.arity() != other.arity() {
            return Err(ModelError::ArityMismatch {
                left: self.arity(),
                right: other.arity(),
            });
        }
        Ok(Molecule {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

/// Component-wise partial order: `m ≤ o` iff `∀i: mᵢ ≤ oᵢ`.
///
/// Molecules of different arity, and Molecules where neither dominates the
/// other, are incomparable (`partial_cmp` returns `None`).
impl PartialOrd for Molecule {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.arity() != other.arity() {
            return None;
        }
        let mut le = true;
        let mut ge = true;
        for (&a, &b) in self.counts.iter().zip(&other.counts) {
            le &= a <= b;
            ge &= a >= b;
            if !le && !ge {
                return None;
            }
        }
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

impl Index<usize> for Molecule {
    type Output = u16;

    fn index(&self, index: usize) -> &u16 {
        &self.counts[index]
    }
}

impl FromIterator<u16> for Molecule {
    fn from_iter<I: IntoIterator<Item = u16>>(iter: I) -> Self {
        Molecule::from_counts(iter)
    }
}

impl fmt::Display for Molecule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(counts: &[u16]) -> Molecule {
        Molecule::from_counts(counts.iter().copied())
    }

    #[test]
    fn zero_is_neutral_for_union() {
        let a = m(&[2, 0, 5]);
        assert_eq!(a.union(&Molecule::zero(3)), a);
    }

    #[test]
    fn union_is_componentwise_max() {
        assert_eq!(m(&[2, 1]).union(&m(&[1, 3])), m(&[2, 3]));
    }

    #[test]
    fn intersect_is_componentwise_min() {
        assert_eq!(m(&[2, 1]).intersect(&m(&[1, 3])), m(&[1, 1]));
    }

    #[test]
    fn paper_residual_example() {
        // a = (0,3), m4 = (1,3): a ⊖ m4 = (1,0), so |a ⊖ m4| = 1.
        let a = m(&[0, 3]);
        let m4 = m(&[1, 3]);
        let m2 = m(&[2, 2]);
        assert_eq!(a.residual(&m4), m(&[1, 0]));
        assert_eq!(a.residual(&m2), m(&[2, 0]));
        // With these initially available atoms, m4 is the cheaper upgrade,
        // exactly the situation of Section 4.3.
        assert!(a.residual(&m4).total_atoms() < a.residual(&m2).total_atoms());
    }

    #[test]
    fn partial_order_basics() {
        assert!(m(&[1, 2]) <= m(&[1, 3]));
        assert!(m(&[1, 2]) < m(&[2, 2]));
        assert_eq!(m(&[1, 2]).partial_cmp(&m(&[2, 1])), None);
        assert_eq!(m(&[1, 2]).partial_cmp(&m(&[1, 2])), Some(Ordering::Equal));
        assert_eq!(m(&[1]).partial_cmp(&m(&[1, 0])), None);
    }

    #[test]
    fn supremum_dominates_all_members() {
        let set = [m(&[1, 0, 2]), m(&[0, 4, 1]), m(&[2, 2, 0])];
        let sup = Molecule::supremum(set.iter()).expect("non-empty");
        assert_eq!(sup, m(&[2, 4, 2]));
        for x in &set {
            assert!(x <= &sup);
        }
    }

    #[test]
    fn infimum_is_dominated_by_all_members() {
        let set = [m(&[1, 3]), m(&[2, 1])];
        let inf = Molecule::infimum(set.iter()).expect("non-empty");
        assert_eq!(inf, m(&[1, 1]));
        for x in &set {
            assert!(&inf <= x);
        }
    }

    #[test]
    fn empty_set_has_no_supremum() {
        assert_eq!(Molecule::supremum(std::iter::empty()), None);
        assert_eq!(Molecule::infimum(std::iter::empty()), None);
    }

    #[test]
    fn determinant_counts_all_instances() {
        assert_eq!(m(&[2, 0, 3]).total_atoms(), 5);
        assert_eq!(Molecule::zero(4).total_atoms(), 0);
    }

    #[test]
    fn unit_molecule_has_single_atom() {
        let u = Molecule::unit(4, 2);
        assert_eq!(u.total_atoms(), 1);
        assert_eq!(u.count(2), 1);
        assert_eq!(u.atom_type_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of arity")]
    fn unit_out_of_range_panics() {
        let _ = Molecule::unit(2, 2);
    }

    #[test]
    fn checked_ops_report_arity_mismatch() {
        let e = m(&[1]).checked_union(&m(&[1, 2])).unwrap_err();
        assert_eq!(e, ModelError::ArityMismatch { left: 1, right: 2 });
    }

    #[test]
    fn unit_indices_expand_multiplicities() {
        assert_eq!(m(&[2, 0, 1]).to_unit_indices(), vec![0, 0, 2]);
        assert!(Molecule::zero(3).to_unit_indices().is_empty());
    }

    #[test]
    fn display_formats_as_tuple() {
        assert_eq!(m(&[1, 0, 3]).to_string(), "(1, 0, 3)");
        assert_eq!(Molecule::zero(0).to_string(), "()");
    }

    #[test]
    fn saturating_add_tracks_inventory() {
        assert_eq!(m(&[1, 2]).saturating_add(&m(&[3, 0])), m(&[4, 2]));
    }

    #[test]
    fn from_iterator_collects() {
        let x: Molecule = [1u16, 2, 3].into_iter().collect();
        assert_eq!(x, m(&[1, 2, 3]));
    }
}
