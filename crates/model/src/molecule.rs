use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Index;

use crate::{kernels, ModelError};

/// Number of `u16` components a [`Molecule`] stores inline, without heap
/// allocation. Molecules of arity above this cap spill to a `Vec<u16>`.
pub const INLINE_LANES: usize = 32;

/// Internal storage: inline small-buffer up to [`INLINE_LANES`] components,
/// heap spill above.
///
/// Invariants (relied on by the SWAR kernels and `PartialEq`/`Hash`):
///
/// * a Molecule of arity ≤ [`INLINE_LANES`] is *always* `Inline` (canonical
///   representation — equality can compare `counts()` slices);
/// * `Inline` lanes at positions ≥ `len` are always zero (zero-tail), so a
///   partially filled final 4-lane word can be processed as-is.
#[derive(Clone)]
enum Repr {
    Inline { len: u8, lanes: [u16; INLINE_LANES] },
    Spill(Vec<u16>),
}

/// A Molecule: a vector in `ℕⁿ` giving the desired number of instances of
/// each Atom type (paper Section 4.1).
///
/// Molecules form a complete lattice under the component-wise partial order
/// `≤` with join [`Molecule::union`] (component-wise `max`) and meet
/// [`Molecule::intersect`] (component-wise `min`). The *determinant* `|m|`
/// (total number of atoms) is exposed as [`Molecule::total_atoms`], and the
/// residual operator `⊖` — the minimum set of atoms that additionally have
/// to be offered — as [`Molecule::residual`].
///
/// # Representation and kernels
///
/// Counts are stored inline (no heap allocation) up to [`INLINE_LANES`]
/// components and spill to a `Vec<u16>` above that. All lattice operations
/// route through the per-process kernel tier dispatch in
/// [`crate::kernels`] — scalar reference loops, portable u64 SWAR, or
/// AVX2 wide SIMD, all bit-identical (the scalar tier is the reference
/// implementation the others are property-tested against).
///
/// # Examples
///
/// ```
/// use rispp_model::Molecule;
///
/// let available = Molecule::from_counts([0, 3]);
/// let wanted = Molecule::from_counts([1, 3]);
/// assert_eq!(available.residual(&wanted).total_atoms(), 1);
/// ```
#[derive(Clone)]
pub struct Molecule {
    repr: Repr,
}

impl Molecule {
    /// Maximum arity stored without heap allocation ([`INLINE_LANES`]).
    pub const INLINE_CAP: usize = INLINE_LANES;

    /// Creates the zero Molecule (the neutral element of `∪`) of the given
    /// arity.
    #[must_use]
    pub fn zero(arity: usize) -> Self {
        if arity <= INLINE_LANES {
            Molecule {
                repr: Repr::Inline {
                    len: arity as u8,
                    lanes: [0; INLINE_LANES],
                },
            }
        } else {
            Molecule {
                repr: Repr::Spill(vec![0; arity]),
            }
        }
    }

    /// Creates a Unit-Molecule `uᵢ`: a single instance of atom type `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= arity`.
    #[must_use]
    pub fn unit(arity: usize, index: usize) -> Self {
        assert!(index < arity, "unit index {index} out of arity {arity}");
        let mut m = Molecule::zero(arity);
        m.set_count(index, 1);
        m
    }

    /// Creates a Molecule from explicit per-type instance counts.
    #[must_use]
    pub fn from_counts<I: IntoIterator<Item = u16>>(counts: I) -> Self {
        let mut lanes = [0u16; INLINE_LANES];
        let mut len = 0usize;
        let mut iter = counts.into_iter();
        for v in iter.by_ref() {
            if len == INLINE_LANES {
                // Exceeds the inline cap: move to the spill representation.
                let (lo, _) = iter.size_hint();
                let mut spill = Vec::with_capacity(INLINE_LANES + 1 + lo);
                spill.extend_from_slice(&lanes);
                spill.push(v);
                spill.extend(iter);
                return Molecule {
                    repr: Repr::Spill(spill),
                };
            }
            lanes[len] = v;
            len += 1;
        }
        Molecule {
            repr: Repr::Inline {
                len: len as u8,
                lanes,
            },
        }
    }

    /// Number of distinct atom types this Molecule is defined over.
    #[must_use]
    pub fn arity(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => usize::from(*len),
            Repr::Spill(v) => v.len(),
        }
    }

    /// The raw per-type instance counts.
    #[must_use]
    pub fn counts(&self) -> &[u16] {
        match &self.repr {
            Repr::Inline { len, lanes } => &lanes[..usize::from(*len)],
            Repr::Spill(v) => v,
        }
    }

    /// Mutable view of the per-type instance counts (private: callers
    /// must preserve the zero-tail invariant of the inline repr, which
    /// every lane-wise kernel does).
    fn counts_mut(&mut self) -> &mut [u16] {
        match &mut self.repr {
            Repr::Inline { len, lanes } => &mut lanes[..usize::from(*len)],
            Repr::Spill(v) => v,
        }
    }

    /// Instance count of atom type `index`, or 0 when out of range.
    #[must_use]
    pub fn count(&self, index: usize) -> u16 {
        self.counts().get(index).copied().unwrap_or(0)
    }

    /// Sets the instance count of atom type `index` in place — the
    /// allocation-free primitive behind inventory tracking (e.g. the
    /// fabric's available-atom vector).
    ///
    /// # Panics
    ///
    /// Panics if `index >= arity`.
    pub fn set_count(&mut self, index: usize, value: u16) {
        let arity = self.arity();
        match &mut self.repr {
            Repr::Inline { lanes, .. } => {
                assert!(index < arity, "index {index} out of arity {arity}");
                lanes[index] = value;
            }
            Repr::Spill(v) => v[index] = value,
        }
    }

    /// The determinant `|m|`: the total number of atoms required to
    /// implement this Molecule.
    ///
    /// # Panics
    ///
    /// Panics if the count exceeds `u32::MAX` (requires arity > 65537).
    #[must_use]
    pub fn total_atoms(&self) -> u32 {
        u32::try_from(kernels::total_atoms(self.counts())).expect("total atom count overflows u32")
    }

    /// Number of distinct atom *types* used (non-zero components).
    #[must_use]
    pub fn atom_type_count(&self) -> usize {
        self.counts().iter().filter(|&&c| c > 0).count()
    }

    /// Whether no atoms at all are required.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        kernels::total_atoms(self.counts()) == 0
    }

    /// The Meta-Molecule `m ∪ o` (component-wise maximum): atoms required to
    /// implement *both* operands.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ; use [`Molecule::checked_union`] for a
    /// fallible variant.
    #[must_use]
    pub fn union(&self, other: &Molecule) -> Molecule {
        self.checked_union(other).expect("molecule arity mismatch")
    }

    /// Fallible variant of [`Molecule::union`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] when the arities differ.
    pub fn checked_union(&self, other: &Molecule) -> Result<Molecule, ModelError> {
        self.binary(other, kernels::union_into)
    }

    /// In-place union `self ← self ∪ other`: like [`Molecule::union`] but
    /// folds into an existing accumulator without constructing a result.
    /// Hot loops maintaining a running supremum (one fold per considered
    /// Molecule) use this to stay allocation- and copy-free.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    pub fn union_assign(&mut self, other: &Molecule) {
        assert_eq!(self.arity(), other.arity(), "molecule arity mismatch");
        kernels::union_in_place(self.counts_mut(), other.counts());
    }

    /// Writes `self ∪ other` into `out`, overwriting its counts: the
    /// three-operand form of [`Molecule::union`] for callers that keep
    /// reusable result buffers (e.g. the selector's prefix/suffix
    /// supremum tables, rebuilt every upgrade round).
    ///
    /// # Panics
    ///
    /// Panics if the three arities are not all equal.
    pub fn union_into(&self, other: &Molecule, out: &mut Molecule) {
        assert_eq!(self.arity(), other.arity(), "molecule arity mismatch");
        assert_eq!(self.arity(), out.arity(), "molecule arity mismatch");
        kernels::union_into(self.counts(), other.counts(), out.counts_mut());
    }

    /// The Meta-Molecule `m ∩ o` (component-wise minimum): atoms that are
    /// collectively needed for both operands.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ; use [`Molecule::checked_intersect`] for
    /// a fallible variant.
    #[must_use]
    pub fn intersect(&self, other: &Molecule) -> Molecule {
        self.checked_intersect(other)
            .expect("molecule arity mismatch")
    }

    /// Fallible variant of [`Molecule::intersect`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] when the arities differ.
    pub fn checked_intersect(&self, other: &Molecule) -> Result<Molecule, ModelError> {
        self.binary(other, kernels::intersect_into)
    }

    /// The residual `self ⊖ other`: the minimum set of atoms that
    /// additionally have to be offered to implement `other`, assuming the
    /// atoms in `self` are already available (saturating component-wise
    /// subtraction `other - self`).
    ///
    /// Note the operand order follows the paper: `a ⊖ m` is "what `m` still
    /// needs on top of `a`".
    ///
    /// # Panics
    ///
    /// Panics if the arities differ; use [`Molecule::checked_residual`] for
    /// a fallible variant.
    #[must_use]
    pub fn residual(&self, other: &Molecule) -> Molecule {
        self.checked_residual(other)
            .expect("molecule arity mismatch")
    }

    /// Fallible variant of [`Molecule::residual`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] when the arities differ.
    pub fn checked_residual(&self, other: &Molecule) -> Result<Molecule, ModelError> {
        self.binary(other, kernels::residual_into)
    }

    /// `|self ⊖ other|` without materialising the residual Molecule:
    /// equivalent to `self.residual(other).total_atoms()` but
    /// allocation-free. The scheduler hot loops score every candidate by
    /// this count each round.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    #[must_use]
    pub fn residual_atoms(&self, other: &Molecule) -> u32 {
        assert_eq!(self.arity(), other.arity(), "molecule arity mismatch");
        kernels::residual_atoms(self.counts(), other.counts()) as u32
    }

    /// `|self ∪ other|` without materialising the union Molecule:
    /// equivalent to `self.union(other).total_atoms()` but copy-free.
    /// Molecule selection scores every upgrade candidate by the size of
    /// the would-be supremum each round.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    #[must_use]
    pub fn union_atoms(&self, other: &Molecule) -> u32 {
        assert_eq!(self.arity(), other.arity(), "molecule arity mismatch");
        kernels::union_atoms(self.counts(), other.counts()) as u32
    }

    /// Bitmask of the atom types present: bit `i` is set iff
    /// `count(i) > 0`. Hot paths that only need *which* types a Molecule
    /// uses (e.g. the fabric's per-type LRU marking) precompute this once
    /// per variant instead of rescanning the count slice per execution.
    ///
    /// # Panics
    ///
    /// Panics if the arity exceeds 64; callers over wider universes must
    /// stay on [`Molecule::counts`].
    #[must_use]
    pub fn nonzero_mask(&self) -> u64 {
        assert!(self.arity() <= 64, "nonzero_mask requires arity <= 64");
        kernels::nonzero_mask(self.counts())
    }

    /// Whether `self ≤ other` in the component-wise lattice order, i.e.
    /// `other` already covers every atom instance `self` requires.
    ///
    /// Equivalent to `self.partial_cmp(other)` being `Less` or `Equal`, in
    /// particular Molecules of differing arity are *not* subsets of each
    /// other. One directed SWAR pass — cheaper than `partial_cmp` when only
    /// the `≤` direction matters (the cleaning rule of eq. 4).
    #[must_use]
    pub fn is_subset(&self, other: &Molecule) -> bool {
        self.arity() == other.arity() && kernels::is_subset(self.counts(), other.counts())
    }

    /// Component-wise saturating addition; used to track loaded atoms.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    #[must_use]
    pub fn saturating_add(&self, other: &Molecule) -> Molecule {
        self.binary(other, kernels::saturating_add_into)
            .expect("molecule arity mismatch")
    }

    /// The supremum of a set of Molecules: the Meta-Molecule declaring all
    /// atoms needed to implement *any* Molecule of the set.
    ///
    /// Returns `None` for an empty iterator (the paper defines `sup ∅` only
    /// over non-empty subsets for the purposes of scheduling).
    ///
    /// # Panics
    ///
    /// Panics if the Molecules have differing arities.
    pub fn supremum<'a, I: IntoIterator<Item = &'a Molecule>>(set: I) -> Option<Molecule> {
        set.into_iter().fold(None, |acc, m| match acc {
            None => Some(m.clone()),
            Some(a) => Some(a.union(m)),
        })
    }

    /// The infimum of a set of Molecules: atoms collectively needed by *all*
    /// Molecules of the set. Returns `None` for an empty iterator.
    ///
    /// # Panics
    ///
    /// Panics if the Molecules have differing arities.
    pub fn infimum<'a, I: IntoIterator<Item = &'a Molecule>>(set: I) -> Option<Molecule> {
        set.into_iter().fold(None, |acc, m| match acc {
            None => Some(m.clone()),
            Some(a) => Some(a.intersect(m)),
        })
    }

    /// Decomposes this Molecule into a sequence of Unit-Molecule indices:
    /// atom type `i` appears `counts[i]` times, in ascending type order.
    ///
    /// The scheduling function SF of the paper (eq. 1/2) is a permutation of
    /// exactly this multiset.
    #[must_use]
    pub fn to_unit_indices(&self) -> Vec<usize> {
        let counts = self.counts();
        let mut units = Vec::with_capacity(kernels::total_atoms(counts) as usize);
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                units.push(i);
            }
        }
        units
    }

    /// Runs `kernel` over both count slices into a fresh zero Molecule of
    /// the shared arity (inline — no heap allocation — at arity ≤
    /// [`INLINE_LANES`]).
    #[inline]
    fn binary(
        &self,
        other: &Molecule,
        kernel: fn(&[u16], &[u16], &mut [u16]),
    ) -> Result<Molecule, ModelError> {
        if self.arity() != other.arity() {
            return Err(ModelError::ArityMismatch {
                left: self.arity(),
                right: other.arity(),
            });
        }
        let mut out = Molecule::zero(self.arity());
        match &mut out.repr {
            Repr::Inline { len, lanes } => {
                kernel(self.counts(), other.counts(), &mut lanes[..usize::from(*len)]);
            }
            Repr::Spill(v) => kernel(self.counts(), other.counts(), v),
        }
        Ok(out)
    }
}

impl fmt::Debug for Molecule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Molecule")
            .field("counts", &self.counts())
            .finish()
    }
}

impl Default for Molecule {
    fn default() -> Self {
        Molecule::zero(0)
    }
}

/// Equality compares the logical count vectors; the inline/spill split is
/// canonical (arity decides it), so comparing `counts()` slices is exact.
impl PartialEq for Molecule {
    fn eq(&self, other: &Self) -> bool {
        self.counts() == other.counts()
    }
}

impl Eq for Molecule {}

impl Hash for Molecule {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.counts().hash(state);
    }
}

/// Component-wise partial order: `m ≤ o` iff `∀i: mᵢ ≤ oᵢ`.
///
/// Molecules of different arity, and Molecules where neither dominates the
/// other, are incomparable (`partial_cmp` returns `None`).
impl PartialOrd for Molecule {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.arity() != other.arity() {
            return None;
        }
        kernels::partial_cmp(self.counts(), other.counts())
    }
}

impl Index<usize> for Molecule {
    type Output = u16;

    fn index(&self, index: usize) -> &u16 {
        &self.counts()[index]
    }
}

impl FromIterator<u16> for Molecule {
    fn from_iter<I: IntoIterator<Item = u16>>(iter: I) -> Self {
        Molecule::from_counts(iter)
    }
}

impl fmt::Display for Molecule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.counts().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::scalar;

    fn m(counts: &[u16]) -> Molecule {
        Molecule::from_counts(counts.iter().copied())
    }

    #[test]
    fn zero_is_neutral_for_union() {
        let a = m(&[2, 0, 5]);
        assert_eq!(a.union(&Molecule::zero(3)), a);
    }

    #[test]
    fn union_is_componentwise_max() {
        assert_eq!(m(&[2, 1]).union(&m(&[1, 3])), m(&[2, 3]));
    }

    #[test]
    fn intersect_is_componentwise_min() {
        assert_eq!(m(&[2, 1]).intersect(&m(&[1, 3])), m(&[1, 1]));
    }

    #[test]
    fn paper_residual_example() {
        // a = (0,3), m4 = (1,3): a ⊖ m4 = (1,0), so |a ⊖ m4| = 1.
        let a = m(&[0, 3]);
        let m4 = m(&[1, 3]);
        let m2 = m(&[2, 2]);
        assert_eq!(a.residual(&m4), m(&[1, 0]));
        assert_eq!(a.residual(&m2), m(&[2, 0]));
        // With these initially available atoms, m4 is the cheaper upgrade,
        // exactly the situation of Section 4.3.
        assert!(a.residual(&m4).total_atoms() < a.residual(&m2).total_atoms());
    }

    #[test]
    fn partial_order_basics() {
        assert!(m(&[1, 2]) <= m(&[1, 3]));
        assert!(m(&[1, 2]) < m(&[2, 2]));
        assert_eq!(m(&[1, 2]).partial_cmp(&m(&[2, 1])), None);
        assert_eq!(m(&[1, 2]).partial_cmp(&m(&[1, 2])), Some(Ordering::Equal));
        assert_eq!(m(&[1]).partial_cmp(&m(&[1, 0])), None);
    }

    #[test]
    fn is_subset_matches_partial_order() {
        assert!(m(&[1, 2]).is_subset(&m(&[1, 3])));
        assert!(m(&[1, 2]).is_subset(&m(&[1, 2])));
        assert!(!m(&[1, 2]).is_subset(&m(&[2, 1])));
        assert!(!m(&[2, 1]).is_subset(&m(&[1, 2])));
        assert!(!m(&[1]).is_subset(&m(&[1, 0])));
    }

    #[test]
    fn supremum_dominates_all_members() {
        let set = [m(&[1, 0, 2]), m(&[0, 4, 1]), m(&[2, 2, 0])];
        let sup = Molecule::supremum(set.iter()).expect("non-empty");
        assert_eq!(sup, m(&[2, 4, 2]));
        for x in &set {
            assert!(x <= &sup);
        }
    }

    #[test]
    fn infimum_is_dominated_by_all_members() {
        let set = [m(&[1, 3]), m(&[2, 1])];
        let inf = Molecule::infimum(set.iter()).expect("non-empty");
        assert_eq!(inf, m(&[1, 1]));
        for x in &set {
            assert!(&inf <= x);
        }
    }

    #[test]
    fn empty_set_has_no_supremum() {
        assert_eq!(Molecule::supremum(std::iter::empty()), None);
        assert_eq!(Molecule::infimum(std::iter::empty()), None);
    }

    #[test]
    fn determinant_counts_all_instances() {
        assert_eq!(m(&[2, 0, 3]).total_atoms(), 5);
        assert_eq!(Molecule::zero(4).total_atoms(), 0);
    }

    #[test]
    fn unit_molecule_has_single_atom() {
        let u = Molecule::unit(4, 2);
        assert_eq!(u.total_atoms(), 1);
        assert_eq!(u.count(2), 1);
        assert_eq!(u.atom_type_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of arity")]
    fn unit_out_of_range_panics() {
        let _ = Molecule::unit(2, 2);
    }

    #[test]
    fn checked_ops_report_arity_mismatch() {
        let e = m(&[1]).checked_union(&m(&[1, 2])).unwrap_err();
        assert_eq!(e, ModelError::ArityMismatch { left: 1, right: 2 });
    }

    #[test]
    fn unit_indices_expand_multiplicities() {
        assert_eq!(m(&[2, 0, 1]).to_unit_indices(), vec![0, 0, 2]);
        assert!(Molecule::zero(3).to_unit_indices().is_empty());
    }

    #[test]
    fn display_formats_as_tuple() {
        assert_eq!(m(&[1, 0, 3]).to_string(), "(1, 0, 3)");
        assert_eq!(Molecule::zero(0).to_string(), "()");
    }

    #[test]
    fn saturating_add_tracks_inventory() {
        assert_eq!(m(&[1, 2]).saturating_add(&m(&[3, 0])), m(&[4, 2]));
        // Per-lane saturation, no carry into the neighbouring component.
        assert_eq!(
            m(&[u16::MAX, 0]).saturating_add(&m(&[1, 7])),
            m(&[u16::MAX, 7])
        );
    }

    #[test]
    fn from_iterator_collects() {
        let x: Molecule = [1u16, 2, 3].into_iter().collect();
        assert_eq!(x, m(&[1, 2, 3]));
    }

    #[test]
    fn set_count_updates_in_place() {
        let mut x = Molecule::zero(5);
        x.set_count(3, 7);
        assert_eq!(x.counts(), &[0, 0, 0, 7, 0]);
        x.set_count(3, 0);
        assert!(x.is_zero());
    }

    #[test]
    #[should_panic(expected = "out of arity")]
    fn set_count_out_of_range_panics() {
        Molecule::zero(2).set_count(2, 1);
    }

    #[test]
    fn spill_representation_above_inline_cap() {
        let arity = INLINE_LANES + 3;
        let counts: Vec<u16> = (0..arity as u16).collect();
        let big = Molecule::from_counts(counts.iter().copied());
        assert_eq!(big.arity(), arity);
        assert_eq!(big.counts(), &counts[..]);
        assert_eq!(
            u64::from(big.total_atoms()),
            counts.iter().map(|&c| u64::from(c)).sum::<u64>()
        );
        let z = Molecule::zero(arity);
        assert_eq!(z.union(&big), big);
        assert_eq!(z.residual(&big), big);
        assert!(z.is_subset(&big));
        assert_eq!(z.partial_cmp(&big), Some(Ordering::Less));
    }

    #[test]
    fn lane_boundary_values_survive_all_ops() {
        // Exercise lane extremes around the SWAR sign bits at every lane
        // position of a word, plus a partial tail word.
        let a = m(&[0, u16::MAX, 0x8000, 0x7FFF, 1, 0x8001]);
        let b = m(&[u16::MAX, 0, 0x7FFF, 0x8000, 0x8000, 0x8001]);
        assert_eq!(
            a.union(&b).counts(),
            &[u16::MAX, u16::MAX, 0x8000, 0x8000, 0x8000, 0x8001]
        );
        assert_eq!(
            a.intersect(&b).counts(),
            &[0, 0, 0x7FFF, 0x7FFF, 1, 0x8001]
        );
        assert_eq!(
            a.residual(&b).counts(),
            &[u16::MAX, 0, 0, 1, 0x7FFF, 0]
        );
        assert_eq!(a.partial_cmp(&b), None);
        assert_eq!(
            u64::from(a.residual_atoms(&b)),
            scalar::residual_atoms(a.counts(), b.counts())
        );
    }
}
