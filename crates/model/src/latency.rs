//! Stage-based latency micro-model for Molecule implementations.
//!
//! The paper's Molecules are hand-developed data paths; their latencies come
//! from RTL. For the reproduction we derive per-Molecule latencies from a
//! simple but physically grounded model: one execution of an SI issues
//! `ops[t]` operations onto functional stage `t`; a Molecule providing
//! `k_t` parallel instances of atom type `t` serialises those into
//! `ceil(ops[t] / k_t)` issue slots of `ii[t]` cycles each, plus a fixed
//! pipeline fill `depth`. More instances therefore reduce latency with
//! diminishing returns, and "wrong-mix" Molecules (many instances of a
//! cheap stage, few of the bottleneck stage) are naturally slower — exactly
//! the `m₄`-style candidates discussed in Section 4.3 of the paper.

use crate::Molecule;

/// Per-SI stage description from which Molecule latencies are computed.
///
/// # Examples
///
/// ```
/// use rispp_model::latency::StageModel;
/// use rispp_model::Molecule;
///
/// // An SI using 16 ops of stage 0, one cycle each, 4 cycles fill.
/// let model = StageModel::new(Molecule::from_counts([16]), vec![1], 4);
/// assert_eq!(model.latency(&Molecule::from_counts([1])), 20);
/// assert_eq!(model.latency(&Molecule::from_counts([4])), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageModel {
    ops: Molecule,
    issue_interval: Vec<u32>,
    depth: u32,
}

impl StageModel {
    /// Creates a stage model.
    ///
    /// `ops[t]` is the number of operations stage `t` performs per SI
    /// execution, `issue_interval[t]` the cycles per issue slot of that
    /// stage, and `depth` the pipeline fill overhead added once.
    ///
    /// # Panics
    ///
    /// Panics if `issue_interval.len() != ops.arity()`.
    #[must_use]
    pub fn new(ops: Molecule, issue_interval: Vec<u32>, depth: u32) -> Self {
        assert_eq!(
            issue_interval.len(),
            ops.arity(),
            "issue interval per stage required"
        );
        StageModel {
            ops,
            issue_interval,
            depth,
        }
    }

    /// The per-stage operation counts.
    #[must_use]
    pub fn ops(&self) -> &Molecule {
        &self.ops
    }

    /// Latency in cycles of one SI execution on a Molecule providing
    /// `instances[t]` copies of stage `t`.
    ///
    /// Stages whose instance count is zero while `ops > 0` are treated as a
    /// single shared instance provided elsewhere (latency as if `k = 1`);
    /// callers normally only evaluate Molecules that cover all used stages.
    #[must_use]
    pub fn latency(&self, instances: &Molecule) -> u32 {
        let mut cycles = self.depth;
        for t in 0..self.ops.arity() {
            let ops = u32::from(self.ops.count(t));
            if ops == 0 {
                continue;
            }
            let k = u32::from(instances.count(t)).max(1);
            cycles += ops.div_ceil(k) * self.issue_interval[t];
        }
        cycles
    }

    /// Latency of the fully parallel Molecule (one instance per op).
    #[must_use]
    pub fn min_latency(&self) -> u32 {
        let full = self.ops.clone();
        self.latency(&full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> StageModel {
        // Two stages: 8 ops @1 cycle, 4 ops @2 cycles, depth 6.
        StageModel::new(Molecule::from_counts([8, 4]), vec![1, 2], 6)
    }

    #[test]
    fn single_instance_serialises_everything() {
        let m = model();
        // 8*1 + 4*2 + 6 = 22
        assert_eq!(m.latency(&Molecule::from_counts([1, 1])), 22);
    }

    #[test]
    fn more_instances_never_slower() {
        let m = model();
        let mut prev = u32::MAX;
        for k in 1..=8u16 {
            let lat = m.latency(&Molecule::from_counts([k, k]));
            assert!(lat <= prev, "latency must be monotone in instances");
            prev = lat;
        }
    }

    #[test]
    fn diminishing_returns() {
        let m = model();
        let l1 = m.latency(&Molecule::from_counts([1, 1]));
        let l2 = m.latency(&Molecule::from_counts([2, 2]));
        let l4 = m.latency(&Molecule::from_counts([4, 4]));
        assert!(l1 - l2 >= l2 - l4);
    }

    #[test]
    fn wrong_mix_molecule_is_slower_despite_more_atoms() {
        let m = model();
        // (1,3): 4 atoms, but stage 0 is the bottleneck -> 8 + 2*2 + 6 = 18
        // (2,2): 4 atoms, balanced -> 4 + 2*2 + 6 = 14
        let unbalanced = m.latency(&Molecule::from_counts([1, 3]));
        let balanced = m.latency(&Molecule::from_counts([2, 2]));
        assert!(unbalanced > balanced);
    }

    #[test]
    fn min_latency_is_floor() {
        let m = model();
        // 1 + 2 + 6 = 9
        assert_eq!(m.min_latency(), 9);
        assert!(m.latency(&Molecule::from_counts([100, 100])) >= m.min_latency());
    }

    #[test]
    fn unused_stage_costs_nothing() {
        let m = StageModel::new(Molecule::from_counts([4, 0]), vec![1, 5], 2);
        assert_eq!(m.latency(&Molecule::from_counts([1, 0])), 6);
    }
}
