//! Tiered Molecule kernels with per-process runtime dispatch.
//!
//! Three implementations of the same lattice-operation contract live side
//! by side:
//!
//! * [`scalar`] — the executable specification; simple loops the
//!   autovectorizer handles well, property-tested against everything else;
//! * [`swar`] — portable 4-lane-per-`u64` SWAR, no ISA requirements;
//! * [`wide`] — 16-lane AVX2 via `core::arch` intrinsics, runtime-detected.
//!
//! The active tier is resolved **once per process** — from the
//! [`TIER_ENV`] (`RISPP_KERNEL_TIER`) environment variable, or
//! automatically — and cached in an atomic. Every dispatched entry point
//! is a plain `fn`, so call sites that take kernel function pointers
//! (e.g. `Molecule::binary`) keep working unchanged.
//!
//! Dispatch rules:
//!
//! 1. `RISPP_KERNEL_TIER=scalar|swar|wide` forces a tier; naming an
//!    unavailable tier is an *error* (a panic from library paths, a
//!    `Result` from [`init_tier_from_env`] for CLIs that want to print it).
//! 2. `RISPP_KERNEL_TIER=auto`, empty, or unset selects `scalar`. This is
//!    measured, not a placeholder: at the paper's Molecule arity (the
//!    H.264 universe has 11 Atom types) every operand fits below one AVX2
//!    vector, so the `wide` tier runs entirely on its zero-padded tail
//!    path (a copy in and out per slice) while the autovectorizer turns
//!    the scalar loops into tail-free SIMD — the committed
//!    BENCH_kernels.json shows scalar winning below ~16 lanes and `wide`
//!    only paying off for the fused reductions at 32+. `swar` loses to
//!    both on SIMD hosts and exists for portability comparison.
//! 3. [`set_active_tier`] overrides programmatically (benches, tests).
//!
//! All tiers are bit-identical on every input — enforced by the three-way
//! proptest in `crates/model/tests/tier_equivalence.rs` — so tier choice
//! affects wall-clock only, never simulation results.

pub mod scalar;
pub mod swar;
pub mod wide;

use std::cmp::Ordering;
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};

/// Environment variable overriding the kernel tier
/// (`scalar` / `swar` / `wide` / `auto`).
pub const TIER_ENV: &str = "RISPP_KERNEL_TIER";

/// One implementation tier of the Molecule kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelTier {
    /// Reference loops (the property-test oracle).
    Scalar,
    /// Portable u64 SWAR, four lanes per word.
    Swar,
    /// AVX2, sixteen lanes per vector (x86_64 with AVX2 only).
    Wide,
}

impl KernelTier {
    /// Every tier, in dispatch-priority order.
    pub const ALL: [KernelTier; 3] = [KernelTier::Scalar, KernelTier::Swar, KernelTier::Wide];

    /// The tier's lower-case name as used by [`TIER_ENV`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Swar => "swar",
            KernelTier::Wide => "wide",
        }
    }

    /// Whether this tier can run on the current CPU.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            KernelTier::Scalar | KernelTier::Swar => true,
            KernelTier::Wide => wide::available(),
        }
    }

    /// Parses a [`TIER_ENV`] value. `Ok(None)` means `auto` (explicitly,
    /// or via an empty string). Availability is *not* checked here.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unrecognised names.
    pub fn parse(value: &str) -> Result<Option<KernelTier>, String> {
        match value.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => Ok(None),
            "scalar" => Ok(Some(KernelTier::Scalar)),
            "swar" => Ok(Some(KernelTier::Swar)),
            "wide" => Ok(Some(KernelTier::Wide)),
            other => Err(format!(
                "unrecognised {TIER_ENV} value {other:?}: expected scalar, swar, wide, or auto"
            )),
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

const TIER_UNSET: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(TIER_UNSET);

fn encode(tier: KernelTier) -> u8 {
    match tier {
        KernelTier::Scalar => 0,
        KernelTier::Swar => 1,
        KernelTier::Wide => 2,
    }
}

fn decode(code: u8) -> KernelTier {
    match code {
        0 => KernelTier::Scalar,
        1 => KernelTier::Swar,
        2 => KernelTier::Wide,
        _ => unreachable!("invalid kernel tier code {code}"),
    }
}

/// The tier `auto` resolves to: `scalar` on every host. Sub-vector
/// operands (the paper's universes stay under 16 Atom types) route the
/// `wide` tier through its zero-padded tail path, so the autovectorized
/// scalar loops win at realistic arities — see the module docs and the
/// committed BENCH_kernels.json.
#[must_use]
pub fn default_tier() -> KernelTier {
    KernelTier::Scalar
}

fn resolve_from_env() -> Result<KernelTier, String> {
    let requested = match std::env::var(TIER_ENV) {
        Ok(v) => KernelTier::parse(&v)?,
        Err(_) => None,
    };
    match requested {
        None => Ok(default_tier()),
        Some(tier) if tier.is_available() => Ok(tier),
        Some(tier) => Err(format!(
            "{TIER_ENV}={} requests a kernel tier this CPU does not support",
            tier.name()
        )),
    }
}

/// Resolves the active tier from [`TIER_ENV`] *now* and caches it,
/// returning the resolution error instead of panicking. CLIs and bench
/// bins call this at startup so a bad variable produces a clean message.
/// After the first resolution (by anyone) this simply reports the cached
/// tier.
///
/// # Errors
///
/// Returns a human-readable message when the variable names an unknown or
/// unavailable tier.
pub fn init_tier_from_env() -> Result<KernelTier, String> {
    let code = ACTIVE.load(AtomicOrdering::Relaxed);
    if code != TIER_UNSET {
        return Ok(decode(code));
    }
    let tier = resolve_from_env()?;
    ACTIVE.store(encode(tier), AtomicOrdering::Relaxed);
    Ok(tier)
}

/// Forces the active tier for the rest of the process (benches/tests).
///
/// # Errors
///
/// Returns a message when `tier` is unavailable on this CPU.
pub fn set_active_tier(tier: KernelTier) -> Result<(), String> {
    if !tier.is_available() {
        return Err(format!(
            "kernel tier {} is unavailable on this CPU",
            tier.name()
        ));
    }
    ACTIVE.store(encode(tier), AtomicOrdering::Relaxed);
    Ok(())
}

/// The tier every dispatched kernel below routes to. Resolves lazily from
/// [`TIER_ENV`] on first use.
///
/// # Panics
///
/// Panics if [`TIER_ENV`] names an unknown or unavailable tier — call
/// [`init_tier_from_env`] first to surface that as an error instead.
#[inline]
#[must_use]
pub fn active_tier() -> KernelTier {
    let code = ACTIVE.load(AtomicOrdering::Relaxed);
    if code != TIER_UNSET {
        decode(code)
    } else {
        init_tier_from_env().unwrap_or_else(|e| panic!("{e}"))
    }
}

macro_rules! dispatch {
    ($(#[$doc:meta])* $name:ident($($arg:ident: $ty:ty),*) $(-> $ret:ty)?) => {
        $(#[$doc])*
        #[inline]
        pub fn $name($($arg: $ty),*) $(-> $ret)? {
            match active_tier() {
                KernelTier::Scalar => scalar::$name($($arg),*),
                KernelTier::Swar => swar::$name($($arg),*),
                KernelTier::Wide => wide::$name($($arg),*),
            }
        }
    };
}

dispatch!(
    /// Component-wise maximum into `out` (dispatched).
    union_into(a: &[u16], b: &[u16], out: &mut [u16])
);
dispatch!(
    /// Component-wise maximum folded into `acc`, `accᵢ ← max(accᵢ, bᵢ)`
    /// (dispatched). The in-place form of [`union_into`] for accumulator
    /// loops (running suprema) that would otherwise construct a fresh
    /// vector per step.
    union_in_place(acc: &mut [u16], b: &[u16])
);
dispatch!(
    /// Component-wise minimum into `out` (dispatched).
    intersect_into(a: &[u16], b: &[u16], out: &mut [u16])
);
dispatch!(
    /// Component-wise saturating `o − a` (residual direction) into `out`
    /// (dispatched).
    residual_into(a: &[u16], o: &[u16], out: &mut [u16])
);
dispatch!(
    /// Component-wise saturating addition into `out` (dispatched).
    saturating_add_into(a: &[u16], b: &[u16], out: &mut [u16])
);
dispatch!(
    /// `Σᵢ max(oᵢ − aᵢ, 0)` without materialising the residual
    /// (dispatched).
    residual_atoms(a: &[u16], o: &[u16]) -> u64
);
dispatch!(
    /// `Σᵢ max(aᵢ, bᵢ)` without materialising the union (dispatched).
    union_atoms(a: &[u16], b: &[u16]) -> u64
);
dispatch!(
    /// Sum of all components (dispatched).
    total_atoms(a: &[u16]) -> u64
);
dispatch!(
    /// Whether `aᵢ ≤ bᵢ` for every component (dispatched).
    is_subset(a: &[u16], b: &[u16]) -> bool
);
dispatch!(
    /// Bitmask of the non-zero components, `a.len() <= 64` (dispatched).
    nonzero_mask(a: &[u16]) -> u64
);
dispatch!(
    /// Component-wise partial order (dispatched).
    partial_cmp(a: &[u16], b: &[u16]) -> Option<Ordering>
);
