//! AVX2 wide-SIMD kernels: sixteen `u16` lanes per 256-bit vector.
//!
//! This is the only module in the crate allowed to use `unsafe`: every
//! `#[target_feature(enable = "avx2")]` inner function is wrapped in a safe
//! public function that first checks [`available`], so calling into a
//! missing ISA extension is impossible through the public surface. On
//! non-x86_64 targets the public functions exist but `available()` is
//! always `false` and calling them panics — the dispatcher never selects
//! this tier there.
//!
//! Tails shorter than 16 lanes are zero-padded into a stack `[u16; 16]`
//! and run through the same vector code; every kernel maps zero lanes to
//! zero lanes, so the padding never leaks into live results (the same
//! invariant the SWAR tier relies on).

#![allow(unsafe_code)]

use std::cmp::Ordering;

/// Whether the wide tier can run on this process's CPU.
#[must_use]
pub fn available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_adds_epu16, _mm256_and_si256, _mm256_cmpeq_epi16,
        _mm256_extracti128_si256, _mm256_loadu_si256, _mm256_max_epu16, _mm256_min_epu16,
        _mm256_movemask_epi8, _mm256_or_si256, _mm256_set1_epi32, _mm256_setzero_si256,
        _mm256_srli_epi32, _mm256_storeu_si256, _mm256_subs_epu16, _mm256_testz_si256,
        _mm_add_epi32, _mm_cvtsi128_si32, _mm_shuffle_epi32,
    };
    use std::cmp::Ordering;

    pub const LANES: usize = 16;

    /// Loads a (possibly short, zero-padded) group of lanes as a vector.
    #[inline(always)]
    unsafe fn load(chunk: &[u16]) -> __m256i {
        debug_assert!(chunk.len() <= LANES);
        if chunk.len() == LANES {
            _mm256_loadu_si256(chunk.as_ptr().cast())
        } else {
            let mut tmp = [0u16; LANES];
            tmp[..chunk.len()].copy_from_slice(chunk);
            _mm256_loadu_si256(tmp.as_ptr().cast())
        }
    }

    /// Stores the low `chunk.len()` lanes of `v` into `chunk`.
    #[inline(always)]
    unsafe fn store(chunk: &mut [u16], v: __m256i) {
        debug_assert!(chunk.len() <= LANES);
        if chunk.len() == LANES {
            _mm256_storeu_si256(chunk.as_mut_ptr().cast(), v);
        } else {
            let mut tmp = [0u16; LANES];
            _mm256_storeu_si256(tmp.as_mut_ptr().cast(), v);
            chunk.copy_from_slice(&tmp[..chunk.len()]);
        }
    }

    /// Sum of the eight `u32` lanes of `v`.
    #[inline(always)]
    unsafe fn hsum_epi32(v: __m256i) -> u64 {
        let lo = _mm256_extracti128_si256::<0>(v);
        let hi = _mm256_extracti128_si256::<1>(v);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_01_10_11>(s));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_00_01>(s));
        _mm_cvtsi128_si32(s) as u32 as u64
    }

    /// Widens the sixteen `u16` lanes of `v` into eight `u32` pair-sums
    /// (each output lane holds the sum of two adjacent input lanes).
    #[inline(always)]
    unsafe fn pair_sums_epi32(v: __m256i) -> __m256i {
        let even = _mm256_and_si256(v, _mm256_set1_epi32(0xFFFF));
        let odd = _mm256_srli_epi32::<16>(v);
        _mm256_add_epi32(even, odd)
    }

    macro_rules! zip_kernel {
        ($name:ident, $op:ident) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(a: &[u16], b: &[u16], out: &mut [u16]) {
                debug_assert!(a.len() == b.len() && a.len() == out.len());
                let mut i = 0;
                while i + LANES <= a.len() {
                    let v = $op(load(&a[i..i + LANES]), load(&b[i..i + LANES]));
                    store(&mut out[i..i + LANES], v);
                    i += LANES;
                }
                if i < a.len() {
                    let v = $op(load(&a[i..]), load(&b[i..]));
                    store(&mut out[i..], v);
                }
            }
        };
    }

    zip_kernel!(union_into, _mm256_max_epu16);
    zip_kernel!(intersect_into, _mm256_min_epu16);
    zip_kernel!(saturating_add_into, _mm256_adds_epu16);

    /// Component-wise maximum folded into `acc` (`accᵢ ← max(accᵢ, bᵢ)`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn union_in_place(acc: &mut [u16], b: &[u16]) {
        debug_assert_eq!(acc.len(), b.len());
        let mut i = 0;
        while i + LANES <= acc.len() {
            let v = _mm256_max_epu16(load(&acc[i..i + LANES]), load(&b[i..i + LANES]));
            store(&mut acc[i..i + LANES], v);
            i += LANES;
        }
        if i < acc.len() {
            let v = _mm256_max_epu16(load(&acc[i..]), load(&b[i..]));
            store(&mut acc[i..], v);
        }
    }

    /// Residual direction: saturating `o − a`, so the operands swap.
    #[target_feature(enable = "avx2")]
    pub unsafe fn residual_into(a: &[u16], o: &[u16], out: &mut [u16]) {
        debug_assert!(a.len() == o.len() && a.len() == out.len());
        let mut i = 0;
        while i + LANES <= a.len() {
            let v = _mm256_subs_epu16(load(&o[i..i + LANES]), load(&a[i..i + LANES]));
            store(&mut out[i..i + LANES], v);
            i += LANES;
        }
        if i < a.len() {
            let v = _mm256_subs_epu16(load(&o[i..]), load(&a[i..]));
            store(&mut out[i..], v);
        }
    }

    macro_rules! fold_kernel {
        ($name:ident, |$x:ident, $y:ident| $body:expr) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(a: &[u16], b: &[u16]) -> u64 {
                debug_assert_eq!(a.len(), b.len());
                // Pair-sums fit u32 lanes for any molecule this model can
                // represent (≤ 2¹⁷ per pair, and arities are tiny), so one
                // u32 accumulator suffices; hsum once at the end.
                let mut acc = _mm256_setzero_si256();
                let mut i = 0;
                while i + LANES <= a.len() {
                    let $x = load(&a[i..i + LANES]);
                    let $y = load(&b[i..i + LANES]);
                    acc = _mm256_add_epi32(acc, pair_sums_epi32($body));
                    i += LANES;
                }
                if i < a.len() {
                    let $x = load(&a[i..]);
                    let $y = load(&b[i..]);
                    acc = _mm256_add_epi32(acc, pair_sums_epi32($body));
                }
                hsum_epi32(acc)
            }
        };
    }

    fold_kernel!(union_atoms, |x, y| _mm256_max_epu16(x, y));
    fold_kernel!(residual_atoms, |x, y| _mm256_subs_epu16(y, x));

    #[target_feature(enable = "avx2")]
    pub unsafe fn total_atoms(a: &[u16]) -> u64 {
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + LANES <= a.len() {
            acc = _mm256_add_epi32(acc, pair_sums_epi32(load(&a[i..i + LANES])));
            i += LANES;
        }
        if i < a.len() {
            acc = _mm256_add_epi32(acc, pair_sums_epi32(load(&a[i..])));
        }
        hsum_epi32(acc)
    }

    /// `a ⊆ b` ⟺ the saturating difference `a ⊖ b` is zero everywhere.
    #[target_feature(enable = "avx2")]
    pub unsafe fn is_subset(a: &[u16], b: &[u16]) -> bool {
        debug_assert_eq!(a.len(), b.len());
        let mut excess = _mm256_setzero_si256();
        let mut i = 0;
        while i + LANES <= a.len() {
            excess = _mm256_or_si256(
                excess,
                _mm256_subs_epu16(load(&a[i..i + LANES]), load(&b[i..i + LANES])),
            );
            i += LANES;
        }
        if i < a.len() {
            excess = _mm256_or_si256(excess, _mm256_subs_epu16(load(&a[i..]), load(&b[i..])));
        }
        _mm256_testz_si256(excess, excess) == 1
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn partial_cmp(a: &[u16], b: &[u16]) -> Option<Ordering> {
        debug_assert_eq!(a.len(), b.len());
        // a > b somewhere ⟺ a ⊖ b non-zero; likewise for b ⊖ a.
        let mut gt = _mm256_setzero_si256();
        let mut lt = _mm256_setzero_si256();
        let mut i = 0;
        while i + LANES <= a.len() {
            let x = load(&a[i..i + LANES]);
            let y = load(&b[i..i + LANES]);
            gt = _mm256_or_si256(gt, _mm256_subs_epu16(x, y));
            lt = _mm256_or_si256(lt, _mm256_subs_epu16(y, x));
            i += LANES;
        }
        if i < a.len() {
            let x = load(&a[i..]);
            let y = load(&b[i..]);
            gt = _mm256_or_si256(gt, _mm256_subs_epu16(x, y));
            lt = _mm256_or_si256(lt, _mm256_subs_epu16(y, x));
        }
        match (
            _mm256_testz_si256(lt, lt) == 1,
            _mm256_testz_si256(gt, gt) == 1,
        ) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Greater),
            (false, true) => Some(Ordering::Less),
            (false, false) => None,
        }
    }

    /// Bitmask of non-zero lanes; callers keep `a.len() <= 64`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn nonzero_mask(a: &[u16]) -> u64 {
        debug_assert!(a.len() <= 64, "nonzero_mask requires arity <= 64");
        let zero = _mm256_setzero_si256();
        let mut mask = 0u64;
        let mut i = 0;
        while i < a.len() {
            let hi = (i + LANES).min(a.len());
            let eq_zero = _mm256_cmpeq_epi16(load(&a[i..hi]), zero);
            // movemask gives 2 bits per u16 lane; keep the even bits and
            // compress them down to one bit per lane.
            let m2 = !(_mm256_movemask_epi8(eq_zero) as u32) & 0x5555_5555;
            let mut m2 = u64::from(m2);
            m2 = (m2 | (m2 >> 1)) & 0x3333_3333;
            m2 = (m2 | (m2 >> 2)) & 0x0F0F_0F0F;
            m2 = (m2 | (m2 >> 4)) & 0x00FF_00FF;
            m2 = (m2 | (m2 >> 8)) & 0x0000_FFFF;
            mask |= (m2 & ((1u64 << (hi - i)) - 1).min(0xFFFF)) << i;
            i = hi;
        }
        mask
    }
}

#[cfg(target_arch = "x86_64")]
macro_rules! safe_wrapper {
    ($(#[$doc:meta])* $name:ident($($arg:ident: $ty:ty),*) $(-> $ret:ty)?) => {
        $(#[$doc])*
        ///
        /// # Panics
        ///
        /// Panics if the wide tier is unavailable on this CPU (the
        /// dispatcher never routes here in that case).
        pub fn $name($($arg: $ty),*) $(-> $ret)? {
            assert!(available(), "wide kernel tier requires AVX2");
            // SAFETY: `available()` confirmed AVX2 support at run time.
            unsafe { avx2::$name($($arg),*) }
        }
    };
}

#[cfg(not(target_arch = "x86_64"))]
macro_rules! safe_wrapper {
    ($(#[$doc:meta])* $name:ident($($arg:ident: $ty:ty),*) $(-> $ret:ty)?) => {
        $(#[$doc])*
        ///
        /// # Panics
        ///
        /// Always panics: the wide tier only exists on x86_64 (the
        /// dispatcher never routes here off that architecture).
        pub fn $name($($arg: $ty),*) $(-> $ret)? {
            $(let _ = $arg;)*
            panic!("wide kernel tier requires x86_64 AVX2")
        }
    };
}

safe_wrapper!(
    /// Component-wise maximum into `out`.
    union_into(a: &[u16], b: &[u16], out: &mut [u16])
);
safe_wrapper!(
    /// Component-wise maximum folded into `acc` (`accᵢ ← max(accᵢ, bᵢ)`).
    union_in_place(acc: &mut [u16], b: &[u16])
);
safe_wrapper!(
    /// Component-wise minimum into `out`.
    intersect_into(a: &[u16], b: &[u16], out: &mut [u16])
);
safe_wrapper!(
    /// Component-wise saturating `o − a` (residual direction) into `out`.
    residual_into(a: &[u16], o: &[u16], out: &mut [u16])
);
safe_wrapper!(
    /// Component-wise saturating addition into `out`.
    saturating_add_into(a: &[u16], b: &[u16], out: &mut [u16])
);
safe_wrapper!(
    /// `Σᵢ max(oᵢ − aᵢ, 0)` without materialising the residual.
    residual_atoms(a: &[u16], o: &[u16]) -> u64
);
safe_wrapper!(
    /// `Σᵢ max(aᵢ, bᵢ)` without materialising the union.
    union_atoms(a: &[u16], b: &[u16]) -> u64
);
safe_wrapper!(
    /// Sum of all components.
    total_atoms(a: &[u16]) -> u64
);
safe_wrapper!(
    /// Whether `aᵢ ≤ bᵢ` for every component.
    is_subset(a: &[u16], b: &[u16]) -> bool
);
safe_wrapper!(
    /// Component-wise partial order.
    partial_cmp(a: &[u16], b: &[u16]) -> Option<Ordering>
);
safe_wrapper!(
    /// Bitmask of the non-zero components (`a.len() <= 64`).
    nonzero_mask(a: &[u16]) -> u64
);
