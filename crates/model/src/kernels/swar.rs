//! Branchless SWAR kernels over `u64` words holding four `u16` lanes each.
//!
//! All slice kernels share the same shape: full 4-lane words are processed
//! with the word formulas below; a partial final word is zero-padded into a
//! temporary `[u16; 4]` and runs through the *same* formula (every word
//! formula maps zero lanes to zero lanes, so padding never leaks into live
//! lanes).
//!
//! Word formulas (Hacker's Delight, partitioned arithmetic; `H` masks the
//! per-lane sign bits):
//!
//! * lane-wise wrapping subtraction: `((x | H) − (y & !H)) ⊕ ((x ⊕ !y) & H)`
//! * lane-wise wrapping addition: `((x & !H) + (y & !H)) ⊕ ((x ⊕ y) & H)`
//! * lane borrow (x < y): sign bits of `(!x & y) | ((!x | y) & (x − y))`
//! * lane select for min/max: `x ⊕ ((x ⊕ y) & mask)`.

use std::cmp::Ordering;

/// Per-lane sign-bit mask.
const H: u64 = 0x8000_8000_8000_8000;
/// Mask keeping lanes 0 and 2 (for pairwise horizontal sums).
const EVEN: u64 = 0x0000_FFFF_0000_FFFF;

/// Packs four `u16` lanes into one `u64` word (lane 0 in the low bits).
/// The compiler fuses this into a single 64-bit load on little-endian
/// targets; the pack/unpack pair is endianness-agnostic by construction.
#[inline(always)]
fn pack(c: &[u16; 4]) -> u64 {
    u64::from(c[0])
        | u64::from(c[1]) << 16
        | u64::from(c[2]) << 32
        | u64::from(c[3]) << 48
}

/// Inverse of [`pack`].
#[inline(always)]
fn unpack(w: u64) -> [u16; 4] {
    [w as u16, (w >> 16) as u16, (w >> 32) as u16, (w >> 48) as u16]
}

/// Lane-wise wrapping subtraction `x − y` without cross-lane borrows.
#[inline(always)]
fn psub(x: u64, y: u64) -> u64 {
    ((x | H) - (y & !H)) ^ ((x ^ !y) & H)
}

/// Lane-wise wrapping addition without cross-lane carries.
#[inline(always)]
fn padd(x: u64, y: u64) -> u64 {
    ((x & !H) + (y & !H)) ^ ((x ^ y) & H)
}

/// Sign-bit set in every lane where `x < y` (unsigned), clear elsewhere.
#[inline(always)]
fn lt_bits(x: u64, y: u64) -> u64 {
    // Borrow-out predicate of x − y, evaluated lane-wise.
    ((!x & y) | ((!x | y) & psub(x, y))) & H
}

/// `0xFFFF` in every lane where `x < y`, zero elsewhere.
#[inline(always)]
fn lt_mask(x: u64, y: u64) -> u64 {
    // Sign bits shifted to lane bit 0 occupy disjoint 16-bit lanes, so
    // the multiply spreads each into a full-lane mask without carries.
    (lt_bits(x, y) >> 15) * 0xFFFF
}

/// Lane-wise maximum.
#[inline(always)]
fn pmax(x: u64, y: u64) -> u64 {
    x ^ ((x ^ y) & lt_mask(x, y))
}

/// Lane-wise minimum.
#[inline(always)]
fn pmin(x: u64, y: u64) -> u64 {
    y ^ ((x ^ y) & lt_mask(x, y))
}

/// Lane-wise saturating subtraction `y − x` (note the operand order:
/// this is the residual direction `other ⊖ self`).
#[inline(always)]
fn psat_sub_rev(x: u64, y: u64) -> u64 {
    psub(y, x) & !lt_mask(y, x)
}

/// Lane-wise saturating addition.
#[inline(always)]
fn psat_add(x: u64, y: u64) -> u64 {
    let s = padd(x, y);
    // A lane overflowed iff its wrapped sum is below either operand.
    s | lt_mask(s, x)
}

/// Sum of the four `u16` lanes of `w`.
#[inline(always)]
fn lane_sum(w: u64) -> u64 {
    let pair = (w & EVEN) + ((w >> 16) & EVEN);
    (pair & 0xFFFF_FFFF) + (pair >> 32)
}

/// Sign-bit set in every non-zero lane of `w`: a lane's low 15 bits carry
/// into bit 15 when any of them is set, OR-ed with the lane's own sign bit.
#[inline(always)]
fn nonzero_bits(w: u64) -> u64 {
    (((w & !H) + !H) | w) & H
}

/// Applies word function `f` lane-wise over `a`/`b` into `out`.
/// All three slices must share one length.
#[inline(always)]
fn zip_words(a: &[u16], b: &[u16], out: &mut [u16], f: impl Fn(u64, u64) -> u64) {
    debug_assert!(a.len() == b.len() && a.len() == out.len());
    let mut wa = a.chunks_exact(4);
    let mut wb = b.chunks_exact(4);
    let mut wo = out.chunks_exact_mut(4);
    for ((ca, cb), co) in (&mut wa).zip(&mut wb).zip(&mut wo) {
        let w = f(
            pack(ca.try_into().expect("exact chunk")),
            pack(cb.try_into().expect("exact chunk")),
        );
        co.copy_from_slice(&unpack(w));
    }
    let (ra, rb, ro) = (wa.remainder(), wb.remainder(), wo.into_remainder());
    if !ra.is_empty() {
        let mut ta = [0u16; 4];
        let mut tb = [0u16; 4];
        ta[..ra.len()].copy_from_slice(ra);
        tb[..rb.len()].copy_from_slice(rb);
        let w = unpack(f(pack(&ta), pack(&tb)));
        ro.copy_from_slice(&w[..ro.len()]);
    }
}

/// Folds word function `f` over `a`/`b`, summing the lanes of each result.
#[inline(always)]
fn fold_words(a: &[u16], b: &[u16], f: impl Fn(u64, u64) -> u64) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let mut wa = a.chunks_exact(4);
    let mut wb = b.chunks_exact(4);
    let mut total = 0u64;
    for (ca, cb) in (&mut wa).zip(&mut wb) {
        total += lane_sum(f(
            pack(ca.try_into().expect("exact chunk")),
            pack(cb.try_into().expect("exact chunk")),
        ));
    }
    let (ra, rb) = (wa.remainder(), wb.remainder());
    if !ra.is_empty() {
        let mut ta = [0u16; 4];
        let mut tb = [0u16; 4];
        ta[..ra.len()].copy_from_slice(ra);
        tb[..rb.len()].copy_from_slice(rb);
        total += lane_sum(f(pack(&ta), pack(&tb)));
    }
    total
}

/// Component-wise maximum into `out`.
pub fn union_into(a: &[u16], b: &[u16], out: &mut [u16]) {
    zip_words(a, b, out, pmax);
}

/// Component-wise maximum folded into `acc` (`accᵢ ← max(accᵢ, bᵢ)`).
pub fn union_in_place(acc: &mut [u16], b: &[u16]) {
    debug_assert_eq!(acc.len(), b.len());
    let mut wa = acc.chunks_exact_mut(4);
    let mut wb = b.chunks_exact(4);
    for (ca, cb) in (&mut wa).zip(&mut wb) {
        let w = pmax(
            pack((&*ca).try_into().expect("exact chunk")),
            pack(cb.try_into().expect("exact chunk")),
        );
        ca.copy_from_slice(&unpack(w));
    }
    let (ra, rb) = (wa.into_remainder(), wb.remainder());
    if !ra.is_empty() {
        let mut ta = [0u16; 4];
        let mut tb = [0u16; 4];
        ta[..ra.len()].copy_from_slice(ra);
        tb[..rb.len()].copy_from_slice(rb);
        let w = unpack(pmax(pack(&ta), pack(&tb)));
        ra.copy_from_slice(&w[..ra.len()]);
    }
}

/// Component-wise minimum into `out`.
pub fn intersect_into(a: &[u16], b: &[u16], out: &mut [u16]) {
    zip_words(a, b, out, pmin);
}

/// Component-wise saturating `o − a` (residual direction) into `out`.
pub fn residual_into(a: &[u16], o: &[u16], out: &mut [u16]) {
    zip_words(a, o, out, psat_sub_rev);
}

/// Component-wise saturating addition into `out`.
pub fn saturating_add_into(a: &[u16], b: &[u16], out: &mut [u16]) {
    zip_words(a, b, out, psat_add);
}

/// `Σᵢ max(oᵢ − aᵢ, 0)` without materialising the residual.
#[must_use]
pub fn residual_atoms(a: &[u16], o: &[u16]) -> u64 {
    fold_words(a, o, psat_sub_rev)
}

/// `Σᵢ max(aᵢ, bᵢ)` without materialising the union.
#[must_use]
pub fn union_atoms(a: &[u16], b: &[u16]) -> u64 {
    fold_words(a, b, pmax)
}

/// Sum of all components.
#[must_use]
pub fn total_atoms(a: &[u16]) -> u64 {
    let mut words = a.chunks_exact(4);
    let mut total = 0u64;
    for c in &mut words {
        total += lane_sum(pack(c.try_into().expect("exact chunk")));
    }
    total + words.remainder().iter().map(|&c| u64::from(c)).sum::<u64>()
}

/// Bitmask of the non-zero components: bit `i` set iff `a[i] > 0`.
/// Callers must keep `a.len() <= 64`.
#[must_use]
pub fn nonzero_mask(a: &[u16]) -> u64 {
    debug_assert!(a.len() <= 64, "nonzero_mask requires arity <= 64");
    let mut words = a.chunks_exact(4);
    let mut mask = 0u64;
    let mut shift = 0u32;
    for c in &mut words {
        let nz = nonzero_bits(pack(c.try_into().expect("exact chunk"))) >> 15;
        // Lane sign bits now sit at bits 0/16/32/48; fold them to a nibble.
        let nibble = (nz | (nz >> 15) | (nz >> 30) | (nz >> 45)) & 0xF;
        mask |= nibble << shift;
        shift += 4;
    }
    for (i, &c) in words.remainder().iter().enumerate() {
        if c > 0 {
            mask |= 1 << (shift as usize + i);
        }
    }
    mask
}

/// Whether `aᵢ ≤ bᵢ` for every component (slices of equal length).
#[must_use]
pub fn is_subset(a: &[u16], b: &[u16]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut wa = a.chunks_exact(4);
    let mut wb = b.chunks_exact(4);
    let mut violation = 0u64;
    for (ca, cb) in (&mut wa).zip(&mut wb) {
        // a ⊆ b is violated in a lane iff b < a there.
        violation |= lt_bits(
            pack(cb.try_into().expect("exact chunk")),
            pack(ca.try_into().expect("exact chunk")),
        );
    }
    let (ra, rb) = (wa.remainder(), wb.remainder());
    if !ra.is_empty() {
        let mut ta = [0u16; 4];
        let mut tb = [0u16; 4];
        ta[..ra.len()].copy_from_slice(ra);
        tb[..rb.len()].copy_from_slice(rb);
        violation |= lt_bits(pack(&tb), pack(&ta));
    }
    violation == 0
}

/// Component-wise partial order over slices of equal length.
#[must_use]
pub fn partial_cmp(a: &[u16], b: &[u16]) -> Option<Ordering> {
    debug_assert_eq!(a.len(), b.len());
    let mut gt = 0u64; // lanes where a > b exist
    let mut lt = 0u64; // lanes where a < b exist
    let mut wa = a.chunks_exact(4);
    let mut wb = b.chunks_exact(4);
    for (ca, cb) in (&mut wa).zip(&mut wb) {
        let (x, y) = (
            pack(ca.try_into().expect("exact chunk")),
            pack(cb.try_into().expect("exact chunk")),
        );
        lt |= lt_bits(x, y);
        gt |= lt_bits(y, x);
        if lt != 0 && gt != 0 {
            return None;
        }
    }
    let (ra, rb) = (wa.remainder(), wb.remainder());
    if !ra.is_empty() {
        let mut ta = [0u16; 4];
        let mut tb = [0u16; 4];
        ta[..ra.len()].copy_from_slice(ra);
        tb[..rb.len()].copy_from_slice(rb);
        let (x, y) = (pack(&ta), pack(&tb));
        lt |= lt_bits(x, y);
        gt |= lt_bits(y, x);
    }
    match (lt == 0, gt == 0) {
        (true, true) => Some(Ordering::Equal),
        (false, true) => Some(Ordering::Less),
        (true, false) => Some(Ordering::Greater),
        (false, false) => None,
    }
}
