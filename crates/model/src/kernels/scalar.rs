//! Scalar reference implementations of the Molecule lattice operations.
//!
//! These are the original (pre-SWAR) formulations, kept as the executable
//! specification every other kernel tier is property-tested against (see
//! `crates/model/tests/tier_equivalence.rs`). The autovectorizer does well
//! on these simple loops, so on wide-SIMD hosts the scalar tier is also a
//! serious performance baseline, not just an oracle.

use std::cmp::Ordering;

/// Component-wise maximum.
#[must_use]
pub fn union(a: &[u16], b: &[u16]) -> Vec<u16> {
    a.iter().zip(b).map(|(&x, &y)| x.max(y)).collect()
}

/// Component-wise minimum.
#[must_use]
pub fn intersect(a: &[u16], b: &[u16]) -> Vec<u16> {
    a.iter().zip(b).map(|(&x, &y)| x.min(y)).collect()
}

/// Component-wise saturating `o − a` (the residual `a ⊖ o`).
#[must_use]
pub fn residual(a: &[u16], o: &[u16]) -> Vec<u16> {
    a.iter().zip(o).map(|(&x, &y)| y.saturating_sub(x)).collect()
}

/// Component-wise saturating addition.
#[must_use]
pub fn saturating_add(a: &[u16], b: &[u16]) -> Vec<u16> {
    a.iter().zip(b).map(|(&x, &y)| x.saturating_add(y)).collect()
}

/// Component-wise maximum into `out`.
pub fn union_into(a: &[u16], b: &[u16], out: &mut [u16]) {
    for ((&x, &y), o) in a.iter().zip(b).zip(out) {
        *o = x.max(y);
    }
}

/// Component-wise maximum folded into `acc` (`accᵢ ← max(accᵢ, bᵢ)`).
pub fn union_in_place(acc: &mut [u16], b: &[u16]) {
    for (x, &y) in acc.iter_mut().zip(b) {
        *x = (*x).max(y);
    }
}

/// Component-wise minimum into `out`.
pub fn intersect_into(a: &[u16], b: &[u16], out: &mut [u16]) {
    for ((&x, &y), o) in a.iter().zip(b).zip(out) {
        *o = x.min(y);
    }
}

/// Component-wise saturating `o − a` (residual direction) into `out`.
pub fn residual_into(a: &[u16], o: &[u16], out: &mut [u16]) {
    for ((&x, &y), r) in a.iter().zip(o).zip(out) {
        *r = y.saturating_sub(x);
    }
}

/// Component-wise saturating addition into `out`.
pub fn saturating_add_into(a: &[u16], b: &[u16], out: &mut [u16]) {
    for ((&x, &y), o) in a.iter().zip(b).zip(out) {
        *o = x.saturating_add(y);
    }
}

/// Sum of all components.
#[must_use]
pub fn total_atoms(a: &[u16]) -> u64 {
    a.iter().map(|&c| u64::from(c)).sum()
}

/// `Σᵢ max(oᵢ − aᵢ, 0)`.
#[must_use]
pub fn residual_atoms(a: &[u16], o: &[u16]) -> u64 {
    a.iter()
        .zip(o)
        .map(|(&x, &y)| u64::from(y.saturating_sub(x)))
        .sum()
}

/// `Σᵢ max(aᵢ, bᵢ)`.
#[must_use]
pub fn union_atoms(a: &[u16], b: &[u16]) -> u64 {
    a.iter().zip(b).map(|(&x, &y)| u64::from(x.max(y))).sum()
}

/// Whether `aᵢ ≤ bᵢ` for every component.
#[must_use]
pub fn is_subset(a: &[u16], b: &[u16]) -> bool {
    a.iter().zip(b).all(|(&x, &y)| x <= y)
}

/// Bitmask of the non-zero components: bit `i` set iff `a[i] > 0`.
/// Callers must keep `a.len() <= 64`.
#[must_use]
pub fn nonzero_mask(a: &[u16]) -> u64 {
    debug_assert!(a.len() <= 64, "nonzero_mask requires arity <= 64");
    a.iter()
        .enumerate()
        .fold(0u64, |m, (i, &c)| if c > 0 { m | (1 << i) } else { m })
}

/// Component-wise partial order.
#[must_use]
pub fn partial_cmp(a: &[u16], b: &[u16]) -> Option<Ordering> {
    let mut le = true;
    let mut ge = true;
    for (&x, &y) in a.iter().zip(b) {
        le &= x <= y;
        ge &= x >= y;
        if !le && !ge {
            return None;
        }
    }
    match (le, ge) {
        (true, true) => Some(Ordering::Equal),
        (true, false) => Some(Ordering::Less),
        (false, true) => Some(Ordering::Greater),
        (false, false) => None,
    }
}
