use std::error::Error;
use std::fmt;

/// Error raised while constructing or validating model data structures.
///
/// Returned by fallible constructors such as
/// [`SiLibraryBuilder::build`](crate::SiLibraryBuilder::build) and the
/// `checked_*` Molecule operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// Two Molecules of different arity (number of atom types) were combined.
    ArityMismatch {
        /// Arity of the left-hand operand.
        left: usize,
        /// Arity of the right-hand operand.
        right: usize,
    },
    /// An SI definition is invalid (empty variant list, arity mismatch, …).
    InvalidSi {
        /// Name of the offending SI.
        si: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A name (atom type or SI) occurs more than once in a library.
    DuplicateName(String),
    /// The library references an atom type index outside its universe.
    UnknownAtomType(usize),
    /// A latency of zero was supplied where a positive cycle count is needed.
    ZeroLatency {
        /// Name of the offending SI or variant.
        name: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ArityMismatch { left, right } => {
                write!(f, "molecule arity mismatch: {left} vs {right}")
            }
            ModelError::InvalidSi { si, reason } => {
                write!(f, "invalid special instruction `{si}`: {reason}")
            }
            ModelError::DuplicateName(name) => write!(f, "duplicate name `{name}`"),
            ModelError::UnknownAtomType(idx) => write!(f, "unknown atom type index {idx}"),
            ModelError::ZeroLatency { name } => {
                write!(f, "latency of `{name}` must be at least one cycle")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = ModelError::ArityMismatch { left: 3, right: 4 };
        let s = e.to_string();
        assert!(s.starts_with("molecule arity mismatch"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
