use std::fmt;

use crate::{AtomUniverse, ModelError, Molecule};

/// Identifier of a Special Instruction within an [`SiLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiId(pub u16);

impl SiId {
    /// The zero-based index of this SI.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for SiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SI{}", self.0)
    }
}

impl From<u16> for SiId {
    fn from(v: u16) -> Self {
        SiId(v)
    }
}

/// One hardware implementation (Molecule) of a Special Instruction, together
/// with its single-execution latency in cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoleculeVariant {
    /// Per-atom-type instance counts.
    pub atoms: Molecule,
    /// Cycles required for a single execution of the SI with this Molecule.
    pub latency: u32,
}

impl MoleculeVariant {
    /// Creates a variant from an atom vector and latency.
    #[must_use]
    pub fn new(atoms: Molecule, latency: u32) -> Self {
        MoleculeVariant { atoms, latency }
    }

    /// Whether this Molecule can execute given the available atoms.
    #[must_use]
    pub fn is_available(&self, available: &Molecule) -> bool {
        self.atoms <= *available
    }
}

/// A Special Instruction: its software (trap) fallback latency and all of
/// its Molecule implementations.
///
/// The slowest implementation of an SI uses no accelerating Atoms at all and
/// is activated by a synchronous exception (trap) executing the base
/// instruction set; it is modelled by [`SiDefinition::software_latency`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiDefinition {
    id: SiId,
    name: String,
    software_latency: u32,
    variants: Vec<MoleculeVariant>,
    /// `|atoms|` per variant, aligned with `variants`; filled by
    /// [`SiLibraryBuilder::build`] after the variant sort.
    variant_totals: Vec<u32>,
}

impl SiDefinition {
    /// This SI's identifier within its library.
    #[must_use]
    pub fn id(&self) -> SiId {
        self.id
    }

    /// Human-readable name, e.g. `"SATD"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cycles for one execution with the base instruction set (trap path).
    #[must_use]
    pub fn software_latency(&self) -> u32 {
        self.software_latency
    }

    /// All hardware Molecules of this SI, sorted by ascending total atoms
    /// (ties broken by ascending latency).
    #[must_use]
    pub fn variants(&self) -> &[MoleculeVariant] {
        &self.variants
    }

    /// `|atoms|` of every variant, aligned with
    /// [`variants`](Self::variants): precomputed at build time so hot
    /// selection loops get a constant-time candidate-size lower bound
    /// instead of a per-candidate reduction kernel.
    #[must_use]
    pub fn variant_atom_totals(&self) -> &[u32] {
        &self.variant_totals
    }

    /// Number of hardware Molecules.
    #[must_use]
    pub fn molecule_count(&self) -> usize {
        self.variants.len()
    }

    /// Number of distinct atom types used across all Molecules.
    #[must_use]
    pub fn atom_type_count(&self) -> usize {
        Molecule::supremum(self.variants.iter().map(|v| &v.atoms))
            .map(|sup| sup.atom_type_count())
            .unwrap_or(0)
    }

    /// The fastest Molecule executable with the `available` atoms, i.e. the
    /// `getFastestAvailableMolecule` operation of the paper's pseudo code.
    ///
    /// Returns `None` when no hardware Molecule is available (the SI then
    /// traps to the base instruction set).
    #[must_use]
    pub fn fastest_available(&self, available: &Molecule) -> Option<&MoleculeVariant> {
        self.variants
            .iter()
            .filter(|v| v.is_available(available))
            .min_by_key(|v| v.latency)
    }

    /// Effective single-execution latency given the available atoms: the
    /// fastest available Molecule, or the software fallback. Never slower
    /// than software (a Molecule slower than the trap path is ignored).
    #[must_use]
    pub fn best_latency(&self, available: &Molecule) -> u32 {
        self.fastest_available(available)
            .map(|v| v.latency)
            .unwrap_or(self.software_latency)
            .min(self.software_latency)
    }

    /// The largest (fully parallel) Molecule: maximum total atoms, ties
    /// broken by lowest latency.
    ///
    /// # Panics
    ///
    /// Never panics: library validation guarantees at least one variant.
    #[must_use]
    pub fn largest_variant(&self) -> &MoleculeVariant {
        self.variants
            .iter()
            .max_by(|a, b| {
                a.atoms
                    .total_atoms()
                    .cmp(&b.atoms.total_atoms())
                    .then(b.latency.cmp(&a.latency))
            })
            .expect("validated SI has at least one variant")
    }

    /// The smallest Molecule: minimum total atoms, ties broken by lowest
    /// latency.
    ///
    /// O(1): [`SiLibraryBuilder::build`] orders every SI's variants by
    /// exactly this key, so the smallest variant is always variant 0 —
    /// the selector's phase 1 leans on the same invariant once per
    /// demanded SI per plan.
    #[must_use]
    pub fn smallest_variant(&self) -> &MoleculeVariant {
        &self.variants[0]
    }
}

/// A validated collection of Special Instructions over one [`AtomUniverse`].
///
/// # Examples
///
/// ```
/// use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiLibraryBuilder};
///
/// # fn main() -> Result<(), rispp_model::ModelError> {
/// let universe = AtomUniverse::from_types([AtomTypeInfo::new("SAV")])?;
/// let mut builder = SiLibraryBuilder::new(universe);
/// builder.special_instruction("SAD", 680)?
///     .molecule(Molecule::from_counts([1]), 20)?
///     .molecule(Molecule::from_counts([2]), 12)?;
/// let library = builder.build()?;
/// assert_eq!(library.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiLibrary {
    universe: AtomUniverse,
    sis: Vec<SiDefinition>,
}

impl SiLibrary {
    /// The Atom-type universe shared by all SIs.
    #[must_use]
    pub fn universe(&self) -> &AtomUniverse {
        &self.universe
    }

    /// Molecule arity (`n`, the number of atom types).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.universe.arity()
    }

    /// Number of Special Instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sis.len()
    }

    /// Whether the library contains no SIs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sis.is_empty()
    }

    /// The SI with id `id`, or `None` when out of range.
    #[must_use]
    pub fn si(&self, id: SiId) -> Option<&SiDefinition> {
        self.sis.get(id.index())
    }

    /// Looks an SI up by name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<&SiDefinition> {
        self.sis.iter().find(|s| s.name == name)
    }

    /// Iterates over all SIs in id order.
    pub fn iter(&self) -> impl Iterator<Item = &SiDefinition> {
        self.sis.iter()
    }
}

/// Incremental builder for [`SiLibrary`] (C-BUILDER).
#[derive(Debug)]
pub struct SiLibraryBuilder {
    universe: AtomUniverse,
    sis: Vec<SiDefinition>,
}

impl SiLibraryBuilder {
    /// Starts a builder over the given atom universe.
    #[must_use]
    pub fn new(universe: AtomUniverse) -> Self {
        SiLibraryBuilder {
            universe,
            sis: Vec::new(),
        }
    }

    /// Begins a new Special Instruction with the given name and software
    /// (trap) latency, returning a scoped builder for its Molecules.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if the name is taken, or
    /// [`ModelError::ZeroLatency`] for a zero software latency.
    pub fn special_instruction(
        &mut self,
        name: impl Into<String>,
        software_latency: u32,
    ) -> Result<SiBuilder<'_>, ModelError> {
        let name = name.into();
        if self.sis.iter().any(|s| s.name == name) {
            return Err(ModelError::DuplicateName(name));
        }
        if software_latency == 0 {
            return Err(ModelError::ZeroLatency { name });
        }
        let id = SiId(u16::try_from(self.sis.len()).expect("too many SIs"));
        self.sis.push(SiDefinition {
            id,
            name,
            software_latency,
            variants: Vec::new(),
            variant_totals: Vec::new(),
        });
        Ok(SiBuilder {
            arity: self.universe.arity(),
            si: self.sis.last_mut().expect("just pushed"),
        })
    }

    /// Finalises the library.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSi`] when an SI has no Molecules or a
    /// Molecule with zero atoms.
    pub fn build(mut self) -> Result<SiLibrary, ModelError> {
        for si in &mut self.sis {
            if si.variants.is_empty() {
                return Err(ModelError::InvalidSi {
                    si: si.name.clone(),
                    reason: "no hardware molecules defined".into(),
                });
            }
            si.variants.sort_by(|a, b| {
                a.atoms
                    .total_atoms()
                    .cmp(&b.atoms.total_atoms())
                    .then(a.latency.cmp(&b.latency))
            });
            si.variant_totals = si.variants.iter().map(|v| v.atoms.total_atoms()).collect();
        }
        Ok(SiLibrary {
            universe: self.universe,
            sis: self.sis,
        })
    }
}

/// Scoped builder adding Molecules to one SI; returned by
/// [`SiLibraryBuilder::special_instruction`].
#[derive(Debug)]
pub struct SiBuilder<'a> {
    arity: usize,
    si: &'a mut SiDefinition,
}

impl SiBuilder<'_> {
    /// Adds a Molecule implementation with the given latency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSi`] when the Molecule arity does not
    /// match the universe, the Molecule is empty, duplicates an existing
    /// variant's atom vector, or the latency is zero or not faster than the
    /// software path.
    pub fn molecule(&mut self, atoms: Molecule, latency: u32) -> Result<&mut Self, ModelError> {
        if atoms.arity() != self.arity {
            return Err(ModelError::InvalidSi {
                si: self.si.name.clone(),
                reason: format!(
                    "molecule arity {} does not match universe arity {}",
                    atoms.arity(),
                    self.arity
                ),
            });
        }
        if atoms.is_zero() {
            return Err(ModelError::InvalidSi {
                si: self.si.name.clone(),
                reason: "molecule must request at least one atom".into(),
            });
        }
        if latency == 0 {
            return Err(ModelError::ZeroLatency {
                name: self.si.name.clone(),
            });
        }
        if self.si.variants.iter().any(|v| v.atoms == atoms) {
            return Err(ModelError::InvalidSi {
                si: self.si.name.clone(),
                reason: format!("duplicate molecule {atoms}"),
            });
        }
        self.si.variants.push(MoleculeVariant::new(atoms, latency));
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AtomTypeInfo;

    fn two_type_library() -> SiLibrary {
        let universe = AtomUniverse::from_types([
            AtomTypeInfo::new("A1"),
            AtomTypeInfo::new("A2"),
        ])
        .unwrap();
        let mut b = SiLibraryBuilder::new(universe);
        {
            let mut si = b.special_instruction("DEMO", 1000).unwrap();
            si.molecule(Molecule::from_counts([1, 1]), 100)
                .unwrap()
                .molecule(Molecule::from_counts([2, 2]), 40)
                .unwrap()
                .molecule(Molecule::from_counts([1, 3]), 55)
                .unwrap()
                .molecule(Molecule::from_counts([3, 3]), 20)
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn fastest_available_picks_min_latency() {
        let lib = two_type_library();
        let si = lib.by_name("DEMO").unwrap();
        let avail = Molecule::from_counts([2, 2]);
        let fastest = si.fastest_available(&avail).unwrap();
        assert_eq!(fastest.latency, 40);
        // Nothing available -> software fallback.
        assert!(si.fastest_available(&Molecule::zero(2)).is_none());
        assert_eq!(si.best_latency(&Molecule::zero(2)), 1000);
    }

    #[test]
    fn paper_m4_molecule_is_not_faster_but_may_be_cheaper() {
        let lib = two_type_library();
        let si = lib.by_name("DEMO").unwrap();
        // m2 = (2,2) @40 is faster than m4 = (1,3) @55, but starting from
        // a = (0,3), m4 needs 1 additional atom while m2 needs 2.
        let a = Molecule::from_counts([0, 3]);
        let m2 = Molecule::from_counts([2, 2]);
        let m4 = Molecule::from_counts([1, 3]);
        assert!(a.residual(&m4).total_atoms() < a.residual(&m2).total_atoms());
        assert!(si.fastest_available(&a).is_none());
    }

    #[test]
    fn variants_sorted_by_size() {
        let lib = two_type_library();
        let si = lib.by_name("DEMO").unwrap();
        let sizes: Vec<u32> = si.variants().iter().map(|v| v.atoms.total_atoms()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
        assert_eq!(si.smallest_variant().atoms.total_atoms(), 2);
        assert_eq!(si.largest_variant().atoms.total_atoms(), 6);
    }

    #[test]
    fn smallest_variant_is_variant_zero() {
        // `build()` orders variants by (total atoms, latency); both the
        // O(1) `smallest_variant` and the selector's phase 1 depend on
        // variant 0 being the minimum under exactly that key.
        let lib = two_type_library();
        let si = lib.by_name("DEMO").unwrap();
        let by_scan = si
            .variants()
            .iter()
            .min_by_key(|v| (v.atoms.total_atoms(), v.latency))
            .unwrap();
        assert_eq!(si.smallest_variant(), by_scan);
        assert_eq!(si.smallest_variant(), &si.variants()[0]);
    }

    #[test]
    fn atom_type_count_uses_supremum() {
        let lib = two_type_library();
        assert_eq!(lib.by_name("DEMO").unwrap().atom_type_count(), 2);
    }

    #[test]
    fn builder_rejects_bad_molecules() {
        let universe = AtomUniverse::from_types([AtomTypeInfo::new("A1")]).unwrap();
        let mut b = SiLibraryBuilder::new(universe);
        let mut si = b.special_instruction("X", 100).unwrap();
        assert!(si.molecule(Molecule::zero(1), 10).is_err());
        assert!(si.molecule(Molecule::from_counts([1, 2]), 10).is_err());
        assert!(si.molecule(Molecule::from_counts([1]), 0).is_err());
        si.molecule(Molecule::from_counts([1]), 10).unwrap();
        let dup = si.molecule(Molecule::from_counts([1]), 20);
        assert!(dup.is_err());
    }

    #[test]
    fn builder_rejects_empty_si() {
        let universe = AtomUniverse::from_types([AtomTypeInfo::new("A1")]).unwrap();
        let mut b = SiLibraryBuilder::new(universe);
        b.special_instruction("EMPTY", 100).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn builder_rejects_duplicate_si_names() {
        let universe = AtomUniverse::from_types([AtomTypeInfo::new("A1")]).unwrap();
        let mut b = SiLibraryBuilder::new(universe);
        b.special_instruction("X", 100)
            .unwrap()
            .molecule(Molecule::from_counts([1]), 10)
            .unwrap();
        assert!(b.special_instruction("X", 100).is_err());
    }

    #[test]
    fn library_lookup() {
        let lib = two_type_library();
        assert_eq!(lib.len(), 1);
        assert!(!lib.is_empty());
        assert_eq!(lib.si(SiId(0)).unwrap().name(), "DEMO");
        assert!(lib.si(SiId(9)).is_none());
        assert!(lib.by_name("nope").is_none());
        assert_eq!(lib.arity(), 2);
    }

    #[test]
    fn best_latency_never_exceeds_software() {
        // A molecule slower than software must be ignored.
        let universe = AtomUniverse::from_types([AtomTypeInfo::new("A1")]).unwrap();
        let mut b = SiLibraryBuilder::new(universe);
        b.special_instruction("SLOWHW", 50)
            .unwrap()
            .molecule(Molecule::from_counts([1]), 80)
            .unwrap();
        let lib = b.build().unwrap();
        let si = lib.by_name("SLOWHW").unwrap();
        assert_eq!(si.best_latency(&Molecule::from_counts([1])), 50);
    }

    #[test]
    fn si_id_display() {
        assert_eq!(SiId(4).to_string(), "SI4");
        assert_eq!(SiId::from(2u16).index(), 2);
    }
}
