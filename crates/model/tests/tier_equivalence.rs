//! Three-way kernel-tier equivalence suite: every lattice kernel must
//! agree bit-for-bit across the scalar reference implementation (the
//! executable specification), the portable u64 SWAR tier, and — when the
//! host CPU supports it — the AVX2 wide tier, across random arities:
//! below, at and above the inline cap (inline vs spill representations),
//! around the SWAR 4-lane word boundary, and around the AVX2 16-lane
//! vector boundary, with counts biased toward the 0x7FFF/0x8000/0xFFFF
//! saturation lanes.
//!
//! Two layers are checked per operation:
//!
//! 1. the raw tier kernels (`kernels::{swar,wide}::op`) against
//!    `kernels::scalar::op` on bare slices;
//! 2. the public `Molecule` API (which routes through the per-process
//!    dispatch) against the scalar reference.
//!
//! CI runs this suite once per available tier with `RISPP_KERNEL_TIER`
//! forced, so layer 2 covers every tier end-to-end.

use proptest::prelude::*;
use rispp_model::kernels::{scalar, swar, wide};
use rispp_model::{Molecule, INLINE_LANES};

/// Arities covering partial SWAR words (1..4), full-word multiples, the
/// AVX2 16-lane vector boundary, the inline cap boundary and the spill
/// path.
fn arity() -> impl Strategy<Value = usize> {
    const TABLE: [usize; 15] = [
        1,
        2,
        3,
        4,
        5,
        7,
        8,
        9,
        15,
        16,
        17,
        INLINE_LANES - 1,
        INLINE_LANES,
        INLINE_LANES + 1,
        2 * INLINE_LANES + 5,
    ];
    (0usize..TABLE.len()).prop_map(|sel| TABLE[sel])
}

/// Counts biased toward the kernel edge cases: lane extremes around the
/// per-lane sign bit and saturation boundaries, plus small values.
fn count() -> impl Strategy<Value = u16> {
    (0u8..9, any::<u16>()).prop_map(|(sel, raw)| match sel {
        0..=3 => raw % 8,
        4 | 5 => raw,
        6 => 0x7FFF,
        7 => 0x8000,
        _ => u16::MAX,
    })
}

/// A pair of equal-arity count vectors, correlated so that dominated /
/// dominating / incomparable pairs all occur with useful frequency.
fn pair() -> impl Strategy<Value = (Vec<u16>, Vec<u16>)> {
    arity().prop_flat_map(|n| {
        (
            proptest::collection::vec(count(), n),
            proptest::collection::vec(count(), n),
            any::<bool>(),
        )
            .prop_map(|(a, b, dominate)| {
                if dominate {
                    // Make b dominate a component-wise so Less/Equal
                    // orderings are generated, not just None.
                    let b: Vec<u16> = a
                        .iter()
                        .zip(&b)
                        .map(|(&x, &y)| x.saturating_add(y % 4))
                        .collect();
                    (a, b)
                } else {
                    (a, b)
                }
            })
    })
}

/// Runs a zip-shaped kernel (`op(a, b, &mut out)`) and returns the output.
fn run_into(op: fn(&[u16], &[u16], &mut [u16]), a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = vec![0u16; a.len()];
    op(a, b, &mut out);
    out
}

/// Asserts slice-level agreement of one zip kernel across all tiers.
macro_rules! assert_into_tiers_agree {
    ($op:ident, $a:expr, $b:expr) => {{
        let expected = run_into(scalar::$op, $a, $b);
        prop_assert_eq!(&run_into(swar::$op, $a, $b), &expected, "swar {}", stringify!($op));
        if wide::available() {
            prop_assert_eq!(
                &run_into(wide::$op, $a, $b),
                &expected,
                "wide {}",
                stringify!($op)
            );
        }
    }};
}

/// Asserts agreement of one two-operand reduction across all tiers.
macro_rules! assert_fold_tiers_agree {
    ($op:ident, $a:expr, $b:expr) => {{
        let expected = scalar::$op($a, $b);
        prop_assert_eq!(swar::$op($a, $b), expected, "swar {}", stringify!($op));
        if wide::available() {
            prop_assert_eq!(wide::$op($a, $b), expected, "wide {}", stringify!($op));
        }
    }};
}

proptest! {
    // ── Layer 1: raw tier kernels vs the scalar specification ──────────

    #[test]
    fn zip_kernels_agree_across_tiers((a, b) in pair()) {
        assert_into_tiers_agree!(union_into, &a, &b);
        assert_into_tiers_agree!(intersect_into, &a, &b);
        assert_into_tiers_agree!(residual_into, &a, &b);
        assert_into_tiers_agree!(saturating_add_into, &a, &b);
    }

    /// The in-place union accumulator must agree with the three-operand
    /// union in every tier (same folding, no construction).
    #[test]
    fn union_in_place_agrees_across_tiers((a, b) in pair()) {
        let expected = run_into(scalar::union_into, &a, &b);
        let mut acc = a.clone();
        scalar::union_in_place(&mut acc, &b);
        prop_assert_eq!(&acc, &expected, "scalar union_in_place");
        let mut acc = a.clone();
        swar::union_in_place(&mut acc, &b);
        prop_assert_eq!(&acc, &expected, "swar union_in_place");
        if wide::available() {
            let mut acc = a.clone();
            wide::union_in_place(&mut acc, &b);
            prop_assert_eq!(&acc, &expected, "wide union_in_place");
        }
    }

    #[test]
    fn reductions_agree_across_tiers((a, b) in pair()) {
        assert_fold_tiers_agree!(residual_atoms, &a, &b);
        assert_fold_tiers_agree!(union_atoms, &a, &b);
        assert_fold_tiers_agree!(is_subset, &a, &b);
        assert_fold_tiers_agree!(partial_cmp, &a, &b);

        prop_assert_eq!(swar::total_atoms(&a), scalar::total_atoms(&a));
        if wide::available() {
            prop_assert_eq!(wide::total_atoms(&a), scalar::total_atoms(&a));
        }
    }

    #[test]
    fn nonzero_mask_agrees_across_tiers(a in proptest::collection::vec(count(), 1..65usize)) {
        let expected = scalar::nonzero_mask(&a);
        prop_assert_eq!(swar::nonzero_mask(&a), expected);
        if wide::available() {
            prop_assert_eq!(wide::nonzero_mask(&a), expected);
        }
        // And the specification itself marks exactly the positive lanes.
        for (i, &c) in a.iter().enumerate() {
            prop_assert_eq!(expected >> i & 1 == 1, c > 0);
        }
        if a.len() < 64 {
            prop_assert_eq!(expected >> a.len(), 0);
        }
    }

    // ── Layer 2: the dispatched Molecule API vs the specification ──────

    #[test]
    fn union_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(ma.union(&mb).counts(), &scalar::union(&a, &b)[..]);
        // The in-place and write-into forms are the same fold.
        let mut acc = ma.clone();
        acc.union_assign(&mb);
        prop_assert_eq!(acc.counts(), &scalar::union(&a, &b)[..]);
        let mut out = Molecule::zero(ma.arity());
        ma.union_into(&mb, &mut out);
        prop_assert_eq!(out.counts(), &scalar::union(&a, &b)[..]);
    }

    #[test]
    fn intersect_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(ma.intersect(&mb).counts(), &scalar::intersect(&a, &b)[..]);
    }

    #[test]
    fn residual_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(ma.residual(&mb).counts(), &scalar::residual(&a, &b)[..]);
    }

    #[test]
    fn saturating_add_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(ma.saturating_add(&mb).counts(), &scalar::saturating_add(&a, &b)[..]);
    }

    #[test]
    fn residual_atoms_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(u64::from(ma.residual_atoms(&mb)), scalar::residual_atoms(&a, &b));
    }

    #[test]
    fn union_atoms_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(u64::from(ma.union_atoms(&mb)), scalar::union_atoms(&a, &b));
    }

    #[test]
    fn nonzero_mask_marks_exactly_the_positive_lanes(
        a in proptest::collection::vec(count(), 1..65usize)
    ) {
        let mask = Molecule::from_counts(a.clone()).nonzero_mask();
        for (i, &c) in a.iter().enumerate() {
            prop_assert_eq!(mask >> i & 1 == 1, c > 0);
        }
        if a.len() < 64 {
            prop_assert_eq!(mask >> a.len(), 0);
        }
    }

    #[test]
    fn total_atoms_matches_scalar((a, _) in pair()) {
        let ma = Molecule::from_counts(a.clone());
        prop_assert_eq!(u64::from(ma.total_atoms()), scalar::total_atoms(&a));
    }

    #[test]
    fn partial_cmp_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(ma.partial_cmp(&mb), scalar::partial_cmp(&a, &b));
    }

    #[test]
    fn is_subset_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(ma.is_subset(&mb), scalar::is_subset(&a, &b));
        prop_assert_eq!(mb.is_subset(&ma), scalar::is_subset(&b, &a));
    }

    /// Mixed inline/spill operands: same logical vector must behave
    /// identically regardless of representation, and cross-arity
    /// comparisons are incomparable.
    #[test]
    fn representations_are_canonical(a in proptest::collection::vec(count(), 1..INLINE_LANES + 1)) {
        let inline = Molecule::from_counts(a.clone());
        // Force the same logical prefix through the spill path by
        // extending past the cap, then compare the shared prefix ops.
        let mut extended = a.clone();
        extended.resize(INLINE_LANES + 4, 0);
        let spill = Molecule::from_counts(extended);
        prop_assert_eq!(inline.counts(), &spill.counts()[..a.len()]);
        // Different arity ⇒ incomparable, never equal.
        prop_assert_eq!(inline.partial_cmp(&spill), None);
        prop_assert!(!inline.is_subset(&spill));
        prop_assert!(inline.checked_union(&spill).is_err());
    }
}

/// The dispatch machinery itself: parsing, availability, and the
/// guarantee that the active tier is one of the available ones.
#[test]
fn tier_parsing_and_dispatch_state() {
    use rispp_model::kernels::{self, KernelTier};

    assert_eq!(KernelTier::parse("scalar"), Ok(Some(KernelTier::Scalar)));
    assert_eq!(KernelTier::parse(" SWAR "), Ok(Some(KernelTier::Swar)));
    assert_eq!(KernelTier::parse("wide"), Ok(Some(KernelTier::Wide)));
    assert_eq!(KernelTier::parse("auto"), Ok(None));
    assert_eq!(KernelTier::parse(""), Ok(None));
    assert!(KernelTier::parse("avx512").is_err());

    assert!(KernelTier::Scalar.is_available());
    assert!(KernelTier::Swar.is_available());
    assert_eq!(KernelTier::Wide.is_available(), wide::available());

    let active = kernels::active_tier();
    assert!(active.is_available());
    // Once resolved, init reports the cached tier without error.
    assert_eq!(kernels::init_tier_from_env(), Ok(active));
}
