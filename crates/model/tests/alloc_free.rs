//! Counting-allocator harness: the `Molecule` lattice kernels must not
//! touch the heap at arity ≤ [`INLINE_LANES`] (the small-buffer cap). The
//! scheduler hot paths call `union`/`residual` millions of times per
//! sweep; this test pins the "allocation-free at realistic arity"
//! guarantee so a representation change that silently reintroduces a
//! `Vec` per operation fails CI instead of showing up as a throughput
//! regression.
//!
//! All assertions live in one `#[test]` so the global counter is not
//! perturbed by a concurrently running sibling test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

use rispp_model::{Molecule, INLINE_LANES};

/// Forwards to the system allocator, counting every allocation path
/// (`alloc`, `alloc_zeroed`, `realloc`).
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations(f: impl FnOnce()) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn inline_kernels_are_allocation_free() {
    for arity in [1, 4, 11, INLINE_LANES] {
        let a = Molecule::from_counts((0..arity).map(|i| (i % 7) as u16));
        let b = Molecule::from_counts((0..arity).map(|i| ((arity - i) % 5) as u16));
        assert_eq!(
            allocations(|| {
                black_box(black_box(&a).union(black_box(&b)));
            }),
            0,
            "union allocated at arity {arity}"
        );
        assert_eq!(
            allocations(|| {
                black_box(black_box(&a).residual(black_box(&b)));
            }),
            0,
            "residual allocated at arity {arity}"
        );
        assert_eq!(
            allocations(|| {
                black_box(black_box(&a).intersect(black_box(&b)));
                black_box(black_box(&a).saturating_add(black_box(&b)));
                black_box(black_box(&a).union_atoms(black_box(&b)));
                black_box(black_box(&a).residual_atoms(black_box(&b)));
                black_box(black_box(&a).total_atoms());
                black_box(black_box(&a).partial_cmp(black_box(&b)));
                black_box(black_box(&a).nonzero_mask());
            }),
            0,
            "a lattice kernel allocated at arity {arity}"
        );
    }

    // Sanity check that the counter actually observes heap traffic: the
    // spill representation (arity > INLINE_LANES) must allocate.
    let arity = INLINE_LANES + 1;
    let a = Molecule::from_counts((0..arity).map(|i| (i % 7) as u16));
    let b = Molecule::from_counts((0..arity).map(|i| ((arity - i) % 5) as u16));
    assert!(
        allocations(|| {
            black_box(black_box(&a).union(black_box(&b)));
        }) > 0,
        "counter failed to observe the spill-path allocation"
    );
}
