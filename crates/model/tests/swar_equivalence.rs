//! SWAR-vs-scalar equivalence suite: every word-packed lattice kernel in
//! `Molecule` must agree bit-for-bit with the scalar reference
//! implementation (`rispp_model::scalar`, the pre-SWAR formulation kept as
//! the executable specification) across random arities — below, at and
//! above the inline cap, so both the inline and spill representations and
//! the zero-padded tail word are exercised.

use proptest::prelude::*;
use rispp_model::{scalar, Molecule, INLINE_LANES};

/// Arities covering partial words (1..4), full-word multiples, the inline
/// cap boundary and the spill path.
fn arity() -> impl Strategy<Value = usize> {
    const TABLE: [usize; 12] = [
        1,
        2,
        3,
        4,
        5,
        7,
        8,
        9,
        INLINE_LANES - 1,
        INLINE_LANES,
        INLINE_LANES + 1,
        2 * INLINE_LANES + 5,
    ];
    (0usize..TABLE.len()).prop_map(|sel| TABLE[sel])
}

/// Counts biased toward the SWAR edge cases: lane extremes around the
/// per-lane sign bit and saturation boundaries, plus small values.
fn count() -> impl Strategy<Value = u16> {
    (0u8..9, any::<u16>()).prop_map(|(sel, raw)| match sel {
        0..=3 => raw % 8,
        4 | 5 => raw,
        6 => 0x7FFF,
        7 => 0x8000,
        _ => u16::MAX,
    })
}

/// A pair of equal-arity count vectors, correlated so that dominated /
/// dominating / incomparable pairs all occur with useful frequency.
fn pair() -> impl Strategy<Value = (Vec<u16>, Vec<u16>)> {
    arity().prop_flat_map(|n| {
        (
            proptest::collection::vec(count(), n),
            proptest::collection::vec(count(), n),
            any::<bool>(),
        )
            .prop_map(|(a, b, dominate)| {
                if dominate {
                    // Make b dominate a component-wise so Less/Equal
                    // orderings are generated, not just None.
                    let b: Vec<u16> = a
                        .iter()
                        .zip(&b)
                        .map(|(&x, &y)| x.saturating_add(y % 4))
                        .collect();
                    (a, b)
                } else {
                    (a, b)
                }
            })
    })
}

proptest! {
    #[test]
    fn union_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(ma.union(&mb).counts(), &scalar::union(&a, &b)[..]);
    }

    #[test]
    fn intersect_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(ma.intersect(&mb).counts(), &scalar::intersect(&a, &b)[..]);
    }

    #[test]
    fn residual_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(ma.residual(&mb).counts(), &scalar::residual(&a, &b)[..]);
    }

    #[test]
    fn saturating_add_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(ma.saturating_add(&mb).counts(), &scalar::saturating_add(&a, &b)[..]);
    }

    #[test]
    fn residual_atoms_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(u64::from(ma.residual_atoms(&mb)), scalar::residual_atoms(&a, &b));
    }

    #[test]
    fn union_atoms_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(u64::from(ma.union_atoms(&mb)), scalar::union_atoms(&a, &b));
    }

    #[test]
    fn nonzero_mask_marks_exactly_the_positive_lanes(
        a in proptest::collection::vec(count(), 1..65usize)
    ) {
        let mask = Molecule::from_counts(a.clone()).nonzero_mask();
        for (i, &c) in a.iter().enumerate() {
            prop_assert_eq!(mask >> i & 1 == 1, c > 0);
        }
        if a.len() < 64 {
            prop_assert_eq!(mask >> a.len(), 0);
        }
    }

    #[test]
    fn total_atoms_matches_scalar((a, _) in pair()) {
        let ma = Molecule::from_counts(a.clone());
        prop_assert_eq!(u64::from(ma.total_atoms()), scalar::total_atoms(&a));
    }

    #[test]
    fn partial_cmp_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(ma.partial_cmp(&mb), scalar::partial_cmp(&a, &b));
    }

    #[test]
    fn is_subset_matches_scalar((a, b) in pair()) {
        let (ma, mb) = (Molecule::from_counts(a.clone()), Molecule::from_counts(b.clone()));
        prop_assert_eq!(ma.is_subset(&mb), scalar::is_subset(&a, &b));
        prop_assert_eq!(mb.is_subset(&ma), scalar::is_subset(&b, &a));
    }

    /// Mixed inline/spill operands: same logical vector must behave
    /// identically regardless of representation, and cross-arity
    /// comparisons are incomparable.
    #[test]
    fn representations_are_canonical(a in proptest::collection::vec(count(), 1..INLINE_LANES + 1)) {
        let inline = Molecule::from_counts(a.clone());
        // Force the same logical prefix through the spill path by
        // extending past the cap, then compare the shared prefix ops.
        let mut extended = a.clone();
        extended.resize(INLINE_LANES + 4, 0);
        let spill = Molecule::from_counts(extended);
        prop_assert_eq!(inline.counts(), &spill.counts()[..a.len()]);
        // Different arity ⇒ incomparable, never equal.
        prop_assert_eq!(inline.partial_cmp(&spill), None);
        prop_assert!(!inline.is_subset(&spill));
        prop_assert!(inline.checked_union(&spill).is_err());
    }
}
