//! Property-based tests of the `(ℕⁿ, ∪, ∩, ≤)` lattice of Section 4.1.

use proptest::prelude::*;
use rispp_model::Molecule;

const ARITY: usize = 6;

fn molecule() -> impl Strategy<Value = Molecule> {
    proptest::collection::vec(0u16..32, ARITY).prop_map(Molecule::from_counts)
}

proptest! {
    #[test]
    fn union_commutative(a in molecule(), b in molecule()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn union_associative(a in molecule(), b in molecule(), c in molecule()) {
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn union_idempotent(a in molecule()) {
        prop_assert_eq!(a.union(&a), a);
    }

    #[test]
    fn union_neutral_element_is_zero(a in molecule()) {
        prop_assert_eq!(a.union(&Molecule::zero(ARITY)), a);
    }

    #[test]
    fn intersect_commutative(a in molecule(), b in molecule()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    #[test]
    fn intersect_associative(a in molecule(), b in molecule(), c in molecule()) {
        prop_assert_eq!(a.intersect(&b).intersect(&c), a.intersect(&b.intersect(&c)));
    }

    #[test]
    fn intersect_idempotent(a in molecule()) {
        prop_assert_eq!(a.intersect(&a), a);
    }

    #[test]
    fn absorption_laws(a in molecule(), b in molecule()) {
        // a ∪ (a ∩ b) = a and a ∩ (a ∪ b) = a make the structure a lattice.
        prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
        prop_assert_eq!(a.intersect(&a.union(&b)), a);
    }

    #[test]
    fn order_consistent_with_lattice_ops(a in molecule(), b in molecule()) {
        // a ≤ b  ⟺  a ∪ b = b  ⟺  a ∩ b = a
        let le = a <= b;
        prop_assert_eq!(le, a.union(&b) == b);
        prop_assert_eq!(le, a.intersect(&b) == a);
    }

    #[test]
    fn order_reflexive(a in molecule()) {
        prop_assert!(a <= a);
    }

    #[test]
    fn order_antisymmetric(a in molecule(), b in molecule()) {
        if a <= b && b <= a {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn order_transitive(a in molecule(), b in molecule(), c in molecule()) {
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
    }

    #[test]
    fn operands_bound_by_union_and_intersection(a in molecule(), b in molecule()) {
        let sup = a.union(&b);
        let inf = a.intersect(&b);
        prop_assert!(a <= sup && b <= sup);
        prop_assert!(inf <= a && inf <= b);
    }

    #[test]
    fn residual_closes_the_gap(a in molecule(), m in molecule()) {
        // Loading a ⊖ m on top of a makes m available: m ≤ a + (a ⊖ m).
        let add = a.residual(&m);
        let after = a.saturating_add(&add);
        prop_assert!(m <= after.clone());
        // And it is minimal: removing any unit from the residual breaks it.
        for i in 0..ARITY {
            if add.count(i) > 0 {
                let mut counts: Vec<u16> = add.counts().to_vec();
                counts[i] -= 1;
                let smaller = a.saturating_add(&Molecule::from_counts(counts));
                // Not `m > smaller`: the molecules may be incomparable.
                prop_assert!(!matches!(
                    m.partial_cmp(&smaller),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                ));
            }
        }
    }

    #[test]
    fn residual_zero_when_already_available(a in molecule(), m in molecule()) {
        if m <= a {
            prop_assert!(a.residual(&m).is_zero());
        }
    }

    #[test]
    fn determinant_additive_over_residual(a in molecule(), m in molecule()) {
        // |a ∪ m| = |a| + |a ⊖ m|
        prop_assert_eq!(
            a.union(&m).total_atoms(),
            a.total_atoms() + a.residual(&m).total_atoms()
        );
    }

    #[test]
    fn supremum_is_least_upper_bound(ms in proptest::collection::vec(molecule(), 1..6)) {
        let sup = Molecule::supremum(ms.iter()).unwrap();
        for m in &ms {
            prop_assert!(m <= &sup);
        }
        // Least: any other upper bound dominates sup.
        let other_bound = sup.saturating_add(&Molecule::unit(ARITY, 0));
        prop_assert!(sup <= other_bound);
    }

    #[test]
    fn unit_decomposition_roundtrips(a in molecule()) {
        let mut rebuilt = Molecule::zero(ARITY);
        for idx in a.to_unit_indices() {
            rebuilt = rebuilt.saturating_add(&Molecule::unit(ARITY, idx));
        }
        prop_assert_eq!(rebuilt, a);
    }
}
