use rispp_core::{BurstSegment, RunTimeManager, SchedulerKind};
use rispp_model::{SiId, SiLibrary};
use rispp_monitor::{ForecastPolicy, HotSpotId};

use crate::baseline::MolenSystem;
use crate::stats::{RunStats, DEFAULT_BUCKET_CYCLES};
use crate::trace::Trace;

/// Which execution system replays the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// The RISPP run-time system with the given scheduler.
    Rispp(SchedulerKind),
    /// Molen-like baseline: one fixed implementation per SI, resident
    /// across hot-spot switches when space allows.
    Molen,
    /// OneChip-like baseline: one fixed implementation per SI in a single
    /// configuration context that is flushed on every hot-spot switch.
    OneChip,
    /// Pure base-processor execution (every SI traps): the paper's 0-AC
    /// reference point of 7,403 M cycles.
    SoftwareOnly,
}

impl SystemKind {
    /// Display label used in reports.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            SystemKind::Rispp(kind) => kind.abbreviation().to_string(),
            SystemKind::Molen => "Molen".to_string(),
            SystemKind::OneChip => "OneChip".to_string(),
            SystemKind::SoftwareOnly => "Software".to_string(),
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of Atom Containers (RISPP) or container slots (Molen).
    pub containers: u16,
    /// The execution system.
    pub system: SystemKind,
    /// Forecast policy of the online monitor (RISPP only).
    pub forecast: ForecastPolicy,
    /// Collect per-bucket execution counts and latency timelines.
    pub detail: bool,
    /// Statistics bucket width in cycles.
    pub bucket_cycles: u64,
    /// Feed the *measured* per-invocation execution profile to the
    /// run-time system instead of the online forecast (perfect future
    /// knowledge — the upper bound of paper Section 4.2).
    pub oracle: bool,
    /// Reconfiguration-port bandwidth override in bytes per second
    /// (`None`: the prototype's SelectMAP/ICAP port).
    pub port_bandwidth: Option<u64>,
}

impl SimConfig {
    /// RISPP configuration with the given scheduler.
    #[must_use]
    pub fn rispp(containers: u16, scheduler: SchedulerKind) -> Self {
        SimConfig {
            containers,
            system: SystemKind::Rispp(scheduler),
            forecast: ForecastPolicy::default(),
            detail: false,
            bucket_cycles: DEFAULT_BUCKET_CYCLES,
            oracle: false,
            port_bandwidth: None,
        }
    }

    /// Molen-baseline configuration.
    #[must_use]
    pub fn molen(containers: u16) -> Self {
        SimConfig {
            containers,
            system: SystemKind::Molen,
            forecast: ForecastPolicy::default(),
            detail: false,
            bucket_cycles: DEFAULT_BUCKET_CYCLES,
            oracle: false,
            port_bandwidth: None,
        }
    }

    /// Pure-software configuration (0 Atom Containers).
    #[must_use]
    pub fn software_only() -> Self {
        SimConfig {
            containers: 0,
            system: SystemKind::SoftwareOnly,
            forecast: ForecastPolicy::default(),
            detail: false,
            bucket_cycles: DEFAULT_BUCKET_CYCLES,
            oracle: false,
            port_bandwidth: None,
        }
    }

    /// Enables detailed statistics (builder style).
    #[must_use]
    pub fn with_detail(mut self, detail: bool) -> Self {
        self.detail = detail;
        self
    }

    /// Overrides the forecast policy (builder style).
    #[must_use]
    pub fn with_forecast(mut self, policy: ForecastPolicy) -> Self {
        self.forecast = policy;
        self
    }

    /// Enables oracle (perfect-future-knowledge) profiles (builder style).
    #[must_use]
    pub fn with_oracle(mut self, oracle: bool) -> Self {
        self.oracle = oracle;
        self
    }

    /// Overrides the reconfiguration-port bandwidth (builder style).
    #[must_use]
    pub fn with_port_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.port_bandwidth = Some(bytes_per_sec);
        self
    }
}

enum System<'a> {
    Rispp(RunTimeManager<'a>),
    RisppOracle(RunTimeManager<'a>),
    Molen(MolenSystem<'a>),
    Software(&'a SiLibrary),
}

impl<'a> System<'a> {
    fn enter(&mut self, hot_spot: HotSpotId, hints: &[(SiId, u64)], now: u64) {
        match self {
            System::Rispp(mgr) => mgr
                .enter_hot_spot(hot_spot, hints, now)
                .expect("trace and library are consistent"),
            System::RisppOracle(mgr) => mgr
                .enter_hot_spot_with_profile(hot_spot, hints, now)
                .expect("trace and library are consistent"),
            System::Molen(m) => m.enter_hot_spot(hot_spot, hints, now),
            System::Software(_) => {}
        }
    }

    fn burst(&mut self, si: SiId, count: u32, overhead: u32, start: u64) -> Vec<BurstSegment> {
        match self {
            System::Rispp(mgr) | System::RisppOracle(mgr) => {
                mgr.execute_burst(si, count, overhead, start)
            }
            System::Molen(m) => m.execute_burst(si, count, overhead, start),
            System::Software(lib) => vec![BurstSegment {
                start,
                count: u64::from(count),
                latency: lib.si(si).expect("si within library").software_latency(),
                variant_index: None,
            }],
        }
    }

    fn exit(&mut self, now: u64) {
        match self {
            System::Rispp(mgr) | System::RisppOracle(mgr) => mgr.exit_hot_spot(now),
            System::Molen(m) => m.exit_hot_spot(now),
            System::Software(_) => {}
        }
    }

    fn reconfiguration_stats(&self) -> (u64, u64) {
        match self {
            System::Rispp(mgr) | System::RisppOracle(mgr) => {
                let s = mgr.fabric().stats();
                (s.loads_completed, s.port_busy_cycles)
            }
            System::Molen(m) => m.reconfiguration_stats(),
            System::Software(_) => (0, 0),
        }
    }
}

/// Replays `trace` on the configured system and returns the run statistics.
///
/// Time starts at cycle 0 with a cold (empty) fabric, exactly like the
/// paper's measurements.
///
/// # Panics
///
/// Panics if the trace references SIs outside `library`.
#[must_use]
pub fn simulate(library: &SiLibrary, trace: &Trace, config: &SimConfig) -> RunStats {
    let mut system = match config.system {
        SystemKind::Rispp(kind) => {
            let mut builder = RunTimeManager::builder(library)
                .containers(config.containers)
                .scheduler(kind)
                .forecast(config.forecast);
            if let Some(bw) = config.port_bandwidth {
                builder = builder.port_bandwidth(bw);
            }
            let mgr = builder.build();
            if config.oracle {
                System::RisppOracle(mgr)
            } else {
                System::Rispp(mgr)
            }
        }
        SystemKind::Molen => System::Molen(MolenSystem::new(library, config.containers)),
        SystemKind::OneChip => System::Molen(MolenSystem::one_chip(library, config.containers)),
        SystemKind::SoftwareOnly => System::Software(library),
    };

    let mut stats = RunStats::new(
        config.system.label(),
        library.len(),
        config.bucket_cycles,
        config.detail,
    );
    let mut now = 0u64;
    for inv in trace.invocations() {
        if config.oracle {
            let profile = inv.execution_profile();
            system.enter(inv.hot_spot, &profile, now);
        } else {
            system.enter(inv.hot_spot, &inv.hints, now);
        }
        now += inv.prologue_cycles;
        for b in &inv.bursts {
            if b.count == 0 {
                continue;
            }
            let segments = system.burst(b.si, b.count, b.overhead, now);
            for seg in &segments {
                let per = u64::from(seg.latency) + u64::from(b.overhead);
                stats.record_segment(b.si, seg.start, seg.count, per, seg.latency, seg.is_hardware());
                now = seg.start + seg.count * per;
            }
        }
        system.exit(now);
    }
    stats.total_cycles = now;
    let (loads, cycles) = system.reconfiguration_stats();
    stats.reconfigurations = loads;
    stats.reconfiguration_cycles = cycles;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Burst, Invocation};
    use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiLibraryBuilder};

    fn library() -> SiLibrary {
        let universe = AtomUniverse::from_types([
            AtomTypeInfo::new("A1"),
            AtomTypeInfo::new("A2"),
        ])
        .unwrap();
        let mut b = SiLibraryBuilder::new(universe);
        b.special_instruction("X", 1_000)
            .unwrap()
            .molecule(Molecule::from_counts([1, 0]), 100)
            .unwrap()
            .molecule(Molecule::from_counts([2, 1]), 30)
            .unwrap();
        b.special_instruction("Y", 800)
            .unwrap()
            .molecule(Molecule::from_counts([0, 1]), 90)
            .unwrap();
        b.build().unwrap()
    }

    fn trace(frames: usize) -> Trace {
        (0..frames)
            .map(|_| Invocation {
                hot_spot: HotSpotId(0),
                prologue_cycles: 1_000,
                bursts: vec![
                    Burst {
                        si: SiId(0),
                        count: 500,
                        overhead: 20,
                    },
                    Burst {
                        si: SiId(1),
                        count: 200,
                        overhead: 20,
                    },
                ],
                hints: vec![(SiId(0), 500), (SiId(1), 200)],
            })
            .collect()
    }

    #[test]
    fn software_only_time_is_exact() {
        let lib = library();
        let t = trace(2);
        let stats = simulate(&lib, &t, &SimConfig::software_only());
        // 2 × (1000 + 500·1020 + 200·820) cycles.
        assert_eq!(stats.total_cycles, 2 * (1_000 + 500 * 1_020 + 200 * 820));
        assert_eq!(stats.total_executions(), 1_400);
        assert!((stats.hardware_fraction() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn rispp_beats_software_and_molen_on_repetitive_workload() {
        let lib = library();
        let t = trace(8);
        let sw = simulate(&lib, &t, &SimConfig::software_only());
        let molen = simulate(&lib, &t, &SimConfig::molen(4));
        let hef = simulate(&lib, &t, &SimConfig::rispp(4, SchedulerKind::Hef));
        assert!(hef.total_cycles < sw.total_cycles);
        assert!(molen.total_cycles < sw.total_cycles);
        assert!(
            hef.total_cycles <= molen.total_cycles,
            "HEF {} vs Molen {}",
            hef.total_cycles,
            molen.total_cycles
        );
        assert!(hef.hardware_fraction() > 0.5);
    }

    #[test]
    fn all_schedulers_complete_with_identical_execution_counts() {
        let lib = library();
        let t = trace(3);
        let want = t.total_si_executions();
        for kind in SchedulerKind::ALL {
            let stats = simulate(&lib, &t, &SimConfig::rispp(3, kind));
            assert_eq!(stats.total_executions(), want, "{kind}");
            assert_eq!(stats.system, kind.abbreviation());
        }
    }

    #[test]
    fn detail_mode_collects_buckets_and_timeline() {
        let lib = library();
        let t = trace(2);
        let stats = simulate(
            &lib,
            &t,
            &SimConfig::rispp(4, SchedulerKind::Hef).with_detail(true),
        );
        assert!(stats.has_detail());
        let combined: u64 = stats.combined_buckets().iter().map(|&c| u64::from(c)).sum();
        assert_eq!(combined, stats.total_executions());
        // Latency of X must step down over time.
        let tl = &stats.latency_timeline[0];
        assert!(tl.len() >= 2);
        assert!(tl.windows(2).all(|w| w[1].latency < w[0].latency));
    }

    #[test]
    fn one_chip_is_never_faster_than_molen() {
        let lib = library();
        let t = trace(6);
        let molen = simulate(&lib, &t, &SimConfig::molen(4));
        let one_chip = simulate(
            &lib,
            &t,
            &SimConfig {
                system: SystemKind::OneChip,
                ..SimConfig::molen(4)
            },
        );
        assert!(one_chip.total_cycles >= molen.total_cycles);
        assert_eq!(one_chip.system, "OneChip");
    }

    #[test]
    fn reconfiguration_stats_reported() {
        let lib = library();
        let t = trace(2);
        let stats = simulate(&lib, &t, &SimConfig::rispp(4, SchedulerKind::Hef));
        assert!(stats.reconfigurations > 0);
        assert!(stats.reconfiguration_cycles > 0);
        let sw = simulate(&lib, &t, &SimConfig::software_only());
        assert_eq!(sw.reconfigurations, 0);
    }

    #[test]
    fn more_containers_never_hurt_hef_on_stable_workload() {
        let lib = library();
        let t = trace(6);
        let c3 = simulate(&lib, &t, &SimConfig::rispp(3, SchedulerKind::Hef));
        let c4 = simulate(&lib, &t, &SimConfig::rispp(4, SchedulerKind::Hef));
        assert!(c4.total_cycles <= c3.total_cycles);
    }
}
