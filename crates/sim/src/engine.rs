use rispp_core::{
    BurstSegment, DecisionExplain, PlanCacheHandle, PlanCacheStats, RecoveryPolicy, RecoveryStats,
    RunTimeManager, SchedulerKind,
};
use rispp_fabric::{FabricJournalEntry, FaultModel};
use rispp_model::SiLibrary;
use rispp_monitor::ForecastPolicy;

use crate::backend::{ExecutionSystem, RisppBackend, SoftwareBackend};
use crate::baseline::MolenSystem;
use crate::cancel::{CancelToken, CancellableRun};
use crate::context::TraceContext;
use crate::multi::TenancyConfig;
use crate::observer::{HotSpotOrigin, SimEvent, SimObserver};
use crate::stats::{RunStats, DEFAULT_BUCKET_CYCLES};
use crate::trace::{Invocation, Trace};

/// Which execution system replays the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// The RISPP run-time system with the given scheduler.
    Rispp(SchedulerKind),
    /// Molen-like baseline: one fixed implementation per SI, resident
    /// across hot-spot switches when space allows.
    Molen,
    /// OneChip-like baseline: one fixed implementation per SI in a single
    /// configuration context that is flushed on every hot-spot switch.
    OneChip,
    /// Pure base-processor execution (every SI traps): the paper's 0-AC
    /// reference point of 7,403 M cycles.
    SoftwareOnly,
}

impl SystemKind {
    /// Display label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Rispp(kind) => kind.abbreviation(),
            SystemKind::Molen => "Molen",
            SystemKind::OneChip => "OneChip",
            SystemKind::SoftwareOnly => "Software",
        }
    }
}

/// Fault-injection parameters of a simulation run. Integer fields keep
/// the configuration `Copy + Eq + Hash`, so sweep jobs stay cheap to
/// duplicate across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultConfig {
    /// Uniform fault rate in parts per million, expanded to a full
    /// [`FaultModel`] via [`FaultModel::uniform_ppm`]. Zero is the null
    /// model: bit-identical to running without fault injection.
    pub rate_ppm: u32,
    /// Seed of the fabric's fault-drawing RNG stream.
    pub seed: u64,
    /// Consecutive aborted loads tolerated per container before the tile
    /// is quarantined.
    pub max_retries: u32,
}

impl FaultConfig {
    /// Default seed of the fault stream (`--fault-seed` default).
    pub const DEFAULT_SEED: u64 = 0xDA7E_2008;

    /// A fault configuration at `rate` (clamped to `[0, 1]`, rounded to
    /// ppm) with the default seed and retry budget.
    #[must_use]
    pub fn uniform(rate: f64) -> Self {
        FaultConfig {
            rate_ppm: FaultModel::uniform(rate, Self::DEFAULT_SEED).crc_abort_ppm,
            seed: Self::DEFAULT_SEED,
            max_retries: RecoveryPolicy::default().max_retries,
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of Atom Containers (RISPP) or container slots (Molen).
    pub containers: u16,
    /// The execution system.
    pub system: SystemKind,
    /// Forecast policy of the online monitor (RISPP only).
    pub forecast: ForecastPolicy,
    /// Collect per-bucket execution counts and latency timelines.
    pub detail: bool,
    /// Statistics bucket width in cycles.
    pub bucket_cycles: u64,
    /// Feed the *measured* per-invocation execution profile to the
    /// run-time system instead of the online forecast (perfect future
    /// knowledge — the upper bound of paper Section 4.2).
    pub oracle: bool,
    /// Reconfiguration-port bandwidth override in bytes per second
    /// (`None`: the prototype's SelectMAP/ICAP port).
    pub port_bandwidth: Option<u64>,
    /// Seeded fault injection (RISPP only; the baselines model ideal
    /// hardware). `None` disables injection entirely.
    pub fault: Option<FaultConfig>,
    /// Capture every selection+schedule decision as
    /// [`SimEvent::Decision`] events (RISPP only). Off by default: the
    /// decision recorder then does no work at all.
    pub explain: bool,
    /// Record the fabric's container-transition journal and emit it as
    /// [`SimEvent::ContainerTransition`] events (RISPP only). Off by
    /// default.
    pub journal: bool,
    /// Multi-application tenancy (see [`crate::simulate_multi`]). The
    /// default — one tenant, shared fabric — is the classic single-owner
    /// simulation; [`simulate`] ignores everything but the default.
    pub tenants: TenancyConfig,
    /// Memoise planning decisions in a [`rispp_core::PlanCache`] (RISPP
    /// only). Results are bit-identical either way — a verified hit
    /// replays exactly the decision the planner would have produced — so
    /// this is purely a speed/memory trade. Defaults to on unless the
    /// `RISPP_PLAN_CACHE` environment variable is `0` at configuration
    /// time (the cache-off escape hatch for A/B comparisons); when off,
    /// shared caches handed to the engine are ignored too.
    pub plan_cache: bool,
    /// Causal trace context of this run (see [`TraceContext`]). Identity
    /// only: the engine hands it to every attached observer before replay
    /// via [`SimObserver::set_trace_context`], and it never influences
    /// simulation behaviour — results are bit-identical with or without
    /// it. `None` (the default) stamps nothing.
    pub trace: Option<TraceContext>,
}

/// Constructor-time default of [`SimConfig::plan_cache`]: on, unless
/// `RISPP_PLAN_CACHE=0`.
fn plan_cache_default() -> bool {
    std::env::var("RISPP_PLAN_CACHE").map_or(true, |v| v != "0")
}

impl SimConfig {
    /// RISPP configuration with the given scheduler.
    #[must_use]
    pub fn rispp(containers: u16, scheduler: SchedulerKind) -> Self {
        SimConfig {
            containers,
            system: SystemKind::Rispp(scheduler),
            forecast: ForecastPolicy::default(),
            detail: false,
            bucket_cycles: DEFAULT_BUCKET_CYCLES,
            oracle: false,
            port_bandwidth: None,
            fault: None,
            explain: false,
            journal: false,
            tenants: TenancyConfig::default(),
            plan_cache: plan_cache_default(),
            trace: None,
        }
    }

    /// Molen-baseline configuration.
    #[must_use]
    pub fn molen(containers: u16) -> Self {
        SimConfig {
            containers,
            system: SystemKind::Molen,
            forecast: ForecastPolicy::default(),
            detail: false,
            bucket_cycles: DEFAULT_BUCKET_CYCLES,
            oracle: false,
            port_bandwidth: None,
            fault: None,
            explain: false,
            journal: false,
            tenants: TenancyConfig::default(),
            plan_cache: plan_cache_default(),
            trace: None,
        }
    }

    /// Pure-software configuration (0 Atom Containers).
    #[must_use]
    pub fn software_only() -> Self {
        SimConfig {
            containers: 0,
            system: SystemKind::SoftwareOnly,
            forecast: ForecastPolicy::default(),
            detail: false,
            bucket_cycles: DEFAULT_BUCKET_CYCLES,
            oracle: false,
            port_bandwidth: None,
            fault: None,
            explain: false,
            journal: false,
            tenants: TenancyConfig::default(),
            plan_cache: plan_cache_default(),
            trace: None,
        }
    }

    /// Enables detailed statistics (builder style).
    #[must_use]
    pub fn with_detail(mut self, detail: bool) -> Self {
        self.detail = detail;
        self
    }

    /// Overrides the forecast policy (builder style).
    #[must_use]
    pub fn with_forecast(mut self, policy: ForecastPolicy) -> Self {
        self.forecast = policy;
        self
    }

    /// Enables oracle (perfect-future-knowledge) profiles (builder style).
    #[must_use]
    pub fn with_oracle(mut self, oracle: bool) -> Self {
        self.oracle = oracle;
        self
    }

    /// Overrides the reconfiguration-port bandwidth (builder style).
    #[must_use]
    pub fn with_port_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.port_bandwidth = Some(bytes_per_sec);
        self
    }

    /// Attaches seeded fault injection (builder style). Only the RISPP
    /// backend injects faults; a `rate_ppm` of zero is the null model and
    /// leaves every result bit-identical to `None`.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Enables scheduler-decision capture (builder style): the RISPP
    /// backend emits one [`SimEvent::Decision`] per selection+schedule.
    /// Simulated cycles and [`RunStats`] are bit-identical either way.
    #[must_use]
    pub fn with_explain(mut self, explain: bool) -> Self {
        self.explain = explain;
        self
    }

    /// Enables the fabric container-transition journal (builder style):
    /// the RISPP backend emits [`SimEvent::ContainerTransition`] events.
    /// Simulated cycles and [`RunStats`] are bit-identical either way.
    #[must_use]
    pub fn with_journal(mut self, journal: bool) -> Self {
        self.journal = journal;
        self
    }

    /// Configures multi-application tenancy (builder style): tenant count,
    /// contention policy and burst arbitration for
    /// [`crate::simulate_multi`].
    #[must_use]
    pub fn with_tenants(mut self, tenants: TenancyConfig) -> Self {
        self.tenants = tenants;
        self
    }

    /// Enables or disables plan-decision memoisation (builder style),
    /// overriding the `RISPP_PLAN_CACHE` constructor default. See
    /// [`SimConfig::plan_cache`].
    #[must_use]
    pub fn with_plan_cache(mut self, plan_cache: bool) -> Self {
        self.plan_cache = plan_cache;
        self
    }

    /// Attaches a causal [`TraceContext`] (builder style). Identity only:
    /// observers stamp their exports with it, the simulation itself is
    /// bit-identical with or without one.
    #[must_use]
    pub fn with_trace(mut self, context: TraceContext) -> Self {
        self.trace = Some(context);
        self
    }

    /// Builds the configured execution system over `library`.
    ///
    /// This is the factory behind [`simulate`]: every [`SystemKind`] maps
    /// to one of the built-in [`ExecutionSystem`] implementations. Callers
    /// that want a *custom* backend skip this and hand their own
    /// implementation to [`simulate_with`] directly.
    #[must_use]
    pub fn build_system<'a>(&self, library: &'a SiLibrary) -> Box<dyn ExecutionSystem + 'a> {
        self.build_system_shared(library, None)
    }

    /// [`build_system`](SimConfig::build_system) with an optional *shared*
    /// plan cache: when `plan_cache` is on and `shared` is supplied, the
    /// RISPP backend memoises into it (cross-job/cross-request reuse);
    /// with `None` it gets a private per-run cache. When
    /// [`SimConfig::plan_cache`] is off, `shared` is ignored entirely.
    #[must_use]
    pub fn build_system_shared<'a>(
        &self,
        library: &'a SiLibrary,
        shared: Option<&PlanCacheHandle>,
    ) -> Box<dyn ExecutionSystem + 'a> {
        match self.system {
            SystemKind::Rispp(kind) => {
                let mut builder = RunTimeManager::builder(library)
                    .containers(self.containers)
                    .scheduler(kind)
                    .forecast(self.forecast);
                if self.plan_cache {
                    builder = builder.plan_cache(
                        shared.cloned().unwrap_or_else(PlanCacheHandle::private),
                    );
                }
                if let Some(bw) = self.port_bandwidth {
                    builder = builder.port_bandwidth(bw);
                }
                if let Some(fc) = self.fault {
                    builder = builder
                        .fault_model(FaultModel::uniform_ppm(fc.rate_ppm, fc.seed))
                        .recovery(RecoveryPolicy {
                            max_retries: fc.max_retries,
                            ..RecoveryPolicy::default()
                        });
                }
                let mut manager = builder.explain(self.explain).build();
                if self.journal {
                    manager.set_journal_enabled(true);
                }
                Box::new(RisppBackend::new(manager, kind).with_oracle(self.oracle))
            }
            SystemKind::Molen => Box::new(MolenSystem::new(library, self.containers)),
            SystemKind::OneChip => Box::new(MolenSystem::one_chip(library, self.containers)),
            SystemKind::SoftwareOnly => Box::new(SoftwareBackend::new(library)),
        }
    }
}

pub(crate) fn emit(observers: &mut [&mut (dyn SimObserver + '_)], event: SimEvent) {
    for obs in observers.iter_mut() {
        obs.on_event(&event);
    }
}

/// Checks the backend's completed-load counter and reports any advance to
/// the observers (the engine observes loads at replay granularity).
fn poll_loads(
    system: &dyn ExecutionSystem,
    loads_seen: &mut u64,
    now: u64,
    observers: &mut [&mut (dyn SimObserver + '_)],
) {
    let (loads, _) = system.reconfiguration_stats();
    if loads > *loads_seen {
        emit(
            observers,
            SimEvent::LoadCompleted {
                completed: loads - *loads_seen,
                total: loads,
                now,
            },
        );
        *loads_seen = loads;
    }
}

/// Drains the backend's captured decisions and fabric journal (both
/// no-ops and allocation-free unless `SimConfig::explain` / `journal`
/// enabled them) and emits each item as a typed event. The buffers are
/// reused across calls so the hot path never allocates for disabled
/// telemetry.
fn poll_telemetry(
    system: &mut dyn ExecutionSystem,
    decisions: &mut Vec<DecisionExplain>,
    journal: &mut Vec<FabricJournalEntry>,
    observers: &mut [&mut (dyn SimObserver + '_)],
) {
    system.drain_decisions(decisions);
    for d in decisions.drain(..) {
        emit(observers, SimEvent::Decision(Box::new(d)));
    }
    system.drain_fabric_journal(journal);
    for entry in journal.drain(..) {
        emit(observers, SimEvent::ContainerTransition(entry));
    }
}

/// Checks the backend's self-healing counters and reports any advance as
/// typed fault events. Fault-free backends never advance a counter, so
/// this emits nothing and the event stream stays bit-identical to a run
/// without fault injection.
fn poll_recovery(
    system: &dyn ExecutionSystem,
    seen: &mut RecoveryStats,
    now: u64,
    observers: &mut [&mut (dyn SimObserver + '_)],
) {
    let cur = system.recovery_stats();
    if cur == *seen {
        return;
    }
    if cur.faults_injected > seen.faults_injected {
        emit(
            observers,
            SimEvent::FaultInjected {
                count: cur.faults_injected - seen.faults_injected,
                total: cur.faults_injected,
                cycles_lost: cur.fault_cycles_lost,
                now,
            },
        );
    }
    if cur.load_retries > seen.load_retries {
        emit(
            observers,
            SimEvent::LoadRetried {
                count: cur.load_retries - seen.load_retries,
                total: cur.load_retries,
                now,
            },
        );
    }
    if cur.containers_quarantined > seen.containers_quarantined {
        emit(
            observers,
            SimEvent::ContainerQuarantined {
                count: cur.containers_quarantined - seen.containers_quarantined,
                total: cur.containers_quarantined,
                now,
            },
        );
    }
    if cur.degraded_to_software > seen.degraded_to_software {
        emit(
            observers,
            SimEvent::DegradedToSoftware {
                count: cur.degraded_to_software - seen.degraded_to_software,
                total: cur.degraded_to_software,
                now,
            },
        );
    }
    *seen = cur;
}

/// Replays `trace` against an arbitrary [`ExecutionSystem`], emitting the
/// typed event stream to `observers`.
///
/// This is the open entry point of the engine: [`simulate`] builds one of
/// the built-in backends and attaches a [`RunStats`] observer, but any
/// third-party backend and any observer set can be driven through here.
/// Time starts at cycle 0 with a cold (empty) fabric, exactly like the
/// paper's measurements.
///
/// # Panics
///
/// Panics if the backend panics — the built-in backends panic when the
/// trace references SIs outside their library.
pub fn simulate_with(
    system: &mut dyn ExecutionSystem,
    trace: &Trace,
    observers: &mut [&mut (dyn SimObserver + '_)],
) {
    let mut state = ReplayState::new(system, observers);
    let mut now = 0u64;
    for inv in trace.invocations() {
        now = replay_invocation(system, inv, now, &mut state, observers);
    }
    finish_replay(system, now, now, &mut state, observers);
}

/// [`simulate_with`] with cooperative cancellation: the replay checks
/// `token` at every hot-spot entry and burst-batch boundary and stops
/// early once it fires. Returns `true` when the trace ran to completion,
/// `false` when the token cut it short (the observers then saw a partial
/// event stream, closed by a final [`SimEvent::RunFinished`] at the
/// cancellation cycle).
///
/// A run whose token never fires is bit-identical to [`simulate_with`]:
/// the only extra work is a relaxed atomic load per boundary.
pub fn simulate_with_cancellable(
    system: &mut dyn ExecutionSystem,
    trace: &Trace,
    observers: &mut [&mut (dyn SimObserver + '_)],
    token: &CancelToken,
) -> bool {
    let mut state = ReplayState::new(system, observers).with_cancel(token.clone());
    let mut now = 0u64;
    for inv in trace.invocations() {
        now = replay_invocation(system, inv, now, &mut state, observers);
        if state.cancelled {
            break;
        }
    }
    finish_replay(system, now, now, &mut state, observers);
    !state.cancelled
}

/// Mutable bookkeeping of one trace replay, shared by [`simulate_with`]
/// and the multi-tenant engine ([`crate::simulate_multi`]): counter
/// snapshots, reusable buffers, the pre-resolved segment-observer set and
/// the once-per-replay poll gates. One instance per (system, observer set)
/// pair; carrying it across [`replay_invocation`] calls is what keeps the
/// single- and multi-tenant paths the same code.
pub(crate) struct ReplayState {
    loads_seen: u64,
    recovery_seen: RecoveryStats,
    // One segment buffer for the whole replay; refilled per burst.
    segments: Vec<BurstSegment>,
    // Telemetry drain buffers, reused for the whole replay; both stay
    // empty (and unallocated) while decision capture / the fabric journal
    // are disabled.
    decisions: Vec<DecisionExplain>,
    journal: Vec<FabricJournalEntry>,
    // Observers interested in the per-segment stream, resolved once —
    // the segment dispatch runs millions of times per replay.
    seg_observers: Vec<usize>,
    // Poll gates, resolved once per replay: a backend that can never
    // produce recovery events (no fault model) or telemetry (capture off)
    // lets the loop skip those polls entirely — each skipped poll is
    // provably emission-free, because the counters it reads cannot
    // advance.
    recovery_active: bool,
    telemetry_active: bool,
    // Cooperative cancellation: `None` for classic runs (the boundary
    // checks reduce to one branch), `Some` when driven through
    // [`simulate_with_cancellable`]. `cancelled` latches once the token
    // is observed fired, so callers distinguish complete from cut-short
    // replays.
    cancel: Option<CancelToken>,
    pub(crate) cancelled: bool,
}

impl ReplayState {
    pub(crate) fn new(
        system: &dyn ExecutionSystem,
        observers: &[&mut (dyn SimObserver + '_)],
    ) -> Self {
        ReplayState {
            loads_seen: 0,
            recovery_seen: RecoveryStats::default(),
            segments: Vec::new(),
            decisions: Vec::new(),
            journal: Vec::new(),
            seg_observers: observers
                .iter()
                .enumerate()
                .filter(|(_, o)| o.wants_segments())
                .map(|(i, _)| i)
                .collect(),
            recovery_active: system.recovery_active(),
            telemetry_active: system.telemetry_active(),
            cancel: None,
            cancelled: false,
        }
    }

    /// Attaches a cancellation token (builder style).
    pub(crate) fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Samples the token (if any) and latches the cancelled flag.
    fn poll_cancel(&mut self) -> bool {
        if !self.cancelled {
            if let Some(token) = &self.cancel {
                self.cancelled = token.is_cancelled();
            }
        }
        self.cancelled
    }
}

/// Replays one invocation starting at cycle `now` and returns the cycle it
/// finished at. Exactly one loop iteration of the classic [`simulate_with`]
/// body — the multi-tenant engine interleaves calls to this across tenants.
pub(crate) fn replay_invocation(
    system: &mut dyn ExecutionSystem,
    inv: &Invocation,
    start: u64,
    state: &mut ReplayState,
    observers: &mut [&mut (dyn SimObserver + '_)],
) -> u64 {
    let mut now = start;
    // Hot-spot-entry cancellation point: a job cancelled between
    // invocations stops before planning (and paying for) the next hot
    // spot.
    if state.poll_cancel() {
        return now;
    }
    emit(
        observers,
        SimEvent::HotSpotEntered {
            hot_spot: inv.hot_spot,
            now,
            origin: HotSpotOrigin::Annotated,
        },
    );
    system.enter_hot_spot(inv, now);
    if state.telemetry_active {
        poll_telemetry(system, &mut state.decisions, &mut state.journal, observers);
    }
    // The prologue advances the clock unconditionally, *before* the
    // burst loop: an invocation whose bursts are all empty (count 0)
    // must still cost its prologue, and `exit_hot_spot` below must see
    // the advanced time even when no segment ever updates `now`.
    now += inv.prologue_cycles;
    poll_loads(system, &mut state.loads_seen, now, observers);
    if state.recovery_active {
        poll_recovery(system, &mut state.recovery_seen, now, observers);
    }
    // Quietness is monotone within one burst loop: the system only
    // acquires new pending activity in `enter_hot_spot` (planning) or
    // while processing events it already had pending. So once the
    // pre-burst sample reads `false`, the remaining bursts of this
    // invocation skip the sample *and* the poll pair below.
    let mut watch = true;
    let bursts = inv.bursts.as_slice();
    let mut bi = 0;
    while bi < bursts.len() {
        // Burst-batch cancellation point: bounded latency of one batch
        // (or one burst on the fallback path). The hot spot is still
        // exited below so the backend stays coherent for diagnostics.
        if state.poll_cancel() {
            break;
        }
        if bursts[bi].count == 0 {
            bi += 1;
            continue;
        }
        // Sampled *before* the burst: a system that is quiet going in
        // cannot advance a counter during the burst. One sample also
        // covers a whole consumed batch: a batch is by contract
        // event-free, so activity cannot change inside it.
        watch = watch && system.has_pending_activity();
        // Fast path: let the backend advance a whole run of bursts in
        // one step. Consumed bursts process no events, so the polls
        // they would have made per-burst are skipped as provable
        // no-ops, and each non-empty one yields exactly one segment.
        let consumed = system.execute_bursts_batched(&bursts[bi..], now, &mut state.segments);
        if consumed > 0 {
            // With no segment observers only the clock matters, and each
            // consumed segment advances it independently of the previous
            // one (`seg.start` comes from the backend) — so land directly
            // on the end of the last consumed non-empty burst.
            if state.seg_observers.is_empty() {
                if let Some(seg) = state.segments.last() {
                    let b = bursts[bi..bi + consumed]
                        .iter()
                        .rfind(|b| b.count != 0)
                        .expect("a segment implies a non-empty consumed burst");
                    let per = u64::from(seg.latency) + u64::from(b.overhead);
                    now = seg.start + seg.count * per;
                }
                bi += consumed;
                continue;
            }
            let mut segs = state.segments.iter();
            for b in &bursts[bi..bi + consumed] {
                if b.count == 0 {
                    continue;
                }
                let seg = segs
                    .next()
                    .expect("one segment per non-empty consumed burst");
                let per = u64::from(seg.latency) + u64::from(b.overhead);
                let event = SimEvent::SegmentExecuted {
                    si: b.si,
                    segment: *seg,
                    overhead: b.overhead,
                };
                for &i in &state.seg_observers {
                    observers[i].on_event(&event);
                }
                now = seg.start + seg.count * per;
            }
            bi += consumed;
            continue;
        }
        // Per-burst fallback: an event falls inside (or before) this
        // burst, so the backend segments it and processes events.
        let b = &bursts[bi];
        system.execute_burst_into(b.si, b.count, b.overhead, now, &mut state.segments);
        for seg in &state.segments {
            let per = u64::from(seg.latency) + u64::from(b.overhead);
            let event = SimEvent::SegmentExecuted {
                si: b.si,
                segment: *seg,
                overhead: b.overhead,
            };
            for &i in &state.seg_observers {
                observers[i].on_event(&event);
            }
            now = seg.start + seg.count * per;
        }
        if watch {
            poll_loads(system, &mut state.loads_seen, now, observers);
            if state.recovery_active {
                poll_recovery(system, &mut state.recovery_seen, now, observers);
            }
            if state.telemetry_active {
                poll_telemetry(system, &mut state.decisions, &mut state.journal, observers);
            }
        }
        bi += 1;
    }
    system.exit_hot_spot(now);
    if state.recovery_active {
        poll_recovery(system, &mut state.recovery_seen, now, observers);
    }
    if state.telemetry_active {
        poll_telemetry(system, &mut state.decisions, &mut state.journal, observers);
    }
    now
}

/// The replay tail: final load/recovery polls at cycle `now` and the
/// [`SimEvent::RunFinished`] emission. `total_cycles` is reported in the
/// event — equal to `now` for a solo replay, the tenant's *consumed*
/// cycles in a multi-tenant one.
pub(crate) fn finish_replay(
    system: &mut dyn ExecutionSystem,
    now: u64,
    total_cycles: u64,
    state: &mut ReplayState,
    observers: &mut [&mut (dyn SimObserver + '_)],
) {
    let (loads, cycles) = system.reconfiguration_stats();
    if loads > state.loads_seen {
        emit(
            observers,
            SimEvent::LoadCompleted {
                completed: loads - state.loads_seen,
                total: loads,
                now,
            },
        );
        state.loads_seen = loads;
    }
    if state.recovery_active {
        poll_recovery(system, &mut state.recovery_seen, now, observers);
    }
    emit(
        observers,
        SimEvent::RunFinished {
            total_cycles,
            reconfigurations: loads,
            reconfiguration_cycles: cycles,
        },
    );
}

/// Replays `trace` on the configured built-in system with extra observers
/// attached alongside the [`RunStats`] collector.
///
/// Used by the CLI (`--log-events`) and the sweep progress reporting; with
/// an empty `extra` slice this is exactly [`simulate`].
///
/// # Panics
///
/// Panics if the trace references SIs outside `library`.
#[must_use]
pub fn simulate_observed(
    library: &SiLibrary,
    trace: &Trace,
    config: &SimConfig,
    extra: &mut [&mut (dyn SimObserver + '_)],
) -> RunStats {
    simulate_observed_planned(library, trace, config, None, extra).0
}

/// [`simulate_observed`] with an optional *shared* plan cache, returning
/// the run's deterministic [`PlanCacheStats`] alongside the statistics.
/// With `shared: None` and [`SimConfig::plan_cache`] on, the run uses a
/// private cache (intra-run memoisation only); when `plan_cache` is off
/// the returned counters are all zero. The [`RunStats`] are bit-identical
/// in every case.
///
/// # Panics
///
/// Panics if the trace references SIs outside `library`.
#[must_use]
pub fn simulate_observed_planned(
    library: &SiLibrary,
    trace: &Trace,
    config: &SimConfig,
    shared: Option<&PlanCacheHandle>,
    extra: &mut [&mut (dyn SimObserver + '_)],
) -> (RunStats, PlanCacheStats) {
    let mut system = config.build_system_shared(library, shared);
    let mut stats = RunStats::new(
        system.label(),
        library.len(),
        config.bucket_cycles,
        config.detail,
    );
    {
        let mut observers: Vec<&mut (dyn SimObserver + '_)> = Vec::with_capacity(1 + extra.len());
        observers.push(&mut stats);
        for obs in extra.iter_mut() {
            observers.push(&mut **obs);
        }
        if let Some(ctx) = config.trace {
            for obs in observers.iter_mut() {
                obs.set_trace_context(ctx);
            }
        }
        simulate_with(system.as_mut(), trace, &mut observers);
    }
    let plan = system.plan_cache_stats();
    (stats, plan)
}

/// Replays `trace` on the configured system and returns the run statistics.
///
/// Delegates to [`simulate_with`] through the [`SimConfig::build_system`]
/// factory, so the enum-configured path and the trait path are the same
/// code and produce bit-identical results by construction.
///
/// # Panics
///
/// Panics if the trace references SIs outside `library`.
#[must_use]
pub fn simulate(library: &SiLibrary, trace: &Trace, config: &SimConfig) -> RunStats {
    simulate_observed(library, trace, config, &mut [])
}

/// [`simulate_observed`] with cooperative cancellation: stops early once
/// `token` fires (see [`simulate_with_cancellable`] for the boundary
/// semantics). A run whose token never fires returns statistics
/// bit-identical to [`simulate_observed`] — same code path, the check just
/// never triggers.
///
/// # Panics
///
/// Panics if the trace references SIs outside `library`.
#[must_use]
pub fn simulate_observed_cancellable(
    library: &SiLibrary,
    trace: &Trace,
    config: &SimConfig,
    token: &CancelToken,
    extra: &mut [&mut (dyn SimObserver + '_)],
) -> CancellableRun {
    simulate_observed_cancellable_shared(library, trace, config, token, None, extra)
}

/// [`simulate_observed_cancellable`] with an optional *shared* plan cache
/// (the warm-cache job-server path). See
/// [`simulate_observed_planned`] for the sharing semantics.
///
/// # Panics
///
/// Panics if the trace references SIs outside `library`.
#[must_use]
pub fn simulate_observed_cancellable_shared(
    library: &SiLibrary,
    trace: &Trace,
    config: &SimConfig,
    token: &CancelToken,
    shared: Option<&PlanCacheHandle>,
    extra: &mut [&mut (dyn SimObserver + '_)],
) -> CancellableRun {
    let mut system = config.build_system_shared(library, shared);
    let mut stats = RunStats::new(
        system.label(),
        library.len(),
        config.bucket_cycles,
        config.detail,
    );
    let completed = {
        let mut observers: Vec<&mut (dyn SimObserver + '_)> = Vec::with_capacity(1 + extra.len());
        observers.push(&mut stats);
        for obs in extra.iter_mut() {
            observers.push(&mut **obs);
        }
        if let Some(ctx) = config.trace {
            for obs in observers.iter_mut() {
                obs.set_trace_context(ctx);
            }
        }
        simulate_with_cancellable(system.as_mut(), trace, &mut observers, token)
    };
    CancellableRun {
        stats,
        cancelled: !completed,
    }
}

/// [`simulate`] with cooperative cancellation — the job-server execution
/// path. See [`simulate_observed_cancellable`].
///
/// # Panics
///
/// Panics if the trace references SIs outside `library`.
#[must_use]
pub fn simulate_cancellable(
    library: &SiLibrary,
    trace: &Trace,
    config: &SimConfig,
    token: &CancelToken,
) -> CancellableRun {
    simulate_observed_cancellable(library, trace, config, token, &mut [])
}

/// [`simulate_cancellable`] against a *shared* warm plan cache — the
/// job-server execution path with cross-request plan reuse. See
/// [`simulate_observed_planned`] for the sharing semantics.
///
/// # Panics
///
/// Panics if the trace references SIs outside `library`.
#[must_use]
pub fn simulate_cancellable_shared(
    library: &SiLibrary,
    trace: &Trace,
    config: &SimConfig,
    token: &CancelToken,
    shared: Option<&PlanCacheHandle>,
) -> CancellableRun {
    simulate_observed_cancellable_shared(library, trace, config, token, shared, &mut [])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Burst, Invocation, Trace};
    use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibraryBuilder};
    use rispp_monitor::HotSpotId;

    fn library() -> SiLibrary {
        let universe = AtomUniverse::from_types([
            AtomTypeInfo::new("A1"),
            AtomTypeInfo::new("A2"),
        ])
        .unwrap();
        let mut b = SiLibraryBuilder::new(universe);
        b.special_instruction("X", 1_000)
            .unwrap()
            .molecule(Molecule::from_counts([1, 0]), 100)
            .unwrap()
            .molecule(Molecule::from_counts([2, 1]), 30)
            .unwrap();
        b.special_instruction("Y", 800)
            .unwrap()
            .molecule(Molecule::from_counts([0, 1]), 90)
            .unwrap();
        b.build().unwrap()
    }

    fn trace(frames: usize) -> Trace {
        (0..frames)
            .map(|_| Invocation {
                hot_spot: HotSpotId(0),
                prologue_cycles: 1_000,
                bursts: vec![
                    Burst {
                        si: SiId(0),
                        count: 500,
                        overhead: 20,
                    },
                    Burst {
                        si: SiId(1),
                        count: 200,
                        overhead: 20,
                    },
                ],
                hints: vec![(SiId(0), 500), (SiId(1), 200)],
            })
            .collect()
    }

    #[test]
    fn software_only_time_is_exact() {
        let lib = library();
        let t = trace(2);
        let stats = simulate(&lib, &t, &SimConfig::software_only());
        // 2 × (1000 + 500·1020 + 200·820) cycles.
        assert_eq!(stats.total_cycles, 2 * (1_000 + 500 * 1_020 + 200 * 820));
        assert_eq!(stats.total_executions(), 1_400);
        assert!((stats.hardware_fraction() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn rispp_beats_software_and_molen_on_repetitive_workload() {
        let lib = library();
        let t = trace(8);
        let sw = simulate(&lib, &t, &SimConfig::software_only());
        let molen = simulate(&lib, &t, &SimConfig::molen(4));
        let hef = simulate(&lib, &t, &SimConfig::rispp(4, SchedulerKind::Hef));
        assert!(hef.total_cycles < sw.total_cycles);
        assert!(molen.total_cycles < sw.total_cycles);
        assert!(
            hef.total_cycles <= molen.total_cycles,
            "HEF {} vs Molen {}",
            hef.total_cycles,
            molen.total_cycles
        );
        assert!(hef.hardware_fraction() > 0.5);
    }

    #[test]
    fn all_schedulers_complete_with_identical_execution_counts() {
        let lib = library();
        let t = trace(3);
        let want = t.total_si_executions();
        for kind in SchedulerKind::ALL {
            let stats = simulate(&lib, &t, &SimConfig::rispp(3, kind));
            assert_eq!(stats.total_executions(), want, "{kind}");
            assert_eq!(stats.system, kind.abbreviation());
        }
    }

    #[test]
    fn detail_mode_collects_buckets_and_timeline() {
        let lib = library();
        let t = trace(2);
        let stats = simulate(
            &lib,
            &t,
            &SimConfig::rispp(4, SchedulerKind::Hef).with_detail(true),
        );
        assert!(stats.has_detail());
        let combined: u64 = stats.combined_buckets().iter().map(|&c| u64::from(c)).sum();
        assert_eq!(combined, stats.total_executions());
        // Latency of X must step down over time.
        let tl = &stats.latency_timeline[0];
        assert!(tl.len() >= 2);
        assert!(tl.windows(2).all(|w| w[1].latency < w[0].latency));
    }

    #[test]
    fn one_chip_is_never_faster_than_molen() {
        let lib = library();
        let t = trace(6);
        let molen = simulate(&lib, &t, &SimConfig::molen(4));
        let one_chip = simulate(
            &lib,
            &t,
            &SimConfig {
                system: SystemKind::OneChip,
                ..SimConfig::molen(4)
            },
        );
        assert!(one_chip.total_cycles >= molen.total_cycles);
        assert_eq!(one_chip.system, "OneChip");
    }

    #[test]
    fn reconfiguration_stats_reported() {
        let lib = library();
        let t = trace(2);
        let stats = simulate(&lib, &t, &SimConfig::rispp(4, SchedulerKind::Hef));
        assert!(stats.reconfigurations > 0);
        assert!(stats.reconfiguration_cycles > 0);
        let sw = simulate(&lib, &t, &SimConfig::software_only());
        assert_eq!(sw.reconfigurations, 0);
    }

    #[test]
    fn more_containers_never_hurt_hef_on_stable_workload() {
        let lib = library();
        let t = trace(6);
        let c3 = simulate(&lib, &t, &SimConfig::rispp(3, SchedulerKind::Hef));
        let c4 = simulate(&lib, &t, &SimConfig::rispp(4, SchedulerKind::Hef));
        assert!(c4.total_cycles <= c3.total_cycles);
    }

    #[test]
    fn system_kind_labels_are_static_and_stable() {
        assert_eq!(SystemKind::Rispp(SchedulerKind::Hef).label(), "HEF");
        assert_eq!(SystemKind::Molen.label(), "Molen");
        assert_eq!(SystemKind::OneChip.label(), "OneChip");
        assert_eq!(SystemKind::SoftwareOnly.label(), "Software");
    }

    #[test]
    fn prologue_cycles_count_even_without_bursts() {
        let lib = library();
        // Three invocations: a normal one, one with only zero-count bursts,
        // one with no bursts at all.
        let t = Trace::from_invocations(vec![
            Invocation {
                hot_spot: HotSpotId(0),
                prologue_cycles: 700,
                bursts: vec![Burst {
                    si: SiId(0),
                    count: 0,
                    overhead: 20,
                }],
                hints: vec![(SiId(0), 0)],
            },
            Invocation {
                hot_spot: HotSpotId(0),
                prologue_cycles: 300,
                bursts: Vec::new(),
                hints: Vec::new(),
            },
        ]);
        for config in [
            SimConfig::software_only(),
            SimConfig::molen(4),
            SimConfig {
                system: SystemKind::OneChip,
                ..SimConfig::molen(4)
            },
            SimConfig::rispp(4, SchedulerKind::Hef),
        ] {
            let stats = simulate(&lib, &t, &config);
            assert_eq!(
                stats.total_cycles, 1_000,
                "{}: prologue must advance time without bursts",
                config.system.label()
            );
            assert_eq!(stats.total_executions(), 0, "{}", config.system.label());
        }
    }

    #[test]
    fn unfired_token_is_bit_identical_to_plain_simulate() {
        let lib = library();
        let t = trace(6);
        for config in [
            SimConfig::software_only(),
            SimConfig::molen(4),
            SimConfig::rispp(4, SchedulerKind::Hef).with_detail(true),
            SimConfig::rispp(3, SchedulerKind::Asf),
        ] {
            let plain = simulate(&lib, &t, &config);
            let run = simulate_cancellable(&lib, &t, &config, &CancelToken::new());
            assert!(!run.cancelled, "{}", config.system.label());
            assert_eq!(run.stats, plain, "{}", config.system.label());
        }
    }

    #[test]
    fn prefired_token_stops_before_any_execution() {
        let lib = library();
        let t = trace(6);
        let token = CancelToken::new();
        token.cancel();
        let run = simulate_cancellable(&lib, &t, &SimConfig::rispp(4, SchedulerKind::Hef), &token);
        assert!(run.cancelled);
        assert_eq!(run.stats.total_executions(), 0);
        assert_eq!(run.stats.total_cycles, 0);
    }

    #[test]
    fn mid_run_cancellation_yields_partial_stats() {
        let lib = library();
        let t = trace(64);
        let full = simulate(&lib, &t, &SimConfig::rispp(4, SchedulerKind::Hef));

        // Fire the token from an observer once some executions happened:
        // the replay must stop at the next boundary, well short of the
        // full trace.
        struct FireAfter {
            token: CancelToken,
            segments: u32,
        }
        impl SimObserver for FireAfter {
            fn on_event(&mut self, event: &SimEvent) {
                if matches!(event, SimEvent::SegmentExecuted { .. }) {
                    self.segments += 1;
                    if self.segments == 3 {
                        self.token.cancel();
                    }
                }
            }
        }
        let token = CancelToken::new();
        let mut fire = FireAfter {
            token: token.clone(),
            segments: 0,
        };
        let mut extra: [&mut dyn SimObserver; 1] = [&mut fire];
        let run = simulate_observed_cancellable(
            &lib,
            &t,
            &SimConfig::rispp(4, SchedulerKind::Hef),
            &token,
            &mut extra,
        );
        assert!(run.cancelled);
        assert!(run.stats.total_executions() > 0);
        assert!(run.stats.total_executions() < full.total_executions());
        assert!(run.stats.total_cycles < full.total_cycles);
    }

    #[test]
    fn empty_trace_finishes_at_cycle_zero() {
        let lib = library();
        let t = Trace::from_invocations(Vec::new());
        for config in [
            SimConfig::software_only(),
            SimConfig::rispp(2, SchedulerKind::Asf),
        ] {
            let stats = simulate(&lib, &t, &config);
            assert_eq!(stats.total_cycles, 0);
            assert_eq!(stats.total_executions(), 0);
            assert_eq!(stats.reconfigurations, 0);
        }
    }
}
