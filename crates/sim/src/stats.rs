use std::borrow::Cow;

use rispp_model::SiId;

/// Default statistics bucket width: the paper plots SI executions per
/// 100 K cycles (Figures 2 and 8).
pub const DEFAULT_BUCKET_CYCLES: u64 = 100_000;

/// A point on an SI's latency timeline: from cycle `at` on, one execution
/// of the SI takes `latency` cycles (the step-down lines of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyEvent {
    /// Cycle at which the latency changed.
    pub at: u64,
    /// New single-execution latency.
    pub latency: u32,
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Label of the executed system (e.g. `"HEF"`, `"Molen"`). Borrowed
    /// for the built-in backends (no per-run allocation); custom backends
    /// may use owned labels.
    pub system: Cow<'static, str>,
    /// Total execution time in cycles.
    pub total_cycles: u64,
    /// Executions per SI (indexed by [`SiId`]).
    pub si_executions: Vec<u64>,
    /// Executions that ran on accelerating hardware, per SI.
    pub hardware_executions: Vec<u64>,
    /// Width of the frequency buckets in cycles.
    pub bucket_cycles: u64,
    /// Executions per bucket, per SI (`[si][bucket]`); only filled when the
    /// run collects detail.
    pub execution_buckets: Vec<Vec<u32>>,
    /// Latency-change events per SI; only filled when the run collects
    /// detail.
    pub latency_timeline: Vec<Vec<LatencyEvent>>,
    /// Atom loads completed (RISPP) or accelerator loads (Molen).
    pub reconfigurations: u64,
    /// Cycles the reconfiguration port was busy.
    pub reconfiguration_cycles: u64,
    /// Faults injected by the fabric's fault model (CRC-aborted loads, SEU
    /// upsets, permanent tile failures). Zero in a fault-free run.
    pub faults_injected: u64,
    /// Loads re-enqueued by the recovery policy (abort retries and SEU
    /// scrub reloads).
    pub load_retries: u64,
    /// Containers taken out of service during the run.
    pub containers_quarantined: u64,
    /// Hot-spot re-plans that came back with no hardware at all (pure cISA
    /// degradation on the shrunken fabric).
    pub degraded_to_software: u64,
    /// Reconfiguration-port cycles wasted on loads that never became
    /// usable.
    pub fault_cycles_lost: u64,
    /// Foreign atoms this tenant's plans found already loaded by
    /// co-tenants (cross-app reuse on a shared multi-tenant fabric). Zero
    /// in every single-tenant run.
    pub atoms_shared: u64,
    /// Contested evictions attributed to this tenant (its loads evicted
    /// atoms owned by a co-tenant). Zero in every single-tenant run.
    pub evictions_contested: u64,
}

impl RunStats {
    /// Creates empty statistics for `si_count` SIs.
    #[must_use]
    pub fn new(
        system: impl Into<Cow<'static, str>>,
        si_count: usize,
        bucket_cycles: u64,
        detail: bool,
    ) -> Self {
        RunStats {
            system: system.into(),
            total_cycles: 0,
            si_executions: vec![0; si_count],
            hardware_executions: vec![0; si_count],
            bucket_cycles,
            execution_buckets: if detail {
                vec![Vec::new(); si_count]
            } else {
                Vec::new()
            },
            latency_timeline: if detail {
                vec![Vec::new(); si_count]
            } else {
                Vec::new()
            },
            reconfigurations: 0,
            reconfiguration_cycles: 0,
            faults_injected: 0,
            load_retries: 0,
            containers_quarantined: 0,
            degraded_to_software: 0,
            fault_cycles_lost: 0,
            atoms_shared: 0,
            evictions_contested: 0,
        }
    }

    /// Whether detailed (bucket/timeline) statistics are collected.
    #[must_use]
    pub fn has_detail(&self) -> bool {
        !self.execution_buckets.is_empty()
    }

    /// Total SI executions across all SIs.
    #[must_use]
    pub fn total_executions(&self) -> u64 {
        self.si_executions.iter().sum()
    }

    /// Fraction of executions that ran on accelerating hardware.
    #[must_use]
    pub fn hardware_fraction(&self) -> f64 {
        let total = self.total_executions();
        if total == 0 {
            return 0.0;
        }
        self.hardware_executions.iter().sum::<u64>() as f64 / total as f64
    }

    /// Records `count` executions of `si` at uniform spacing `per` cycles
    /// starting at `start` (one homogeneous burst segment).
    pub(crate) fn record_segment(
        &mut self,
        si: SiId,
        start: u64,
        count: u64,
        per: u64,
        latency: u32,
        hardware: bool,
    ) {
        let idx = si.index();
        self.si_executions[idx] += count;
        if hardware {
            self.hardware_executions[idx] += count;
        }
        if !self.has_detail() || count == 0 {
            return;
        }
        // Latency timeline: record only changes.
        let timeline = &mut self.latency_timeline[idx];
        if timeline.last().map(|e| e.latency) != Some(latency) {
            timeline.push(LatencyEvent { at: start, latency });
        }
        // Distribute the `count` executions (at start + k·per) over buckets.
        let b = self.bucket_cycles;
        let per = per.max(1);
        let executed_before = |x: u64| -> u64 {
            if x <= start {
                0
            } else {
                ((x - start).div_ceil(per)).min(count)
            }
        };
        let first_bucket = (start / b) as usize;
        let last_cycle = start + (count - 1) * per;
        let last_bucket = (last_cycle / b) as usize;
        let buckets = &mut self.execution_buckets[idx];
        if buckets.len() <= last_bucket {
            buckets.resize(last_bucket + 1, 0);
        }
        for (bucket, slot) in buckets
            .iter_mut()
            .enumerate()
            .take(last_bucket + 1)
            .skip(first_bucket)
        {
            let lo = executed_before(bucket as u64 * b);
            let hi = executed_before((bucket + 1) as u64 * b);
            *slot += (hi - lo) as u32;
        }
    }

    /// Executions of `si` in bucket `bucket` (0 when out of range or detail
    /// was not collected).
    #[must_use]
    pub fn executions_in_bucket(&self, si: SiId, bucket: usize) -> u32 {
        self.execution_buckets
            .get(si.index())
            .and_then(|v| v.get(bucket))
            .copied()
            .unwrap_or(0)
    }

    /// Executions of *all* SIs per bucket (the bar series of Figure 2).
    #[must_use]
    pub fn combined_buckets(&self) -> Vec<u32> {
        let len = self
            .execution_buckets
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0);
        let mut out = vec![0u32; len];
        for buckets in &self.execution_buckets {
            for (i, &c) in buckets.iter().enumerate() {
                out[i] += c;
            }
        }
        out
    }

    /// The SI's latency at cycle `at` according to the recorded timeline.
    #[must_use]
    pub fn latency_at(&self, si: SiId, at: u64) -> Option<u32> {
        self.latency_timeline
            .get(si.index())?
            .iter()
            .take_while(|e| e.at <= at)
            .last()
            .map(|e| e.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_distributes_counts_over_buckets() {
        let mut s = RunStats::new("x", 1, 100, true);
        // 10 executions every 30 cycles from cycle 50: cycles 50..=320.
        s.record_segment(SiId(0), 50, 10, 30, 7, true);
        assert_eq!(s.si_executions[0], 10);
        assert_eq!(s.hardware_executions[0], 10);
        let buckets = &s.execution_buckets[0];
        // Executions at 50,80 | 110,140,170 | 200,230,260,290 | 320.
        assert_eq!(buckets, &vec![2, 3, 4, 1]);
        assert_eq!(buckets.iter().sum::<u32>(), 10);
    }

    #[test]
    fn bucket_sum_equals_count_for_many_shapes() {
        for (start, count, per) in [(0u64, 1u64, 1u64), (99, 7, 100), (12_345, 1_000, 37), (0, 5, 100_000)] {
            let mut s = RunStats::new("x", 1, 100_000, true);
            s.record_segment(SiId(0), start, count, per, 10, false);
            assert_eq!(
                s.execution_buckets[0].iter().map(|&c| u64::from(c)).sum::<u64>(),
                count,
                "start={start} count={count} per={per}"
            );
        }
    }

    #[test]
    fn latency_timeline_records_changes_only() {
        let mut s = RunStats::new("x", 1, 100, true);
        s.record_segment(SiId(0), 0, 5, 10, 100, false);
        s.record_segment(SiId(0), 50, 5, 10, 100, false);
        s.record_segment(SiId(0), 100, 5, 10, 40, true);
        assert_eq!(s.latency_timeline[0].len(), 2);
        assert_eq!(s.latency_at(SiId(0), 0), Some(100));
        assert_eq!(s.latency_at(SiId(0), 99), Some(100));
        assert_eq!(s.latency_at(SiId(0), 150), Some(40));
    }

    #[test]
    fn no_detail_mode_skips_buckets() {
        let mut s = RunStats::new("x", 2, 100, false);
        s.record_segment(SiId(1), 0, 10, 10, 5, true);
        assert!(!s.has_detail());
        assert_eq!(s.si_executions[1], 10);
        assert_eq!(s.executions_in_bucket(SiId(1), 0), 0);
        assert!(s.combined_buckets().is_empty());
    }

    #[test]
    fn hardware_fraction() {
        let mut s = RunStats::new("x", 1, 100, false);
        s.record_segment(SiId(0), 0, 30, 10, 5, false);
        s.record_segment(SiId(0), 300, 70, 10, 5, true);
        assert!((s.hardware_fraction() - 0.7).abs() < 1e-9);
        assert_eq!(s.total_executions(), 100);
    }

    #[test]
    fn combined_buckets_sum_sis() {
        let mut s = RunStats::new("x", 2, 100, true);
        s.record_segment(SiId(0), 0, 4, 25, 5, true); // cycles 0,25,50,75
        s.record_segment(SiId(1), 50, 2, 100, 5, true); // cycles 50,150
        assert_eq!(s.combined_buckets(), vec![5, 1]);
    }
}
