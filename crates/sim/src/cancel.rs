//! Cooperative cancellation of in-flight simulations.
//!
//! A [`CancelToken`] is a cloneable flag shared between the party running a
//! simulation and any party that may want to stop it (a deadline watchdog,
//! a draining job server, a Ctrl-C handler). The replay loop checks the
//! token at its two natural preemption points — hot-spot entry and each
//! burst-batch boundary — so cancellation latency is bounded by one burst
//! batch, while a run whose token never fires stays bit-identical to an
//! uncancellable run (the check reads one relaxed atomic and takes no other
//! action).
//!
//! Cancellation is *cooperative and lossy by design*: a cancelled replay
//! stops emitting events mid-trace, so the [`RunStats`](crate::RunStats)
//! collected up to that point describe a partial run and must not be
//! compared against completed runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation flag for one simulation job.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same flag.
/// Once set, the flag stays set — tokens are not reusable across jobs.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, unfired token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent and safe from any thread,
    /// including while the replay loop is mid-burst — the loop observes
    /// the flag at its next boundary check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Whether `other` is a clone of this token (shares the same flag).
    /// Lets registries holding many tokens retire exactly the one a
    /// finished job registered, even when several jobs share an id.
    #[must_use]
    pub fn same_flag(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

/// Outcome of a cancellable simulation: the collected statistics plus
/// whether the replay ran to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct CancellableRun {
    /// Statistics collected up to completion or the cancellation point.
    /// Partial when [`CancellableRun::cancelled`] is `true`.
    pub stats: crate::RunStats,
    /// `true` when the token fired and the replay stopped early.
    pub cancelled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        // Idempotent.
        t.cancel();
        assert!(clone.is_cancelled());
    }
}
