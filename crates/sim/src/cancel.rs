//! Cooperative cancellation of in-flight simulations.
//!
//! A [`CancelToken`] is a cloneable flag shared between the party running a
//! simulation and any party that may want to stop it (a deadline watchdog,
//! a draining job server, a Ctrl-C handler). The replay loop checks the
//! token at its two natural preemption points — hot-spot entry and each
//! burst-batch boundary — so cancellation latency is bounded by one burst
//! batch, while a run whose token never fires stays bit-identical to an
//! uncancellable run (the check reads one relaxed atomic and takes no other
//! action).
//!
//! Besides the flag itself, the token records *why* it fired as a
//! [`CancelCause`], first cause wins: when a client cancellation and a
//! deadline expiry race, whichever `compare_exchange` lands first is the
//! recorded cause and the loser's is discarded. Outcome classification
//! (Timeout vs Cancelled) reads the recorded cause instead of re-deriving
//! it from racy side channels.
//!
//! Cancellation is *cooperative and lossy by design*: a cancelled replay
//! stops emitting events mid-trace, so the [`RunStats`](crate::RunStats)
//! collected up to that point describe a partial run and must not be
//! compared against completed runs.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Why a [`CancelToken`] fired. Recorded first-cause-wins: the cause of
/// the party whose cancellation landed first sticks, later cancellations
/// only keep the flag set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelCause {
    /// The client (or an explicit caller) requested cancellation — the
    /// default cause of [`CancelToken::cancel`].
    Client,
    /// A deadline watchdog expired the job's deadline.
    Deadline,
}

// Internal encoding of the single atomic: 0 = not cancelled.
const CAUSE_NONE: u8 = 0;
const CAUSE_CLIENT: u8 = 1;
const CAUSE_DEADLINE: u8 = 2;

/// Shared cancellation flag for one simulation job.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same flag.
/// Once set, the flag stays set — tokens are not reusable across jobs.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    // One atomic carries both the flag and the cause: 0 is "not
    // cancelled", any nonzero value is a fired token with its cause.
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// Creates a fresh, unfired token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation with cause [`CancelCause::Client`].
    /// Idempotent and safe from any thread, including while the replay
    /// loop is mid-burst — the loop observes the flag at its next
    /// boundary check.
    pub fn cancel(&self) {
        self.cancel_with(CancelCause::Client);
    }

    /// Requests cancellation recording `cause`, first cause wins: if the
    /// token already fired, the original cause is kept and this call is a
    /// no-op. Safe from any thread.
    pub fn cancel_with(&self, cause: CancelCause) {
        let raw = match cause {
            CancelCause::Client => CAUSE_CLIENT,
            CancelCause::Deadline => CAUSE_DEADLINE,
        };
        // Release so the cancelling thread's prior writes are visible to
        // whoever observes the fired token; failure ordering can be
        // relaxed — losing the race changes nothing.
        let _ = self
            .state
            .compare_exchange(CAUSE_NONE, raw, Ordering::Release, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Acquire) != CAUSE_NONE
    }

    /// The recorded cause, or `None` while the token has not fired. The
    /// cause is stable once observed: first cause wins and never changes.
    #[must_use]
    pub fn cause(&self) -> Option<CancelCause> {
        match self.state.load(Ordering::Acquire) {
            CAUSE_CLIENT => Some(CancelCause::Client),
            CAUSE_DEADLINE => Some(CancelCause::Deadline),
            _ => None,
        }
    }

    /// Whether `other` is a clone of this token (shares the same flag).
    /// Lets registries holding many tokens retire exactly the one a
    /// finished job registered, even when several jobs share an id.
    #[must_use]
    pub fn same_flag(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.state, &other.state)
    }
}

/// Outcome of a cancellable simulation: the collected statistics plus
/// whether the replay ran to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct CancellableRun {
    /// Statistics collected up to completion or the cancellation point.
    /// Partial when [`CancellableRun::cancelled`] is `true`.
    pub stats: crate::RunStats,
    /// `true` when the token fired and the replay stopped early.
    pub cancelled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.cause(), None);
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.cause(), Some(CancelCause::Client));
        // Idempotent.
        t.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn first_cause_wins() {
        let t = CancelToken::new();
        t.cancel_with(CancelCause::Deadline);
        // A racing client cancel after the deadline fired must not
        // rewrite history: the job timed out.
        t.cancel();
        assert_eq!(t.cause(), Some(CancelCause::Deadline));

        let t = CancelToken::new();
        t.cancel();
        t.cancel_with(CancelCause::Deadline);
        assert_eq!(t.cause(), Some(CancelCause::Client));
    }
}
