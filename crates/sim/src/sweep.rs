//! Parallel sweep runner: fans independent simulation jobs across OS
//! threads with deterministic, input-ordered result collection.
//!
//! The paper's evaluation (Figure 7 and the ablations) sweeps the same
//! trace over many `(containers, scheduler, forecast, bandwidth)`
//! configurations. Each job is a pure function of its [`SimConfig`] and
//! trace, so the sweep parallelises trivially: a shared atomic work-queue
//! index hands jobs to `std::thread::scope` workers, each worker collects
//! `(index, result)` pairs locally, and the results are merged back into
//! input order afterwards. No locks are held while simulating and the
//! output is bit-identical to the sequential loop regardless of thread
//! count or scheduling interleavings.
//!
//! Thread count resolution order:
//!
//! 1. [`SweepRunner::with_threads`] — explicit, for tests and benches;
//! 2. the `RISPP_THREADS` environment variable (clamped to ≥ 1);
//! 3. [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};

use rispp_core::PlanCacheHandle;
use rispp_model::SiLibrary;
use rispp_telemetry::MetricsSnapshot;

use crate::engine::{simulate_observed_planned, SimConfig};
use crate::observer::SimObserver;
use crate::stats::RunStats;
use crate::telemetry::MetricsObserver;
use crate::trace::Trace;

/// Environment variable overriding the sweep worker count.
pub const THREADS_ENV: &str = "RISPP_THREADS";

/// One unit of sweep work: a simulation configuration applied to a trace.
#[derive(Debug, Clone, Copy)]
pub struct SweepJob<'t> {
    /// Simulation parameters.
    pub config: SimConfig,
    /// The trace to replay.
    pub trace: &'t Trace,
}

impl<'t> SweepJob<'t> {
    /// Creates a job.
    #[must_use]
    pub fn new(config: SimConfig, trace: &'t Trace) -> Self {
        SweepJob { config, trace }
    }
}

/// Work-queue runner for embarrassingly parallel sweeps.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
    /// Optional cross-job plan cache: jobs memoise planning decisions into
    /// one shared [`rispp_core::PlanCache`]. Results stay bit-identical at
    /// any thread count — a verified hit replays exactly what the planner
    /// would have produced — sharing only changes how often the planner
    /// actually runs.
    plan_cache: Option<PlanCacheHandle>,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl SweepRunner {
    /// Creates a runner with the worker count resolved from
    /// [`THREADS_ENV`], falling back to the machine's available
    /// parallelism. Unparseable or zero values of the variable are
    /// ignored/clamped to 1.
    #[must_use]
    pub fn from_env() -> Self {
        let threads = match std::env::var(THREADS_ENV) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) => n.max(1),
                Err(_) => Self::machine_parallelism(),
            },
            Err(_) => Self::machine_parallelism(),
        };
        SweepRunner {
            threads,
            plan_cache: None,
        }
    }

    /// Creates a runner with an explicit worker count (clamped to ≥ 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
            plan_cache: None,
        }
    }

    /// Attaches a cross-job plan cache (builder style): every job of this
    /// runner memoises into `handle`'s cache instead of a private per-run
    /// one. Jobs whose [`SimConfig::plan_cache`] is off ignore it.
    #[must_use]
    pub fn with_plan_cache(mut self, handle: PlanCacheHandle) -> Self {
        self.plan_cache = Some(handle);
        self
    }

    /// The cross-job plan cache, if one was attached.
    #[must_use]
    pub fn plan_cache(&self) -> Option<&PlanCacheHandle> {
        self.plan_cache.as_ref()
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn machine_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Runs `f(0..count)` across the workers and returns the results in
    /// index order. `f` must be a pure function of its index — the runner
    /// guarantees every index is evaluated exactly once, but on an
    /// unspecified worker.
    pub fn run_map<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(count.max(1));
        if workers <= 1 {
            return (0..count).map(f).collect();
        }

        let next = AtomicUsize::new(0);
        let mut collected: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= count {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });

        // Merge the per-worker batches back into input order.
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        for batch in &mut collected {
            for (i, result) in batch.drain(..) {
                debug_assert!(slots[i].is_none(), "index {i} produced twice");
                slots[i] = Some(result);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index evaluated"))
            .collect()
    }

    /// Simulates every job against `library`, in parallel, returning the
    /// statistics in job order.
    ///
    /// # Panics
    ///
    /// Panics if a trace references SIs outside `library` (propagated from
    /// [`simulate`](crate::simulate)).
    #[must_use]
    pub fn run(&self, library: &SiLibrary, jobs: &[SweepJob<'_>]) -> Vec<RunStats> {
        self.run_map(jobs.len(), |i| {
            let job = &jobs[i];
            simulate_observed_planned(
                library,
                job.trace,
                &job.config,
                self.plan_cache.as_ref(),
                &mut [],
            )
            .0
        })
    }

    /// Like [`SweepRunner::run`], but attaches per-job observers built by
    /// `observers(job_index)` — e.g. a fresh
    /// [`ProgressObserver`](crate::ProgressObserver) per job sharing one
    /// atomic counter across the sweep.
    ///
    /// The factory is invoked on the worker that executes the job; the
    /// boxes it returns live and die on that worker, so the observers
    /// themselves need not be `Send`. The [`RunStats`] results are
    /// unaffected by observers and remain bit-identical to
    /// [`SweepRunner::run`] at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if a trace references SIs outside `library` (propagated from
    /// [`simulate`](crate::simulate)).
    #[must_use]
    pub fn run_observed<'s, F>(
        &self,
        library: &SiLibrary,
        jobs: &[SweepJob<'_>],
        observers: F,
    ) -> Vec<RunStats>
    where
        F: Fn(usize) -> Vec<Box<dyn SimObserver + 's>> + Sync,
    {
        self.run_map(jobs.len(), |i| {
            let job = &jobs[i];
            let mut boxes = observers(i);
            let mut extra: Vec<&mut (dyn SimObserver + 's)> =
                boxes.iter_mut().map(|b| b.as_mut()).collect();
            simulate_observed_planned(
                library,
                job.trace,
                &job.config,
                self.plan_cache.as_ref(),
                &mut extra,
            )
            .0
        })
    }

    /// Like [`SweepRunner::run`], but attaches a fresh
    /// [`MetricsObserver`] to every job and returns the per-job snapshots
    /// merged into one. Jobs collect independently and the fold happens in
    /// job order after the sweep (and snapshot merging is associative and
    /// commutative besides), so the merged snapshot is bit-identical at
    /// any thread count.
    ///
    /// # Panics
    ///
    /// Panics if a trace references SIs outside `library` (propagated from
    /// [`simulate`](crate::simulate)).
    #[must_use]
    pub fn run_metered(
        &self,
        library: &SiLibrary,
        jobs: &[SweepJob<'_>],
    ) -> (Vec<RunStats>, MetricsSnapshot) {
        let pairs = self.run_map(jobs.len(), |i| {
            let job = &jobs[i];
            let mut metrics = MetricsObserver::new();
            let (stats, plan) = {
                let mut extra: [&mut dyn SimObserver; 1] = [&mut metrics];
                simulate_observed_planned(
                    library,
                    job.trace,
                    &job.config,
                    self.plan_cache.as_ref(),
                    &mut extra,
                )
            };
            metrics.record_plan_cache(&plan);
            (stats, metrics.into_snapshot())
        });
        let mut merged = MetricsSnapshot::default();
        let mut stats = Vec::with_capacity(pairs.len());
        for (s, snapshot) in pairs {
            merged.merge(&snapshot);
            stats.push(s);
        }
        (stats, merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(SweepRunner::with_threads(0).threads(), 1);
        assert_eq!(SweepRunner::with_threads(7).threads(), 7);
    }

    #[test]
    fn run_map_preserves_input_order() {
        for threads in [1, 2, 8] {
            let runner = SweepRunner::with_threads(threads);
            let out = runner.run_map(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_map_handles_empty_and_tiny_inputs() {
        let runner = SweepRunner::with_threads(8);
        assert!(runner.run_map(0, |i| i).is_empty());
        assert_eq!(runner.run_map(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let runner = SweepRunner::with_threads(64);
        assert_eq!(runner.run_map(3, |i| i), vec![0, 1, 2]);
    }
}
