//! Causal trace context: one identity that joins wire-level request
//! handling to cycle-domain engine events.
//!
//! A [`TraceContext`] is minted once per admitted request (in
//! `rispp-serve`) and carried through
//! [`SimConfig`](crate::SimConfig::with_trace) into the engine, which
//! hands it to every attached [`SimObserver`](crate::SimObserver) before
//! replay begins. Observers that export data — the JSONL event log, the
//! metrics registry, the Perfetto trace, the flight recorder — stamp
//! their output with the context, so one id links a serve-side latency
//! sample to the exact scheduler decisions and fabric loads behind it.
//!
//! The context is deliberately tiny and `Copy`: carrying it must never
//! allocate, and `SimConfig` stays `Copy + Eq`. It is *identity only* —
//! it must never influence simulation behaviour, so two runs that differ
//! only in context are bit-identical by construction.

/// Identity of one simulation run: request id, tenant and retry attempt.
///
/// Minted at admission, carried through
/// [`SimConfig`](crate::SimConfig::with_trace) and stamped onto every
/// exporting observer's output. The default context (`trace_id` 0,
/// tenant 0, attempt 0) is valid but normally replaced by the minting
/// side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Request/job id minted at admission, unique within one server
    /// lifetime (a monotonically increasing counter, not random).
    pub trace_id: u64,
    /// Tenant (application) the run is attributed to; 0 for single-tenant
    /// deployments.
    pub tenant: u16,
    /// 1-based retry attempt of the job this run belongs to (0 when the
    /// caller does not retry).
    pub attempt: u32,
}

impl TraceContext {
    /// Creates a context for `trace_id` with tenant 0 and attempt 0.
    #[must_use]
    pub fn new(trace_id: u64) -> Self {
        TraceContext {
            trace_id,
            ..TraceContext::default()
        }
    }

    /// Sets the tenant (builder style).
    #[must_use]
    pub fn with_tenant(mut self, tenant: u16) -> Self {
        self.tenant = tenant;
        self
    }

    /// Sets the retry attempt (builder style).
    #[must_use]
    pub fn with_attempt(mut self, attempt: u32) -> Self {
        self.attempt = attempt;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_all_fields() {
        let ctx = TraceContext::new(42).with_tenant(3).with_attempt(2);
        assert_eq!(ctx.trace_id, 42);
        assert_eq!(ctx.tenant, 3);
        assert_eq!(ctx.attempt, 2);
        assert_ne!(ctx, TraceContext::default());
    }
}
