use rispp_model::SiId;
use rispp_monitor::HotSpotId;

/// A run of back-to-back executions of one SI, each followed by `overhead`
/// cycles of base-processor work (loop control, address generation, memory
/// traffic outside the SI itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// The Special Instruction executed.
    pub si: SiId,
    /// Number of executions.
    pub count: u32,
    /// Base-processor cycles between consecutive executions.
    pub overhead: u32,
}

/// One execution of a hot spot: prologue cycles of plain base-processor
/// code, then the SI bursts in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// Which hot spot this is (hot spots repeat across frames).
    pub hot_spot: HotSpotId,
    /// Base-processor cycles before the first SI burst.
    pub prologue_cycles: u64,
    /// The SI executions of this invocation, in order.
    pub bursts: Vec<Burst>,
    /// Design-time estimates of SI executions for this hot spot, used to
    /// seed the run-time system on the *first* encounter (afterwards the
    /// online monitor takes over).
    pub hints: Vec<(SiId, u64)>,
}

impl Invocation {
    /// Total SI executions in this invocation.
    #[must_use]
    pub fn si_executions(&self) -> u64 {
        self.bursts.iter().map(|b| u64::from(b.count)).sum()
    }

    /// Measured executions per SI, as `(si, count)` pairs in SI order.
    #[must_use]
    pub fn execution_profile(&self) -> Vec<(SiId, u64)> {
        let mut map = std::collections::BTreeMap::new();
        for b in &self.bursts {
            *map.entry(b.si).or_insert(0u64) += u64::from(b.count);
        }
        map.into_iter().collect()
    }
}

/// A workload trace: the hot-spot invocations of an application run, e.g.
/// the ME → EE → LF migration of the H.264 encoder, repeated per frame.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    invocations: Vec<Invocation>,
}

impl Trace {
    /// Creates a trace from explicit invocations.
    #[must_use]
    pub fn from_invocations(invocations: Vec<Invocation>) -> Self {
        Trace { invocations }
    }

    /// The hot-spot invocations in execution order.
    #[must_use]
    pub fn invocations(&self) -> &[Invocation] {
        &self.invocations
    }

    /// Number of invocations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }

    /// Appends an invocation.
    pub fn push(&mut self, invocation: Invocation) {
        self.invocations.push(invocation);
    }

    /// Total SI executions across the whole trace.
    #[must_use]
    pub fn total_si_executions(&self) -> u64 {
        self.invocations.iter().map(Invocation::si_executions).sum()
    }

    /// Keeps only the first `n` invocations (for truncated experiments).
    #[must_use]
    pub fn truncated(&self, n: usize) -> Trace {
        Trace {
            invocations: self.invocations.iter().take(n).cloned().collect(),
        }
    }

    /// Keeps only invocations of the given hot spot (e.g. Figure 2 studies
    /// the ME hot spot in isolation).
    #[must_use]
    pub fn filtered(&self, hot_spot: HotSpotId) -> Trace {
        Trace {
            invocations: self
                .invocations
                .iter()
                .filter(|inv| inv.hot_spot == hot_spot)
                .cloned()
                .collect(),
        }
    }
}

impl FromIterator<Invocation> for Trace {
    fn from_iter<I: IntoIterator<Item = Invocation>>(iter: I) -> Self {
        Trace {
            invocations: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_invocations(vec![
            Invocation {
                hot_spot: HotSpotId(0),
                prologue_cycles: 10,
                bursts: vec![
                    Burst {
                        si: SiId(0),
                        count: 5,
                        overhead: 2,
                    },
                    Burst {
                        si: SiId(1),
                        count: 7,
                        overhead: 2,
                    },
                    Burst {
                        si: SiId(0),
                        count: 3,
                        overhead: 2,
                    },
                ],
                hints: vec![(SiId(0), 8), (SiId(1), 7)],
            },
            Invocation {
                hot_spot: HotSpotId(1),
                prologue_cycles: 10,
                bursts: vec![Burst {
                    si: SiId(2),
                    count: 4,
                    overhead: 1,
                }],
                hints: vec![(SiId(2), 4)],
            },
        ])
    }

    #[test]
    fn execution_counts() {
        let t = sample();
        assert_eq!(t.total_si_executions(), 19);
        assert_eq!(t.invocations()[0].si_executions(), 15);
        assert_eq!(
            t.invocations()[0].execution_profile(),
            vec![(SiId(0), 8), (SiId(1), 7)]
        );
    }

    #[test]
    fn truncation_and_filtering() {
        let t = sample();
        assert_eq!(t.truncated(1).len(), 1);
        assert_eq!(t.filtered(HotSpotId(1)).len(), 1);
        assert_eq!(t.filtered(HotSpotId(9)).len(), 0);
        assert!(!t.is_empty());
        assert!(Trace::default().is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trace = sample().invocations().to_vec().into_iter().collect();
        assert_eq!(t.len(), 2);
    }
}
