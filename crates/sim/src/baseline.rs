//! Molen/OneChip-like baseline: a state-of-the-art reconfigurable system
//! with a **single, monolithic implementation per SI** (paper Section 5).
//!
//! Differences from RISPP, following the paper's comparison setup:
//!
//! * one fixed Molecule per SI ("the same hardware accelerators are
//!   provided to Molen"), chosen at design time from design-time profiles;
//! * no partial upgrades: an SI traps to software until its accelerator is
//!   **completely** reconfigured;
//! * no Atom sharing: each accelerator occupies as many container slots as
//!   its Molecule has Atoms, exclusively;
//! * the reconfiguration sequence is fixed (importance order), issued on
//!   each hot-spot switch for the accelerators that are not resident.

use std::collections::HashMap;

use rispp_core::{BurstSegment, SelectedMolecule};
use rispp_fabric::ReconfigPortConfig;
use rispp_model::{SiId, SiLibrary};
use rispp_monitor::HotSpotId;

#[derive(Debug, Clone, Copy)]
struct Resident {
    variant_index: usize,
    slots: u32,
    ready_at: u64,
    last_used: u64,
}

/// The Molen-like baseline execution system.
#[derive(Debug)]
pub struct MolenSystem<'a> {
    library: &'a SiLibrary,
    containers: u16,
    port: ReconfigPortConfig,
    design: HashMap<HotSpotId, Vec<SelectedMolecule>>,
    resident: Vec<Option<Resident>>,
    port_busy_until: u64,
    loads: u64,
    load_cycles: u64,
    retain_across_hot_spots: bool,
}

impl<'a> MolenSystem<'a> {
    /// Creates a baseline system with `containers` reconfigurable slots
    /// (one slot holds one Atom-sized hardware unit, so a Molecule with
    /// `k` Atoms occupies `k` slots).
    #[must_use]
    pub fn new(library: &'a SiLibrary, containers: u16) -> Self {
        MolenSystem {
            library,
            containers,
            port: ReconfigPortConfig::prototype(),
            design: HashMap::new(),
            resident: vec![None; library.len()],
            port_busy_until: 0,
            loads: 0,
            load_cycles: 0,
            retain_across_hot_spots: true,
        }
    }

    /// Creates a OneChip-like variant of the baseline: the reconfigurable
    /// functional unit is flushed on every hot-spot switch (single
    /// configuration context), so accelerators never survive across hot
    /// spots even when they would fit.
    #[must_use]
    pub fn one_chip(library: &'a SiLibrary, containers: u16) -> Self {
        MolenSystem {
            retain_across_hot_spots: false,
            ..MolenSystem::new(library, containers)
        }
    }

    /// Completed accelerator loads and the cycles spent reconfiguring.
    #[must_use]
    pub fn reconfiguration_stats(&self) -> (u64, u64) {
        (self.loads, self.load_cycles)
    }

    /// Display label: `"Molen"`, or `"OneChip"` for the flush-on-switch
    /// variant.
    #[must_use]
    pub fn label(&self) -> &'static str {
        if self.retain_across_hot_spots {
            "Molen"
        } else {
            "OneChip"
        }
    }

    fn used_slots(&self) -> u32 {
        self.resident.iter().flatten().map(|r| r.slots).sum()
    }

    fn accelerator_load_cycles(&self, sel: SelectedMolecule) -> u64 {
        let atoms = &self.library.si(sel.si).expect("validated").variants()[sel.variant_index].atoms;
        let universe = self.library.universe();
        let mut cycles = 0u64;
        for (idx, &count) in atoms.counts().iter().enumerate() {
            let bytes = universe
                .info(rispp_model::AtomTypeId(idx as u16))
                .map(|i| i.bitstream_bytes)
                .unwrap_or(0);
            let per_load = self
                .port
                .load_cycles(bytes)
                .expect("prototype port bandwidth is positive");
            cycles += u64::from(count) * per_load;
        }
        cycles
    }

    /// Enters a hot spot: fixes the design-time accelerator set on first
    /// encounter, evicts non-needed residents and enqueues the missing
    /// accelerators through the serial reconfiguration port.
    pub fn enter_hot_spot(&mut self, hot_spot: HotSpotId, hints: &[(SiId, u64)], now: u64) {
        if !self.retain_across_hot_spots {
            // OneChip-like single configuration context: switching hot
            // spots flushes the RFU.
            self.resident.fill(None);
        }
        let library = self.library;
        let containers = self.containers;
        // `SelectedMolecule` is `Copy`, so the importance order and the
        // needed-SI list below end the borrow of `self.design` before the
        // resident table is mutated — no clone of the design set.
        let design = self
            .design
            .entry(hot_spot)
            .or_insert_with(|| molen_select(library, hints, containers));

        // Importance order for the fixed reconfiguration sequence.
        let mut order: Vec<(u64, SelectedMolecule)> = design
            .iter()
            .map(|&sel| {
                let si = library.si(sel.si).expect("validated");
                let lat = si.variants()[sel.variant_index].latency;
                let expected = hints
                    .iter()
                    .find(|&&(id, _)| id == sel.si)
                    .map(|&(_, e)| e)
                    .unwrap_or(0);
                (
                    expected * u64::from(si.software_latency().saturating_sub(lat)),
                    sel,
                )
            })
            .collect();
        order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.si.cmp(&b.1.si)));

        let needed: Vec<SiId> = design.iter().map(|s| s.si).collect();
        let mut port_free = self.port_busy_until.max(now);
        for (_, sel) in order {
            let slots = self.library.si(sel.si).expect("validated").variants()[sel.variant_index]
                .atoms
                .total_atoms();
            match self.resident[sel.si.index()] {
                Some(r) if r.variant_index == sel.variant_index => continue,
                _ => {}
            }
            // Evict LRU residents that the current hot spot does not need.
            while self.used_slots() + slots > u32::from(self.containers) {
                let victim = self
                    .resident
                    .iter()
                    .enumerate()
                    .filter(|(i, r)| {
                        r.is_some() && !needed.contains(&SiId(*i as u16))
                    })
                    .min_by_key(|(_, r)| r.map(|r| r.last_used).unwrap_or(0))
                    .map(|(i, _)| i);
                match victim {
                    Some(i) => self.resident[i] = None,
                    None => break,
                }
            }
            if self.used_slots() + slots > u32::from(self.containers) {
                // Does not fit even after evictions: this SI stays software.
                continue;
            }
            let cycles = self.accelerator_load_cycles(sel);
            let ready_at = port_free + cycles;
            port_free = ready_at;
            self.loads += 1;
            self.load_cycles += cycles;
            self.resident[sel.si.index()] = Some(Resident {
                variant_index: sel.variant_index,
                slots,
                ready_at,
                last_used: now,
            });
        }
        self.port_busy_until = port_free;
    }

    /// Executes a burst of `count` executions of `si` starting at `start`,
    /// each followed by `overhead` base-processor cycles. Latency switches
    /// from software to the accelerator exactly when the accelerator's
    /// reconfiguration completes (no intermediate steps).
    #[must_use]
    pub fn execute_burst(
        &mut self,
        si: SiId,
        count: u32,
        overhead: u32,
        start: u64,
    ) -> Vec<BurstSegment> {
        let mut segments = Vec::new();
        self.execute_burst_into(si, count, overhead, start, &mut segments);
        segments
    }

    /// Buffer-reusing variant of [`MolenSystem::execute_burst`]: clears
    /// `segments` and writes the burst's segments into it.
    pub fn execute_burst_into(
        &mut self,
        si: SiId,
        count: u32,
        overhead: u32,
        start: u64,
        segments: &mut Vec<BurstSegment>,
    ) {
        segments.clear();
        let def = self.library.si(si).expect("si within library");
        let software = def.software_latency();
        let mut t = start;
        let mut remaining = u64::from(count);
        while remaining > 0 {
            let (latency, variant_index, next_change) = match self.resident[si.index()] {
                Some(r) if r.ready_at <= t => {
                    let lat = def.variants()[r.variant_index].latency.min(software);
                    (lat, Some(r.variant_index), None)
                }
                Some(r) => (software, None, Some(r.ready_at)),
                None => (software, None, None),
            };
            let per = u64::from(latency) + u64::from(overhead);
            let n = match next_change {
                Some(event) if event > t => (event - t).div_ceil(per).min(remaining),
                _ => remaining,
            };
            segments.push(match variant_index {
                Some(v) => BurstSegment::hardware(t, n, latency, v),
                None => BurstSegment::software(t, n, latency),
            });
            t += n * per;
            remaining -= n;
        }
        if let Some(r) = &mut self.resident[si.index()] {
            r.last_used = t;
        }
    }

    /// Batched fast path: executes the whole burst as **one unsplit
    /// segment** when no resident-accelerator readiness change falls
    /// inside it, returning the segment, or `None` when the burst would
    /// split across a `ready_at` boundary (the caller then falls back to
    /// [`MolenSystem::execute_burst_into`]). Bit-identical to the
    /// per-burst path for every consumed burst, including the
    /// `last_used` LRU timestamp update.
    pub fn execute_burst_unsplit(
        &mut self,
        si: SiId,
        count: u32,
        overhead: u32,
        start: u64,
    ) -> Option<BurstSegment> {
        let def = self.library.si(si).expect("si within library");
        let software = def.software_latency();
        let (latency, variant_index, next_change) = match self.resident[si.index()] {
            Some(r) if r.ready_at <= start => {
                let lat = def.variants()[r.variant_index].latency.min(software);
                (lat, Some(r.variant_index), None)
            }
            Some(r) => (software, None, Some(r.ready_at)),
            None => (software, None, None),
        };
        let per = u64::from(latency) + u64::from(overhead);
        if let Some(event) = next_change {
            // Same split bound as `execute_burst_into`: unsplit iff the
            // readiness change lands at or past the last execution's start.
            let fits = event > start && (event - start).div_ceil(per) >= u64::from(count);
            if !fits {
                return None;
            }
        }
        let end = start + u64::from(count) * per;
        if let Some(r) = &mut self.resident[si.index()] {
            r.last_used = end;
        }
        Some(match variant_index {
            Some(v) => BurstSegment::hardware(start, u64::from(count), latency, v),
            None => BurstSegment::software(start, u64::from(count), latency),
        })
    }

    /// Leaves the current hot spot (no adaptation: Molen is static).
    pub fn exit_hot_spot(&mut self, _now: u64) {}
}

/// Design-time accelerator selection for the Molen baseline: greedy like
/// RISPP's selector but with **additive** container cost (no Atom sharing):
/// the accelerators of the selected Molecules must fit `Σ|m| ≤ containers`.
#[must_use]
pub fn molen_select(
    library: &SiLibrary,
    demands: &[(SiId, u64)],
    containers: u16,
) -> Vec<SelectedMolecule> {
    let budget = u32::from(containers);
    let mut demands: Vec<(SiId, u64)> = demands
        .iter()
        .copied()
        .filter(|&(si, e)| e > 0 && library.si(si).is_some())
        .collect();
    demands.sort_by(|a, b| {
        let w = |&(si, e): &(SiId, u64)| {
            let def = library.si(si).expect("filtered");
            let best = def
                .variants()
                .iter()
                .map(|v| v.latency)
                .min()
                .unwrap_or(def.software_latency());
            e * u64::from(def.software_latency().saturating_sub(best))
        };
        w(b).cmp(&w(a)).then(a.0.cmp(&b.0))
    });

    let mut selection: Vec<SelectedMolecule> = Vec::new();
    let mut used = 0u32;
    for &(si_id, _) in &demands {
        let def = library.si(si_id).expect("filtered");
        let (idx, v) = def
            .variants()
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| (v.atoms.total_atoms(), v.latency))
            .expect("validated library");
        let size = v.atoms.total_atoms();
        if used + size <= budget {
            selection.push(SelectedMolecule::new(si_id, idx));
            used += size;
        }
    }
    // Upgrade loop on additive cost.
    loop {
        let mut best: Option<(usize, usize, u64, u32)> = None;
        for (i, sel) in selection.iter().enumerate() {
            let def = library.si(sel.si).expect("selected");
            let expected = demands
                .iter()
                .find(|&&(id, _)| id == sel.si)
                .map(|&(_, e)| e)
                .unwrap_or(0);
            let cur = &def.variants()[sel.variant_index];
            for (vi, v) in def.variants().iter().enumerate() {
                if v.latency >= cur.latency {
                    continue;
                }
                let extra = v.atoms.total_atoms().saturating_sub(cur.atoms.total_atoms());
                if used + extra > budget {
                    continue;
                }
                let gain = expected * u64::from(cur.latency - v.latency);
                if gain == 0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, _, bg, bc)) => {
                        gain.saturating_mul(u64::from(bc.max(1)))
                            > bg.saturating_mul(u64::from(extra.max(1)))
                    }
                };
                if better {
                    best = Some((i, vi, gain, extra));
                }
            }
        }
        match best {
            Some((i, vi, _, extra)) => {
                selection[i].variant_index = vi;
                used += extra;
            }
            None => break,
        }
    }
    selection.sort_by_key(|s| s.si);
    selection
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiLibraryBuilder};

    fn library() -> SiLibrary {
        let universe = AtomUniverse::from_types([
            AtomTypeInfo::new("A1"),
            AtomTypeInfo::new("A2"),
        ])
        .unwrap();
        let mut b = SiLibraryBuilder::new(universe);
        b.special_instruction("X", 1000)
            .unwrap()
            .molecule(Molecule::from_counts([1, 0]), 100)
            .unwrap()
            .molecule(Molecule::from_counts([2, 1]), 30)
            .unwrap();
        b.special_instruction("Y", 800)
            .unwrap()
            .molecule(Molecule::from_counts([0, 1]), 90)
            .unwrap()
            .molecule(Molecule::from_counts([1, 2]), 40)
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn molen_select_uses_additive_cost() {
        let lib = library();
        // Budget 2: both smallest (1 atom each) fit additively; no upgrade
        // fits (each upgrade needs +2).
        let sel = molen_select(&lib, &[(SiId(0), 100), (SiId(1), 100)], 2);
        assert_eq!(sel.len(), 2);
        assert!(sel.iter().all(|s| s.variant_index == 0));
        // Budget 6: both full accelerators (3 atoms each).
        let sel = molen_select(&lib, &[(SiId(0), 100), (SiId(1), 100)], 6);
        assert!(sel.iter().all(|s| s.variant_index == 1));
    }

    #[test]
    fn si_runs_software_until_accelerator_complete() {
        let lib = library();
        let mut molen = MolenSystem::new(&lib, 6);
        molen.enter_hot_spot(HotSpotId(0), &[(SiId(0), 1000)], 0);
        // Accelerator is (2,1): 3 atoms ≈ 3·87.6K ≈ 263K cycles; 500
        // software executions would take 505K cycles, so the accelerator
        // arrives mid-burst: first segment software, last hardware @30.
        let segs = molen.execute_burst(SiId(0), 500, 10, 0);
        assert!(segs.len() >= 2);
        assert_eq!(segs[0].latency, 1000);
        assert!(!segs[0].is_hardware());
        let last = segs.last().unwrap();
        assert_eq!(last.latency, 30);
        assert!(last.is_hardware());
        // No intermediate latencies: Molen has no gradual upgrade.
        for s in &segs {
            assert!(s.latency == 1000 || s.latency == 30, "{segs:?}");
        }
    }

    #[test]
    fn resident_accelerator_survives_hot_spot_switch_when_space_allows() {
        let lib = library();
        let mut molen = MolenSystem::new(&lib, 6);
        molen.enter_hot_spot(HotSpotId(0), &[(SiId(0), 1000)], 0);
        let _ = molen.execute_burst(SiId(0), 100, 10, 0);
        let (loads_after_first, _) = molen.reconfiguration_stats();
        // Switch to hot spot 1 (SI Y) and back; X (3 slots) + Y (3 slots)
        // both fit in 6 slots, so no reload of X on return.
        molen.enter_hot_spot(HotSpotId(1), &[(SiId(1), 1000)], 1_000_000);
        molen.enter_hot_spot(HotSpotId(0), &[(SiId(0), 1000)], 2_000_000);
        let (loads_final, _) = molen.reconfiguration_stats();
        assert_eq!(loads_final, loads_after_first + 1);
    }

    #[test]
    fn thrashing_when_accelerators_do_not_fit_together() {
        let lib = library();
        let mut molen = MolenSystem::new(&lib, 3);
        molen.enter_hot_spot(HotSpotId(0), &[(SiId(0), 1000)], 0);
        molen.enter_hot_spot(HotSpotId(1), &[(SiId(1), 1000)], 1_000_000);
        molen.enter_hot_spot(HotSpotId(0), &[(SiId(0), 1000)], 2_000_000);
        let (loads, _) = molen.reconfiguration_stats();
        // X, then Y evicts X, then X again: 3 accelerator loads.
        assert_eq!(loads, 3);
    }

    #[test]
    fn one_chip_flushes_on_every_switch() {
        let lib = library();
        let mut oc = MolenSystem::one_chip(&lib, 6);
        oc.enter_hot_spot(HotSpotId(0), &[(SiId(0), 1000)], 0);
        oc.enter_hot_spot(HotSpotId(1), &[(SiId(1), 1000)], 1_000_000);
        oc.enter_hot_spot(HotSpotId(0), &[(SiId(0), 1000)], 2_000_000);
        // Unlike Molen with 6 slots (which keeps both), OneChip reloads X.
        let (loads, _) = oc.reconfiguration_stats();
        assert_eq!(loads, 3);
    }

    #[test]
    fn zero_budget_runs_everything_in_software() {
        let lib = library();
        let mut molen = MolenSystem::new(&lib, 0);
        molen.enter_hot_spot(HotSpotId(0), &[(SiId(0), 10)], 0);
        let segs = molen.execute_burst(SiId(0), 10, 0, 0);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].latency, 1000);
    }
}
