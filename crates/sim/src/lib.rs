//! Cycle-level trace-driven execution engine for RISPP and its baselines.
//!
//! The engine replays a [`Trace`] — a sequence of hot-spot invocations,
//! each consisting of bursts of Special Instruction executions interleaved
//! with base-processor overhead — against any [`ExecutionSystem`]. The
//! built-in backends are:
//!
//! * [`RisppBackend`] ([`SystemKind::Rispp`]) — the full RISPP run-time
//!   system ([`rispp_core::RunTimeManager`]) with one of the four
//!   schedulers, gradual Molecule upgrades and cross-SI Atom sharing.
//! * [`MolenSystem`] ([`SystemKind::Molen`] / [`SystemKind::OneChip`]) — a
//!   Molen/OneChip-like state-of-the-art reconfigurable system (paper
//!   Section 5, Table 2): a single monolithic implementation per SI, no
//!   partial upgrades and no Atom sharing, with reconfiguration on
//!   hot-spot switches.
//! * [`SoftwareBackend`] ([`SystemKind::SoftwareOnly`]) — pure
//!   base-processor execution, the paper's 0-AC reference point.
//!
//! The replay loop itself is stats-free: it emits typed [`SimEvent`]s to
//! any set of [`SimObserver`]s. [`RunStats`] — total cycles, per-SI
//! execution counts, per-100K-cycle execution-frequency buckets (the bars
//! of paper Figures 2 and 8) and per-SI latency timelines (the lines of
//! Figure 8) — is one such observer; [`TraceLogObserver`] (JSONL event
//! logs) and [`ProgressObserver`] (sweep progress) are others. Custom
//! backends and observers plug into [`simulate_with`] without touching the
//! engine.
//!
//! # Examples
//!
//! ```
//! use rispp_sim::{simulate, Burst, Invocation, SimConfig, SystemKind, Trace};
//! use rispp_core::SchedulerKind;
//! use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibraryBuilder};
//! use rispp_monitor::HotSpotId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let universe = AtomUniverse::from_types([AtomTypeInfo::new("SAV")])?;
//! let mut b = SiLibraryBuilder::new(universe);
//! b.special_instruction("SAD", 680)?.molecule(Molecule::from_counts([1]), 20)?;
//! let library = b.build()?;
//!
//! let trace = Trace::from_invocations(vec![Invocation {
//!     hot_spot: HotSpotId(0),
//!     prologue_cycles: 100,
//!     bursts: vec![Burst { si: SiId(0), count: 1_000, overhead: 20 }],
//!     hints: vec![(SiId(0), 1_000)],
//! }]);
//! let stats = simulate(&library, &trace, &SimConfig::rispp(4, SchedulerKind::Hef));
//! assert!(stats.total_cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod baseline;
mod cancel;
mod context;
mod engine;
pub mod export;
mod flight;
mod multi;
mod observer;
mod stats;
mod sweep;
mod telemetry;
mod trace;

pub use backend::{ExecutionSystem, RisppBackend, SoftwareBackend};
pub use baseline::{molen_select, MolenSystem};
pub use cancel::{CancelCause, CancelToken, CancellableRun};
pub use context::TraceContext;
pub use flight::{FlightRecorder, FlightRecorderConfig};
pub use engine::{
    simulate, simulate_cancellable, simulate_cancellable_shared, simulate_observed,
    simulate_observed_cancellable, simulate_observed_cancellable_shared,
    simulate_observed_planned, simulate_with, simulate_with_cancellable, FaultConfig, SimConfig,
    SystemKind,
};
pub use multi::{
    simulate_multi, simulate_multi_observed, MultiRunStats, TenancyConfig, TenantArbitration,
    TenantHandle, TenantPolicy,
};
pub use observer::{
    HotSpotOrigin, ProgressObserver, SimEvent, SimObserver, TraceLogObserver,
};
pub use stats::{LatencyEvent, RunStats, DEFAULT_BUCKET_CYCLES};
pub use sweep::{SweepJob, SweepRunner, THREADS_ENV};
pub use telemetry::{DetectorObserver, MetricsObserver, NullRecorder, PerfettoTraceObserver};
pub use trace::{Burst, Invocation, Trace};
