//! Cycle-level trace-driven execution engine for RISPP and its baselines.
//!
//! The engine replays a [`Trace`] — a sequence of hot-spot invocations,
//! each consisting of bursts of Special Instruction executions interleaved
//! with base-processor overhead — against an *execution system*:
//!
//! * [`SystemKind::Rispp`] — the full RISPP run-time system
//!   ([`rispp_core::RunTimeManager`]) with one of the four schedulers,
//!   gradual Molecule upgrades and cross-SI Atom sharing.
//! * [`SystemKind::Molen`] — a Molen/OneChip-like state-of-the-art
//!   reconfigurable system (paper Section 5, Table 2): a single monolithic
//!   implementation per SI, no partial upgrades and no Atom sharing, with
//!   reconfiguration on hot-spot switches.
//!
//! The result is a [`RunStats`]: total cycles, per-SI execution counts,
//! per-100K-cycle execution-frequency buckets (the bars of paper Figures 2
//! and 8) and per-SI latency timelines (the lines of Figure 8).
//!
//! # Examples
//!
//! ```
//! use rispp_sim::{simulate, Burst, Invocation, SimConfig, SystemKind, Trace};
//! use rispp_core::SchedulerKind;
//! use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibraryBuilder};
//! use rispp_monitor::HotSpotId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let universe = AtomUniverse::from_types([AtomTypeInfo::new("SAV")])?;
//! let mut b = SiLibraryBuilder::new(universe);
//! b.special_instruction("SAD", 680)?.molecule(Molecule::from_counts([1]), 20)?;
//! let library = b.build()?;
//!
//! let trace = Trace::from_invocations(vec![Invocation {
//!     hot_spot: HotSpotId(0),
//!     prologue_cycles: 100,
//!     bursts: vec![Burst { si: SiId(0), count: 1_000, overhead: 20 }],
//!     hints: vec![(SiId(0), 1_000)],
//! }]);
//! let stats = simulate(&library, &trace, &SimConfig::rispp(4, SchedulerKind::Hef));
//! assert!(stats.total_cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod engine;
pub mod export;
mod stats;
mod sweep;
mod trace;

pub use baseline::{molen_select, MolenSystem};
pub use engine::{simulate, SimConfig, SystemKind};
pub use stats::{LatencyEvent, RunStats, DEFAULT_BUCKET_CYCLES};
pub use sweep::{SweepJob, SweepRunner, THREADS_ENV};
pub use trace::{Burst, Invocation, Trace};
