//! Flight recorder: a bounded ring-buffer observer retaining the causal
//! tail of a run for post-mortem forensics.
//!
//! A [`FlightRecorder`] sits on the engine's event stream like any other
//! [`SimObserver`] but keeps only the *last* N events (plus the last K
//! scheduler decisions and fabric-journal entries) in fixed-capacity
//! rings. It is designed to be always-on in the job server: steady-state
//! recording performs **no allocation** for any event the engine emits in
//! a default run — every retained variant holds only `Copy` payloads, the
//! rings are allocated once up front and slots are overwritten in place.
//! (Retaining a [`SimEvent::Decision`] clones its boxed payload, which
//! allocates; decisions only flow when `--explain` is on, an explicitly
//! non-hot path.)
//!
//! When a job dies — panic, deadline timeout, retry exhaustion,
//! poison-listing — the server calls [`FlightRecorder::dump`] to render
//! the retained tail as a self-describing diagnostic bundle
//! ([`rispp_telemetry::bundle`]). The event rows of the bundle are
//! written through the *same* serialiser as `--log-events`
//! ([`crate::export::write_event_jsonl_traced`]), so the bundle's tail is
//! bit-identical to the suffix of a full event log recorded with the same
//! trace context — forensics and logs never disagree.

use std::fmt;

use rispp_core::DecisionExplain;
use rispp_fabric::FabricJournalEntry;
use rispp_telemetry::bundle::{
    write_bundle_header, write_end_line, write_explain_line, write_journal_line,
    write_perfetto_line, BundleMeta,
};
use rispp_telemetry::TraceBuilder;

use crate::context::TraceContext;
use crate::export;
use crate::observer::{SimEvent, SimObserver};

/// Ring capacities of a [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecorderConfig {
    /// Events retained in the main ring (default 256). A capacity of 0
    /// retains nothing and counts every event as dropped.
    pub event_capacity: usize,
    /// Scheduler decisions retained (default 16; only populated when the
    /// run emits [`SimEvent::Decision`], i.e. explain is on).
    pub decision_capacity: usize,
    /// Fabric-journal entries retained (default 64; only populated when
    /// the run emits [`SimEvent::ContainerTransition`], i.e. the journal
    /// is on).
    pub journal_capacity: usize,
}

impl Default for FlightRecorderConfig {
    fn default() -> Self {
        FlightRecorderConfig {
            event_capacity: 256,
            decision_capacity: 16,
            journal_capacity: 64,
        }
    }
}

/// One fixed-capacity overwrite-oldest ring. Slots are allocated up
/// front; a push beyond capacity overwrites the oldest slot in place and
/// bumps the dropped counter.
#[derive(Debug)]
struct Ring<T> {
    slots: Vec<T>,
    /// Index of the oldest retained element once the ring is full.
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    fn new(capacity: usize) -> Self {
        Ring {
            slots: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    fn push(&mut self, value: T) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.push(value);
        } else {
            self.dropped += 1;
            self.slots[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Retained elements, oldest first.
    fn iter(&self) -> impl Iterator<Item = &T> {
        let (newer, older) = self.slots.split_at(self.head.min(self.slots.len()));
        older.iter().chain(newer.iter())
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

/// Bounded ring-buffer observer retaining the tail of a run for
/// post-mortem bundles.
///
/// Three fixed-capacity rings — every event, the last decision
/// explains, the last fabric-journal entries — overwrite their oldest
/// entry when full and count what fell off. Steady state is alloc-free
/// (the rings are allocated once at construction); only boxed
/// [`SimEvent::Decision`] payloads clone on capture, and those only
/// exist when explain mode is on. [`FlightRecorder::dump`] spills the
/// retained tail as a self-describing diagnostic bundle.
pub struct FlightRecorder {
    events: Ring<SimEvent>,
    decisions: Ring<DecisionExplain>,
    journal: Ring<FabricJournalEntry>,
    context: Option<TraceContext>,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("events", &self.events.len())
            .field("events_dropped", &self.events.dropped)
            .field("decisions", &self.decisions.len())
            .field("journal", &self.journal.len())
            .field("context", &self.context)
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// Creates a recorder with the default ring capacities.
    #[must_use]
    pub fn new() -> Self {
        FlightRecorder::with_config(FlightRecorderConfig::default())
    }

    /// Creates a recorder with explicit ring capacities. All ring memory
    /// is allocated here; recording never grows it.
    #[must_use]
    pub fn with_config(config: FlightRecorderConfig) -> Self {
        FlightRecorder {
            events: Ring::new(config.event_capacity),
            decisions: Ring::new(config.decision_capacity),
            journal: Ring::new(config.journal_capacity),
            context: None,
        }
    }

    /// Stamps dumped rows with `context` (builder style). The engine also
    /// sets this via [`SimObserver::set_trace_context`] when the driving
    /// [`SimConfig`](crate::SimConfig) carries a context.
    #[must_use]
    pub fn with_context(mut self, context: TraceContext) -> Self {
        self.context = Some(context);
        self
    }

    /// The trace context stamped onto dumped rows, if any.
    #[must_use]
    pub fn context(&self) -> Option<TraceContext> {
        self.context
    }

    /// Retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<&SimEvent> {
        self.events.iter().collect()
    }

    /// Events that fell off the ring (capacity overflow) so far.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.events.dropped
    }

    /// Clears all rings and dropped counters for reuse on the next
    /// attempt of the same job. Capacities (and their allocations) and
    /// the trace context are kept; the server re-stamps the context per
    /// attempt anyway.
    pub fn reset(&mut self) {
        self.events.clear();
        self.decisions.clear();
        self.journal.clear();
    }

    /// Renders the retained event tail as schema-v4 JSONL rows (no schema
    /// header), stamped with the recorder's context. Bit-identical to the
    /// suffix of a `--log-events` file written with the same context.
    #[must_use]
    pub fn event_tail_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.events.iter() {
            export::write_event_jsonl_traced(&mut out, event, self.context.as_ref());
        }
        out
    }

    /// Renders the retained decisions and journal entries as a small
    /// Chrome trace-event fragment (instants on a single "Flight
    /// recorder" track group), loadable in Perfetto on its own.
    fn perfetto_fragment(&self) -> String {
        use std::fmt::Write as _;

        let mut trace = TraceBuilder::new();
        trace.process_name(1, "Flight recorder");
        trace.thread_name(1, 0, "decisions");
        trace.thread_name(1, 1, "fabric journal");
        let mut name = String::new();
        if let Some(ctx) = self.context {
            name.clear();
            let _ = write!(
                name,
                "{{\"trace_id\":{},\"tenant\":{},\"attempt\":{}}}",
                ctx.trace_id, ctx.tenant, ctx.attempt
            );
            trace.instant_with_args(1, 0, "trace context", 0, Some(&name));
        }
        for decision in self.decisions.iter() {
            name.clear();
            let _ = write!(name, "decision");
            if let Some(hs) = decision.hot_spot {
                let _ = write!(name, " (hot spot {})", hs.0);
            }
            trace.instant(1, 0, &name, decision.now);
        }
        for entry in self.journal.iter() {
            let (label, container, at) = match *entry {
                FabricJournalEntry::LoadStarted { container, at, .. } => {
                    ("load started", container, at)
                }
                FabricJournalEntry::LoadFinished { container, at, .. } => {
                    ("load finished", container, at)
                }
                FabricJournalEntry::LoadAborted { container, at, .. } => {
                    ("load aborted", container, at)
                }
                FabricJournalEntry::AtomCorrupted { container, at, .. } => {
                    ("atom corrupted", container, at)
                }
                FabricJournalEntry::ContainerQuarantined { container, at } => {
                    ("quarantined", container, at)
                }
            };
            name.clear();
            let _ = write!(name, "AC{} {label}", container.0);
            trace.instant(1, 1, &name, at);
        }
        trace.finish()
    }

    /// Assembles the retained tail into a self-describing diagnostic
    /// bundle (see [`rispp_telemetry::bundle`] for the format). `reason`
    /// names the failure (`panicked`, `timeout`, `poisoned`, ...);
    /// `config_hash` and the plan-cache counters come from the caller
    /// (the recorder cannot observe them). Identity fields come from the
    /// recorder's trace context (zeros when none was stamped).
    #[must_use]
    pub fn dump(
        &self,
        reason: &str,
        job_id: &str,
        config_hash: u64,
        plan_hits: u64,
        plan_misses: u64,
    ) -> String {
        let ctx = self.context.unwrap_or_default();
        let meta = BundleMeta {
            reason: reason.to_owned(),
            job_id: job_id.to_owned(),
            trace_id: ctx.trace_id,
            tenant: ctx.tenant,
            attempt: ctx.attempt,
            event_schema_version: export::EVENT_LOG_SCHEMA_VERSION,
            config_hash,
            plan_hits,
            plan_misses,
            events_dropped: self.events.dropped,
            decisions_dropped: self.decisions.dropped,
            journal_dropped: self.journal.dropped,
        };
        let mut out = String::new();
        write_bundle_header(&mut out, &meta);
        out.push_str(&self.event_tail_jsonl());
        let mut lines = 1 + self.events.len();
        for decision in self.decisions.iter() {
            write_explain_line(&mut out, decision.now, &decision.summary());
            lines += 1;
        }
        let mut row = String::new();
        for entry in self.journal.iter() {
            row.clear();
            export::write_event_jsonl(&mut row, &SimEvent::ContainerTransition(*entry));
            write_journal_line(&mut out, &row);
            lines += 1;
        }
        write_perfetto_line(&mut out, &self.perfetto_fragment());
        lines += 1;
        write_end_line(&mut out, lines);
        out
    }
}

impl SimObserver for FlightRecorder {
    fn on_event(&mut self, event: &SimEvent) {
        match event {
            SimEvent::Decision(decision) => {
                self.decisions.push(decision.as_ref().clone());
            }
            SimEvent::ContainerTransition(entry) => {
                self.journal.push(*entry);
            }
            _ => {}
        }
        // Every event — including decisions and journal entries — also
        // lands in the main ring, so the dumped tail matches the full
        // event log's suffix exactly.
        self.events.push(event.clone());
    }

    fn set_trace_context(&mut self, context: TraceContext) {
        self.context = Some(context);
    }
}

#[cfg(test)]
mod tests {
    use rispp_core::SchedulerKind;
    use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibraryBuilder};
    use rispp_monitor::HotSpotId;
    use rispp_telemetry::Bundle;

    use super::*;
    use crate::observer::HotSpotOrigin;
    use crate::{
        simulate_observed_planned, Burst, Invocation, SimConfig, Trace, TraceLogObserver,
    };

    fn tiny_run() -> (rispp_model::SiLibrary, Trace) {
        let universe = AtomUniverse::from_types([AtomTypeInfo::new("SAV")]).unwrap();
        let mut b = SiLibraryBuilder::new(universe);
        b.special_instruction("SAD", 680)
            .unwrap()
            .molecule(Molecule::from_counts([1]), 20)
            .unwrap();
        let library = b.build().unwrap();
        let trace = Trace::from_invocations(vec![
            Invocation {
                hot_spot: HotSpotId(0),
                prologue_cycles: 100,
                bursts: vec![Burst {
                    si: SiId(0),
                    count: 500,
                    overhead: 20,
                }],
                hints: vec![(SiId(0), 500)],
            };
            3
        ]);
        (library, trace)
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = Ring::new(3);
        for i in 0..5u32 {
            ring.push(i);
        }
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(ring.dropped, 2);

        let mut zero = Ring::new(0);
        zero.push(1u32);
        assert_eq!(zero.len(), 0);
        assert_eq!(zero.dropped, 1);
    }

    #[test]
    fn bundle_event_tail_is_bit_identical_to_log_suffix() {
        let (library, trace) = tiny_run();
        let ctx = TraceContext::new(31).with_tenant(1).with_attempt(2);
        let config = SimConfig::rispp(4, SchedulerKind::Hef)
            .with_explain(true)
            .with_journal(true)
            .with_trace(ctx);

        let mut log = TraceLogObserver::new();
        let mut recorder = FlightRecorder::with_config(FlightRecorderConfig {
            event_capacity: 8,
            decision_capacity: 4,
            journal_capacity: 8,
        });
        {
            let mut extra: Vec<&mut (dyn SimObserver + '_)> = vec![&mut log, &mut recorder];
            let _ = simulate_observed_planned(&library, &trace, &config, None, &mut extra);
        }
        // The engine stamped both observers from the config.
        assert_eq!(log.context(), Some(ctx));
        assert_eq!(recorder.context(), Some(ctx));
        assert!(recorder.events_dropped() > 0, "tiny ring must overflow");

        let text = recorder.dump("timeout", "job-1", 0xABCD, 3, 1);
        let bundle = Bundle::parse(&text).expect("recorder output parses");
        assert!(bundle.complete);
        assert_eq!(bundle.meta.trace_id, 31);
        assert_eq!(bundle.meta.tenant, 1);
        assert_eq!(bundle.meta.attempt, 2);
        assert_eq!(bundle.meta.event_schema_version, export::EVENT_LOG_SCHEMA_VERSION);
        assert_eq!(bundle.meta.config_hash, 0xABCD);
        assert_eq!(bundle.meta.events_dropped, recorder.events_dropped());
        assert!(!bundle.explains.is_empty(), "explain run retains decisions");
        assert!(!bundle.journal.is_empty(), "journal run retains transitions");
        assert!(bundle.perfetto.is_some());

        // The core guarantee: the bundle's event rows are the last N lines
        // of the full event log, byte for byte (minus the schema header).
        let full = log.to_jsonl();
        let rows: Vec<&str> = full.lines().skip(1).collect();
        let tail = &rows[rows.len() - bundle.event_lines.len()..];
        assert_eq!(bundle.event_lines, tail);
    }

    #[test]
    fn reset_clears_rings_but_keeps_context() {
        let mut recorder = FlightRecorder::new().with_context(TraceContext::new(5));
        recorder.on_event(&SimEvent::HotSpotEntered {
            hot_spot: HotSpotId(0),
            now: 0,
            origin: HotSpotOrigin::Annotated,
        });
        assert_eq!(recorder.events().len(), 1);
        recorder.reset();
        assert_eq!(recorder.events().len(), 0);
        assert_eq!(recorder.events_dropped(), 0);
        assert_eq!(recorder.context(), Some(TraceContext::new(5)));
    }
}
