//! The open execution-backend architecture: any system that can replay a
//! [`Trace`](crate::Trace) implements [`ExecutionSystem`], and the replay
//! loop ([`simulate_with`](crate::simulate_with)) only talks to that trait.
//!
//! Built-in backends:
//!
//! * [`RisppBackend`] — the full RISPP run-time system
//!   ([`rispp_core::RunTimeManager`]) behind a thin adapter, optionally in
//!   oracle (perfect-future-knowledge) mode;
//! * [`MolenSystem`] — the Molen/OneChip-like baselines;
//! * [`SoftwareBackend`] — pure base-processor execution (every SI traps).
//!
//! Third-party backends plug in the same way: implement the trait and hand
//! a `&mut dyn ExecutionSystem` to `simulate_with` — no engine changes
//! required (see `examples/custom_backend.rs` in the repository root).

use std::borrow::Cow;

use rispp_core::{BurstSegment, RunTimeManager, SchedulerKind};
use rispp_model::{SiId, SiLibrary};

use crate::baseline::MolenSystem;
use crate::trace::{Burst, Invocation};

/// An execution system that the engine can replay a trace against.
///
/// The replay loop drives the backend through the hot-spot lifecycle —
/// [`enter_hot_spot`](ExecutionSystem::enter_hot_spot), a sequence of
/// [`execute_burst`](ExecutionSystem::execute_burst) calls, then
/// [`exit_hot_spot`](ExecutionSystem::exit_hot_spot) — and reads
/// aggregate reconfiguration counters at the end of the run.
///
/// Contract expected by the engine (checked by the backend-conformance
/// suite in `crates/sim/tests/backend_conformance.rs`):
///
/// * `execute_burst(si, count, ..)` returns segments whose counts sum to
///   `count`, with non-decreasing `start` cycles, the first at the burst's
///   `start`;
/// * a backend must execute exactly the trace — no SI executions are
///   dropped or invented;
/// * `reconfiguration_stats` is monotone over the run.
pub trait ExecutionSystem {
    /// Display label used in reports (e.g. `"HEF"`, `"Molen"`).
    fn label(&self) -> Cow<'static, str>;

    /// Enters a hot spot at cycle `now`. The full [`Invocation`] is passed
    /// so backends can choose their forecast input: the design-time
    /// `hints` (online systems) or the measured execution profile (oracle
    /// studies).
    fn enter_hot_spot(&mut self, invocation: &Invocation, now: u64);

    /// Executes a burst of `count` executions of `si` starting at `start`,
    /// each followed by `overhead` base-processor cycles. Returns the
    /// homogeneous-latency segments of the burst in time order.
    fn execute_burst(&mut self, si: SiId, count: u32, overhead: u32, start: u64)
        -> Vec<BurstSegment>;

    /// Buffer-reusing variant of
    /// [`execute_burst`](ExecutionSystem::execute_burst): clears `out` and
    /// writes the burst's segments into it. The replay loop calls this with
    /// one long-lived buffer so a multi-million-burst trace does not
    /// allocate per burst. The default forwards to `execute_burst`, so
    /// existing backends keep working unchanged; built-in backends override
    /// it to skip the intermediate `Vec`.
    fn execute_burst_into(
        &mut self,
        si: SiId,
        count: u32,
        overhead: u32,
        start: u64,
        out: &mut Vec<BurstSegment>,
    ) {
        out.clear();
        out.extend(self.execute_burst(si, count, overhead, start));
    }

    /// Batched fast path over a *run* of bursts: consumes a prefix of
    /// `bursts` (laid back-to-back from cycle `start`) that the backend
    /// can prove executes without any latency change or internal event,
    /// pushes **exactly one unsplit segment per non-empty consumed burst**
    /// onto `out` (cleared first), and returns how many bursts were
    /// consumed. Zero-count bursts must be consumed as no-ops (no
    /// segment). The replay loop falls back to
    /// [`execute_burst_into`](ExecutionSystem::execute_burst_into) for the
    /// first unconsumed burst, so returning 0 is always safe.
    ///
    /// Consumed bursts must leave the backend in a state bit-identical to
    /// per-burst execution (segments, counters, usage timestamps). The
    /// default consumes nothing, keeping custom backends on the exact
    /// per-burst path; built-in backends override it to advance whole
    /// event-free burst runs in one arithmetic step each.
    fn execute_bursts_batched(
        &mut self,
        bursts: &[Burst],
        start: u64,
        out: &mut Vec<BurstSegment>,
    ) -> usize {
        let _ = (bursts, start, out);
        0
    }

    /// Leaves the current hot spot at cycle `now`.
    fn exit_hot_spot(&mut self, now: u64);

    /// Completed reconfiguration loads and the cycles the reconfiguration
    /// port was busy, cumulative since the start of the run.
    fn reconfiguration_stats(&self) -> (u64, u64);

    /// Cumulative fault-injection and self-healing counters. Backends
    /// without a fault model (the baselines, software-only execution and
    /// most custom backends) keep the default: all zero.
    fn recovery_stats(&self) -> rispp_core::RecoveryStats {
        rispp_core::RecoveryStats::default()
    }

    /// Deterministic plan-cache counters of this run. Backends without a
    /// [`rispp_core::PlanCache`] (the baselines, software-only execution
    /// and most custom backends) keep the default: all zero.
    fn plan_cache_stats(&self) -> rispp_core::PlanCacheStats {
        rispp_core::PlanCacheStats::default()
    }

    /// Whether the system may still generate reconfiguration or recovery
    /// events on its own (loads queued or in flight, scheduled faults).
    /// The replay loop samples this *before* each burst and skips the
    /// per-burst counter polls while it is `false`: a system that was
    /// quiet going into a burst cannot have advanced a counter during it.
    /// The conservative default keeps custom backends polled every burst.
    fn has_pending_activity(&self) -> bool {
        true
    }

    /// Whether this backend can produce recovery events at all this run
    /// (i.e. it has a fault model attached). Sampled **once** at replay
    /// start: while `false`, the loop skips every
    /// [`recovery_stats`](ExecutionSystem::recovery_stats) poll — which is
    /// provably emission-free, since the counters of a fault-free run
    /// never advance. The conservative default keeps custom backends
    /// polled.
    fn recovery_active(&self) -> bool {
        true
    }

    /// Whether this backend can produce telemetry (decision explanations
    /// or fabric journal entries) at all this run. Sampled **once** at
    /// replay start: while `false`, the loop skips every
    /// [`drain_decisions`](ExecutionSystem::drain_decisions) /
    /// [`drain_fabric_journal`](ExecutionSystem::drain_fabric_journal)
    /// poll pair — provably emission-free while capture is disabled. The
    /// conservative default keeps custom backends polled.
    fn telemetry_active(&self) -> bool {
        true
    }

    /// Drains any scheduler/selector decision explanations captured since
    /// the last call into `out`. Backends without decision capture (the
    /// baselines and most custom backends) keep the default no-op; the
    /// replay loop turns drained entries into
    /// [`SimEvent::Decision`](crate::SimEvent::Decision) events.
    fn drain_decisions(&mut self, out: &mut Vec<rispp_core::DecisionExplain>) {
        let _ = out;
    }

    /// Drains any fabric container-lifecycle journal entries recorded since
    /// the last call into `out`. The default is a no-op; the replay loop
    /// turns drained entries into
    /// [`SimEvent::ContainerTransition`](crate::SimEvent::ContainerTransition)
    /// events.
    fn drain_fabric_journal(&mut self, out: &mut Vec<rispp_fabric::FabricJournalEntry>) {
        let _ = out;
    }
}

/// The RISPP run-time system as an [`ExecutionSystem`]: a thin adapter
/// around [`RunTimeManager`] that maps the trace's hot-spot lifecycle onto
/// the manager's forecast/select/schedule pipeline.
#[derive(Debug)]
pub struct RisppBackend<'a> {
    manager: RunTimeManager<'a>,
    label: &'static str,
    oracle: bool,
}

impl<'a> RisppBackend<'a> {
    /// Wraps a fully built manager. `scheduler` is only used for the
    /// report label.
    #[must_use]
    pub fn new(manager: RunTimeManager<'a>, scheduler: SchedulerKind) -> Self {
        RisppBackend {
            manager,
            label: scheduler.abbreviation(),
            oracle: false,
        }
    }

    /// Enables oracle mode: each hot-spot entry feeds the *measured*
    /// per-invocation execution profile to the run-time system instead of
    /// the online forecast (perfect future knowledge, the upper bound of
    /// paper Section 4.2).
    #[must_use]
    pub fn with_oracle(mut self, oracle: bool) -> Self {
        self.oracle = oracle;
        self
    }

    /// The wrapped run-time manager.
    #[must_use]
    pub fn manager(&self) -> &RunTimeManager<'a> {
        &self.manager
    }

    /// Consumes the backend, returning the manager.
    #[must_use]
    pub fn into_manager(self) -> RunTimeManager<'a> {
        self.manager
    }
}

impl ExecutionSystem for RisppBackend<'_> {
    fn label(&self) -> Cow<'static, str> {
        Cow::Borrowed(self.label)
    }

    fn enter_hot_spot(&mut self, invocation: &Invocation, now: u64) {
        if self.oracle {
            let profile = invocation.execution_profile();
            self.manager
                .enter_hot_spot_with_profile(invocation.hot_spot, &profile, now)
                .expect("trace and library are consistent");
        } else {
            self.manager
                .enter_hot_spot(invocation.hot_spot, &invocation.hints, now)
                .expect("trace and library are consistent");
        }
    }

    fn execute_burst(
        &mut self,
        si: SiId,
        count: u32,
        overhead: u32,
        start: u64,
    ) -> Vec<BurstSegment> {
        self.manager.execute_burst(si, count, overhead, start)
    }

    fn execute_burst_into(
        &mut self,
        si: SiId,
        count: u32,
        overhead: u32,
        start: u64,
        out: &mut Vec<BurstSegment>,
    ) {
        self.manager.execute_burst_into(si, count, overhead, start, out);
    }

    fn execute_bursts_batched(
        &mut self,
        bursts: &[Burst],
        start: u64,
        out: &mut Vec<BurstSegment>,
    ) -> usize {
        self.manager.execute_bursts_batched(
            bursts.iter().map(|b| (b.si, b.count, b.overhead)),
            start,
            out,
        )
    }

    fn exit_hot_spot(&mut self, now: u64) {
        self.manager.exit_hot_spot(now);
    }

    fn reconfiguration_stats(&self) -> (u64, u64) {
        let s = self.manager.fabric().stats();
        (s.loads_completed, s.port_busy_cycles)
    }

    fn recovery_stats(&self) -> rispp_core::RecoveryStats {
        self.manager.recovery_stats()
    }

    fn plan_cache_stats(&self) -> rispp_core::PlanCacheStats {
        self.manager.plan_cache_stats()
    }

    fn has_pending_activity(&self) -> bool {
        // Covers port completions, backoff-delayed starts, SEU upsets and
        // scheduled tile failures alike: any future internal fabric event.
        self.manager.fabric().next_event_at().is_some()
    }

    fn recovery_active(&self) -> bool {
        self.manager.fabric().fault_model().is_some()
    }

    fn telemetry_active(&self) -> bool {
        self.manager.explain_enabled() || self.manager.fabric().journal_enabled()
    }

    fn drain_decisions(&mut self, out: &mut Vec<rispp_core::DecisionExplain>) {
        self.manager.take_decisions(out);
    }

    fn drain_fabric_journal(&mut self, out: &mut Vec<rispp_fabric::FabricJournalEntry>) {
        self.manager.drain_fabric_journal(out);
    }
}

impl ExecutionSystem for MolenSystem<'_> {
    fn label(&self) -> Cow<'static, str> {
        Cow::Borrowed(MolenSystem::label(self))
    }

    fn enter_hot_spot(&mut self, invocation: &Invocation, now: u64) {
        MolenSystem::enter_hot_spot(self, invocation.hot_spot, &invocation.hints, now);
    }

    fn execute_burst(
        &mut self,
        si: SiId,
        count: u32,
        overhead: u32,
        start: u64,
    ) -> Vec<BurstSegment> {
        MolenSystem::execute_burst(self, si, count, overhead, start)
    }

    fn execute_burst_into(
        &mut self,
        si: SiId,
        count: u32,
        overhead: u32,
        start: u64,
        out: &mut Vec<BurstSegment>,
    ) {
        MolenSystem::execute_burst_into(self, si, count, overhead, start, out);
    }

    fn execute_bursts_batched(
        &mut self,
        bursts: &[Burst],
        start: u64,
        out: &mut Vec<BurstSegment>,
    ) -> usize {
        out.clear();
        let mut t = start;
        let mut consumed = 0;
        for b in bursts {
            if b.count == 0 {
                consumed += 1;
                continue;
            }
            match MolenSystem::execute_burst_unsplit(self, b.si, b.count, b.overhead, t) {
                Some(seg) => {
                    t = seg.start + seg.count * (u64::from(seg.latency) + u64::from(b.overhead));
                    out.push(seg);
                    consumed += 1;
                }
                None => break,
            }
        }
        consumed
    }

    fn exit_hot_spot(&mut self, now: u64) {
        MolenSystem::exit_hot_spot(self, now);
    }

    fn reconfiguration_stats(&self) -> (u64, u64) {
        MolenSystem::reconfiguration_stats(self)
    }

    fn has_pending_activity(&self) -> bool {
        // Molen counts its loads at hot-spot entry (caught by the
        // unconditional post-prologue poll); nothing advances a counter
        // during a burst, so the per-burst polls can always be skipped.
        false
    }

    fn recovery_active(&self) -> bool {
        false
    }

    fn telemetry_active(&self) -> bool {
        false
    }
}

/// Pure base-processor execution: every SI traps to its software latency,
/// nothing is ever reconfigured. The paper's 0-AC reference point.
#[derive(Debug, Clone, Copy)]
pub struct SoftwareBackend<'a> {
    library: &'a SiLibrary,
}

impl<'a> SoftwareBackend<'a> {
    /// Creates a software-only backend over `library`.
    #[must_use]
    pub fn new(library: &'a SiLibrary) -> Self {
        SoftwareBackend { library }
    }
}

impl ExecutionSystem for SoftwareBackend<'_> {
    fn label(&self) -> Cow<'static, str> {
        Cow::Borrowed("Software")
    }

    fn enter_hot_spot(&mut self, _invocation: &Invocation, _now: u64) {}

    fn execute_burst(
        &mut self,
        si: SiId,
        count: u32,
        _overhead: u32,
        start: u64,
    ) -> Vec<BurstSegment> {
        let latency = self
            .library
            .si(si)
            .expect("si within library")
            .software_latency();
        vec![BurstSegment::software(start, u64::from(count), latency)]
    }

    fn execute_burst_into(
        &mut self,
        si: SiId,
        count: u32,
        _overhead: u32,
        start: u64,
        out: &mut Vec<BurstSegment>,
    ) {
        let latency = self
            .library
            .si(si)
            .expect("si within library")
            .software_latency();
        out.clear();
        out.push(BurstSegment::software(start, u64::from(count), latency));
    }

    fn execute_bursts_batched(
        &mut self,
        bursts: &[Burst],
        start: u64,
        out: &mut Vec<BurstSegment>,
    ) -> usize {
        // Software latencies never change: every burst is one segment, so
        // the whole run is always consumable.
        out.clear();
        let mut t = start;
        for b in bursts {
            if b.count == 0 {
                continue;
            }
            let latency = self
                .library
                .si(b.si)
                .expect("si within library")
                .software_latency();
            let per = u64::from(latency) + u64::from(b.overhead);
            out.push(BurstSegment::software(t, u64::from(b.count), latency));
            t += u64::from(b.count) * per;
        }
        bursts.len()
    }

    fn exit_hot_spot(&mut self, _now: u64) {}

    fn reconfiguration_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    fn has_pending_activity(&self) -> bool {
        false
    }

    fn recovery_active(&self) -> bool {
        false
    }

    fn telemetry_active(&self) -> bool {
        false
    }
}
