//! Opt-in telemetry observers over the engine's event stream.
//!
//! Everything here lives in the *simulated-cycle* domain: cycles come from
//! the events themselves (each journal entry and decision carries its own
//! exact cycle), never from wall-clock time, so any two runs of the same
//! trace produce bit-identical telemetry regardless of host load or sweep
//! thread count.
//!
//! * [`NullRecorder`] — the default: consumes nothing, allocates nothing,
//!   opts out of the per-segment stream. Attaching it is free.
//! * [`MetricsObserver`] — folds the stream into a
//!   [`rispp_telemetry::MetricsRegistry`]: per-SI execution counts and
//!   latency histograms, per-container load/ready/idle/quarantined cycle
//!   totals, reconfiguration-port busy cycles, recovery counters and
//!   scheduler decision/upgrade counts. Snapshots merge across sweep jobs.
//! * [`PerfettoTraceObserver`] — renders the run as Chrome trace-event
//!   JSON (openable at <https://ui.perfetto.dev>): one track per Atom
//!   Container with load/ready/quarantine spans, one track per SI with
//!   execution-burst spans, and instant events for faults and decisions.
//! * [`DetectorObserver`] — feeds the SI stream through the windowed
//!   [`HotSpotDetector`] and surfaces detected phase changes as synthetic
//!   [`SimEvent::HotSpotEntered`] events with
//!   [`HotSpotOrigin::Detected`].

use std::fmt::Write as _;

use rispp_fabric::FabricJournalEntry;
use rispp_model::SiId;
use rispp_monitor::{HotSpotDetector, HotSpotId};
use rispp_telemetry::{MetricsRegistry, MetricsSnapshot, TraceBuilder};

use crate::context::TraceContext;
use crate::observer::{HotSpotOrigin, SimEvent, SimObserver};

/// The no-op recorder: the default telemetry sink when no `--metrics-out`
/// or `--trace-out` is requested. It opts out of the per-segment stream
/// and its `on_event` body is empty, so the replay hot path stays
/// allocation-free and effectively telemetry-free (verified by the
/// alloc-counter test in `crates/sim/tests/alloc_free.rs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl NullRecorder {
    /// Creates the recorder (equivalent to the unit value).
    #[must_use]
    pub fn new() -> Self {
        NullRecorder
    }
}

impl SimObserver for NullRecorder {
    fn on_event(&mut self, _event: &SimEvent) {}

    fn wants_segments(&self) -> bool {
        false
    }
}

/// What an Atom Container is doing between two journal entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ContainerPhase {
    /// No (usable) atom configured.
    Idle,
    /// A bitstream is streaming in through the reconfiguration port.
    Loading,
    /// Holding a usable atom.
    Ready,
    /// Permanently out of service.
    Quarantined,
}

impl ContainerPhase {
    fn family(self) -> &'static str {
        match self {
            ContainerPhase::Idle => "rispp_container_idle_cycles_total",
            ContainerPhase::Loading => "rispp_container_load_cycles_total",
            ContainerPhase::Ready => "rispp_container_ready_cycles_total",
            ContainerPhase::Quarantined => "rispp_container_quarantined_cycles_total",
        }
    }
}

/// Folds the event stream into a deterministic [`MetricsRegistry`].
///
/// Container time accounting is derived from the fabric journal
/// ([`SimEvent::ContainerTransition`], enabled via
/// [`SimConfig::with_journal`](crate::SimConfig::with_journal)); without
/// the journal those families simply stay absent. Open container phases
/// are flushed at [`SimEvent::RunFinished`], so a snapshot taken after the
/// run accounts for every simulated cycle.
#[derive(Debug, Default)]
pub struct MetricsObserver {
    registry: MetricsRegistry,
    /// Per-container `(phase, phase-start-cycle)`, grown on first sighting.
    containers: Vec<(ContainerPhase, u64)>,
    /// Latest cumulative port cycles lost to faulted loads (flushed as a
    /// counter at run end — the event only carries the running total).
    fault_cycles_lost: u64,
    /// Scratch buffer for labelled metric names.
    name: String,
}

impl MetricsObserver {
    /// Creates an observer with an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsObserver::default()
    }

    /// Freezes the current state into a mergeable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Consumes the observer into a snapshot without cloning.
    #[must_use]
    pub fn into_snapshot(self) -> MetricsSnapshot {
        self.registry.into_snapshot()
    }

    fn container_entry(&mut self, container: u16) -> &mut (ContainerPhase, u64) {
        let i = usize::from(container);
        if self.containers.len() <= i {
            self.containers.resize(i + 1, (ContainerPhase::Idle, 0));
        }
        &mut self.containers[i]
    }

    /// Closes the container's current phase at `at`, crediting the elapsed
    /// cycles to that phase's counter, and opens `next`.
    fn container_transition(&mut self, container: u16, next: ContainerPhase, at: u64) {
        let (phase, since) = *self.container_entry(container);
        let elapsed = at.saturating_sub(since);
        if elapsed > 0 {
            self.name.clear();
            let _ = write!(self.name, "{}{{container=\"{container}\"}}", phase.family());
            let name = std::mem::take(&mut self.name);
            self.registry.counter_add(&name, elapsed);
            self.name = name;
        }
        *self.container_entry(container) = (next, at);
    }

    fn labelled_counter_add(&mut self, family: &str, key: &str, value: u64, delta: u64) {
        self.name.clear();
        let _ = write!(self.name, "{family}{{{key}=\"{value}\"}}");
        let name = std::mem::take(&mut self.name);
        self.registry.counter_add(&name, delta);
        self.name = name;
    }

    /// Folds a run's deterministic plan-cache counters into the registry
    /// (they are pulled from the backend after the run rather than carried
    /// on the event stream, which stays bit-identical cache-on vs
    /// cache-off). All-zero stats — cache off, or a non-RISPP backend —
    /// add nothing, so such snapshots are byte-identical to runs recorded
    /// before the plan cache existed.
    pub fn record_plan_cache(&mut self, stats: &rispp_core::PlanCacheStats) {
        if stats.is_zero() {
            return;
        }
        self.registry
            .counter_add("rispp_plan_cache_hits_total", stats.hits);
        self.registry
            .counter_add("rispp_plan_cache_misses_total", stats.misses);
        self.registry
            .counter_add("rispp_plan_cache_insertions_total", stats.insertions);
        self.registry
            .counter_add("rispp_plan_cache_evictions_total", stats.evictions);
        self.registry
            .counter_add("rispp_plan_cache_epoch_bumps_total", stats.epoch_bumps);
    }
}

impl SimObserver for MetricsObserver {
    fn on_event(&mut self, event: &SimEvent) {
        match event {
            SimEvent::HotSpotEntered { origin, .. } => {
                let name = match origin {
                    HotSpotOrigin::Annotated => {
                        "rispp_hot_spots_entered_total{origin=\"annotated\"}"
                    }
                    HotSpotOrigin::Detected => {
                        "rispp_hot_spots_entered_total{origin=\"detected\"}"
                    }
                };
                self.registry.counter_add(name, 1);
            }
            SimEvent::SegmentExecuted {
                si,
                segment,
                overhead,
            } => {
                let id = u64::from(si.0);
                self.labelled_counter_add("rispp_si_executions_total", "si", id, segment.count);
                if segment.is_hardware() {
                    self.labelled_counter_add(
                        "rispp_si_hardware_executions_total",
                        "si",
                        id,
                        segment.count,
                    );
                }
                let per = u64::from(segment.latency) + u64::from(*overhead);
                self.name.clear();
                let _ = write!(self.name, "rispp_si_latency_cycles{{si=\"{id}\"}}");
                let name = std::mem::take(&mut self.name);
                self.registry.observe_n(&name, per, segment.count);
                self.name = name;
            }
            SimEvent::LoadCompleted { completed, .. } => {
                self.registry
                    .counter_add("rispp_loads_completed_total", *completed);
            }
            SimEvent::FaultInjected {
                count, cycles_lost, ..
            } => {
                self.registry.counter_add("rispp_faults_injected_total", *count);
                self.fault_cycles_lost = *cycles_lost;
            }
            SimEvent::LoadRetried { count, .. } => {
                self.registry.counter_add("rispp_load_retries_total", *count);
            }
            SimEvent::ContainerQuarantined { count, .. } => {
                self.registry
                    .counter_add("rispp_containers_quarantined_total", *count);
            }
            SimEvent::DegradedToSoftware { count, .. } => {
                self.registry
                    .counter_add("rispp_degraded_to_software_total", *count);
            }
            // Multi-tenant counters carry the application as a label, so a
            // merged snapshot keeps the per-app breakdown.
            SimEvent::TenantSwitched { tenant, .. } => {
                self.labelled_counter_add(
                    "rispp_tenant_switches_total",
                    "tenant",
                    u64::from(*tenant),
                    1,
                );
            }
            SimEvent::AtomShared { tenant, count, .. } => {
                self.labelled_counter_add(
                    "rispp_atoms_shared_total",
                    "tenant",
                    u64::from(*tenant),
                    *count,
                );
            }
            SimEvent::EvictionContested { tenant, count, .. } => {
                self.labelled_counter_add(
                    "rispp_evictions_contested_total",
                    "tenant",
                    u64::from(*tenant),
                    *count,
                );
            }
            SimEvent::Decision(decision) => {
                self.registry.counter_add("rispp_decisions_total", 1);
                let upgrades = decision
                    .schedule
                    .rounds
                    .iter()
                    .filter(|r| r.chosen.is_some())
                    .count() as u64;
                self.name.clear();
                let _ = write!(
                    self.name,
                    "rispp_scheduler_upgrades_total{{scheduler=\"{}\"}}",
                    decision.schedule.scheduler
                );
                let name = std::mem::take(&mut self.name);
                self.registry.counter_add(&name, upgrades);
                self.name = name;
                let sel_upgrades = decision
                    .selection
                    .rounds
                    .iter()
                    .filter(|r| r.chosen.is_some())
                    .count() as u64;
                self.registry
                    .counter_add("rispp_selection_upgrades_total", sel_upgrades);
                self.registry.counter_add(
                    "rispp_selection_rejected_total",
                    decision.selection.rejected.len() as u64,
                );
            }
            SimEvent::ContainerTransition(entry) => match *entry {
                FabricJournalEntry::LoadStarted { container, at, .. } => {
                    self.container_transition(container.0, ContainerPhase::Loading, at);
                }
                FabricJournalEntry::LoadFinished { container, at, .. } => {
                    self.container_transition(container.0, ContainerPhase::Ready, at);
                }
                FabricJournalEntry::LoadAborted { container, at, .. }
                | FabricJournalEntry::AtomCorrupted { container, at, .. } => {
                    self.container_transition(container.0, ContainerPhase::Idle, at);
                }
                FabricJournalEntry::ContainerQuarantined { container, at } => {
                    self.container_transition(container.0, ContainerPhase::Quarantined, at);
                }
            },
            SimEvent::RunFinished {
                total_cycles,
                reconfigurations,
                reconfiguration_cycles,
            } => {
                self.registry.counter_add("rispp_runs_total", 1);
                self.registry
                    .counter_add("rispp_simulated_cycles_total", *total_cycles);
                self.registry
                    .counter_add("rispp_reconfigurations_total", *reconfigurations);
                self.registry
                    .counter_add("rispp_port_busy_cycles_total", *reconfiguration_cycles);
                if self.fault_cycles_lost > 0 {
                    self.registry
                        .counter_add("rispp_fault_cycles_lost_total", self.fault_cycles_lost);
                    self.fault_cycles_lost = 0;
                }
                // Flush open container phases so every simulated cycle of
                // every sighted container is accounted for.
                let end = *total_cycles;
                for i in 0..self.containers.len() {
                    let (phase, _) = self.containers[i];
                    let container = i as u16;
                    self.container_transition(container, phase, end);
                }
            }
        }
    }

    fn set_trace_context(&mut self, context: TraceContext) {
        self.name.clear();
        let _ = write!(
            self.name,
            "trace_id=\"{}\",tenant=\"{}\",attempt=\"{}\"",
            context.trace_id, context.tenant, context.attempt
        );
        self.registry.set_base_labels(&self.name);
        self.name.clear();
    }
}

/// Track group for Atom Containers in the exported trace.
const PID_CONTAINERS: u64 = 1;
/// Track group for Special Instructions.
const PID_SIS: u64 = 2;
/// Track group for run-time decisions and hot-spot markers.
const PID_DECISIONS: u64 = 3;
/// Track group for tenants of a multi-application run (one track per
/// application, populated only when the stream carries tenant events).
const PID_TENANTS: u64 = 4;

/// An open span on a container track.
#[derive(Debug, Clone, Copy)]
enum ContainerSpan {
    /// A bitstream transfer in flight since `since`.
    Load { atom: u16, since: u64 },
    /// A usable atom resident since `since`.
    Ready { atom: u16, since: u64 },
    /// Out of service since `since`.
    Quarantined { since: u64 },
}

/// Renders the run as Chrome trace-event JSON for Perfetto.
///
/// Container spans come from the fabric journal
/// ([`SimConfig::with_journal`](crate::SimConfig::with_journal)), decision
/// instants from [`SimConfig::with_explain`](crate::SimConfig::with_explain);
/// SI execution spans and hot-spot markers are always available. Spans
/// still open when [`SimEvent::RunFinished`] arrives are closed at the
/// run's final cycle. 1 simulated cycle renders as 1 µs.
#[derive(Debug)]
pub struct PerfettoTraceObserver {
    trace: TraceBuilder,
    spans: Vec<Option<ContainerSpan>>,
    container_named: Vec<bool>,
    si_named: Vec<bool>,
    tenant_named: Vec<bool>,
    /// The tenant slice currently occupying the substrate, as
    /// `(tenant, slice-start-cycle)`.
    tenant_span: Option<(u16, u64)>,
    /// Scratch buffers for track names and pre-rendered args objects.
    name: String,
    args: String,
}

impl Default for PerfettoTraceObserver {
    fn default() -> Self {
        PerfettoTraceObserver::new()
    }
}

impl PerfettoTraceObserver {
    /// Creates an observer with the three named track groups.
    #[must_use]
    pub fn new() -> Self {
        let mut trace = TraceBuilder::new();
        trace.process_name(PID_CONTAINERS, "Atom Containers");
        trace.process_name(PID_SIS, "Special Instructions");
        trace.process_name(PID_DECISIONS, "Run-time decisions");
        trace.process_name(PID_TENANTS, "Tenants");
        PerfettoTraceObserver {
            trace,
            spans: Vec::new(),
            container_named: Vec::new(),
            si_named: Vec::new(),
            tenant_named: Vec::new(),
            tenant_span: None,
            name: String::new(),
            args: String::new(),
        }
    }

    /// Closes the document and returns the trace JSON.
    #[must_use]
    pub fn into_json(self) -> String {
        self.trace.finish()
    }

    fn ensure_container(&mut self, container: u16) {
        let i = usize::from(container);
        if self.spans.len() <= i {
            self.spans.resize(i + 1, None);
            self.container_named.resize(i + 1, false);
        }
        if !self.container_named[i] {
            self.container_named[i] = true;
            self.name.clear();
            let _ = write!(self.name, "AC{container}");
            self.trace
                .thread_name(PID_CONTAINERS, u64::from(container), &self.name);
        }
    }

    fn ensure_si(&mut self, si: SiId) {
        let i = usize::from(si.0);
        if self.si_named.len() <= i {
            self.si_named.resize(i + 1, false);
        }
        if !self.si_named[i] {
            self.si_named[i] = true;
            self.name.clear();
            let _ = write!(self.name, "SI{}", si.0);
            self.trace.thread_name(PID_SIS, u64::from(si.0), &self.name);
        }
    }

    /// Closes the container's open span (if any) at cycle `at`.
    fn close_span(&mut self, container: u16, at: u64) {
        let i = usize::from(container);
        let Some(span) = self.spans.get_mut(i).and_then(Option::take) else {
            return;
        };
        let tid = u64::from(container);
        match span {
            ContainerSpan::Load { atom, since } => {
                self.name.clear();
                let _ = write!(self.name, "load A{atom}");
                self.args.clear();
                let _ = write!(self.args, "{{\"atom\":{atom}}}");
                self.trace.complete_with_args(
                    PID_CONTAINERS,
                    tid,
                    &self.name,
                    since,
                    at.saturating_sub(since),
                    Some(&self.args),
                );
            }
            ContainerSpan::Ready { atom, since } => {
                self.name.clear();
                let _ = write!(self.name, "A{atom}");
                self.args.clear();
                let _ = write!(self.args, "{{\"atom\":{atom}}}");
                self.trace.complete_with_args(
                    PID_CONTAINERS,
                    tid,
                    &self.name,
                    since,
                    at.saturating_sub(since),
                    Some(&self.args),
                );
            }
            ContainerSpan::Quarantined { since } => {
                self.trace.complete(
                    PID_CONTAINERS,
                    tid,
                    "quarantined",
                    since,
                    at.saturating_sub(since),
                );
            }
        }
    }

    fn open_span(&mut self, container: u16, span: ContainerSpan) {
        self.spans[usize::from(container)] = Some(span);
    }

    fn ensure_tenant(&mut self, tenant: u16) {
        let i = usize::from(tenant);
        if self.tenant_named.len() <= i {
            self.tenant_named.resize(i + 1, false);
        }
        if !self.tenant_named[i] {
            self.tenant_named[i] = true;
            self.name.clear();
            let _ = write!(self.name, "T{tenant}");
            self.trace
                .thread_name(PID_TENANTS, u64::from(tenant), &self.name);
        }
    }

    /// Closes the active tenant slice span (if any) at cycle `at`.
    fn close_tenant_span(&mut self, at: u64) {
        if let Some((tenant, since)) = self.tenant_span.take() {
            self.trace.complete(
                PID_TENANTS,
                u64::from(tenant),
                "active",
                since,
                at.saturating_sub(since),
            );
        }
    }
}

impl SimObserver for PerfettoTraceObserver {
    fn on_event(&mut self, event: &SimEvent) {
        match event {
            SimEvent::HotSpotEntered {
                hot_spot,
                now,
                origin,
            } => {
                self.name.clear();
                let _ = write!(self.name, "hot spot {}", hot_spot.0);
                self.args.clear();
                let origin = match origin {
                    HotSpotOrigin::Annotated => "annotated",
                    HotSpotOrigin::Detected => "detected",
                };
                let _ = write!(self.args, "{{\"origin\":\"{origin}\"}}");
                let name = std::mem::take(&mut self.name);
                self.trace
                    .instant_with_args(PID_DECISIONS, 0, &name, *now, Some(&self.args));
                self.name = name;
            }
            SimEvent::SegmentExecuted {
                si,
                segment,
                overhead,
            } => {
                self.ensure_si(*si);
                let per = u64::from(segment.latency) + u64::from(*overhead);
                self.name.clear();
                match segment.variant_index {
                    Some(v) => {
                        let _ = write!(self.name, "v{v} ×{}", segment.count);
                    }
                    None => {
                        let _ = write!(self.name, "software ×{}", segment.count);
                    }
                }
                self.args.clear();
                let _ = write!(
                    self.args,
                    "{{\"count\":{},\"latency\":{},\"hardware\":{}}}",
                    segment.count,
                    segment.latency,
                    segment.is_hardware()
                );
                let name = std::mem::take(&mut self.name);
                self.trace.complete_with_args(
                    PID_SIS,
                    u64::from(si.0),
                    &name,
                    segment.start,
                    segment.count.saturating_mul(per),
                    Some(&self.args),
                );
                self.name = name;
            }
            SimEvent::FaultInjected { count, now, .. } if *count > 0 => {
                self.args.clear();
                let _ = write!(self.args, "{{\"count\":{count}}}");
                self.trace
                    .instant_with_args(PID_DECISIONS, 0, "fault injected", *now, Some(&self.args));
            }
            SimEvent::DegradedToSoftware { count, now, .. } if *count > 0 => {
                self.args.clear();
                let _ = write!(self.args, "{{\"count\":{count}}}");
                self.trace.instant_with_args(
                    PID_DECISIONS,
                    0,
                    "degraded to software",
                    *now,
                    Some(&self.args),
                );
            }
            SimEvent::Decision(decision) => {
                self.args.clear();
                let upgrades = decision
                    .schedule
                    .rounds
                    .iter()
                    .filter(|r| r.chosen.is_some())
                    .count();
                let _ = write!(
                    self.args,
                    "{{\"scheduler\":\"{}\",\"containers\":{},\"selected\":{},\"upgrades\":{}}}",
                    decision.schedule.scheduler,
                    decision.containers,
                    decision.selection.selection.len(),
                    upgrades
                );
                self.trace.instant_with_args(
                    PID_DECISIONS,
                    0,
                    "decision",
                    decision.now,
                    Some(&self.args),
                );
            }
            SimEvent::ContainerTransition(entry) => match *entry {
                FabricJournalEntry::LoadStarted {
                    container, atom, at, ..
                } => {
                    self.ensure_container(container.0);
                    self.close_span(container.0, at);
                    self.open_span(
                        container.0,
                        ContainerSpan::Load {
                            atom: atom.0,
                            since: at,
                        },
                    );
                }
                FabricJournalEntry::LoadFinished { container, atom, at } => {
                    self.ensure_container(container.0);
                    self.close_span(container.0, at);
                    self.open_span(
                        container.0,
                        ContainerSpan::Ready {
                            atom: atom.0,
                            since: at,
                        },
                    );
                }
                FabricJournalEntry::LoadAborted { container, atom, at } => {
                    self.ensure_container(container.0);
                    self.close_span(container.0, at);
                    self.name.clear();
                    let _ = write!(self.name, "load aborted A{}", atom.0);
                    let name = std::mem::take(&mut self.name);
                    self.trace
                        .instant(PID_CONTAINERS, u64::from(container.0), &name, at);
                    self.name = name;
                }
                FabricJournalEntry::AtomCorrupted { container, atom, at } => {
                    self.ensure_container(container.0);
                    self.close_span(container.0, at);
                    self.name.clear();
                    let _ = write!(self.name, "SEU corrupt A{}", atom.0);
                    let name = std::mem::take(&mut self.name);
                    self.trace
                        .instant(PID_CONTAINERS, u64::from(container.0), &name, at);
                    self.name = name;
                }
                FabricJournalEntry::ContainerQuarantined { container, at } => {
                    self.ensure_container(container.0);
                    self.close_span(container.0, at);
                    self.trace
                        .instant(PID_CONTAINERS, u64::from(container.0), "quarantined", at);
                    self.open_span(container.0, ContainerSpan::Quarantined { since: at });
                }
            },
            SimEvent::TenantSwitched { tenant, now } => {
                self.ensure_tenant(*tenant);
                self.close_tenant_span(*now);
                self.tenant_span = Some((*tenant, *now));
            }
            SimEvent::AtomShared { tenant, count, now, .. } if *count > 0 => {
                self.ensure_tenant(*tenant);
                self.args.clear();
                let _ = write!(self.args, "{{\"count\":{count}}}");
                self.trace.instant_with_args(
                    PID_TENANTS,
                    u64::from(*tenant),
                    "atoms shared",
                    *now,
                    Some(&self.args),
                );
            }
            SimEvent::EvictionContested { tenant, count, now, .. } if *count > 0 => {
                self.ensure_tenant(*tenant);
                self.args.clear();
                let _ = write!(self.args, "{{\"count\":{count}}}");
                self.trace.instant_with_args(
                    PID_TENANTS,
                    u64::from(*tenant),
                    "contested eviction",
                    *now,
                    Some(&self.args),
                );
            }
            SimEvent::RunFinished { total_cycles, .. } => {
                for container in 0..self.spans.len() {
                    self.close_span(container as u16, *total_cycles);
                }
                self.close_tenant_span(*total_cycles);
            }
            SimEvent::LoadCompleted { .. }
            | SimEvent::FaultInjected { .. }
            | SimEvent::LoadRetried { .. }
            | SimEvent::ContainerQuarantined { .. }
            | SimEvent::DegradedToSoftware { .. }
            | SimEvent::AtomShared { .. }
            | SimEvent::EvictionContested { .. } => {}
        }
    }

    fn set_trace_context(&mut self, context: TraceContext) {
        self.args.clear();
        let _ = write!(
            self.args,
            "{{\"trace_id\":{},\"tenant\":{},\"attempt\":{}}}",
            context.trace_id, context.tenant, context.attempt
        );
        self.trace
            .instant_with_args(PID_DECISIONS, 0, "trace context", 0, Some(&self.args));
    }
}

/// Feeds the SI execution stream through the windowed
/// [`HotSpotDetector`] and forwards every event — plus a synthetic
/// [`SimEvent::HotSpotEntered`] with [`HotSpotOrigin::Detected`] whenever
/// the detector commits a new dominant-SI signature — to the wrapped
/// observer. This makes the companion-work hardware detector's view of the
/// run visible in the same event stream as the trace annotations, so logs
/// and traces can compare annotated against detected phase boundaries.
#[derive(Debug)]
pub struct DetectorObserver<O> {
    detector: HotSpotDetector,
    inner: O,
    /// The detector's last committed signature, cached so a change is
    /// recognised without cloning the detector per segment.
    signature: Vec<SiId>,
    /// Most recent annotated hot spot, reused as the synthetic event's id
    /// (detected signatures have no id of their own).
    last_hot_spot: HotSpotId,
}

impl<O> DetectorObserver<O> {
    /// Wraps `inner`, detecting over `window_cycles`-wide windows with the
    /// given debounce (see [`HotSpotDetector::new`]).
    #[must_use]
    pub fn new(window_cycles: u64, stable_windows: u32, inner: O) -> Self {
        DetectorObserver {
            detector: HotSpotDetector::new(window_cycles, stable_windows),
            inner,
            signature: Vec::new(),
            last_hot_spot: HotSpotId(0),
        }
    }

    /// The wrapped detector (e.g. for [`HotSpotDetector::transitions`]).
    #[must_use]
    pub fn detector(&self) -> &HotSpotDetector {
        &self.detector
    }

    /// Consumes the wrapper, returning the inner observer.
    #[must_use]
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: SimObserver> SimObserver for DetectorObserver<O> {
    fn on_event(&mut self, event: &SimEvent) {
        if let SimEvent::HotSpotEntered {
            hot_spot,
            origin: HotSpotOrigin::Annotated,
            ..
        } = event
        {
            self.last_hot_spot = *hot_spot;
        }
        self.inner.on_event(event);
        if let SimEvent::SegmentExecuted { si, segment, .. } = event {
            self.detector.observe(*si, segment.start);
            if self.detector.last_signature() != self.signature.as_slice() {
                self.signature.clear();
                self.signature.extend_from_slice(self.detector.last_signature());
                self.inner.on_event(&SimEvent::HotSpotEntered {
                    hot_spot: self.last_hot_spot,
                    now: segment.start,
                    origin: HotSpotOrigin::Detected,
                });
            }
        }
    }

    fn set_trace_context(&mut self, context: TraceContext) {
        self.inner.set_trace_context(context);
    }

    fn wants_segments(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp_core::BurstSegment;
    use rispp_fabric::ContainerId;
    use rispp_model::AtomTypeId;
    use rispp_telemetry::JsonValue;

    fn segment(si: u16, start: u64, count: u64, latency: u32) -> SimEvent {
        SimEvent::SegmentExecuted {
            si: SiId(si),
            segment: BurstSegment::hardware(start, count, latency, 0),
            overhead: 0,
        }
    }

    #[test]
    fn metrics_observer_accounts_container_phases_to_run_end() {
        let mut m = MetricsObserver::new();
        let c = ContainerId(2);
        let a = AtomTypeId(5);
        m.on_event(&SimEvent::ContainerTransition(
            FabricJournalEntry::LoadStarted {
                container: c,
                atom: a,
                at: 100,
                finish: 400,
            },
        ));
        m.on_event(&SimEvent::ContainerTransition(
            FabricJournalEntry::LoadFinished {
                container: c,
                atom: a,
                at: 400,
            },
        ));
        m.on_event(&segment(3, 400, 10, 7));
        m.on_event(&SimEvent::RunFinished {
            total_cycles: 1_000,
            reconfigurations: 1,
            reconfiguration_cycles: 300,
        });
        let s = m.into_snapshot();
        assert_eq!(s.counter("rispp_container_idle_cycles_total{container=\"2\"}"), 100);
        assert_eq!(s.counter("rispp_container_load_cycles_total{container=\"2\"}"), 300);
        assert_eq!(s.counter("rispp_container_ready_cycles_total{container=\"2\"}"), 600);
        assert_eq!(s.counter("rispp_si_executions_total{si=\"3\"}"), 10);
        assert_eq!(s.counter("rispp_si_hardware_executions_total{si=\"3\"}"), 10);
        assert_eq!(s.counter("rispp_reconfigurations_total"), 1);
        assert_eq!(s.counter("rispp_port_busy_cycles_total"), 300);
        assert_eq!(s.counter("rispp_runs_total"), 1);
    }

    #[test]
    fn metrics_snapshots_merge_across_jobs() {
        let mut a = MetricsObserver::new();
        a.on_event(&segment(0, 0, 5, 10));
        a.on_event(&SimEvent::RunFinished {
            total_cycles: 50,
            reconfigurations: 0,
            reconfiguration_cycles: 0,
        });
        let mut b = MetricsObserver::new();
        b.on_event(&segment(0, 0, 7, 10));
        b.on_event(&SimEvent::RunFinished {
            total_cycles: 70,
            reconfigurations: 0,
            reconfiguration_cycles: 0,
        });
        let mut merged = a.into_snapshot();
        merged.merge(&b.into_snapshot());
        assert_eq!(merged.counter("rispp_si_executions_total{si=\"0\"}"), 12);
        assert_eq!(merged.counter("rispp_runs_total"), 2);
        assert_eq!(merged.counter("rispp_simulated_cycles_total"), 120);
    }

    #[test]
    fn perfetto_trace_has_container_and_si_tracks() {
        let mut p = PerfettoTraceObserver::new();
        let c = ContainerId(0);
        let a = AtomTypeId(3);
        p.on_event(&SimEvent::ContainerTransition(
            FabricJournalEntry::LoadStarted {
                container: c,
                atom: a,
                at: 0,
                finish: 500,
            },
        ));
        p.on_event(&SimEvent::ContainerTransition(
            FabricJournalEntry::LoadFinished {
                container: c,
                atom: a,
                at: 500,
            },
        ));
        p.on_event(&segment(1, 500, 100, 4));
        p.on_event(&SimEvent::Decision(Box::default()));
        p.on_event(&SimEvent::RunFinished {
            total_cycles: 2_000,
            reconfigurations: 1,
            reconfiguration_cycles: 500,
        });
        let json = p.into_json();
        let doc = JsonValue::parse(&json).expect("trace parses");
        let events = doc.get("traceEvents").and_then(JsonValue::as_array).unwrap();
        // Load span: AC0, ts 0, dur 500.
        let load = events
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("load A3"))
            .expect("load span present");
        assert_eq!(load.get("ph").and_then(JsonValue::as_str), Some("X"));
        assert_eq!(load.get("dur").and_then(JsonValue::as_u64), Some(500));
        // Ready span closed at run end: 2000 - 500.
        let ready = events
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("A3"))
            .expect("ready span present");
        assert_eq!(ready.get("dur").and_then(JsonValue::as_u64), Some(1_500));
        // SI execution span on the SI track.
        let exec = events
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("v0 ×100"))
            .expect("si span present");
        assert_eq!(exec.get("dur").and_then(JsonValue::as_u64), Some(400));
        // Decision instant.
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(JsonValue::as_str) == Some("decision")));
    }

    #[test]
    fn detector_observer_synthesizes_detected_transitions() {
        let mut log = crate::observer::TraceLogObserver::new();
        {
            let mut det = DetectorObserver::new(1_000, 1, &mut log);
            det.on_event(&SimEvent::HotSpotEntered {
                hot_spot: HotSpotId(4),
                now: 0,
                origin: HotSpotOrigin::Annotated,
            });
            for i in 0..100u64 {
                det.on_event(&segment(0, i * 100, 1, 10));
            }
            for i in 100..200u64 {
                det.on_event(&segment(6, i * 100, 1, 10));
            }
        }
        let detected: Vec<_> = log
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    SimEvent::HotSpotEntered {
                        origin: HotSpotOrigin::Detected,
                        ..
                    }
                )
            })
            .collect();
        assert!(
            detected.len() >= 2,
            "initial phase and the SI0→SI6 switch must both be detected: {detected:?}"
        );
        match detected.last().unwrap() {
            SimEvent::HotSpotEntered { hot_spot, now, .. } => {
                assert_eq!(*hot_spot, HotSpotId(4), "reuses last annotated id");
                assert!(*now >= 10_000, "switch detected after the phase change");
            }
            other => panic!("expected hot-spot event, got {other:?}"),
        }
    }
}
