//! Multi-application simulation: K traces contending for one
//! reconfigurable substrate through the [`FabricArbiter`].
//!
//! [`simulate_multi`] replays one trace per tenant, interleaving
//! invocations under a [`TenantArbitration`] and mapping the
//! [`TenancyConfig`] policy onto the arbiter's
//! [`ContentionPolicy`]:
//!
//! * [`TenantPolicy::Shared`] — one fabric, one serialized clock. Tenants
//!   alternate on the substrate; atoms loaded by one accelerate another
//!   ([`SimEvent::AtomShared`]) and evictions of a co-tenant's atoms are
//!   counted as contested ([`SimEvent::EvictionContested`]).
//! * [`TenantPolicy::Partitioned`] — each tenant gets a private fabric of
//!   `containers / K` containers with its own clock starting at 0. Tenants
//!   are perfectly cycle-isolated: each one's [`RunStats`] is bit-identical
//!   to a solo run on a fabric of its partition's size.
//!
//! A 1-tenant run (any policy) is bit-identical to [`crate::simulate`]:
//! the tenant handle drives the same arbiter code path the single-owner
//! `RunTimeManager` wraps, through the same replay loop.
//!
//! The non-RISPP [`SystemKind`]s have no shared substrate to arbitrate:
//! each tenant simply gets its own independent baseline system
//! (`containers / K` slots under `Partitioned`, the full pool — an
//! idealized duplicated substrate — under `Shared`) and replays solo.

use std::borrow::Cow;
use std::cell::RefCell;
use std::rc::Rc;

use rispp_core::{BurstSegment, ContentionPolicy, FabricArbiter, RecoveryPolicy, RecoveryStats};
use rispp_fabric::FaultModel;
use rispp_model::{SiId, SiLibrary};

use crate::backend::ExecutionSystem;
use crate::engine::{
    emit, finish_replay, replay_invocation, simulate_observed, ReplayState, SimConfig, SystemKind,
};
use crate::observer::{SimEvent, SimObserver};
use crate::stats::RunStats;
use crate::trace::{Burst, Invocation, Trace};

/// How the substrate is shared between the applications of a
/// multi-tenant run (the simulation-level mirror of [`ContentionPolicy`],
/// which needs the tenant count to be materialised).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TenantPolicy {
    /// Full sharing with owner tags, cross-app atom reuse and
    /// contention-aware scheduling.
    #[default]
    Shared,
    /// Static split: `containers / K` private containers per tenant,
    /// perfect cycle isolation.
    Partitioned,
}

/// How the multi-tenant engine picks the next tenant to run an
/// invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TenantArbitration {
    /// Strict rotation over the tenants that still have invocations left.
    #[default]
    RoundRobin,
    /// Always run the tenant with the fewest consumed cycles so far
    /// (lowest index on ties) — keeps the tenants' own clocks as close
    /// together as invocation granularity allows.
    CycleInterleaved,
}

/// Multi-application tenancy parameters of a [`SimConfig`].
///
/// `count` is advisory — [`simulate_multi`] derives the tenant count from
/// the number of traces it is given; the field exists so sweeps can carry
/// the intended K in the `Copy` config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenancyConfig {
    /// Intended number of tenants (1 = classic single-owner simulation).
    pub count: u16,
    /// How the substrate is shared.
    pub policy: TenantPolicy,
    /// How tenants are interleaved.
    pub arbitration: TenantArbitration,
}

impl Default for TenancyConfig {
    fn default() -> Self {
        TenancyConfig {
            count: 1,
            policy: TenantPolicy::Shared,
            arbitration: TenantArbitration::RoundRobin,
        }
    }
}

/// Aggregated results of one multi-tenant run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRunStats {
    /// Per-tenant statistics, indexed by tenant.
    pub per_tenant: Vec<RunStats>,
    /// Total cycles *consumed* across tenants (Σ of each tenant's share of
    /// the serialized clock under `Shared`; Σ of the private clocks under
    /// `Partitioned`). The throughput metric: lower is better for a fixed
    /// workload.
    pub aggregate_cycles: u64,
    /// Wall-clock span of the run: the final serialized clock under
    /// `Shared`, the slowest tenant's clock under `Partitioned`.
    pub makespan_cycles: u64,
    /// Foreign atoms found already loaded by co-tenants across all plans
    /// (cross-app reuse; zero outside `Shared` multi-tenancy).
    pub atoms_shared: u64,
    /// Loads that evicted an atom owned by a different application (zero
    /// outside `Shared` multi-tenancy).
    pub evictions_contested: u64,
}

/// One application's view of a shared [`FabricArbiter`], as an
/// [`ExecutionSystem`]: the multi-tenant counterpart of
/// [`RisppBackend`](crate::RisppBackend), forwarding every call with its
/// tenant index. With one tenant its behaviour (and label) is exactly the
/// single-owner backend's.
pub struct TenantHandle<'a> {
    arbiter: Rc<RefCell<FabricArbiter<'a>>>,
    app: u16,
    label: Cow<'static, str>,
    oracle: bool,
}

impl ExecutionSystem for TenantHandle<'_> {
    fn label(&self) -> Cow<'static, str> {
        self.label.clone()
    }

    fn enter_hot_spot(&mut self, invocation: &Invocation, now: u64) {
        let mut arbiter = self.arbiter.borrow_mut();
        if self.oracle {
            let profile = invocation.execution_profile();
            arbiter
                .enter_hot_spot_with_profile(self.app, invocation.hot_spot, &profile, now)
                .expect("trace and library are consistent");
        } else {
            arbiter
                .enter_hot_spot(self.app, invocation.hot_spot, &invocation.hints, now)
                .expect("trace and library are consistent");
        }
    }

    fn execute_burst(
        &mut self,
        si: SiId,
        count: u32,
        overhead: u32,
        start: u64,
    ) -> Vec<BurstSegment> {
        let mut out = Vec::new();
        self.execute_burst_into(si, count, overhead, start, &mut out);
        out
    }

    fn execute_burst_into(
        &mut self,
        si: SiId,
        count: u32,
        overhead: u32,
        start: u64,
        out: &mut Vec<BurstSegment>,
    ) {
        self.arbiter
            .borrow_mut()
            .execute_burst_into(self.app, si, count, overhead, start, out);
    }

    fn execute_bursts_batched(
        &mut self,
        bursts: &[Burst],
        start: u64,
        out: &mut Vec<BurstSegment>,
    ) -> usize {
        self.arbiter.borrow_mut().execute_bursts_batched(
            self.app,
            bursts.iter().map(|b| (b.si, b.count, b.overhead)),
            start,
            out,
        )
    }

    fn exit_hot_spot(&mut self, now: u64) {
        self.arbiter.borrow_mut().exit_hot_spot(self.app, now);
    }

    fn reconfiguration_stats(&self) -> (u64, u64) {
        // Per-application port accounting: with one tenant every load is
        // tagged 0, making this identical to the fabric-global counters
        // the single-owner backend reports.
        self.arbiter.borrow().app_port_stats(self.app)
    }

    fn recovery_stats(&self) -> RecoveryStats {
        self.arbiter.borrow().recovery_stats(self.app)
    }

    fn has_pending_activity(&self) -> bool {
        self.arbiter
            .borrow()
            .fabric_for(self.app)
            .next_event_at()
            .is_some()
    }

    fn recovery_active(&self) -> bool {
        self.arbiter
            .borrow()
            .fabric_for(self.app)
            .fault_model()
            .is_some()
    }

    fn telemetry_active(&self) -> bool {
        let arbiter = self.arbiter.borrow();
        arbiter.explain_enabled(self.app) || arbiter.fabric_for(self.app).journal_enabled()
    }

    fn drain_decisions(&mut self, out: &mut Vec<rispp_core::DecisionExplain>) {
        self.arbiter.borrow_mut().take_decisions(self.app, out);
    }

    fn drain_fabric_journal(&mut self, out: &mut Vec<rispp_fabric::FabricJournalEntry>) {
        self.arbiter.borrow_mut().drain_fabric_journal(self.app, out);
    }
}

/// Containers each tenant gets under a partitioned split of `total`.
fn partition_size(total: u16, tenants: usize) -> u16 {
    let k = u16::try_from(tenants.max(1)).expect("tenant count fits u16");
    total / k
}

/// Picks the next tenant with invocations left, or `None` when all traces
/// are drained.
fn pick_next(
    arbitration: TenantArbitration,
    prev: Option<usize>,
    next_inv: &[usize],
    traces: &[Trace],
    consumed: &[u64],
) -> Option<usize> {
    let k = traces.len();
    let remaining = |i: usize| next_inv[i] < traces[i].invocations().len();
    match arbitration {
        TenantArbitration::RoundRobin => {
            let first = prev.map_or(0, |p| (p + 1) % k);
            (0..k).map(|off| (first + off) % k).find(|&i| remaining(i))
        }
        TenantArbitration::CycleInterleaved => {
            (0..k).filter(|&i| remaining(i)).min_by_key(|&i| (consumed[i], i))
        }
    }
}

/// Replays one trace per tenant on the configured system under the
/// config's [`TenancyConfig`], returning per-tenant and aggregate
/// statistics. See [`simulate_multi_observed`] for extra observers.
///
/// # Panics
///
/// Panics if a trace references SIs outside `library`.
#[must_use]
pub fn simulate_multi(library: &SiLibrary, traces: &[Trace], config: &SimConfig) -> MultiRunStats {
    simulate_multi_observed(library, traces, config, &mut [])
}

/// [`simulate_multi`] with extra observers: `extra` is either empty or
/// holds exactly one observer per trace, attached to that tenant's event
/// stream alongside its [`RunStats`] collector.
///
/// Tenant event streams are interleaved at invocation granularity; the
/// switched-to tenant receives a [`SimEvent::TenantSwitched`] at the start
/// of each of its slices (only when more than one tenant runs).
///
/// # Panics
///
/// Panics if `extra` is non-empty with a length different from `traces`,
/// or if a trace references SIs outside `library`.
#[must_use]
pub fn simulate_multi_observed(
    library: &SiLibrary,
    traces: &[Trace],
    config: &SimConfig,
    extra: &mut [&mut (dyn SimObserver + '_)],
) -> MultiRunStats {
    assert!(
        extra.is_empty() || extra.len() == traces.len(),
        "extra observers must be empty or one per trace"
    );
    let k = traces.len();
    if k == 0 {
        return MultiRunStats {
            per_tenant: Vec::new(),
            aggregate_cycles: 0,
            makespan_cycles: 0,
            atoms_shared: 0,
            evictions_contested: 0,
        };
    }
    match config.system {
        SystemKind::Rispp(_) => simulate_multi_rispp(library, traces, config, extra),
        _ => simulate_multi_independent(library, traces, config, extra),
    }
}

/// The arbitrated RISPP path: one [`FabricArbiter`], K tenant handles,
/// invocation-sliced interleaving.
fn simulate_multi_rispp(
    library: &SiLibrary,
    traces: &[Trace],
    config: &SimConfig,
    extra: &mut [&mut (dyn SimObserver + '_)],
) -> MultiRunStats {
    let SystemKind::Rispp(kind) = config.system else {
        unreachable!("caller dispatches on the system kind");
    };
    let k = traces.len();
    let policy = match config.tenants.policy {
        TenantPolicy::Shared => ContentionPolicy::Shared,
        TenantPolicy::Partitioned => ContentionPolicy::Partitioned {
            containers_per_app: partition_size(config.containers, k),
        },
    };
    let mut builder = FabricArbiter::builder(library)
        .containers(config.containers)
        .tenants(u16::try_from(k).expect("tenant count fits u16"))
        .policy(policy)
        .scheduler(kind)
        .forecast(config.forecast)
        .explain(config.explain);
    if config.plan_cache {
        // One private cache per multi-tenant run: the application index
        // and tenant count are plan-key words, so K tenants share the
        // cache without ever sharing a decision across apps.
        builder = builder.plan_cache(rispp_core::PlanCacheHandle::private());
    }
    if let Some(bw) = config.port_bandwidth {
        builder = builder.port_bandwidth(bw);
    }
    if let Some(fc) = config.fault {
        builder = builder
            .fault_model(FaultModel::uniform_ppm(fc.rate_ppm, fc.seed))
            .recovery(RecoveryPolicy {
                max_retries: fc.max_retries,
                ..RecoveryPolicy::default()
            });
    }
    let mut arbiter = builder.build();
    if config.journal {
        arbiter.set_journal_enabled(true);
    }
    let arbiter = Rc::new(RefCell::new(arbiter));

    let base = kind.abbreviation();
    let mut handles: Vec<TenantHandle<'_>> = (0..k)
        .map(|i| TenantHandle {
            arbiter: Rc::clone(&arbiter),
            app: u16::try_from(i).expect("tenant index fits u16"),
            // With one tenant the label is the plain scheduler
            // abbreviation, keeping RunStats comparable (and equal) to a
            // single-tenant run.
            label: if k == 1 {
                Cow::Borrowed(base)
            } else {
                Cow::Owned(format!("{base}[t{i}]"))
            },
            oracle: config.oracle,
        })
        .collect();
    let mut stats: Vec<RunStats> = handles
        .iter()
        .map(|h| RunStats::new(h.label.clone(), library.len(), config.bucket_cycles, config.detail))
        .collect();
    let mut states: Vec<ReplayState> = Vec::with_capacity(k);
    for i in 0..k {
        let mut obs: Vec<&mut (dyn SimObserver + '_)> = Vec::with_capacity(2);
        obs.push(&mut stats[i]);
        if !extra.is_empty() {
            obs.push(&mut *extra[i]);
        }
        states.push(ReplayState::new(&handles[i], &obs));
    }

    // Shared tenants serialize on one global clock; partitioned tenants
    // each run their private fabric's clock from 0, so their results are
    // independent of the interleaving order.
    let shared_clock = matches!(policy, ContentionPolicy::Shared);
    let mut global_now = 0u64;
    let mut clocks = vec![0u64; k];
    let mut consumed = vec![0u64; k];
    let mut next_inv = vec![0usize; k];
    let mut prev: Option<usize> = None;
    // Contention counters already surfaced as events: per-tenant reuse
    // totals, and the substrate-global contested counter with its
    // per-tenant attribution (each delta goes to the tenant whose slice
    // uncovered it).
    let mut shared_seen = vec![0u64; k];
    let mut contested_seen = 0u64;
    let mut contested_totals = vec![0u64; k];

    while let Some(i) = pick_next(config.tenants.arbitration, prev, &next_inv, traces, &consumed) {
        let inv = &traces[i].invocations()[next_inv[i]];
        let start = if shared_clock { global_now } else { clocks[i] };
        let end;
        {
            let mut obs: Vec<&mut (dyn SimObserver + '_)> = Vec::with_capacity(2);
            obs.push(&mut stats[i]);
            if !extra.is_empty() {
                obs.push(&mut *extra[i]);
            }
            if k > 1 && prev != Some(i) {
                emit(
                    &mut obs,
                    SimEvent::TenantSwitched {
                        tenant: handles[i].app,
                        now: start,
                    },
                );
            }
            end = replay_invocation(&mut handles[i], inv, start, &mut states[i], &mut obs);
            let contested = arbiter.borrow().contested_evictions();
            if contested > contested_seen {
                let delta = contested - contested_seen;
                contested_seen = contested;
                contested_totals[i] += delta;
                emit(
                    &mut obs,
                    SimEvent::EvictionContested {
                        tenant: handles[i].app,
                        count: delta,
                        total: contested_totals[i],
                        now: end,
                    },
                );
            }
        }
        consumed[i] += end - start;
        if shared_clock {
            global_now = end;
        } else {
            clocks[i] = end;
        }
        // Cross-app reuse can advance for *any* tenant during this slice
        // (a fault-triggered re-plan replans co-tenants too), so poll all
        // of them.
        for j in 0..k {
            let cur = arbiter.borrow().atoms_shared(handles[j].app);
            if cur > shared_seen[j] {
                let mut obs: Vec<&mut (dyn SimObserver + '_)> = Vec::with_capacity(2);
                obs.push(&mut stats[j]);
                if !extra.is_empty() {
                    obs.push(&mut *extra[j]);
                }
                emit(
                    &mut obs,
                    SimEvent::AtomShared {
                        tenant: handles[j].app,
                        count: cur - shared_seen[j],
                        total: cur,
                        now: if shared_clock { global_now } else { clocks[j] },
                    },
                );
                shared_seen[j] = cur;
            }
        }
        next_inv[i] += 1;
        prev = Some(i);
    }

    for i in 0..k {
        let now = if shared_clock { global_now } else { clocks[i] };
        let mut obs: Vec<&mut (dyn SimObserver + '_)> = Vec::with_capacity(2);
        obs.push(&mut stats[i]);
        if !extra.is_empty() {
            obs.push(&mut *extra[i]);
        }
        finish_replay(&mut handles[i], now, consumed[i], &mut states[i], &mut obs);
    }

    MultiRunStats {
        aggregate_cycles: consumed.iter().sum(),
        makespan_cycles: if shared_clock {
            global_now
        } else {
            clocks.iter().copied().max().unwrap_or(0)
        },
        atoms_shared: shared_seen.iter().sum(),
        evictions_contested: contested_seen,
        per_tenant: stats,
    }
}

/// The baseline path: no shared substrate, so every tenant replays solo on
/// its own system (its partition's size under `Partitioned`, the full —
/// idealized, duplicated — pool under `Shared`).
fn simulate_multi_independent(
    library: &SiLibrary,
    traces: &[Trace],
    config: &SimConfig,
    extra: &mut [&mut (dyn SimObserver + '_)],
) -> MultiRunStats {
    let k = traces.len();
    let containers = match config.tenants.policy {
        TenantPolicy::Shared => config.containers,
        TenantPolicy::Partitioned => partition_size(config.containers, k),
    };
    let solo = SimConfig {
        containers,
        tenants: TenancyConfig::default(),
        ..*config
    };
    let mut per_tenant = Vec::with_capacity(k);
    for (i, trace) in traces.iter().enumerate() {
        let stats = if extra.is_empty() {
            simulate_observed(library, trace, &solo, &mut [])
        } else {
            simulate_observed(library, trace, &solo, &mut [&mut *extra[i]])
        };
        per_tenant.push(stats);
    }
    MultiRunStats {
        aggregate_cycles: per_tenant.iter().map(|s| s.total_cycles).sum(),
        makespan_cycles: per_tenant.iter().map(|s| s.total_cycles).max().unwrap_or(0),
        atoms_shared: 0,
        evictions_contested: 0,
        per_tenant,
    }
}
