//! The observer side of the engine: typed [`SimEvent`]s emitted by the
//! replay loop and the [`SimObserver`] trait consuming them.
//!
//! Statistics collection is *not* welded into the replay loop: the loop
//! emits events and every observer decides what to keep. [`RunStats`] is
//! one observer among equals; [`TraceLogObserver`] records the full event
//! stream for JSONL export ([`crate::export::event_log_jsonl`]) and
//! [`ProgressObserver`] counts finished runs across a parallel sweep.

use std::fmt;
use std::io::{self, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rispp_core::{BurstSegment, DecisionExplain};
use rispp_fabric::FabricJournalEntry;
use rispp_model::SiId;
use rispp_monitor::HotSpotId;

use crate::context::TraceContext;
use crate::stats::RunStats;

/// How a [`SimEvent::HotSpotEntered`] transition became known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotSpotOrigin {
    /// The trace carried an explicit hot-spot marker (the compile-time
    /// annotation path of the paper).
    Annotated,
    /// The transition was inferred from the SI execution stream by the
    /// windowed [`rispp_monitor::HotSpotDetector`] (the companion-work
    /// hardware detector), surfaced by
    /// [`DetectorObserver`](crate::DetectorObserver).
    Detected,
}

/// One typed event of a simulation run, in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimEvent {
    /// The system entered a hot spot at cycle `now` (before the prologue).
    HotSpotEntered {
        /// The hot spot being entered.
        hot_spot: HotSpotId,
        /// Cycle of entry.
        now: u64,
        /// Whether the entry came from a trace annotation or was detected
        /// from the execution stream.
        origin: HotSpotOrigin,
    },
    /// One homogeneous-latency stretch of a burst finished replaying.
    SegmentExecuted {
        /// The Special Instruction executed.
        si: SiId,
        /// The segment as reported by the backend.
        segment: BurstSegment,
        /// Base-processor cycles between consecutive executions.
        overhead: u32,
    },
    /// The backend's completed-load counter advanced (observed at replay
    /// granularity: after hot-spot entries and bursts, not per load).
    LoadCompleted {
        /// Loads that completed since the previous event.
        completed: u64,
        /// Cumulative loads completed so far.
        total: u64,
        /// Replay cycle at which the advance was observed.
        now: u64,
    },
    /// The backend reported new injected faults (CRC-aborted loads, SEU
    /// upsets, permanent tile failures) since the previous poll.
    FaultInjected {
        /// Faults injected since the previous event.
        count: u64,
        /// Cumulative faults injected so far.
        total: u64,
        /// Cumulative reconfiguration-port cycles lost to faulted loads.
        cycles_lost: u64,
        /// Replay cycle at which the advance was observed.
        now: u64,
    },
    /// The backend's recovery policy re-enqueued loads (abort retries or
    /// SEU scrub reloads) since the previous poll.
    LoadRetried {
        /// Retries issued since the previous event.
        count: u64,
        /// Cumulative retries so far.
        total: u64,
        /// Replay cycle at which the advance was observed.
        now: u64,
    },
    /// Containers were taken out of service (permanent failures or
    /// retry-exhausted quarantines) since the previous poll.
    ContainerQuarantined {
        /// Containers quarantined since the previous event.
        count: u64,
        /// Cumulative containers quarantined so far.
        total: u64,
        /// Replay cycle at which the advance was observed.
        now: u64,
    },
    /// Hot-spot re-plans on the shrunken fabric came back with no hardware
    /// at all, leaving the hot spot on the cISA software path.
    DegradedToSoftware {
        /// Degradations since the previous event.
        count: u64,
        /// Cumulative degradations so far.
        total: u64,
        /// Replay cycle at which the advance was observed.
        now: u64,
    },
    /// One Molecule-selection + Atom-schedule decision of the run-time
    /// manager, with all scored candidates and the chosen winners (emitted
    /// only when [`SimConfig::explain`](crate::SimConfig) is on). Boxed:
    /// the payload is large and rare relative to segment events.
    Decision(Box<DecisionExplain>),
    /// One Atom Container state transition from the fabric's journal
    /// (emitted only when [`SimConfig::journal`](crate::SimConfig) is on).
    /// Each entry carries its own exact cycle.
    ContainerTransition(FabricJournalEntry),
    /// The multi-tenant engine switched the active tenant (emitted into
    /// the switched-to tenant's stream at the start of its slice; never
    /// emitted by single-tenant runs).
    TenantSwitched {
        /// The tenant now running.
        tenant: u16,
        /// Cycle (on that tenant's clock) at which the slice starts.
        now: u64,
    },
    /// A tenant's plan found atoms it needs already loaded by co-tenants
    /// (cross-app reuse under a shared fabric).
    AtomShared {
        /// The tenant whose plan reused foreign atoms.
        tenant: u16,
        /// Foreign atoms reused since the previous event.
        count: u64,
        /// Cumulative foreign atoms reused by this tenant.
        total: u64,
        /// Replay cycle at which the advance was observed.
        now: u64,
    },
    /// Loads evicted atoms owned by a different application (contested
    /// evictions on a shared fabric).
    EvictionContested {
        /// The tenant whose activity the evictions are attributed to.
        tenant: u16,
        /// Contested evictions since the previous event.
        count: u64,
        /// Cumulative contested evictions attributed to this tenant.
        total: u64,
        /// Replay cycle at which the advance was observed.
        now: u64,
    },
    /// The trace is fully replayed.
    RunFinished {
        /// Total execution time in cycles.
        total_cycles: u64,
        /// Completed reconfiguration loads.
        reconfigurations: u64,
        /// Cycles the reconfiguration port was busy.
        reconfiguration_cycles: u64,
    },
}

/// Consumes the engine's event stream.
///
/// Observers are driven synchronously from the replay loop in
/// registration order; they must not assume anything about the backend
/// beyond what the events carry.
pub trait SimObserver {
    /// Handles one event.
    fn on_event(&mut self, event: &SimEvent);

    /// Receives the run's causal [`TraceContext`] before the first event,
    /// when the driving [`SimConfig`](crate::SimConfig) carries one.
    /// Exporting observers stamp their output with it (JSONL rows, metric
    /// labels, Perfetto tracks, flight-recorder bundles); the default
    /// implementation ignores it.
    fn set_trace_context(&mut self, context: TraceContext) {
        let _ = context;
    }

    /// Whether this observer wants the per-segment stream
    /// ([`SimEvent::SegmentExecuted`]) — by far the highest-frequency
    /// event of a replay (one per burst segment, millions per run).
    /// Observers that only react to coarse events (e.g. progress
    /// reporting on [`SimEvent::RunFinished`]) override this to `false`
    /// and the replay loop skips the dispatch entirely; every other
    /// event kind is still delivered.
    fn wants_segments(&self) -> bool {
        true
    }
}

impl<O: SimObserver + ?Sized> SimObserver for &mut O {
    fn on_event(&mut self, event: &SimEvent) {
        (**self).on_event(event);
    }

    fn set_trace_context(&mut self, context: TraceContext) {
        (**self).set_trace_context(context);
    }

    fn wants_segments(&self) -> bool {
        (**self).wants_segments()
    }
}

impl SimObserver for RunStats {
    fn on_event(&mut self, event: &SimEvent) {
        match event {
            SimEvent::SegmentExecuted {
                si,
                segment,
                overhead,
            } => {
                let per = u64::from(segment.latency) + u64::from(*overhead);
                self.record_segment(
                    *si,
                    segment.start,
                    segment.count,
                    per,
                    segment.latency,
                    segment.is_hardware(),
                );
            }
            SimEvent::RunFinished {
                total_cycles,
                reconfigurations,
                reconfiguration_cycles,
            } => {
                self.total_cycles = *total_cycles;
                self.reconfigurations = *reconfigurations;
                self.reconfiguration_cycles = *reconfiguration_cycles;
            }
            SimEvent::FaultInjected {
                total, cycles_lost, ..
            } => {
                self.faults_injected = *total;
                self.fault_cycles_lost = *cycles_lost;
            }
            SimEvent::LoadRetried { total, .. } => {
                self.load_retries = *total;
            }
            SimEvent::ContainerQuarantined { total, .. } => {
                self.containers_quarantined = *total;
            }
            SimEvent::DegradedToSoftware { total, .. } => {
                self.degraded_to_software = *total;
            }
            SimEvent::AtomShared { total, .. } => {
                self.atoms_shared = *total;
            }
            SimEvent::EvictionContested { total, .. } => {
                self.evictions_contested = *total;
            }
            SimEvent::HotSpotEntered { .. }
            | SimEvent::LoadCompleted { .. }
            | SimEvent::TenantSwitched { .. }
            | SimEvent::Decision(_)
            | SimEvent::ContainerTransition(_) => {}
        }
    }
}

/// Records a run's event stream for JSONL export — either buffered in
/// memory (see [`TraceLogObserver::new`], kept for tests and small runs)
/// or **streamed** line by line into any [`io::Write`] sink
/// ([`TraceLogObserver::streaming`]), so logging a 140-frame run holds one
/// line of text in memory instead of millions of events. Opt-in, like
/// `SimConfig::detail`: attach it only when the log is wanted.
#[derive(Default)]
pub struct TraceLogObserver {
    events: Vec<SimEvent>,
    sink: Option<Box<dyn Write>>,
    line: String,
    error: Option<io::Error>,
    context: Option<TraceContext>,
}

impl fmt::Debug for TraceLogObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceLogObserver")
            .field("events", &self.events.len())
            .field("streaming", &self.sink.is_some())
            .field("error", &self.error)
            .finish()
    }
}

impl TraceLogObserver {
    /// Creates an empty in-memory log.
    #[must_use]
    pub fn new() -> Self {
        TraceLogObserver::default()
    }

    /// Creates a write-through log: every event is rendered as one JSONL
    /// line (schema header first) and written to `sink` immediately, and
    /// nothing is buffered in memory. The first I/O error stops further
    /// writes and is reported by [`TraceLogObserver::finish`].
    #[must_use]
    pub fn streaming<W: Write + 'static>(sink: W) -> Self {
        let mut log = TraceLogObserver {
            events: Vec::new(),
            sink: Some(Box::new(sink)),
            line: String::new(),
            error: None,
            context: None,
        };
        crate::export::write_schema_header(&mut log.line);
        log.flush_line();
        log
    }

    /// Stamps every exported row with `context` (builder style). The
    /// engine also sets this automatically via
    /// [`SimObserver::set_trace_context`] when the driving
    /// [`SimConfig`](crate::SimConfig) carries a context.
    #[must_use]
    pub fn with_context(mut self, context: TraceContext) -> Self {
        self.context = Some(context);
        self
    }

    /// The trace context stamped onto exported rows, if any.
    #[must_use]
    pub fn context(&self) -> Option<TraceContext> {
        self.context
    }

    /// Whether this log streams to a sink instead of buffering.
    #[must_use]
    pub fn is_streaming(&self) -> bool {
        self.sink.is_some()
    }

    /// The recorded events in emission order (always empty in streaming
    /// mode — they went to the sink).
    #[must_use]
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Renders the buffered events as one JSON object per line, schema
    /// header first. Rows carry the trace-context fields when a context
    /// is attached.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        crate::export::event_log_jsonl_traced(&self.events, self.context.as_ref())
    }

    /// Flushes the sink and reports the first I/O error encountered while
    /// streaming, if any. A no-op `Ok` for in-memory logs.
    pub fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        match self.sink.as_mut() {
            Some(sink) => sink.flush(),
            None => Ok(()),
        }
    }

    fn flush_line(&mut self) {
        if self.error.is_some() {
            self.line.clear();
            return;
        }
        if let Some(sink) = self.sink.as_mut() {
            if let Err(e) = sink.write_all(self.line.as_bytes()) {
                self.error = Some(e);
            }
        }
        self.line.clear();
    }
}

impl SimObserver for TraceLogObserver {
    fn on_event(&mut self, event: &SimEvent) {
        if self.sink.is_some() {
            crate::export::write_event_jsonl_traced(&mut self.line, event, self.context.as_ref());
            self.flush_line();
        } else {
            self.events.push(event.clone());
        }
    }

    fn set_trace_context(&mut self, context: TraceContext) {
        self.context = Some(context);
    }
}

/// Reports run completions across a (possibly parallel) sweep: every
/// [`SimEvent::RunFinished`] increments the shared counter and invokes the
/// report callback with `(finished, total)`.
///
/// One observer instance is attached per job (they are cheap); the shared
/// [`AtomicUsize`] makes the count global across worker threads. Used by
/// the CLI `sweep` command and the `fig7` benchmark binary to print live
/// progress.
#[derive(Debug)]
pub struct ProgressObserver<F: FnMut(usize, usize)> {
    total: usize,
    finished: Arc<AtomicUsize>,
    report: F,
}

impl<F: FnMut(usize, usize)> ProgressObserver<F> {
    /// Creates a progress observer over `finished` (shared across all jobs
    /// of the sweep) reporting out of `total` runs.
    #[must_use]
    pub fn new(total: usize, finished: Arc<AtomicUsize>, report: F) -> Self {
        ProgressObserver {
            total,
            finished,
            report,
        }
    }
}

impl<F: FnMut(usize, usize)> SimObserver for ProgressObserver<F> {
    fn on_event(&mut self, event: &SimEvent) {
        if matches!(event, SimEvent::RunFinished { .. }) {
            let done = self.finished.fetch_add(1, Ordering::Relaxed) + 1;
            (self.report)(done, self.total);
        }
    }

    fn wants_segments(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_stats_observer_accumulates_segments_and_totals() {
        let mut stats = RunStats::new("x", 2, 100, false);
        stats.on_event(&SimEvent::SegmentExecuted {
            si: SiId(0),
            segment: BurstSegment::software(0, 10, 50),
            overhead: 5,
        });
        stats.on_event(&SimEvent::SegmentExecuted {
            si: SiId(1),
            segment: BurstSegment::hardware(550, 4, 20, 1),
            overhead: 5,
        });
        stats.on_event(&SimEvent::RunFinished {
            total_cycles: 650,
            reconfigurations: 3,
            reconfiguration_cycles: 90,
        });
        assert_eq!(stats.total_executions(), 14);
        assert_eq!(stats.hardware_executions[1], 4);
        assert_eq!(stats.total_cycles, 650);
        assert_eq!(stats.reconfigurations, 3);
        assert_eq!(stats.reconfiguration_cycles, 90);
    }

    #[test]
    fn trace_log_records_in_order() {
        let mut log = TraceLogObserver::new();
        let events = [
            SimEvent::HotSpotEntered {
                hot_spot: HotSpotId(0),
                now: 0,
                origin: HotSpotOrigin::Annotated,
            },
            SimEvent::RunFinished {
                total_cycles: 1,
                reconfigurations: 0,
                reconfiguration_cycles: 0,
            },
        ];
        for e in &events {
            log.on_event(e);
        }
        assert_eq!(log.events(), &events);
    }

    #[test]
    fn progress_observer_counts_run_finished_only() {
        let finished = Arc::new(AtomicUsize::new(0));
        let mut seen = Vec::new();
        {
            let mut p = ProgressObserver::new(2, Arc::clone(&finished), |d, t| seen.push((d, t)));
            p.on_event(&SimEvent::HotSpotEntered {
                hot_spot: HotSpotId(0),
                now: 0,
                origin: HotSpotOrigin::Annotated,
            });
            p.on_event(&SimEvent::RunFinished {
                total_cycles: 10,
                reconfigurations: 0,
                reconfiguration_cycles: 0,
            });
        }
        {
            let mut p = ProgressObserver::new(2, Arc::clone(&finished), |d, t| seen.push((d, t)));
            p.on_event(&SimEvent::RunFinished {
                total_cycles: 20,
                reconfigurations: 0,
                reconfiguration_cycles: 0,
            });
        }
        assert_eq!(seen, vec![(1, 2), (2, 2)]);
        assert_eq!(finished.load(Ordering::Relaxed), 2);
    }
}
