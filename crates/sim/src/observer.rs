//! The observer side of the engine: typed [`SimEvent`]s emitted by the
//! replay loop and the [`SimObserver`] trait consuming them.
//!
//! Statistics collection is *not* welded into the replay loop: the loop
//! emits events and every observer decides what to keep. [`RunStats`] is
//! one observer among equals; [`TraceLogObserver`] records the full event
//! stream for JSONL export ([`crate::export::event_log_jsonl`]) and
//! [`ProgressObserver`] counts finished runs across a parallel sweep.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rispp_core::BurstSegment;
use rispp_model::SiId;
use rispp_monitor::HotSpotId;

use crate::stats::RunStats;

/// One typed event of a simulation run, in emission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// The system entered a hot spot at cycle `now` (before the prologue).
    HotSpotEntered {
        /// The hot spot being entered.
        hot_spot: HotSpotId,
        /// Cycle of entry.
        now: u64,
    },
    /// One homogeneous-latency stretch of a burst finished replaying.
    SegmentExecuted {
        /// The Special Instruction executed.
        si: SiId,
        /// The segment as reported by the backend.
        segment: BurstSegment,
        /// Base-processor cycles between consecutive executions.
        overhead: u32,
    },
    /// The backend's completed-load counter advanced (observed at replay
    /// granularity: after hot-spot entries and bursts, not per load).
    LoadCompleted {
        /// Loads that completed since the previous event.
        completed: u64,
        /// Cumulative loads completed so far.
        total: u64,
        /// Replay cycle at which the advance was observed.
        now: u64,
    },
    /// The backend reported new injected faults (CRC-aborted loads, SEU
    /// upsets, permanent tile failures) since the previous poll.
    FaultInjected {
        /// Faults injected since the previous event.
        count: u64,
        /// Cumulative faults injected so far.
        total: u64,
        /// Cumulative reconfiguration-port cycles lost to faulted loads.
        cycles_lost: u64,
        /// Replay cycle at which the advance was observed.
        now: u64,
    },
    /// The backend's recovery policy re-enqueued loads (abort retries or
    /// SEU scrub reloads) since the previous poll.
    LoadRetried {
        /// Retries issued since the previous event.
        count: u64,
        /// Cumulative retries so far.
        total: u64,
        /// Replay cycle at which the advance was observed.
        now: u64,
    },
    /// Containers were taken out of service (permanent failures or
    /// retry-exhausted quarantines) since the previous poll.
    ContainerQuarantined {
        /// Containers quarantined since the previous event.
        count: u64,
        /// Cumulative containers quarantined so far.
        total: u64,
        /// Replay cycle at which the advance was observed.
        now: u64,
    },
    /// Hot-spot re-plans on the shrunken fabric came back with no hardware
    /// at all, leaving the hot spot on the cISA software path.
    DegradedToSoftware {
        /// Degradations since the previous event.
        count: u64,
        /// Cumulative degradations so far.
        total: u64,
        /// Replay cycle at which the advance was observed.
        now: u64,
    },
    /// The trace is fully replayed.
    RunFinished {
        /// Total execution time in cycles.
        total_cycles: u64,
        /// Completed reconfiguration loads.
        reconfigurations: u64,
        /// Cycles the reconfiguration port was busy.
        reconfiguration_cycles: u64,
    },
}

/// Consumes the engine's event stream.
///
/// Observers are driven synchronously from the replay loop in
/// registration order; they must not assume anything about the backend
/// beyond what the events carry.
pub trait SimObserver {
    /// Handles one event.
    fn on_event(&mut self, event: &SimEvent);

    /// Whether this observer wants the per-segment stream
    /// ([`SimEvent::SegmentExecuted`]) — by far the highest-frequency
    /// event of a replay (one per burst segment, millions per run).
    /// Observers that only react to coarse events (e.g. progress
    /// reporting on [`SimEvent::RunFinished`]) override this to `false`
    /// and the replay loop skips the dispatch entirely; every other
    /// event kind is still delivered.
    fn wants_segments(&self) -> bool {
        true
    }
}

impl SimObserver for RunStats {
    fn on_event(&mut self, event: &SimEvent) {
        match *event {
            SimEvent::SegmentExecuted {
                si,
                segment,
                overhead,
            } => {
                let per = u64::from(segment.latency) + u64::from(overhead);
                self.record_segment(
                    si,
                    segment.start,
                    segment.count,
                    per,
                    segment.latency,
                    segment.is_hardware(),
                );
            }
            SimEvent::RunFinished {
                total_cycles,
                reconfigurations,
                reconfiguration_cycles,
            } => {
                self.total_cycles = total_cycles;
                self.reconfigurations = reconfigurations;
                self.reconfiguration_cycles = reconfiguration_cycles;
            }
            SimEvent::FaultInjected {
                total, cycles_lost, ..
            } => {
                self.faults_injected = total;
                self.fault_cycles_lost = cycles_lost;
            }
            SimEvent::LoadRetried { total, .. } => {
                self.load_retries = total;
            }
            SimEvent::ContainerQuarantined { total, .. } => {
                self.containers_quarantined = total;
            }
            SimEvent::DegradedToSoftware { total, .. } => {
                self.degraded_to_software = total;
            }
            SimEvent::HotSpotEntered { .. } | SimEvent::LoadCompleted { .. } => {}
        }
    }
}

/// Records every event of a run for later export as a JSONL event log
/// (see [`crate::export::event_log_jsonl`]). Opt-in, like
/// `SimConfig::detail`: attach it only when the log is wanted — a full
/// H.264 run emits one event per burst segment.
#[derive(Debug, Clone, Default)]
pub struct TraceLogObserver {
    events: Vec<SimEvent>,
}

impl TraceLogObserver {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        TraceLogObserver::default()
    }

    /// The recorded events in emission order.
    #[must_use]
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Renders the recorded events as one JSON object per line.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        crate::export::event_log_jsonl(&self.events)
    }
}

impl SimObserver for TraceLogObserver {
    fn on_event(&mut self, event: &SimEvent) {
        self.events.push(*event);
    }
}

/// Reports run completions across a (possibly parallel) sweep: every
/// [`SimEvent::RunFinished`] increments the shared counter and invokes the
/// report callback with `(finished, total)`.
///
/// One observer instance is attached per job (they are cheap); the shared
/// [`AtomicUsize`] makes the count global across worker threads. Used by
/// the CLI `sweep` command and the `fig7` benchmark binary to print live
/// progress.
#[derive(Debug)]
pub struct ProgressObserver<F: FnMut(usize, usize)> {
    total: usize,
    finished: Arc<AtomicUsize>,
    report: F,
}

impl<F: FnMut(usize, usize)> ProgressObserver<F> {
    /// Creates a progress observer over `finished` (shared across all jobs
    /// of the sweep) reporting out of `total` runs.
    #[must_use]
    pub fn new(total: usize, finished: Arc<AtomicUsize>, report: F) -> Self {
        ProgressObserver {
            total,
            finished,
            report,
        }
    }
}

impl<F: FnMut(usize, usize)> SimObserver for ProgressObserver<F> {
    fn on_event(&mut self, event: &SimEvent) {
        if matches!(event, SimEvent::RunFinished { .. }) {
            let done = self.finished.fetch_add(1, Ordering::Relaxed) + 1;
            (self.report)(done, self.total);
        }
    }

    fn wants_segments(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_stats_observer_accumulates_segments_and_totals() {
        let mut stats = RunStats::new("x", 2, 100, false);
        stats.on_event(&SimEvent::SegmentExecuted {
            si: SiId(0),
            segment: BurstSegment::software(0, 10, 50),
            overhead: 5,
        });
        stats.on_event(&SimEvent::SegmentExecuted {
            si: SiId(1),
            segment: BurstSegment::hardware(550, 4, 20, 1),
            overhead: 5,
        });
        stats.on_event(&SimEvent::RunFinished {
            total_cycles: 650,
            reconfigurations: 3,
            reconfiguration_cycles: 90,
        });
        assert_eq!(stats.total_executions(), 14);
        assert_eq!(stats.hardware_executions[1], 4);
        assert_eq!(stats.total_cycles, 650);
        assert_eq!(stats.reconfigurations, 3);
        assert_eq!(stats.reconfiguration_cycles, 90);
    }

    #[test]
    fn trace_log_records_in_order() {
        let mut log = TraceLogObserver::new();
        let events = [
            SimEvent::HotSpotEntered {
                hot_spot: HotSpotId(0),
                now: 0,
            },
            SimEvent::RunFinished {
                total_cycles: 1,
                reconfigurations: 0,
                reconfiguration_cycles: 0,
            },
        ];
        for e in &events {
            log.on_event(e);
        }
        assert_eq!(log.events(), &events);
    }

    #[test]
    fn progress_observer_counts_run_finished_only() {
        let finished = Arc::new(AtomicUsize::new(0));
        let mut seen = Vec::new();
        {
            let mut p = ProgressObserver::new(2, Arc::clone(&finished), |d, t| seen.push((d, t)));
            p.on_event(&SimEvent::HotSpotEntered {
                hot_spot: HotSpotId(0),
                now: 0,
            });
            p.on_event(&SimEvent::RunFinished {
                total_cycles: 10,
                reconfigurations: 0,
                reconfiguration_cycles: 0,
            });
        }
        {
            let mut p = ProgressObserver::new(2, Arc::clone(&finished), |d, t| seen.push((d, t)));
            p.on_event(&SimEvent::RunFinished {
                total_cycles: 20,
                reconfigurations: 0,
                reconfiguration_cycles: 0,
            });
        }
        assert_eq!(seen, vec![(1, 2), (2, 2)]);
        assert_eq!(finished.load(Ordering::Relaxed), 2);
    }
}
