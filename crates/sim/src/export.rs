//! CSV and JSONL export of simulation results, for plotting the
//! regenerated figures and inspecting event logs with external tools.

use std::fmt::Write as _;

use rispp_model::SiLibrary;

use crate::observer::SimEvent;
use crate::stats::RunStats;

/// One-line CSV summary of a run:
/// `system,total_cycles,executions,hardware_fraction,reconfigurations,reconfiguration_cycles`.
#[must_use]
pub fn summary_csv_row(stats: &RunStats) -> String {
    format!(
        "{},{},{},{:.4},{},{}",
        stats.system,
        stats.total_cycles,
        stats.total_executions(),
        stats.hardware_fraction(),
        stats.reconfigurations,
        stats.reconfiguration_cycles
    )
}

/// CSV header matching [`summary_csv_row`].
#[must_use]
pub fn summary_csv_header() -> &'static str {
    "system,total_cycles,executions,hardware_fraction,reconfigurations,reconfiguration_cycles"
}

/// Per-bucket execution counts as CSV: one row per bucket, one column per
/// SI (named from the library), plus a combined column — the data behind
/// the bars of paper Figures 2 and 8.
///
/// Returns an empty string when the run did not collect detail.
#[must_use]
pub fn buckets_csv(stats: &RunStats, library: &SiLibrary) -> String {
    if !stats.has_detail() {
        return String::new();
    }
    let mut out = String::from("bucket");
    for si in library.iter() {
        let _ = write!(out, ",{}", si.name().replace(',', ";"));
    }
    out.push_str(",combined\n");
    let combined = stats.combined_buckets();
    for (b, &total) in combined.iter().enumerate() {
        let _ = write!(out, "{b}");
        for si in library.iter() {
            let _ = write!(out, ",{}", stats.executions_in_bucket(si.id(), b));
        }
        let _ = writeln!(out, ",{total}");
    }
    out
}

/// Per-SI latency timelines as CSV rows `si,cycle,latency` — the data
/// behind the step-down lines of paper Figure 8.
///
/// Returns an empty string when the run did not collect detail.
#[must_use]
pub fn latency_timeline_csv(stats: &RunStats, library: &SiLibrary) -> String {
    if !stats.has_detail() {
        return String::new();
    }
    let mut out = String::from("si,cycle,latency\n");
    for si in library.iter() {
        if let Some(timeline) = stats.latency_timeline.get(si.id().index()) {
            for event in timeline {
                let _ = writeln!(
                    out,
                    "{},{},{}",
                    si.name().replace(',', ";"),
                    event.at,
                    event.latency
                );
            }
        }
    }
    out
}

/// Renders a recorded event stream as a JSONL log: one JSON object per
/// line, each with an `"event"` discriminator — the serialisation behind
/// [`TraceLogObserver::to_jsonl`](crate::TraceLogObserver::to_jsonl) and
/// the CLI's `--log-events` flag.
#[must_use]
pub fn event_log_jsonl(events: &[SimEvent]) -> String {
    let mut out = String::new();
    for event in events {
        match *event {
            SimEvent::HotSpotEntered { hot_spot, now } => {
                let _ = writeln!(
                    out,
                    r#"{{"event":"hot_spot_entered","hot_spot":{},"now":{now}}}"#,
                    hot_spot.0
                );
            }
            SimEvent::SegmentExecuted {
                si,
                segment,
                overhead,
            } => {
                let _ = write!(
                    out,
                    r#"{{"event":"segment_executed","si":{},"start":{},"count":{},"latency":{},"overhead":{overhead},"#,
                    si.index(),
                    segment.start,
                    segment.count,
                    segment.latency,
                );
                match segment.variant_index {
                    Some(v) => {
                        let _ = writeln!(out, r#""variant":{v}}}"#);
                    }
                    None => {
                        let _ = writeln!(out, r#""variant":null}}"#);
                    }
                }
            }
            SimEvent::LoadCompleted {
                completed,
                total,
                now,
            } => {
                let _ = writeln!(
                    out,
                    r#"{{"event":"load_completed","completed":{completed},"total":{total},"now":{now}}}"#
                );
            }
            SimEvent::FaultInjected {
                count,
                total,
                cycles_lost,
                now,
            } => {
                let _ = writeln!(
                    out,
                    r#"{{"event":"fault_injected","count":{count},"total":{total},"cycles_lost":{cycles_lost},"now":{now}}}"#
                );
            }
            SimEvent::LoadRetried { count, total, now } => {
                let _ = writeln!(
                    out,
                    r#"{{"event":"load_retried","count":{count},"total":{total},"now":{now}}}"#
                );
            }
            SimEvent::ContainerQuarantined { count, total, now } => {
                let _ = writeln!(
                    out,
                    r#"{{"event":"container_quarantined","count":{count},"total":{total},"now":{now}}}"#
                );
            }
            SimEvent::DegradedToSoftware { count, total, now } => {
                let _ = writeln!(
                    out,
                    r#"{{"event":"degraded_to_software","count":{count},"total":{total},"now":{now}}}"#
                );
            }
            SimEvent::RunFinished {
                total_cycles,
                reconfigurations,
                reconfiguration_cycles,
            } => {
                let _ = writeln!(
                    out,
                    r#"{{"event":"run_finished","total_cycles":{total_cycles},"reconfigurations":{reconfigurations},"reconfiguration_cycles":{reconfiguration_cycles}}}"#
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::trace::{Burst, Invocation, Trace};
    use rispp_core::SchedulerKind;
    use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibraryBuilder};
    use rispp_monitor::HotSpotId;

    fn library() -> SiLibrary {
        let universe = AtomUniverse::from_types([AtomTypeInfo::new("A1")]).unwrap();
        let mut b = SiLibraryBuilder::new(universe);
        b.special_instruction("X", 1_000)
            .unwrap()
            .molecule(Molecule::from_counts([1]), 50)
            .unwrap();
        b.build().unwrap()
    }

    fn run(detail: bool) -> RunStats {
        let lib = library();
        let trace = Trace::from_invocations(vec![Invocation {
            hot_spot: HotSpotId(0),
            prologue_cycles: 100,
            bursts: vec![Burst {
                si: SiId(0),
                count: 2_000,
                overhead: 10,
            }],
            hints: vec![(SiId(0), 2_000)],
        }]);
        simulate(
            &lib,
            &trace,
            &SimConfig::rispp(2, SchedulerKind::Hef).with_detail(detail),
        )
    }

    #[test]
    fn summary_row_has_all_fields() {
        let stats = run(false);
        let row = summary_csv_row(&stats);
        assert_eq!(row.split(',').count(), summary_csv_header().split(',').count());
        assert!(row.starts_with("HEF,"));
    }

    #[test]
    fn buckets_csv_sums_match() {
        let lib = library();
        let stats = run(true);
        let csv = buckets_csv(&stats, &lib);
        let mut total = 0u64;
        for line in csv.lines().skip(1) {
            let last = line.rsplit(',').next().unwrap();
            total += last.parse::<u64>().unwrap();
        }
        assert_eq!(total, stats.total_executions());
    }

    #[test]
    fn timeline_csv_contains_the_upgrade() {
        let lib = library();
        let stats = run(true);
        let csv = latency_timeline_csv(&stats, &lib);
        // First segment starts after the 100-cycle prologue at software
        // latency; a later one records the upgraded 50-cycle molecule.
        assert!(csv.lines().any(|l| l.starts_with("X,") && l.ends_with(",1000")));
        assert!(csv.lines().any(|l| l.starts_with("X,") && l.ends_with(",50")));
    }

    #[test]
    fn no_detail_yields_empty_exports() {
        let lib = library();
        let stats = run(false);
        assert!(buckets_csv(&stats, &lib).is_empty());
        assert!(latency_timeline_csv(&stats, &lib).is_empty());
    }

    #[test]
    fn event_log_jsonl_one_object_per_event() {
        use crate::engine::simulate_observed;
        use crate::observer::{SimObserver, TraceLogObserver};

        let lib = library();
        let trace = Trace::from_invocations(vec![Invocation {
            hot_spot: HotSpotId(0),
            prologue_cycles: 100,
            bursts: vec![Burst {
                si: SiId(0),
                count: 2_000,
                overhead: 10,
            }],
            hints: vec![(SiId(0), 2_000)],
        }]);
        let mut log = TraceLogObserver::new();
        {
            let mut extra: [&mut dyn SimObserver; 1] = [&mut log];
            let _ = simulate_observed(
                &lib,
                &trace,
                &SimConfig::rispp(2, SchedulerKind::Hef),
                &mut extra,
            );
        }
        let jsonl = log.to_jsonl();
        assert_eq!(jsonl.lines().count(), log.events().len());
        assert!(jsonl.starts_with(r#"{"event":"hot_spot_entered""#));
        assert!(jsonl.lines().last().unwrap().starts_with(r#"{"event":"run_finished""#));
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            // Crude JSON sanity: balanced braces and quoted keys.
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "{line}"
            );
        }
        // The log must contain the executed segments and at least one load.
        assert!(jsonl.contains(r#""event":"segment_executed""#));
        assert!(jsonl.contains(r#""event":"load_completed""#));
    }
}
