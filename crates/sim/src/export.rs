//! CSV and JSONL export of simulation results, for plotting the
//! regenerated figures and inspecting event logs with external tools.

use std::fmt::Write as _;

use rispp_model::SiLibrary;

use crate::context::TraceContext;
use crate::observer::SimEvent;
use crate::stats::RunStats;

/// One-line CSV summary of a run:
/// `system,total_cycles,executions,hardware_fraction,reconfigurations,reconfiguration_cycles`.
#[must_use]
pub fn summary_csv_row(stats: &RunStats) -> String {
    format!(
        "{},{},{},{:.4},{},{}",
        stats.system,
        stats.total_cycles,
        stats.total_executions(),
        stats.hardware_fraction(),
        stats.reconfigurations,
        stats.reconfiguration_cycles
    )
}

/// CSV header matching [`summary_csv_row`].
#[must_use]
pub fn summary_csv_header() -> &'static str {
    "system,total_cycles,executions,hardware_fraction,reconfigurations,reconfiguration_cycles"
}

/// Per-bucket execution counts as CSV: one row per bucket, one column per
/// SI (named from the library), plus a combined column — the data behind
/// the bars of paper Figures 2 and 8.
///
/// Returns an empty string when the run did not collect detail.
#[must_use]
pub fn buckets_csv(stats: &RunStats, library: &SiLibrary) -> String {
    if !stats.has_detail() {
        return String::new();
    }
    let mut out = String::from("bucket");
    for si in library.iter() {
        let _ = write!(out, ",{}", si.name().replace(',', ";"));
    }
    out.push_str(",combined\n");
    let combined = stats.combined_buckets();
    for (b, &total) in combined.iter().enumerate() {
        let _ = write!(out, "{b}");
        for si in library.iter() {
            let _ = write!(out, ",{}", stats.executions_in_bucket(si.id(), b));
        }
        let _ = writeln!(out, ",{total}");
    }
    out
}

/// Per-SI latency timelines as CSV rows `si,cycle,latency` — the data
/// behind the step-down lines of paper Figure 8.
///
/// Returns an empty string when the run did not collect detail.
#[must_use]
pub fn latency_timeline_csv(stats: &RunStats, library: &SiLibrary) -> String {
    if !stats.has_detail() {
        return String::new();
    }
    let mut out = String::from("si,cycle,latency\n");
    for si in library.iter() {
        if let Some(timeline) = stats.latency_timeline.get(si.id().index()) {
            for event in timeline {
                let _ = writeln!(
                    out,
                    "{},{},{}",
                    si.name().replace(',', ";"),
                    event.at,
                    event.latency
                );
            }
        }
    }
    out
}

/// Version of the JSONL event-log schema emitted by [`event_log_jsonl`].
/// Bumped whenever a field or variant changes shape; consumers check the
/// `{"event":"schema","schema_version":N}` header line and must reject
/// versions they do not understand — failing loudly on the header, not
/// silently on rows.
///
/// v4: every row may carry the optional causal-trace fields `trace_id`,
/// `trace_tenant` and `attempt` (present on all rows of a log whose run
/// had a [`TraceContext`] attached, absent
/// otherwise). The tenant field is prefixed because tenant events
/// (`tenant_switched`, `atom_shared`, `eviction_contested`) already carry
/// a payload `tenant` key that may legitimately differ from the job's.
pub const EVENT_LOG_SCHEMA_VERSION: u32 = 4;

/// Appends the JSONL schema-header line (the first line of every event
/// log) to `out`.
pub fn write_schema_header(out: &mut String) {
    let _ = writeln!(
        out,
        r#"{{"event":"schema","schema_version":{EVENT_LOG_SCHEMA_VERSION}}}"#
    );
}

/// Renders a recorded event stream as a JSONL log: a schema-header line
/// followed by one JSON object per event, each with an `"event"`
/// discriminator — the serialisation behind
/// [`TraceLogObserver::to_jsonl`](crate::TraceLogObserver::to_jsonl) and
/// the CLI's `--log-events` flag.
#[must_use]
pub fn event_log_jsonl(events: &[SimEvent]) -> String {
    event_log_jsonl_traced(events, None)
}

/// [`event_log_jsonl`] with an optional causal [`TraceContext`]: when
/// `context` is `Some`, every row carries the schema-v4 `trace_id`,
/// `trace_tenant` and `attempt` fields.
#[must_use]
pub fn event_log_jsonl_traced(events: &[SimEvent], context: Option<&TraceContext>) -> String {
    let mut out = String::new();
    write_schema_header(&mut out);
    for event in events {
        write_event_jsonl_traced(&mut out, event, context);
    }
    out
}

/// [`write_event_jsonl`] with an optional causal [`TraceContext`]. With a
/// context the rendered row gains the trailing `trace_id`, `trace_tenant`
/// and `attempt` fields (schema v4); without one it is byte-identical to
/// [`write_event_jsonl`]. This is the single serialisation point shared
/// by the streaming event log and the flight recorder, which is what
/// makes a flight-recorder bundle tail bit-identical to the suffix of a
/// `--log-events` file recorded with the same context.
pub fn write_event_jsonl_traced(out: &mut String, event: &SimEvent, context: Option<&TraceContext>) {
    let Some(ctx) = context else {
        write_event_jsonl(out, event);
        return;
    };
    write_event_jsonl(out, event);
    // Every writer above emits exactly one `…}\n` line; splice the trace
    // fields in front of the closing brace.
    debug_assert!(out.ends_with("}\n"));
    out.truncate(out.len() - 2);
    let _ = writeln!(
        out,
        r#","trace_id":{},"trace_tenant":{},"attempt":{}}}"#,
        ctx.trace_id, ctx.tenant, ctx.attempt
    );
}

/// Appends one event as a single JSONL line to `out` — the streaming
/// building block behind [`event_log_jsonl`] and
/// [`TraceLogObserver::streaming`](crate::TraceLogObserver::streaming).
pub fn write_event_jsonl(out: &mut String, event: &SimEvent) {
    use rispp_fabric::FabricJournalEntry;

    match event {
        SimEvent::HotSpotEntered {
            hot_spot,
            now,
            origin,
        } => {
            let origin = match origin {
                crate::HotSpotOrigin::Annotated => "annotated",
                crate::HotSpotOrigin::Detected => "detected",
            };
            let _ = writeln!(
                out,
                r#"{{"event":"hot_spot_entered","hot_spot":{},"now":{now},"origin":"{origin}"}}"#,
                hot_spot.0
            );
        }
        SimEvent::SegmentExecuted {
            si,
            segment,
            overhead,
        } => {
            let _ = write!(
                out,
                r#"{{"event":"segment_executed","si":{},"start":{},"count":{},"latency":{},"overhead":{overhead},"#,
                si.index(),
                segment.start,
                segment.count,
                segment.latency,
            );
            match segment.variant_index {
                Some(v) => {
                    let _ = writeln!(out, r#""variant":{v}}}"#);
                }
                None => {
                    let _ = writeln!(out, r#""variant":null}}"#);
                }
            }
        }
        SimEvent::LoadCompleted {
            completed,
            total,
            now,
        } => {
            let _ = writeln!(
                out,
                r#"{{"event":"load_completed","completed":{completed},"total":{total},"now":{now}}}"#
            );
        }
        SimEvent::FaultInjected {
            count,
            total,
            cycles_lost,
            now,
        } => {
            let _ = writeln!(
                out,
                r#"{{"event":"fault_injected","count":{count},"total":{total},"cycles_lost":{cycles_lost},"now":{now}}}"#
            );
        }
        SimEvent::LoadRetried { count, total, now } => {
            let _ = writeln!(
                out,
                r#"{{"event":"load_retried","count":{count},"total":{total},"now":{now}}}"#
            );
        }
        SimEvent::ContainerQuarantined { count, total, now } => {
            let _ = writeln!(
                out,
                r#"{{"event":"container_quarantined","count":{count},"total":{total},"now":{now}}}"#
            );
        }
        SimEvent::DegradedToSoftware { count, total, now } => {
            let _ = writeln!(
                out,
                r#"{{"event":"degraded_to_software","count":{count},"total":{total},"now":{now}}}"#
            );
        }
        SimEvent::TenantSwitched { tenant, now } => {
            let _ = writeln!(
                out,
                r#"{{"event":"tenant_switched","tenant":{tenant},"now":{now}}}"#
            );
        }
        SimEvent::AtomShared {
            tenant,
            count,
            total,
            now,
        } => {
            let _ = writeln!(
                out,
                r#"{{"event":"atom_shared","tenant":{tenant},"count":{count},"total":{total},"now":{now}}}"#
            );
        }
        SimEvent::EvictionContested {
            tenant,
            count,
            total,
            now,
        } => {
            let _ = writeln!(
                out,
                r#"{{"event":"eviction_contested","tenant":{tenant},"count":{count},"total":{total},"now":{now}}}"#
            );
        }
        SimEvent::Decision(d) => {
            let upgrades = d
                .schedule
                .rounds
                .iter()
                .filter(|r| r.chosen.is_some())
                .count();
            let _ = write!(
                out,
                r#"{{"event":"decision","now":{},"containers":{},"scheduler":"{}","selected":{},"rejected":{},"selection_rounds":{},"schedule_rounds":{},"upgrades":{},"hot_spot":"#,
                d.now,
                d.containers,
                d.schedule.scheduler,
                d.selection.selection.len(),
                d.selection.rejected.len(),
                d.selection.rounds.len(),
                d.schedule.rounds.len(),
                upgrades,
            );
            match d.hot_spot {
                Some(hs) => {
                    let _ = writeln!(out, "{}}}", hs.0);
                }
                None => {
                    let _ = writeln!(out, "null}}");
                }
            }
        }
        SimEvent::ContainerTransition(entry) => {
            match entry {
                FabricJournalEntry::LoadStarted {
                    container,
                    atom,
                    at,
                    finish,
                } => {
                    let _ = writeln!(
                        out,
                        r#"{{"event":"container_transition","kind":"load_started","container":{},"atom":{},"at":{at},"finish":{finish}}}"#,
                        container.index(),
                        atom.index()
                    );
                }
                FabricJournalEntry::LoadFinished { container, atom, at } => {
                    let _ = writeln!(
                        out,
                        r#"{{"event":"container_transition","kind":"load_finished","container":{},"atom":{},"at":{at}}}"#,
                        container.index(),
                        atom.index()
                    );
                }
                FabricJournalEntry::LoadAborted { container, atom, at } => {
                    let _ = writeln!(
                        out,
                        r#"{{"event":"container_transition","kind":"load_aborted","container":{},"atom":{},"at":{at}}}"#,
                        container.index(),
                        atom.index()
                    );
                }
                FabricJournalEntry::AtomCorrupted { container, atom, at } => {
                    let _ = writeln!(
                        out,
                        r#"{{"event":"container_transition","kind":"atom_corrupted","container":{},"atom":{},"at":{at}}}"#,
                        container.index(),
                        atom.index()
                    );
                }
                FabricJournalEntry::ContainerQuarantined { container, at } => {
                    let _ = writeln!(
                        out,
                        r#"{{"event":"container_transition","kind":"container_quarantined","container":{},"at":{at}}}"#,
                        container.index()
                    );
                }
            }
        }
        SimEvent::RunFinished {
            total_cycles,
            reconfigurations,
            reconfiguration_cycles,
        } => {
            let _ = writeln!(
                out,
                r#"{{"event":"run_finished","total_cycles":{total_cycles},"reconfigurations":{reconfigurations},"reconfiguration_cycles":{reconfiguration_cycles}}}"#
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::trace::{Burst, Invocation, Trace};
    use rispp_core::SchedulerKind;
    use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibraryBuilder};
    use rispp_monitor::HotSpotId;

    fn library() -> SiLibrary {
        let universe = AtomUniverse::from_types([AtomTypeInfo::new("A1")]).unwrap();
        let mut b = SiLibraryBuilder::new(universe);
        b.special_instruction("X", 1_000)
            .unwrap()
            .molecule(Molecule::from_counts([1]), 50)
            .unwrap();
        b.build().unwrap()
    }

    fn run(detail: bool) -> RunStats {
        let lib = library();
        let trace = Trace::from_invocations(vec![Invocation {
            hot_spot: HotSpotId(0),
            prologue_cycles: 100,
            bursts: vec![Burst {
                si: SiId(0),
                count: 2_000,
                overhead: 10,
            }],
            hints: vec![(SiId(0), 2_000)],
        }]);
        simulate(
            &lib,
            &trace,
            &SimConfig::rispp(2, SchedulerKind::Hef).with_detail(detail),
        )
    }

    #[test]
    fn summary_row_has_all_fields() {
        let stats = run(false);
        let row = summary_csv_row(&stats);
        assert_eq!(row.split(',').count(), summary_csv_header().split(',').count());
        assert!(row.starts_with("HEF,"));
    }

    #[test]
    fn buckets_csv_sums_match() {
        let lib = library();
        let stats = run(true);
        let csv = buckets_csv(&stats, &lib);
        let mut total = 0u64;
        for line in csv.lines().skip(1) {
            let last = line.rsplit(',').next().unwrap();
            total += last.parse::<u64>().unwrap();
        }
        assert_eq!(total, stats.total_executions());
    }

    #[test]
    fn timeline_csv_contains_the_upgrade() {
        let lib = library();
        let stats = run(true);
        let csv = latency_timeline_csv(&stats, &lib);
        // First segment starts after the 100-cycle prologue at software
        // latency; a later one records the upgraded 50-cycle molecule.
        assert!(csv.lines().any(|l| l.starts_with("X,") && l.ends_with(",1000")));
        assert!(csv.lines().any(|l| l.starts_with("X,") && l.ends_with(",50")));
    }

    #[test]
    fn no_detail_yields_empty_exports() {
        let lib = library();
        let stats = run(false);
        assert!(buckets_csv(&stats, &lib).is_empty());
        assert!(latency_timeline_csv(&stats, &lib).is_empty());
    }

    #[test]
    fn event_log_jsonl_one_object_per_event() {
        use crate::engine::simulate_observed;
        use crate::observer::{SimObserver, TraceLogObserver};

        let lib = library();
        let trace = Trace::from_invocations(vec![Invocation {
            hot_spot: HotSpotId(0),
            prologue_cycles: 100,
            bursts: vec![Burst {
                si: SiId(0),
                count: 2_000,
                overhead: 10,
            }],
            hints: vec![(SiId(0), 2_000)],
        }]);
        let mut log = TraceLogObserver::new();
        {
            let mut extra: [&mut dyn SimObserver; 1] = [&mut log];
            let _ = simulate_observed(
                &lib,
                &trace,
                &SimConfig::rispp(2, SchedulerKind::Hef),
                &mut extra,
            );
        }
        let jsonl = log.to_jsonl();
        // One line per event plus the schema header.
        assert_eq!(jsonl.lines().count(), log.events().len() + 1);
        assert!(jsonl.starts_with(&format!(
            r#"{{"event":"schema","schema_version":{EVENT_LOG_SCHEMA_VERSION}}}"#
        )));
        assert!(jsonl.lines().nth(1).unwrap().starts_with(r#"{"event":"hot_spot_entered""#));
        assert!(jsonl.lines().last().unwrap().starts_with(r#"{"event":"run_finished""#));
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            // Crude JSON sanity: balanced braces and quoted keys.
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "{line}"
            );
        }
        // The log must contain the executed segments and at least one load.
        assert!(jsonl.contains(r#""event":"segment_executed""#));
        assert!(jsonl.contains(r#""event":"load_completed""#));
    }

    /// Every [`SimEvent`] variant must serialise to one parseable JSON
    /// object carrying its discriminator and every field a consumer needs.
    #[test]
    fn every_event_variant_round_trips_with_all_fields() {
        use crate::observer::{HotSpotOrigin, SimEvent};
        use rispp_core::{BurstSegment, DecisionExplain};
        use rispp_fabric::{ContainerId, FabricJournalEntry};
        use rispp_model::AtomTypeId;
        use rispp_telemetry::JsonValue;

        let decision = DecisionExplain {
            now: 77,
            hot_spot: Some(HotSpotId(3)),
            containers: 9,
            ..DecisionExplain::default()
        };
        // (event, discriminator, required fields) — one row per variant.
        let cases: Vec<(SimEvent, &str, &[&str])> = vec![
            (
                SimEvent::HotSpotEntered {
                    hot_spot: HotSpotId(1),
                    now: 10,
                    origin: HotSpotOrigin::Detected,
                },
                "hot_spot_entered",
                &["hot_spot", "now", "origin"],
            ),
            (
                SimEvent::SegmentExecuted {
                    si: SiId(2),
                    segment: BurstSegment::hardware(20, 5, 30, 1),
                    overhead: 4,
                },
                "segment_executed",
                &["si", "start", "count", "latency", "overhead", "variant"],
            ),
            (
                SimEvent::LoadCompleted {
                    completed: 1,
                    total: 2,
                    now: 30,
                },
                "load_completed",
                &["completed", "total", "now"],
            ),
            (
                SimEvent::FaultInjected {
                    count: 1,
                    total: 3,
                    cycles_lost: 500,
                    now: 40,
                },
                "fault_injected",
                &["count", "total", "cycles_lost", "now"],
            ),
            (
                SimEvent::LoadRetried {
                    count: 1,
                    total: 4,
                    now: 50,
                },
                "load_retried",
                &["count", "total", "now"],
            ),
            (
                SimEvent::ContainerQuarantined {
                    count: 1,
                    total: 5,
                    now: 60,
                },
                "container_quarantined",
                &["count", "total", "now"],
            ),
            (
                SimEvent::DegradedToSoftware {
                    count: 1,
                    total: 6,
                    now: 70,
                },
                "degraded_to_software",
                &["count", "total", "now"],
            ),
            (
                SimEvent::Decision(Box::new(decision)),
                "decision",
                &[
                    "now",
                    "containers",
                    "scheduler",
                    "selected",
                    "rejected",
                    "selection_rounds",
                    "schedule_rounds",
                    "upgrades",
                    "hot_spot",
                ],
            ),
            (
                SimEvent::ContainerTransition(FabricJournalEntry::LoadStarted {
                    container: ContainerId(0),
                    atom: AtomTypeId(1),
                    at: 80,
                    finish: 90,
                }),
                "container_transition",
                &["kind", "container", "atom", "at", "finish"],
            ),
            (
                SimEvent::ContainerTransition(FabricJournalEntry::LoadFinished {
                    container: ContainerId(0),
                    atom: AtomTypeId(1),
                    at: 90,
                }),
                "container_transition",
                &["kind", "container", "atom", "at"],
            ),
            (
                SimEvent::ContainerTransition(FabricJournalEntry::LoadAborted {
                    container: ContainerId(0),
                    atom: AtomTypeId(1),
                    at: 91,
                }),
                "container_transition",
                &["kind", "container", "atom", "at"],
            ),
            (
                SimEvent::ContainerTransition(FabricJournalEntry::AtomCorrupted {
                    container: ContainerId(0),
                    atom: AtomTypeId(1),
                    at: 92,
                }),
                "container_transition",
                &["kind", "container", "atom", "at"],
            ),
            (
                SimEvent::ContainerTransition(FabricJournalEntry::ContainerQuarantined {
                    container: ContainerId(0),
                    at: 93,
                }),
                "container_transition",
                &["kind", "container", "at"],
            ),
            (
                SimEvent::TenantSwitched { tenant: 1, now: 94 },
                "tenant_switched",
                &["tenant", "now"],
            ),
            (
                SimEvent::AtomShared {
                    tenant: 1,
                    count: 2,
                    total: 5,
                    now: 95,
                },
                "atom_shared",
                &["tenant", "count", "total", "now"],
            ),
            (
                SimEvent::EvictionContested {
                    tenant: 0,
                    count: 1,
                    total: 3,
                    now: 96,
                },
                "eviction_contested",
                &["tenant", "count", "total", "now"],
            ),
            (
                SimEvent::RunFinished {
                    total_cycles: 100,
                    reconfigurations: 7,
                    reconfiguration_cycles: 800,
                },
                "run_finished",
                &["total_cycles", "reconfigurations", "reconfiguration_cycles"],
            ),
        ];

        let events: Vec<SimEvent> = cases.iter().map(|(e, _, _)| e.clone()).collect();
        let jsonl = event_log_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), cases.len() + 1);

        let header = JsonValue::parse(lines[0]).expect("schema header parses");
        assert_eq!(header.get("event").and_then(JsonValue::as_str), Some("schema"));
        assert_eq!(
            header.get("schema_version").and_then(JsonValue::as_u64),
            Some(u64::from(EVENT_LOG_SCHEMA_VERSION))
        );

        for ((_, discriminator, fields), line) in cases.iter().zip(&lines[1..]) {
            let value = JsonValue::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(
                value.get("event").and_then(JsonValue::as_str),
                Some(*discriminator),
                "{line}"
            );
            for field in *fields {
                assert!(
                    value.get(field).is_some(),
                    "field `{field}` missing from {line}"
                );
            }
            // Untraced logs must not invent trace fields.
            for field in ["trace_id", "trace_tenant", "attempt"] {
                assert!(
                    value.get(field).is_none(),
                    "unexpected trace field `{field}` in untraced {line}"
                );
            }
        }

        // The same stream rendered with a trace context must carry the
        // schema-v4 trace fields on *every* variant, with the exact
        // values handed in.
        let ctx = crate::TraceContext::new(9_001).with_tenant(2).with_attempt(3);
        let traced = event_log_jsonl_traced(&events, Some(&ctx));
        let traced_lines: Vec<&str> = traced.lines().collect();
        assert_eq!(traced_lines.len(), cases.len() + 1);
        for line in &traced_lines[1..] {
            let value = JsonValue::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(
                value.get("trace_id").and_then(JsonValue::as_u64),
                Some(9_001),
                "{line}"
            );
            assert_eq!(
                value.get("trace_tenant").and_then(JsonValue::as_u64),
                Some(2),
                "{line}"
            );
            assert_eq!(
                value.get("attempt").and_then(JsonValue::as_u64),
                Some(3),
                "{line}"
            );
        }
    }
}
