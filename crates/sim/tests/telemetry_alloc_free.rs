//! Counting-allocator harness for the telemetry hot path: attaching a
//! [`NullRecorder`] to a simulation must add **zero** heap allocations
//! over the bare run. The recorder is the default sink when no telemetry
//! output was requested, so any allocation here would tax every
//! simulation — including the fig7 throughput gate.
//!
//! The engine's own allocations are deterministic (same trace, same
//! config, same arena growth), so the test runs the bare simulation and
//! the observed one and asserts the counts are identical.
//!
//! All assertions live in one `#[test]` so the global counter is not
//! perturbed by a concurrently running sibling test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

use rispp_core::SchedulerKind;
use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibrary, SiLibraryBuilder};
use rispp_monitor::HotSpotId;
use rispp_sim::{
    simulate, simulate_observed, Burst, FlightRecorder, Invocation, NullRecorder, SimConfig,
    SimObserver, Trace,
};

/// Forwards to the system allocator, counting every allocation path
/// (`alloc`, `alloc_zeroed`, `realloc`).
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations(f: impl FnOnce()) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn library() -> SiLibrary {
    let universe = AtomUniverse::from_types([
        AtomTypeInfo::new("A1"),
        AtomTypeInfo::new("A2"),
        AtomTypeInfo::new("A3"),
    ])
    .unwrap();
    let mut b = SiLibraryBuilder::new(universe);
    b.special_instruction("X", 1_000)
        .unwrap()
        .molecule(Molecule::from_counts([1, 0, 0]), 100)
        .unwrap()
        .molecule(Molecule::from_counts([2, 1, 0]), 30)
        .unwrap();
    b.special_instruction("Y", 800)
        .unwrap()
        .molecule(Molecule::from_counts([0, 1, 0]), 90)
        .unwrap()
        .molecule(Molecule::from_counts([0, 2, 1]), 40)
        .unwrap();
    b.build().unwrap()
}

fn trace(frames: usize) -> Trace {
    (0..frames)
        .map(|f| Invocation {
            hot_spot: HotSpotId((f % 2) as u16),
            prologue_cycles: 1_000,
            bursts: vec![
                Burst {
                    si: SiId(0),
                    count: 400 + (f as u32 % 3) * 50,
                    overhead: 20,
                },
                Burst {
                    si: SiId(1),
                    count: 150,
                    overhead: 15,
                },
            ],
            hints: vec![(SiId(0), 400), (SiId(1), 150)],
        })
        .collect()
}

#[test]
fn null_recorder_adds_zero_allocations() {
    let lib = library();
    let t = trace(6);
    let config = SimConfig::rispp(3, SchedulerKind::Hef);

    // Warm up: the first run pays one-time lazy initialisation inside the
    // allocator and the library lookups; compare steady-state runs only.
    black_box(simulate(&lib, &t, &config));
    let mut null = NullRecorder::new();
    {
        let mut extra: [&mut dyn SimObserver; 1] = [&mut null];
        black_box(simulate_observed(&lib, &t, &config, &mut extra));
    }

    let bare = allocations(|| {
        black_box(simulate(&lib, &t, &config));
    });
    let observed = allocations(|| {
        let mut extra: [&mut dyn SimObserver; 1] = [&mut null];
        black_box(simulate_observed(&lib, &t, &config, &mut extra));
    });
    assert_eq!(
        observed, bare,
        "a NullRecorder must not add a single allocation to the hot path"
    );

    // A FlightRecorder with explain off (the default, so no boxed
    // decision payloads reach it) must also be alloc-free in steady
    // state: its rings are pre-allocated at construction and overwrite
    // oldest entries in place.
    let mut recorder = FlightRecorder::new();
    {
        let mut extra: [&mut dyn SimObserver; 1] = [&mut recorder];
        black_box(simulate_observed(&lib, &t, &config, &mut extra));
    }
    let recorded = allocations(|| {
        let mut extra: [&mut dyn SimObserver; 1] = [&mut recorder];
        black_box(simulate_observed(&lib, &t, &config, &mut extra));
    });
    assert_eq!(
        recorded, bare,
        "a FlightRecorder must be alloc-free once its rings are warm"
    );
    assert!(
        !recorder.events().is_empty(),
        "the recorder retained nothing — the steady-state claim is vacuous"
    );

    // Sanity check that the counter observes heap traffic at all.
    assert!(bare > 0, "counter failed to observe the engine's arenas");
}
