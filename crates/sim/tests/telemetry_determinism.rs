//! Telemetry must be a pure observer: attaching recorders, enabling
//! decision capture (`explain`) or the fabric journal must never perturb
//! the simulated timeline. These tests pin that guarantee — plus the
//! determinism of the merged metrics snapshot across sweep thread counts
//! and the validity of the exported Perfetto trace on a real run.

use proptest::prelude::*;

use rispp_core::SchedulerKind;
use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibrary, SiLibraryBuilder};
use rispp_monitor::HotSpotId;
use rispp_sim::{
    simulate, simulate_observed, Burst, FaultConfig, Invocation, MetricsObserver, NullRecorder,
    PerfettoTraceObserver, SimConfig, SimObserver, SweepJob, SweepRunner, Trace,
};
use rispp_telemetry::JsonValue;

fn library() -> SiLibrary {
    let universe = AtomUniverse::from_types([
        AtomTypeInfo::new("A1"),
        AtomTypeInfo::new("A2"),
        AtomTypeInfo::new("A3"),
    ])
    .unwrap();
    let mut b = SiLibraryBuilder::new(universe);
    b.special_instruction("X", 1_000)
        .unwrap()
        .molecule(Molecule::from_counts([1, 0, 0]), 100)
        .unwrap()
        .molecule(Molecule::from_counts([2, 1, 0]), 30)
        .unwrap();
    b.special_instruction("Y", 800)
        .unwrap()
        .molecule(Molecule::from_counts([0, 1, 0]), 90)
        .unwrap()
        .molecule(Molecule::from_counts([0, 2, 1]), 40)
        .unwrap();
    b.build().unwrap()
}

fn trace(frames: usize) -> Trace {
    (0..frames)
        .map(|f| Invocation {
            hot_spot: HotSpotId((f % 2) as u16),
            prologue_cycles: 1_000,
            bursts: vec![
                Burst {
                    si: SiId(0),
                    count: 300 + (f as u32 % 3) * 40,
                    overhead: 20,
                },
                Burst {
                    si: SiId(1),
                    count: 120,
                    overhead: 15,
                },
            ],
            hints: vec![(SiId(0), 300), (SiId(1), 120)],
        })
        .collect()
}

/// Runs `config` with the full telemetry stack attached (metrics, trace,
/// null recorder) and capture enabled, returning the stats.
fn run_with_telemetry(library: &SiLibrary, t: &Trace, config: &SimConfig) -> rispp_sim::RunStats {
    let telemetry_config = config.with_explain(true).with_journal(true);
    let mut metrics = MetricsObserver::new();
    let mut perfetto = PerfettoTraceObserver::new();
    let mut null = NullRecorder::new();
    let mut extra: [&mut dyn SimObserver; 3] = [&mut metrics, &mut perfetto, &mut null];
    simulate_observed(library, t, &telemetry_config, &mut extra)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The simulated timeline with full telemetry (explain + journal +
    /// recorders) is bit-identical to the bare run, across schedulers,
    /// container budgets and fault seeds. A `rate_ppm` of zero means the
    /// fault fabric stays disabled for that case.
    #[test]
    fn telemetry_never_perturbs_the_timeline(
        frames in 1usize..6,
        containers in 1u16..5,
        scheduler in any::<prop::sample::Index>(),
        rate_ppm in 0u32..200_000,
        seed in 0u64..1_000,
    ) {
        let lib = library();
        let t = trace(frames);
        let kind = SchedulerKind::ALL[scheduler.index(SchedulerKind::ALL.len())];
        let mut config = SimConfig::rispp(containers, kind);
        if rate_ppm > 0 {
            config = config.with_fault(FaultConfig { rate_ppm, seed, max_retries: 2 });
        }
        let bare = simulate(&lib, &t, &config);
        let instrumented = run_with_telemetry(&lib, &t, &config);
        prop_assert_eq!(bare, instrumented);
    }
}

#[test]
fn merged_metrics_snapshot_is_identical_across_thread_counts() {
    let lib = library();
    let small = trace(2);
    let large = trace(8);
    let mut jobs = Vec::new();
    for t in [&small, &large] {
        for kind in SchedulerKind::ALL {
            jobs.push(SweepJob::new(
                SimConfig::rispp(3, kind).with_explain(true).with_journal(true),
                t,
            ));
        }
        jobs.push(SweepJob::new(
            SimConfig::rispp(3, SchedulerKind::Hef)
                .with_explain(true)
                .with_journal(true)
                .with_fault(FaultConfig {
                    rate_ppm: 150_000,
                    seed: 0xDA7E,
                    max_retries: 2,
                }),
            t,
        ));
    }

    let (base_stats, base_snapshot) = SweepRunner::with_threads(1).run_metered(&lib, &jobs);
    assert!(!base_snapshot.is_empty());
    assert_eq!(
        base_snapshot.counter("rispp_runs_total"),
        jobs.len() as u64
    );
    let total: u64 = base_stats.iter().map(|s| s.total_cycles).sum();
    assert_eq!(base_snapshot.counter("rispp_simulated_cycles_total"), total);

    for threads in [2usize, 4, 8] {
        let (stats, snapshot) = SweepRunner::with_threads(threads).run_metered(&lib, &jobs);
        assert_eq!(stats, base_stats, "stats diverged at {threads} thread(s)");
        assert_eq!(
            snapshot, base_snapshot,
            "merged metrics diverged at {threads} thread(s)"
        );
        assert_eq!(
            snapshot.to_json(),
            base_snapshot.to_json(),
            "JSON exposition diverged at {threads} thread(s)"
        );
    }
}

#[test]
fn exported_perfetto_trace_is_valid_and_complete() {
    let lib = library();
    let t = trace(4);
    let config = SimConfig::rispp(3, SchedulerKind::Hef)
        .with_explain(true)
        .with_journal(true);
    let mut perfetto = PerfettoTraceObserver::new();
    let stats = {
        let mut extra: [&mut dyn SimObserver; 1] = [&mut perfetto];
        simulate_observed(&lib, &t, &config, &mut extra)
    };
    let json = perfetto.into_json();
    let doc = JsonValue::parse(&json).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");

    // At least one named Atom Container track (pid 1 thread metadata).
    let container_tracks = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(JsonValue::as_str) == Some("M")
                && e.get("name").and_then(JsonValue::as_str) == Some("thread_name")
                && e.get("pid").and_then(JsonValue::as_u64) == Some(1)
        })
        .count();
    assert!(container_tracks >= 1, "no container tracks: {json}");

    // Load spans appear on container tracks, and no span outlives the run.
    let mut load_spans = 0;
    for e in events {
        if e.get("ph").and_then(JsonValue::as_str) != Some("X") {
            continue;
        }
        let ts = e.get("ts").and_then(JsonValue::as_u64).expect("span ts");
        let dur = e.get("dur").and_then(JsonValue::as_u64).expect("span dur");
        assert!(
            ts + dur <= stats.total_cycles,
            "span ends after the run: {e:?}"
        );
        if e.get("pid").and_then(JsonValue::as_u64) == Some(1)
            && e.get("name")
                .and_then(JsonValue::as_str)
                .is_some_and(|n| n.starts_with("load "))
        {
            load_spans += 1;
        }
    }
    assert!(load_spans >= 1, "no load spans on container tracks");

    // At least one scheduler decision instant.
    assert!(
        events
            .iter()
            .any(|e| e.get("name").and_then(JsonValue::as_str) == Some("decision")),
        "no decision events"
    );
}
