//! Batched vs per-burst replay bit-identity: the engine's
//! `execute_bursts_batched` fast path must yield exactly the same
//! `RunStats` (including detailed buckets and latency timelines) and the
//! same typed event stream as the per-burst fallback, for every built-in
//! backend and scheduler, on fault-free and fault-injected runs, with
//! telemetry capture on and off.

use std::borrow::Cow;

use proptest::prelude::*;
use rispp_core::{BurstSegment, SchedulerKind};
use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibrary, SiLibraryBuilder};
use rispp_monitor::HotSpotId;
use rispp_sim::{
    simulate_with, Burst, ExecutionSystem, FaultConfig, Invocation, RunStats, SimConfig,
    SimObserver, SystemKind, Trace, TraceLogObserver,
};

/// Forces the per-burst path: keeps the trait's **default**
/// `execute_bursts_batched` (which consumes nothing) while delegating
/// every other method — including the poll gates — to the wrapped
/// backend, so the only difference between the two runs under test is
/// whether the engine takes the batched fast path.
struct UnbatchedShim<'a>(Box<dyn ExecutionSystem + 'a>);

impl ExecutionSystem for UnbatchedShim<'_> {
    fn label(&self) -> Cow<'static, str> {
        self.0.label()
    }

    fn enter_hot_spot(&mut self, invocation: &Invocation, now: u64) {
        self.0.enter_hot_spot(invocation, now);
    }

    fn execute_burst(
        &mut self,
        si: SiId,
        count: u32,
        overhead: u32,
        start: u64,
    ) -> Vec<BurstSegment> {
        self.0.execute_burst(si, count, overhead, start)
    }

    fn execute_burst_into(
        &mut self,
        si: SiId,
        count: u32,
        overhead: u32,
        start: u64,
        out: &mut Vec<BurstSegment>,
    ) {
        self.0.execute_burst_into(si, count, overhead, start, out);
    }

    fn exit_hot_spot(&mut self, now: u64) {
        self.0.exit_hot_spot(now);
    }

    fn reconfiguration_stats(&self) -> (u64, u64) {
        self.0.reconfiguration_stats()
    }

    fn recovery_stats(&self) -> rispp_core::RecoveryStats {
        self.0.recovery_stats()
    }

    fn has_pending_activity(&self) -> bool {
        self.0.has_pending_activity()
    }

    fn recovery_active(&self) -> bool {
        self.0.recovery_active()
    }

    fn telemetry_active(&self) -> bool {
        self.0.telemetry_active()
    }

    fn drain_decisions(&mut self, out: &mut Vec<rispp_core::DecisionExplain>) {
        self.0.drain_decisions(out);
    }

    fn drain_fabric_journal(&mut self, out: &mut Vec<rispp_fabric::FabricJournalEntry>) {
        self.0.drain_fabric_journal(out);
    }
}

/// Small containers relative to the Molecule supremum, so loads are
/// frequent, evictions happen, and bursts regularly split across load
/// completions — exercising both the batched fast path and the fallback.
fn library() -> SiLibrary {
    let universe = AtomUniverse::from_types([
        AtomTypeInfo::new("A1"),
        AtomTypeInfo::new("A2"),
        AtomTypeInfo::new("A3"),
    ])
    .unwrap();
    let mut b = SiLibraryBuilder::new(universe);
    b.special_instruction("X", 1_200)
        .unwrap()
        .molecule(Molecule::from_counts([1, 0, 0]), 150)
        .unwrap()
        .molecule(Molecule::from_counts([2, 1, 0]), 40)
        .unwrap();
    b.special_instruction("Y", 900)
        .unwrap()
        .molecule(Molecule::from_counts([0, 1, 0]), 80)
        .unwrap();
    b.special_instruction("Z", 600)
        .unwrap()
        .molecule(Molecule::from_counts([0, 0, 1]), 70)
        .unwrap();
    b.build().unwrap()
}

/// A trace mixing burst shapes: tiny bursts (often split by in-flight
/// loads), a long run of bursts (the batched path's bread and butter)
/// and explicit zero-count bursts (must be consumed as no-ops).
fn trace(frames: usize, counts: [u32; 3]) -> Trace {
    (0..frames)
        .map(|f| Invocation {
            hot_spot: HotSpotId((f % 2) as u16),
            prologue_cycles: 500,
            bursts: vec![
                Burst {
                    si: SiId(0),
                    count: counts[0],
                    overhead: 15,
                },
                Burst {
                    si: SiId(1),
                    count: 0,
                    overhead: 15,
                },
                Burst {
                    si: SiId(1),
                    count: counts[1],
                    overhead: 15,
                },
                Burst {
                    si: SiId(2),
                    count: counts[2],
                    overhead: 15,
                },
                Burst {
                    si: SiId(0),
                    count: 0,
                    overhead: 15,
                },
            ],
            hints: vec![
                (SiId(0), u64::from(counts[0])),
                (SiId(1), u64::from(counts[1])),
                (SiId(2), u64::from(counts[2])),
            ],
        })
        .collect()
}

/// Replays `t` with (or without) the batched fast path and returns the
/// full statistics plus the typed event log.
fn run(
    lib: &SiLibrary,
    t: &Trace,
    config: &SimConfig,
    batched: bool,
) -> (RunStats, TraceLogObserver) {
    let mut stats = RunStats::new("run", lib.len(), config.bucket_cycles, config.detail);
    let mut log = TraceLogObserver::new();
    if batched {
        let mut system = config.build_system(lib);
        let mut obs: [&mut dyn SimObserver; 2] = [&mut stats, &mut log];
        simulate_with(system.as_mut(), t, &mut obs);
    } else {
        let mut system = UnbatchedShim(config.build_system(lib));
        let mut obs: [&mut dyn SimObserver; 2] = [&mut stats, &mut log];
        simulate_with(&mut system, t, &mut obs);
    }
    (stats, log)
}

fn all_systems() -> Vec<SystemKind> {
    let mut kinds: Vec<SystemKind> = SchedulerKind::ALL.into_iter().map(SystemKind::Rispp).collect();
    kinds.extend([SystemKind::Molen, SystemKind::OneChip, SystemKind::SoftwareOnly]);
    kinds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fault-free runs: batched ≡ per-burst for every built-in system,
    /// down to detailed buckets, latency timelines and the event stream.
    #[test]
    fn batched_replay_is_bit_identical_fault_free(
        frames in 1usize..5,
        c0 in 1u32..400,
        c1 in 1u32..150,
        c2 in 1u32..6,
    ) {
        let lib = library();
        let t = trace(frames, [c0, c1, c2]);
        for kind in all_systems() {
            let mut config = SimConfig::rispp(4, SchedulerKind::ALL[0]).with_detail(true);
            config.system = kind;
            let (stats_b, log_b) = run(&lib, &t, &config, true);
            let (stats_u, log_u) = run(&lib, &t, &config, false);
            prop_assert_eq!(&stats_b, &stats_u, "{}: RunStats diverged", kind.label());
            prop_assert_eq!(
                log_b.events(),
                log_u.events(),
                "{}: event streams diverged",
                kind.label()
            );
        }
    }

    /// Fault-injected and telemetry-capturing RISPP runs: the batched
    /// path must defer to the fallback exactly at every fabric event, so
    /// fault handling, recovery counters, decision explanations and the
    /// container journal all stay bit-identical.
    #[test]
    fn batched_replay_is_bit_identical_under_faults_and_telemetry(
        seed in 0u64..u64::MAX,
        rate_ppm in 0u32..300_000,
        frames in 1usize..4,
        c0 in 1u32..400,
    ) {
        let lib = library();
        let t = trace(frames, [c0, 120, 3]);
        for kind in SchedulerKind::ALL {
            let config = SimConfig::rispp(4, kind)
                .with_detail(true)
                .with_fault(FaultConfig { rate_ppm, seed, max_retries: 2 })
                .with_explain(true)
                .with_journal(true);
            let (stats_b, log_b) = run(&lib, &t, &config, true);
            let (stats_u, log_u) = run(&lib, &t, &config, false);
            prop_assert_eq!(&stats_b, &stats_u, "{}: RunStats diverged", kind);
            prop_assert_eq!(log_b.events(), log_u.events(), "{}: event streams diverged", kind);
        }
    }
}
