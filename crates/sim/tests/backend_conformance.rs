//! Backend conformance suite: every [`ExecutionSystem`] implementation —
//! built-in or injected — must satisfy the same replay contract, and the
//! enum-configured path must be bit-identical to the trait path.

use std::borrow::Cow;

use rispp_core::{BurstSegment, PlanCacheHandle, SchedulerKind};
use rispp_model::{
    AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibrary, SiLibraryBuilder,
};
use rispp_monitor::HotSpotId;
use rispp_sim::{
    simulate, simulate_observed_planned, simulate_with, Burst, ExecutionSystem, FaultConfig,
    Invocation, RunStats, SimConfig, simulate_multi, simulate_multi_observed, SimEvent,
    SimObserver, SoftwareBackend, SweepJob, SweepRunner, SystemKind, TenancyConfig,
    TenantArbitration, TenantPolicy, Trace, TraceLogObserver, DEFAULT_BUCKET_CYCLES,
};

fn library() -> SiLibrary {
    let universe = AtomUniverse::from_types([
        AtomTypeInfo::new("A1"),
        AtomTypeInfo::new("A2"),
        AtomTypeInfo::new("A3"),
    ])
    .unwrap();
    let mut b = SiLibraryBuilder::new(universe);
    b.special_instruction("X", 1_200)
        .unwrap()
        .molecule(Molecule::from_counts([1, 0, 0]), 150)
        .unwrap()
        .molecule(Molecule::from_counts([2, 1, 0]), 40)
        .unwrap();
    b.special_instruction("Y", 900)
        .unwrap()
        .molecule(Molecule::from_counts([0, 1, 1]), 80)
        .unwrap();
    b.special_instruction("Z", 600)
        .unwrap()
        .molecule(Molecule::from_counts([0, 0, 2]), 70)
        .unwrap();
    b.build().unwrap()
}

fn trace(frames: usize) -> Trace {
    (0..frames)
        .map(|f| Invocation {
            hot_spot: HotSpotId((f % 2) as u16),
            prologue_cycles: 500,
            bursts: vec![
                Burst {
                    si: SiId(0),
                    count: 300,
                    overhead: 15,
                },
                Burst {
                    si: SiId(1),
                    count: 120,
                    overhead: 15,
                },
                Burst {
                    si: SiId(2),
                    count: 0, // intentionally empty burst
                    overhead: 15,
                },
            ],
            hints: vec![(SiId(0), 300), (SiId(1), 120)],
        })
        .collect()
}

/// Every built-in configuration, covering all four `SystemKind`s and all
/// four schedulers.
fn all_configs() -> Vec<SimConfig> {
    let mut configs = vec![
        SimConfig::software_only(),
        SimConfig::molen(4),
        SimConfig {
            system: SystemKind::OneChip,
            ..SimConfig::molen(4)
        },
    ];
    for kind in SchedulerKind::ALL {
        configs.push(SimConfig::rispp(4, kind));
    }
    configs.push(SimConfig::rispp(4, SchedulerKind::Hef).with_oracle(true));
    configs
}

/// Replays `trace` on `system` while checking the segment contract:
/// per-burst counts sum to the requested count, segment starts are
/// non-decreasing, and the reconfiguration counters are monotone.
fn check_contract(system: &mut dyn ExecutionSystem, trace: &Trace) -> (u64, u64) {
    let mut executed = 0u64;
    let mut hardware = 0u64;
    let mut now = 0u64;
    let mut last_loads = 0u64;
    let mut last_busy = 0u64;
    for inv in trace.invocations() {
        system.enter_hot_spot(inv, now);
        now += inv.prologue_cycles;
        for b in &inv.bursts {
            if b.count == 0 {
                continue;
            }
            let segments = system.execute_burst(b.si, b.count, b.overhead, now);
            assert!(!segments.is_empty(), "{}: empty segment list", system.label());
            assert_eq!(
                segments[0].start,
                now,
                "{}: first segment must start at the burst start",
                system.label()
            );
            let mut prev_start = now;
            for seg in &segments {
                assert!(
                    seg.start >= prev_start,
                    "{}: segment starts must be monotone (prev {prev_start}, got {})",
                    system.label(),
                    seg.start
                );
                assert!(seg.count > 0, "{}: zero-count segment", system.label());
                prev_start = seg.start;
                executed += seg.count;
                if seg.is_hardware() {
                    hardware += seg.count;
                }
                now = seg.start + seg.count * (u64::from(seg.latency) + u64::from(b.overhead));
            }
            let (loads, busy) = system.reconfiguration_stats();
            assert!(
                loads >= last_loads && busy >= last_busy,
                "{}: reconfiguration stats went backwards",
                system.label()
            );
            last_loads = loads;
            last_busy = busy;
        }
        system.exit_hot_spot(now);
    }
    (executed, hardware)
}

#[test]
fn every_builtin_backend_executes_exactly_the_trace() {
    let lib = library();
    let t = trace(5);
    let want = t.total_si_executions();
    for config in all_configs() {
        let mut system = config.build_system(&lib);
        let (executed, _) = check_contract(system.as_mut(), &t);
        assert_eq!(executed, want, "{}", system.label());
    }
}

#[test]
fn software_backend_is_exact_and_never_reconfigures() {
    let lib = library();
    let t = trace(3);
    let mut backend = SoftwareBackend::new(&lib);
    let (executed, hardware) = check_contract(&mut backend, &t);
    assert_eq!(executed, t.total_si_executions());
    assert_eq!(hardware, 0, "software backend must never touch hardware");
    assert_eq!(backend.reconfiguration_stats(), (0, 0));
    // Exact closed-form time: per frame 500 + 300·(1200+15) + 120·(900+15).
    let stats = simulate(&lib, &t, &SimConfig::software_only());
    assert_eq!(
        stats.total_cycles,
        3 * (500 + 300 * 1_215 + 120 * 915),
        "software-only time must be exact"
    );
}

#[test]
fn enum_path_and_trait_path_are_bit_identical() {
    let lib = library();
    let t = trace(4);
    for config in all_configs() {
        let via_enum = simulate(&lib, &t, &config);
        let mut system = config.build_system(&lib);
        let mut stats = RunStats::new(
            system.label(),
            lib.len(),
            config.bucket_cycles,
            config.detail,
        );
        {
            let mut observers: [&mut dyn SimObserver; 1] = [&mut stats];
            simulate_with(system.as_mut(), &t, &mut observers);
        }
        assert_eq!(via_enum, stats, "{}", config.system.label());
    }
    // Detail mode too (buckets + latency timelines flow through events).
    for kind in SchedulerKind::ALL {
        let config = SimConfig::rispp(4, kind).with_detail(true);
        let via_enum = simulate(&lib, &t, &config);
        let mut system = config.build_system(&lib);
        let mut stats = RunStats::new(
            system.label(),
            lib.len(),
            config.bucket_cycles,
            config.detail,
        );
        {
            let mut observers: [&mut dyn SimObserver; 1] = [&mut stats];
            simulate_with(system.as_mut(), &t, &mut observers);
        }
        assert_eq!(via_enum, stats, "{kind} with detail");
    }
}

#[test]
fn emitted_event_stream_is_well_ordered() {
    let lib = library();
    let t = trace(3);
    for config in all_configs() {
        let mut system = config.build_system(&lib);
        let mut log = TraceLogObserver::new();
        {
            let mut observers: [&mut dyn SimObserver; 1] = [&mut log];
            simulate_with(system.as_mut(), &t, &mut observers);
        }
        let events = log.events();
        // Exactly one RunFinished, and it is last.
        let finished = events
            .iter()
            .filter(|e| matches!(e, SimEvent::RunFinished { .. }))
            .count();
        assert_eq!(finished, 1, "{}", config.system.label());
        assert!(matches!(events.last(), Some(SimEvent::RunFinished { .. })));
        // One HotSpotEntered per invocation, in trace order.
        let entries: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                SimEvent::HotSpotEntered { now, .. } => Some(*now),
                _ => None,
            })
            .collect();
        assert_eq!(entries.len(), t.len(), "{}", config.system.label());
        assert!(
            entries.windows(2).all(|w| w[0] <= w[1]),
            "{}: hot-spot entries out of order",
            config.system.label()
        );
        // Segment starts never decrease; LoadCompleted totals are monotone.
        let mut prev_start = 0u64;
        let mut prev_total = 0u64;
        let mut executed = 0u64;
        for e in events {
            match e {
                SimEvent::SegmentExecuted { segment, .. } => {
                    assert!(segment.start >= prev_start, "{}", config.system.label());
                    prev_start = segment.start;
                    executed += segment.count;
                }
                SimEvent::LoadCompleted { total, .. } => {
                    assert!(*total > prev_total, "{}", config.system.label());
                    prev_total = *total;
                }
                _ => {}
            }
        }
        assert_eq!(executed, t.total_si_executions(), "{}", config.system.label());
    }
}

#[test]
fn zero_count_and_empty_invocations_cost_only_their_prologues() {
    let lib = library();
    let t = Trace::from_invocations(vec![
        Invocation {
            hot_spot: HotSpotId(0),
            prologue_cycles: 250,
            bursts: vec![Burst {
                si: SiId(0),
                count: 0,
                overhead: 10,
            }],
            hints: vec![(SiId(0), 0)],
        },
        Invocation {
            hot_spot: HotSpotId(1),
            prologue_cycles: 750,
            bursts: Vec::new(),
            hints: Vec::new(),
        },
    ]);
    for config in all_configs() {
        let stats = simulate(&lib, &t, &config);
        assert_eq!(
            stats.total_cycles, 1_000,
            "{}: zero-count bursts must still cost the prologue",
            config.system.label()
        );
        assert_eq!(stats.total_executions(), 0, "{}", config.system.label());
    }
}

#[test]
fn zero_fault_rate_is_bit_identical_for_every_backend() {
    // Pin the `fault_rate = 0` contract: attaching the null fault model
    // must leave results AND the full event stream bit-identical to not
    // attaching one, for every SystemKind / SchedulerKind pair.
    let lib = library();
    let t = trace(4);
    let null = FaultConfig {
        rate_ppm: 0,
        seed: 0xDEAD_BEEF,
        max_retries: 3,
    };
    for config in all_configs() {
        let plain = simulate(&lib, &t, &config);
        let faulted_cfg = config.with_fault(null);
        let faulted = simulate(&lib, &t, &faulted_cfg);
        assert_eq!(plain, faulted, "{}", config.system.label());
        assert_eq!(faulted.faults_injected, 0, "{}", config.system.label());
        assert_eq!(faulted.load_retries, 0, "{}", config.system.label());
        assert_eq!(
            faulted.containers_quarantined, 0,
            "{}",
            config.system.label()
        );
        assert_eq!(faulted.degraded_to_software, 0, "{}", config.system.label());
        assert_eq!(faulted.fault_cycles_lost, 0, "{}", config.system.label());

        let mut plain_log = TraceLogObserver::new();
        {
            let mut system = config.build_system(&lib);
            let mut observers: [&mut dyn SimObserver; 1] = [&mut plain_log];
            simulate_with(system.as_mut(), &t, &mut observers);
        }
        let mut faulted_log = TraceLogObserver::new();
        {
            let mut system = faulted_cfg.build_system(&lib);
            let mut observers: [&mut dyn SimObserver; 1] = [&mut faulted_log];
            simulate_with(system.as_mut(), &t, &mut observers);
        }
        assert_eq!(
            plain_log.events(),
            faulted_log.events(),
            "{}: event streams must match at fault rate 0",
            config.system.label()
        );
    }
}

/// A user-defined backend: constant 100-cycle latency for every SI,
/// always "hardware". Exercises injection of a backend the library has
/// never seen, including an owned (non-static) label.
struct FlatBackend {
    label: String,
}

impl ExecutionSystem for FlatBackend {
    fn label(&self) -> Cow<'static, str> {
        Cow::Owned(self.label.clone())
    }

    fn enter_hot_spot(&mut self, _invocation: &Invocation, _now: u64) {}

    fn execute_burst(
        &mut self,
        _si: SiId,
        count: u32,
        _overhead: u32,
        start: u64,
    ) -> Vec<BurstSegment> {
        vec![BurstSegment::hardware(start, u64::from(count), 100, 0)]
    }

    fn exit_hot_spot(&mut self, _now: u64) {}

    fn reconfiguration_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

#[test]
fn injected_custom_backend_runs_through_the_engine() {
    let lib = library();
    let t = trace(2);
    let mut backend = FlatBackend {
        label: String::from("flat-100"),
    };
    let mut stats = RunStats::new(
        backend.label(),
        lib.len(),
        DEFAULT_BUCKET_CYCLES,
        false,
    );
    {
        let mut observers: [&mut dyn SimObserver; 1] = [&mut stats];
        simulate_with(&mut backend, &t, &mut observers);
    }
    assert_eq!(stats.system, "flat-100");
    assert_eq!(stats.total_executions(), t.total_si_executions());
    assert!((stats.hardware_fraction() - 1.0).abs() < f64::EPSILON);
    // 2 frames × (500 + 300·115 + 120·115) cycles.
    assert_eq!(stats.total_cycles, 2 * (500 + 420 * 115));
}

// ---------------------------------------------------------------------------
// Multi-tenant arbiter: the K=1 path must be the classic single-owner path.
// ---------------------------------------------------------------------------

/// Every configuration worth pinning for the K=1 equivalence: the full
/// `all_configs` matrix plus faulted and explain/journal RISPP runs.
fn equivalence_configs() -> Vec<SimConfig> {
    let mut configs = all_configs();
    configs.push(SimConfig::rispp(4, SchedulerKind::Hef).with_fault(FaultConfig {
        rate_ppm: 60_000,
        seed: 0x5EED_CAFE,
        max_retries: 2,
    }));
    configs.push(
        SimConfig::rispp(4, SchedulerKind::Asf)
            .with_explain(true)
            .with_journal(true),
    );
    for kind in SchedulerKind::ALL {
        configs.push(SimConfig::rispp(3, kind).with_detail(true));
    }
    configs
}

#[test]
fn single_tenant_arbiter_stats_are_bit_identical_to_solo_path() {
    let lib = library();
    let t = trace(4);
    let traces = [t.clone()];
    for config in equivalence_configs() {
        let solo = simulate(&lib, &t, &config);
        for policy in [TenantPolicy::Shared, TenantPolicy::Partitioned] {
            for arbitration in [
                TenantArbitration::RoundRobin,
                TenantArbitration::CycleInterleaved,
            ] {
                let cfg = config.with_tenants(TenancyConfig {
                    count: 1,
                    policy,
                    arbitration,
                });
                let multi = simulate_multi(&lib, &traces, &cfg);
                assert_eq!(multi.per_tenant.len(), 1);
                assert_eq!(
                    multi.per_tenant[0],
                    solo,
                    "{} {policy:?}/{arbitration:?}: K=1 arbiter diverged",
                    config.system.label()
                );
                assert_eq!(multi.aggregate_cycles, solo.total_cycles);
                assert_eq!(multi.makespan_cycles, solo.total_cycles);
                assert_eq!(multi.atoms_shared, 0);
                assert_eq!(multi.evictions_contested, 0);
            }
        }
    }
}

#[test]
fn single_tenant_arbiter_event_stream_is_bit_identical_to_solo_path() {
    let lib = library();
    let t = trace(4);
    for config in equivalence_configs() {
        let mut solo_log = TraceLogObserver::new();
        {
            let mut system = config.build_system(&lib);
            let mut observers: [&mut dyn SimObserver; 1] = [&mut solo_log];
            simulate_with(system.as_mut(), &t, &mut observers);
        }
        for policy in [TenantPolicy::Shared, TenantPolicy::Partitioned] {
            let cfg = config.with_tenants(TenancyConfig {
                count: 1,
                policy,
                arbitration: TenantArbitration::RoundRobin,
            });
            let mut multi_log = TraceLogObserver::new();
            {
                let mut observers: [&mut dyn SimObserver; 1] = [&mut multi_log];
                let _ = simulate_multi_observed(
                    &lib,
                    std::slice::from_ref(&t),
                    &cfg,
                    &mut observers,
                );
            }
            assert_eq!(
                solo_log.events(),
                multi_log.events(),
                "{} {policy:?}: K=1 event stream diverged",
                config.system.label()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Plan cache: memoisation must be invisible — cache-on replays are
// bit-identical to cache-off planning for every configuration.
// ---------------------------------------------------------------------------

/// Full event stream of one run under `config`.
fn event_log(lib: &SiLibrary, t: &Trace, config: &SimConfig) -> TraceLogObserver {
    let mut log = TraceLogObserver::new();
    {
        let mut system = config.build_system(lib);
        let mut observers: [&mut dyn SimObserver; 1] = [&mut log];
        simulate_with(system.as_mut(), t, &mut observers);
    }
    log
}

#[test]
fn plan_cache_on_is_bit_identical_to_off_for_every_config() {
    let lib = library();
    let t = trace(6);
    for config in equivalence_configs() {
        let on = config.with_plan_cache(true);
        let off = config.with_plan_cache(false);
        assert_eq!(
            simulate(&lib, &t, &on),
            simulate(&lib, &t, &off),
            "{}: stats diverged with the plan cache on",
            config.system.label()
        );
        assert_eq!(
            event_log(&lib, &t, &on).events(),
            event_log(&lib, &t, &off).events(),
            "{}: event stream diverged with the plan cache on",
            config.system.label()
        );
    }
}

#[test]
fn plan_cache_rispp_runs_actually_hit_in_steady_state() {
    // Guard against the cache silently never matching (which would make
    // the bit-identity tests above vacuous): a periodic trace must reach
    // hits once the forecast converges.
    let lib = library();
    let t = trace(40);
    for kind in SchedulerKind::ALL {
        let config = SimConfig::rispp(4, kind).with_plan_cache(true);
        let (_, plan) = simulate_observed_planned(&lib, &t, &config, None, &mut []);
        assert!(
            plan.hits > 0,
            "{kind}: no plan-cache hits on a periodic 40-frame trace: {plan:?}"
        );
        assert_eq!(plan.lookups(), plan.hits + plan.misses);
        assert_eq!(plan.evictions, 0, "{kind}: workload far below capacity");
    }
}

#[test]
fn plan_cache_is_bit_identical_for_multi_tenant_runs() {
    let lib = library();
    let traces: Vec<Trace> = vec![trace(4), trace(5), trace(3)];
    for count in [2u16, 3] {
        let slice = &traces[..usize::from(count)];
        for kind in [SchedulerKind::Hef, SchedulerKind::Asf] {
            for policy in [TenantPolicy::Shared, TenantPolicy::Partitioned] {
                let base = SimConfig::rispp(6, kind).with_tenants(TenancyConfig {
                    count,
                    policy,
                    arbitration: TenantArbitration::RoundRobin,
                });
                let on = simulate_multi(&lib, slice, &base.with_plan_cache(true));
                let off = simulate_multi(&lib, slice, &base.with_plan_cache(false));
                assert_eq!(on, off, "{kind} K={count} {policy:?}: multi-tenant diverged");

                // Per-tenant event streams must match too (one observer
                // per trace, as the multi API requires).
                let mut on_logs: Vec<TraceLogObserver> =
                    (0..count).map(|_| TraceLogObserver::new()).collect();
                {
                    let mut observers: Vec<&mut dyn SimObserver> =
                        on_logs.iter_mut().map(|l| l as &mut dyn SimObserver).collect();
                    let _ = simulate_multi_observed(
                        &lib,
                        slice,
                        &base.with_plan_cache(true),
                        &mut observers,
                    );
                }
                let mut off_logs: Vec<TraceLogObserver> =
                    (0..count).map(|_| TraceLogObserver::new()).collect();
                {
                    let mut observers: Vec<&mut dyn SimObserver> =
                        off_logs.iter_mut().map(|l| l as &mut dyn SimObserver).collect();
                    let _ = simulate_multi_observed(
                        &lib,
                        slice,
                        &base.with_plan_cache(false),
                        &mut observers,
                    );
                }
                for (tenant, (on_log, off_log)) in
                    on_logs.iter().zip(off_logs.iter()).enumerate()
                {
                    assert_eq!(
                        on_log.events(),
                        off_log.events(),
                        "{kind} K={count} {policy:?} tenant {tenant}: event stream diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn plan_cache_shared_sweep_is_bit_identical_at_any_thread_count() {
    // Cross-job sharing (tentpole layer 2): one shared cache across a
    // sweep must leave every result bit-identical to the cache-off
    // sequential loop, at 1, 2, 4 and 8 worker threads — insertion order
    // into the shared cache is scheduling-dependent, results must not be.
    let lib = library();
    let t = trace(5);
    let jobs: Vec<SweepJob<'_>> = equivalence_configs()
        .into_iter()
        .map(|c| SweepJob::new(c.with_plan_cache(true), &t))
        .collect();
    let baseline: Vec<RunStats> = jobs
        .iter()
        .map(|j| simulate(&lib, j.trace, &j.config.with_plan_cache(false)))
        .collect();
    for threads in [1usize, 2, 4, 8] {
        let runner =
            SweepRunner::with_threads(threads).with_plan_cache(PlanCacheHandle::default());
        let results = runner.run(&lib, &jobs);
        assert_eq!(
            results, baseline,
            "{threads}-thread shared-cache sweep diverged from sequential cache-off"
        );
    }
}

#[test]
fn plan_cache_env_escape_disables_the_default() {
    // `RISPP_PLAN_CACHE=0` must flip the constructor default off (an
    // operational escape hatch); any other value, or unset, leaves it on.
    // An explicit `with_plan_cache` always wins over the environment.
    let lib = library();
    let t = trace(4);
    std::env::set_var("RISPP_PLAN_CACHE", "0");
    let off_default = SimConfig::rispp(4, SchedulerKind::Hef);
    assert!(!off_default.plan_cache, "RISPP_PLAN_CACHE=0 must disable");
    let escaped = simulate(&lib, &t, &off_default);
    std::env::set_var("RISPP_PLAN_CACHE", "1");
    assert!(SimConfig::rispp(4, SchedulerKind::Hef).plan_cache);
    std::env::remove_var("RISPP_PLAN_CACHE");
    assert!(SimConfig::rispp(4, SchedulerKind::Hef).plan_cache);
    // And of course: the escape hatch does not change results either.
    let cached = simulate(
        &lib,
        &t,
        &SimConfig::rispp(4, SchedulerKind::Hef).with_plan_cache(true),
    );
    assert_eq!(escaped, cached, "cache-off escape must be bit-identical");
}
