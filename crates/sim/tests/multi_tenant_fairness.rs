//! Fairness and isolation properties of the multi-tenant arbiter:
//!
//! * Under [`TenantPolicy::Shared`] with adversarial per-app demand,
//!   every tenant makes forward progress — it completes its whole trace
//!   and never runs slower than its cISA software floor (the trap-based
//!   baseline the run-time system guarantees per Special Instruction).
//! * Under [`TenantPolicy::Partitioned`], tenants are cycle-isolated:
//!   each tenant's `RunStats` is bit-identical to a solo run on its
//!   private `containers / K` partition with the same fault seed, so one
//!   app's demand (or faults) can never change another app's results.

use proptest::prelude::*;
use rispp_core::SchedulerKind;
use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibrary, SiLibraryBuilder};
use rispp_monitor::HotSpotId;
use rispp_sim::{
    simulate, simulate_multi, Burst, FaultConfig, Invocation, SimConfig, TenancyConfig,
    TenantArbitration, TenantPolicy, Trace,
};

fn library() -> SiLibrary {
    let universe = AtomUniverse::from_types([
        AtomTypeInfo::new("A1"),
        AtomTypeInfo::new("A2"),
        AtomTypeInfo::new("A3"),
    ])
    .unwrap();
    let mut b = SiLibraryBuilder::new(universe);
    b.special_instruction("X", 1_200)
        .unwrap()
        .molecule(Molecule::from_counts([1, 0, 0]), 150)
        .unwrap()
        .molecule(Molecule::from_counts([2, 1, 0]), 40)
        .unwrap();
    b.special_instruction("Y", 900)
        .unwrap()
        .molecule(Molecule::from_counts([0, 1, 1]), 80)
        .unwrap();
    b.special_instruction("Z", 600)
        .unwrap()
        .molecule(Molecule::from_counts([0, 0, 2]), 70)
        .unwrap();
    b.build().unwrap()
}

/// A tenant workload scaled by `scale`: larger scales model an app that
/// hogs the fabric with much heavier SI demand per invocation.
fn tenant_trace(frames: usize, scale: u32) -> Trace {
    (0..frames)
        .map(|f| Invocation {
            hot_spot: HotSpotId((f % 2) as u16),
            prologue_cycles: 500,
            bursts: vec![
                Burst {
                    si: SiId(0),
                    count: 30 * scale,
                    overhead: 15,
                },
                Burst {
                    si: SiId(1),
                    count: 12 * scale,
                    overhead: 15,
                },
                Burst {
                    si: SiId(2),
                    count: 6 * scale,
                    overhead: 15,
                },
            ],
            hints: vec![
                (SiId(0), u64::from(30 * scale)),
                (SiId(1), u64::from(12 * scale)),
                (SiId(2), u64::from(6 * scale)),
            ],
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shared fabric, adversarial demand: one tenant's workload is 10×
    /// every other's, yet every tenant finishes its full trace and stays
    /// at or under its software-only floor (no starvation — the cISA
    /// trap path bounds every tenant's slice time regardless of who owns
    /// the containers).
    #[test]
    fn shared_fabric_never_starves_a_tenant(
        scales in proptest::collection::vec(1u32..=12, 2..5),
        frames in 1usize..=3,
        heavy_pick in 0usize..4,
        scheduler_pick in 0usize..4,
        cycle_interleaved in any::<bool>(),
    ) {
        let lib = library();
        let heavy = heavy_pick % scales.len();
        let traces: Vec<Trace> = scales
            .iter()
            .enumerate()
            .map(|(i, &s)| tenant_trace(frames, if i == heavy { s * 10 } else { s }))
            .collect();
        let arbitration = if cycle_interleaved {
            TenantArbitration::CycleInterleaved
        } else {
            TenantArbitration::RoundRobin
        };
        let scheduler = SchedulerKind::ALL[scheduler_pick % SchedulerKind::ALL.len()];
        let config = SimConfig::rispp(6, scheduler).with_tenants(TenancyConfig {
            count: traces.len() as u16,
            policy: TenantPolicy::Shared,
            arbitration,
        });
        let multi = simulate_multi(&lib, &traces, &config);
        prop_assert_eq!(multi.per_tenant.len(), traces.len());
        let software = SimConfig::software_only();
        for (i, t) in traces.iter().enumerate() {
            prop_assert_eq!(
                multi.per_tenant[i].total_executions(),
                t.total_si_executions(),
                "tenant {} did not complete its trace",
                i
            );
            let floor = simulate(&lib, t, &software);
            prop_assert!(
                multi.per_tenant[i].total_cycles <= floor.total_cycles,
                "tenant {} ran {} cycles, above its {}-cycle software floor",
                i,
                multi.per_tenant[i].total_cycles,
                floor.total_cycles
            );
        }
    }

    /// Partitioned fabric: every tenant's stats — including under fault
    /// injection — are bit-identical to a solo run on `containers / K`
    /// containers with the same fault seed. Co-tenant demand and
    /// co-tenant faults are invisible, and no cross-app sharing or
    /// contested evictions can occur.
    #[test]
    fn partitioned_tenants_are_cycle_isolated(
        scales in proptest::collection::vec(1u32..=8, 2..4),
        rate_ppm in 0u32..150_000,
        seed in any::<u64>(),
        scheduler_pick in 0usize..4,
    ) {
        let lib = library();
        let k = scales.len();
        let traces: Vec<Trace> = scales.iter().map(|&s| tenant_trace(2, s)).collect();
        let fault = FaultConfig { rate_ppm, seed, max_retries: 3 };
        let scheduler = SchedulerKind::ALL[scheduler_pick % SchedulerKind::ALL.len()];
        let containers = 6u16;
        let config = SimConfig::rispp(containers, scheduler)
            .with_fault(fault)
            .with_tenants(TenancyConfig {
                count: k as u16,
                policy: TenantPolicy::Partitioned,
                arbitration: TenantArbitration::RoundRobin,
            });
        let multi = simulate_multi(&lib, &traces, &config);
        let solo_cfg = SimConfig::rispp(containers / k as u16, scheduler).with_fault(fault);
        for (i, t) in traces.iter().enumerate() {
            let solo = simulate(&lib, t, &solo_cfg);
            // Only the label differs at K>1 ("HEF[t1]" vs "HEF").
            let mut expected = solo.clone();
            expected.system = multi.per_tenant[i].system.clone();
            prop_assert_eq!(
                &multi.per_tenant[i],
                &expected,
                "tenant {} is not isolated from its co-tenants",
                i
            );
        }
        prop_assert_eq!(multi.atoms_shared, 0);
        prop_assert_eq!(multi.evictions_contested, 0);
    }
}
