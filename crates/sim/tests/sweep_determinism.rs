//! The parallel sweep must be bit-identical to the sequential loop: the
//! [`RunStats`] of every job must not depend on the worker count or on how
//! the work queue interleaved the jobs.

use rispp_core::SchedulerKind;
use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibrary, SiLibraryBuilder};
use rispp_monitor::HotSpotId;
use rispp_sim::{
    simulate, Burst, FaultConfig, Invocation, RunStats, SimConfig, SweepJob, SweepRunner, Trace,
};

fn library() -> SiLibrary {
    let universe = AtomUniverse::from_types([
        AtomTypeInfo::new("A1"),
        AtomTypeInfo::new("A2"),
        AtomTypeInfo::new("A3"),
    ])
    .unwrap();
    let mut b = SiLibraryBuilder::new(universe);
    b.special_instruction("X", 1_000)
        .unwrap()
        .molecule(Molecule::from_counts([1, 0, 0]), 100)
        .unwrap()
        .molecule(Molecule::from_counts([2, 1, 0]), 30)
        .unwrap();
    b.special_instruction("Y", 800)
        .unwrap()
        .molecule(Molecule::from_counts([0, 1, 0]), 90)
        .unwrap()
        .molecule(Molecule::from_counts([0, 2, 1]), 40)
        .unwrap();
    b.special_instruction("Z", 600)
        .unwrap()
        .molecule(Molecule::from_counts([0, 0, 1]), 70)
        .unwrap();
    b.build().unwrap()
}

fn trace(frames: usize) -> Trace {
    (0..frames)
        .map(|f| Invocation {
            // Alternate between two hot spots so the monitor's forecast and
            // the fabric's eviction logic are genuinely exercised.
            hot_spot: HotSpotId((f % 2) as u16),
            prologue_cycles: 1_000,
            bursts: vec![
                Burst {
                    si: SiId(0),
                    count: 400 + (f as u32 % 3) * 50,
                    overhead: 20,
                },
                Burst {
                    si: SiId(1),
                    count: 150,
                    overhead: 20,
                },
                Burst {
                    si: SiId(2),
                    count: 60,
                    overhead: 10,
                },
            ],
            hints: vec![(SiId(0), 400), (SiId(1), 150), (SiId(2), 60)],
        })
        .collect()
}

/// All jobs of the test matrix over the two traces: every scheduler plus
/// the Molen and software baselines, with detail enabled on half the jobs
/// so bucket/timeline collection is covered too. Two fault-injected HEF
/// jobs (different seeds) pin the per-fabric RNG streams: fault draws
/// must be a function of the job, never of worker scheduling.
fn jobs<'t>(small: &'t Trace, large: &'t Trace) -> Vec<SweepJob<'t>> {
    let mut jobs = Vec::new();
    for trace in [small, large] {
        for (i, &kind) in SchedulerKind::ALL.iter().enumerate() {
            let config = SimConfig::rispp(4, kind).with_detail(i % 2 == 0);
            jobs.push(SweepJob::new(config, trace));
        }
        jobs.push(SweepJob::new(SimConfig::molen(4), trace));
        jobs.push(SweepJob::new(SimConfig::software_only(), trace));
        for seed in [7u64, 0xDA7E_2008] {
            let faulted = SimConfig::rispp(4, SchedulerKind::Hef).with_fault(FaultConfig {
                rate_ppm: 120_000,
                seed,
                max_retries: 3,
            });
            jobs.push(SweepJob::new(faulted, trace));
        }
    }
    jobs
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let lib = library();
    let small = trace(3);
    let large = trace(12);
    let jobs = jobs(&small, &large);

    let sequential: Vec<RunStats> = jobs
        .iter()
        .map(|j| simulate(&lib, j.trace, &j.config))
        .collect();

    for threads in [1usize, 2, 4, 8] {
        let runner = SweepRunner::with_threads(threads);
        let parallel = runner.run(&lib, &jobs);
        assert_eq!(
            parallel, sequential,
            "sweep results diverged at {threads} thread(s)"
        );
    }
}

#[test]
fn observed_sweep_is_bit_identical_and_counts_every_run() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use rispp_sim::{ProgressObserver, SimObserver};

    let lib = library();
    let small = trace(3);
    let large = trace(12);
    let jobs = jobs(&small, &large);

    let sequential: Vec<RunStats> = jobs
        .iter()
        .map(|j| simulate(&lib, j.trace, &j.config))
        .collect();

    for threads in [1usize, 2, 4, 8] {
        let runner = SweepRunner::with_threads(threads);
        let finished = Arc::new(AtomicUsize::new(0));
        let total = jobs.len();
        let observed = runner.run_observed(&lib, &jobs, |_| {
            let finished = Arc::clone(&finished);
            vec![Box::new(ProgressObserver::new(total, finished, |_, _| {})) as Box<dyn SimObserver>]
        });
        assert_eq!(
            observed, sequential,
            "observed sweep diverged at {threads} thread(s)"
        );
        assert_eq!(
            finished.load(Ordering::Relaxed),
            total,
            "every run must report completion at {threads} thread(s)"
        );
    }
}

#[test]
fn repeated_parallel_runs_are_identical() {
    let lib = library();
    let t = trace(6);
    let jobs: Vec<SweepJob<'_>> = SchedulerKind::ALL
        .iter()
        .map(|&k| SweepJob::new(SimConfig::rispp(3, k), &t))
        .collect();
    let runner = SweepRunner::with_threads(8);
    let first = runner.run(&lib, &jobs);
    let second = runner.run(&lib, &jobs);
    assert_eq!(first, second);
}

#[test]
fn threads_env_variable_is_honoured() {
    // One test mutates the environment (avoids races with other tests
    // reading RISPP_THREADS — no other test in this binary does).
    std::env::set_var(rispp_sim::THREADS_ENV, "3");
    assert_eq!(SweepRunner::from_env().threads(), 3);

    std::env::set_var(rispp_sim::THREADS_ENV, "0");
    assert_eq!(
        SweepRunner::from_env().threads(),
        1,
        "zero must clamp to one worker"
    );

    std::env::set_var(rispp_sim::THREADS_ENV, "not-a-number");
    assert!(SweepRunner::from_env().threads() >= 1);

    std::env::remove_var(rispp_sim::THREADS_ENV);
    assert!(SweepRunner::from_env().threads() >= 1);
}
