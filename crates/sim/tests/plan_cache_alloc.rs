//! Counting-allocator pin for the plan cache: once a hot spot reaches
//! steady state (its Atoms loaded, its forecast stable, its schedule
//! empty), re-entering it is a cache *hit* that replays the memoised
//! decision with **zero heap allocations** — the key is built into a
//! reused scratch buffer, the lookup compares slices in place, and the
//! replay clones into retained capacity.
//!
//! All assertions live in one `#[test]` so the global counter is not
//! perturbed by a concurrently running sibling test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

use rispp_core::{PlanCacheHandle, RunTimeManager, SchedulerKind};
use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibrary, SiLibraryBuilder};
use rispp_monitor::HotSpotId;

/// Forwards to the system allocator, counting every allocation path
/// (`alloc`, `alloc_zeroed`, `realloc`).
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations(f: impl FnOnce()) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn library() -> SiLibrary {
    let universe = AtomUniverse::from_types([
        AtomTypeInfo::new("A1"),
        AtomTypeInfo::new("A2"),
        AtomTypeInfo::new("A3"),
    ])
    .unwrap();
    let mut b = SiLibraryBuilder::new(universe);
    b.special_instruction("X", 1_000)
        .unwrap()
        .molecule(Molecule::from_counts([1, 0, 0]), 100)
        .unwrap()
        .molecule(Molecule::from_counts([2, 1, 0]), 30)
        .unwrap();
    b.special_instruction("Y", 800)
        .unwrap()
        .molecule(Molecule::from_counts([0, 1, 1]), 90)
        .unwrap();
    b.build().unwrap()
}

#[test]
fn steady_state_plan_cache_hits_allocate_nothing() {
    let lib = library();
    let demands = [(SiId(0), 400u64), (SiId(1), 150u64)];
    let handle = PlanCacheHandle::private();
    let mut mgr = RunTimeManager::builder(&lib)
        .containers(4)
        .scheduler(SchedulerKind::Hef)
        .plan_cache(handle.clone())
        .build();

    // Reach steady state: the demand profile is pinned (oracle path, so
    // the evolving forecast cannot perturb the key), the first rounds
    // load every Atom of the selection, and once the fabric carries the
    // supremum the memoised schedule is empty.
    let mut now = 0u64;
    for _ in 0..6 {
        mgr.enter_hot_spot_with_profile(HotSpotId(0), &demands, now)
            .unwrap();
        now += 1_000;
        for _ in 0..50 {
            black_box(mgr.execute_si(SiId(0), now));
            now += 150;
        }
        mgr.exit_hot_spot(now);
        now += 500;
    }
    let warm = mgr.plan_cache_stats();
    assert!(warm.hits > 0, "warm-up must already replay plans: {warm:?}");

    // Steady state: every re-entry is a verified hit. Minimum over
    // several rounds filters transient allocations of the libtest
    // harness threads out of the measurement.
    let mut hit_allocs = usize::MAX;
    for _ in 0..5 {
        mgr.exit_hot_spot(now);
        now += 500;
        let a = allocations(|| {
            mgr.enter_hot_spot_with_profile(HotSpotId(0), &demands, now)
                .unwrap();
        });
        now += 1_000;
        hit_allocs = hit_allocs.min(a);
    }
    let steady = mgr.plan_cache_stats();
    assert!(
        steady.hits >= warm.hits + 5,
        "every measured re-entry must be a hit: {steady:?} vs {warm:?}"
    );
    assert_eq!(
        hit_allocs, 0,
        "a steady-state plan-cache hit must not touch the heap"
    );
}
