//! Counting-allocator harness for the multi-tenant arbiter: the
//! per-plan scratch (demand/expected buffers, scheduler upgrade arenas,
//! used-container masks) is a **single shared arena**, not a per-context
//! copy, so K tenants must not multiply its allocations.
//!
//! Two pins:
//!
//! * The *first* plan round of a K=4 shared-fabric arbiter allocates
//!   strictly less than 4× the first round of a K=1 arbiter — the scratch
//!   arena grows once and is reused warm by the other three tenants. A
//!   per-context scratch would make the two sides equal.
//! * A *steady-state* round at K=4 allocates no more than 4× a
//!   steady-state round at K=1 — per-tenant bookkeeping may scale with K,
//!   shared state must not.
//!
//! All assertions live in one `#[test]` so the global counter is not
//! perturbed by a concurrently running sibling test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

use rispp_core::{ContentionPolicy, FabricArbiter, SchedulerKind};
use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibrary, SiLibraryBuilder};
use rispp_monitor::HotSpotId;

/// Forwards to the system allocator, counting every allocation path
/// (`alloc`, `alloc_zeroed`, `realloc`).
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations(f: impl FnOnce()) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn library() -> SiLibrary {
    let universe = AtomUniverse::from_types([
        AtomTypeInfo::new("A1"),
        AtomTypeInfo::new("A2"),
        AtomTypeInfo::new("A3"),
    ])
    .unwrap();
    let mut b = SiLibraryBuilder::new(universe);
    b.special_instruction("X", 1_000)
        .unwrap()
        .molecule(Molecule::from_counts([1, 0, 0]), 100)
        .unwrap()
        .molecule(Molecule::from_counts([2, 1, 0]), 30)
        .unwrap();
    b.special_instruction("Y", 800)
        .unwrap()
        .molecule(Molecule::from_counts([0, 1, 0]), 90)
        .unwrap()
        .molecule(Molecule::from_counts([0, 2, 1]), 40)
        .unwrap();
    b.build().unwrap()
}

fn build(library: &SiLibrary, tenants: u16) -> FabricArbiter<'_> {
    FabricArbiter::builder(library)
        .containers(6)
        .tenants(tenants)
        .policy(ContentionPolicy::Shared)
        .scheduler(SchedulerKind::Hef)
        .build()
}

/// One full plan round: every tenant enters a hot spot (forecast →
/// selection → schedule), executes, and leaves.
fn round(arbiter: &mut FabricArbiter<'_>, now: &mut u64) {
    let hints = [(SiId(0), 400u64), (SiId(1), 150u64)];
    for app in 0..arbiter.tenants() {
        arbiter
            .enter_hot_spot(app, HotSpotId(app % 2), &hints, *now)
            .unwrap();
        *now += 1_000;
        for _ in 0..50 {
            black_box(arbiter.execute_si(app, SiId(0), *now));
            *now += 100;
        }
        arbiter.exit_hot_spot(app, *now);
        *now += 500;
    }
}

/// The first plan round of a freshly built K-tenant arbiter: this is
/// where the scratch arena grows. Minimum over several fresh arbiters —
/// the libtest harness threads also hit the global counter, and the
/// minimum filters their transient allocations out of a deterministic
/// measurement.
fn first_round_allocations(lib: &SiLibrary, tenants: u16) -> usize {
    (0..5)
        .map(|_| {
            let mut arbiter = build(lib, tenants);
            let mut now = 0u64;
            allocations(|| round(&mut arbiter, &mut now))
        })
        .min()
        .unwrap()
}

#[test]
fn shared_scratch_does_not_multiply_with_tenant_count() {
    let lib = library();

    // Throwaway run to pay one-time lazy initialisation (allocator
    // internals, library lookups) before any measurement.
    {
        let mut warm = build(&lib, 1);
        let mut now = 0u64;
        round(&mut warm, &mut now);
    }

    // First plan round after build: shared arena → K=4 grows it once,
    // not four times. A per-context scratch would make first4 ≥ 4×first1.
    let first1 = first_round_allocations(&lib, 1);
    let first4 = first_round_allocations(&lib, 4);

    assert!(first1 > 0, "counter failed to observe the first plan round");
    assert!(
        first4 < 4 * first1,
        "first K=4 round allocated {first4}, expected < 4×{first1}: \
         the plan scratch is being grown per context instead of shared"
    );

    // Steady state: everything is warm; per-tenant bookkeeping may cost
    // up to K× the single-tenant round, shared state must add nothing.
    let mut a1 = build(&lib, 1);
    let mut now1 = 0u64;
    let mut a4 = build(&lib, 4);
    let mut now4 = 0u64;
    for _ in 0..4 {
        round(&mut a1, &mut now1);
        round(&mut a4, &mut now4);
    }
    let steady1 = (0..5)
        .map(|_| allocations(|| round(&mut a1, &mut now1)))
        .min()
        .unwrap();
    let steady4 = (0..5)
        .map(|_| allocations(|| round(&mut a4, &mut now4)))
        .min()
        .unwrap();
    assert!(
        steady4 <= 4 * steady1.max(1),
        "steady K=4 round allocated {steady4}, steady K=1 round {steady1}"
    );
}
