//! Determinism and soundness of fault-injected simulation runs:
//! identical `(seed, rate, trace)` inputs must yield identical
//! `RunStats` and event streams, a faulty run must always complete the
//! full trace (forward progress), and injected faults can never make a
//! run *faster* than its fault-free twin.

use proptest::prelude::*;
use rispp_core::SchedulerKind;
use rispp_model::{AtomTypeInfo, AtomUniverse, Molecule, SiId, SiLibrary, SiLibraryBuilder};
use rispp_monitor::HotSpotId;
use rispp_sim::{
    simulate, simulate_with, Burst, FaultConfig, Invocation, SimConfig, SimObserver, Trace,
    TraceLogObserver,
};

/// A library whose full Molecule supremum (3 + 1 + 1 atoms) fits in the
/// 6-container fabric used below: no evictions ever happen, so a
/// fault-free run reaches a fixed point where hardware only improves.
/// This makes the "faults never speed a run up" property sound.
fn library() -> SiLibrary {
    let universe = AtomUniverse::from_types([
        AtomTypeInfo::new("A1"),
        AtomTypeInfo::new("A2"),
        AtomTypeInfo::new("A3"),
    ])
    .unwrap();
    let mut b = SiLibraryBuilder::new(universe);
    b.special_instruction("X", 1_200)
        .unwrap()
        .molecule(Molecule::from_counts([1, 0, 0]), 150)
        .unwrap()
        .molecule(Molecule::from_counts([2, 1, 0]), 40)
        .unwrap();
    b.special_instruction("Y", 900)
        .unwrap()
        .molecule(Molecule::from_counts([0, 1, 0]), 80)
        .unwrap();
    b.special_instruction("Z", 600)
        .unwrap()
        .molecule(Molecule::from_counts([0, 0, 1]), 70)
        .unwrap();
    b.build().unwrap()
}

fn trace(frames: usize) -> Trace {
    (0..frames)
        .map(|f| Invocation {
            hot_spot: HotSpotId((f % 2) as u16),
            prologue_cycles: 500,
            bursts: vec![
                Burst {
                    si: SiId(0),
                    count: 300,
                    overhead: 15,
                },
                Burst {
                    si: SiId(1),
                    count: 120,
                    overhead: 15,
                },
                Burst {
                    si: SiId(2),
                    count: 60,
                    overhead: 15,
                },
            ],
            hints: vec![(SiId(0), 300), (SiId(1), 120), (SiId(2), 60)],
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identical (fault seed, rate, trace) → identical `RunStats` and
    /// identical event streams, for every scheduler.
    #[test]
    fn identical_fault_configs_produce_identical_runs(
        seed in 0u64..u64::MAX,
        rate_ppm in 0u32..300_000,
        frames in 1usize..5,
    ) {
        let lib = library();
        let t = trace(frames);
        for kind in SchedulerKind::ALL {
            let config = SimConfig::rispp(6, kind).with_fault(FaultConfig {
                rate_ppm,
                seed,
                max_retries: 3,
            });
            let a = simulate(&lib, &t, &config);
            let b = simulate(&lib, &t, &config);
            prop_assert_eq!(&a, &b, "{}: RunStats must be reproducible", kind);

            let mut log_a = TraceLogObserver::new();
            {
                let mut system = config.build_system(&lib);
                let mut obs: [&mut dyn SimObserver; 1] = [&mut log_a];
                simulate_with(system.as_mut(), &t, &mut obs);
            }
            let mut log_b = TraceLogObserver::new();
            {
                let mut system = config.build_system(&lib);
                let mut obs: [&mut dyn SimObserver; 1] = [&mut log_b];
                simulate_with(system.as_mut(), &t, &mut obs);
            }
            prop_assert_eq!(log_a.events(), log_b.events(), "{}: event streams", kind);
        }
    }

    /// Forward progress and the speedup bound: a faulty run always
    /// completes every trace execution, and never finishes in fewer
    /// cycles than its fault-free twin (faults can only cost time).
    #[test]
    fn faults_never_speed_a_run_up(
        seed in 0u64..u64::MAX,
        rate_ppm in 1u32..400_000,
        frames in 1usize..5,
    ) {
        let lib = library();
        let t = trace(frames);
        for kind in SchedulerKind::ALL {
            let clean = simulate(&lib, &t, &SimConfig::rispp(6, kind));
            let faulty = simulate(
                &lib,
                &t,
                &SimConfig::rispp(6, kind).with_fault(FaultConfig {
                    rate_ppm,
                    seed,
                    max_retries: 3,
                }),
            );
            // Forward progress: the whole trace executed despite faults.
            prop_assert_eq!(
                faulty.total_executions(),
                t.total_si_executions(),
                "{}: executions dropped under faults",
                kind
            );
            prop_assert!(
                faulty.total_cycles >= clean.total_cycles,
                "{}: faulty run reported MORE speedup ({} cycles) than the \
                 fault-free run ({} cycles)",
                kind,
                faulty.total_cycles,
                clean.total_cycles
            );
            // And it can never be slower than pure software either: the
            // manager only picks hardware that beats the trap latency.
            let software = simulate(&lib, &t, &SimConfig::software_only());
            prop_assert!(
                faulty.total_cycles <= software.total_cycles,
                "{}: degradation fell below the software floor",
                kind
            );
        }
    }
}
