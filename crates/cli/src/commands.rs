//! Subcommand implementations.

use std::process::ExitCode;

use rispp_core::{GreedySelector, ScheduleRequest, SchedulerKind, SelectionRequest};
use rispp_fabric::ReconfigPortConfig;
use rispp_h264::{h264_si_library, EncoderConfig, EncoderWorkload, SiKind};
use rispp_model::Molecule;
use rispp_sim::{
    simulate as run_simulation, simulate_multi, simulate_observed_planned, FaultConfig,
    MetricsObserver,
    PerfettoTraceObserver, ProgressObserver, SimConfig, SimEvent, SimObserver, SweepJob,
    SweepRunner, SystemKind, TenancyConfig, TenantArbitration, TenantPolicy, Trace,
    TraceLogObserver,
};
use rispp_telemetry::{Bundle, JsonValue};

use crate::args::Options;

pub(crate) fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

/// Collects [`SimEvent::Decision`] payloads for the `--explain` rendering.
#[derive(Default)]
struct DecisionLog(Vec<rispp_core::DecisionExplain>);

impl SimObserver for DecisionLog {
    fn on_event(&mut self, event: &SimEvent) {
        if let SimEvent::Decision(d) = event {
            self.0.push((**d).clone());
        }
    }

    fn wants_segments(&self) -> bool {
        false
    }
}

/// Writes `contents` to `path`, treating `.prom`/`.txt` suffixes on a
/// metrics path as a request for the Prometheus text format.
pub(crate) fn write_metrics(path: &str, snapshot: &rispp_telemetry::MetricsSnapshot) -> Result<(), String> {
    let text = if path.ends_with(".prom") || path.ends_with(".txt") {
        snapshot.to_prometheus_text()
    } else {
        snapshot.to_json()
    };
    std::fs::write(path, text).map_err(|e| format!("cannot write metrics `{path}`: {e}"))
}

/// Parses and validates a `--fault-rate` value. The rate is a probability
/// in `[0, 1]` that expands to integer parts-per-million inside
/// [`rispp_fabric::fault::FaultModel`]; anything above 1 would silently
/// saturate at [`rispp_fabric::fault::PPM`] (1,000,000 ppm = certainty)
/// deep in the model, so the CLI rejects it up front with the ceiling
/// spelled out. Shared by every fault-injecting subcommand (`simulate`,
/// `resilience`, `serve` job specs) so they all fail identically.
fn parse_fault_rate(raw: &str) -> Result<f64, String> {
    let rate: f64 = raw
        .parse()
        .map_err(|_| format!("invalid value `{raw}` for --fault-rate"))?;
    if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
        return Err(format!(
            "--fault-rate must be a probability in [0, 1] — it scales to parts per million, \
             capped at {} ppm (= 1.0); got `{raw}` which would silently saturate",
            rispp_fabric::fault::PPM
        ));
    }
    Ok(rate)
}

/// Parses the shared fault-injection options `--fault-rate RATE`
/// (probability in `[0, 1]`, validated by [`parse_fault_rate`]),
/// `--fault-seed SEED` and `--max-retries N`. Returns `None` when
/// `--fault-rate` is absent, so runs without the flag stay bit-identical
/// to builds that predate fault injection.
pub(crate) fn fault_options(options: &Options) -> Result<Option<FaultConfig>, String> {
    let Some(raw) = options.value("fault-rate") else {
        return Ok(None);
    };
    let mut fault = FaultConfig::uniform(parse_fault_rate(raw)?);
    fault.seed = options.number("fault-seed", FaultConfig::DEFAULT_SEED)?;
    fault.max_retries = options.number("max-retries", fault.max_retries)?;
    Ok(Some(fault))
}

fn scheduler_kind(name: &str) -> Option<SchedulerKind> {
    match name.to_ascii_lowercase().as_str() {
        "hef" => Some(SchedulerKind::Hef),
        "asf" => Some(SchedulerKind::Asf),
        "fsfr" => Some(SchedulerKind::Fsfr),
        "sjf" => Some(SchedulerKind::Sjf),
        _ => None,
    }
}

fn system_kind(name: &str) -> Option<SystemKind> {
    match name.to_ascii_lowercase().as_str() {
        "molen" => Some(SystemKind::Molen),
        "onechip" => Some(SystemKind::OneChip),
        "software" => Some(SystemKind::SoftwareOnly),
        other => scheduler_kind(other).map(SystemKind::Rispp),
    }
}

/// `rispp-cli inventory [--molecules]`.
pub fn inventory(args: &[String]) -> ExitCode {
    let options = match Options::parse(args) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let library = h264_si_library();
    println!("H.264 SI library ({} SIs over {} atom types):", library.len(), library.arity());
    for si in library.iter() {
        println!(
            "  {:<12} sw {:>6} cycles, {:>2} molecules over {} atom types",
            si.name(),
            si.software_latency(),
            si.molecule_count(),
            si.atom_type_count()
        );
        if options.flag("molecules") {
            for (i, v) in si.variants().iter().enumerate() {
                println!(
                    "      m{:<2} {} -> {:>5} cycles ({} atoms)",
                    i,
                    v.atoms,
                    v.latency,
                    v.atoms.total_atoms()
                );
            }
        }
    }
    println!("\natom types:");
    for (id, info) in library.universe().iter() {
        println!(
            "  {id} {:<14} bitstream {:>6} B, {:>4} slices",
            info.name, info.bitstream_bytes, info.slices
        );
    }
    ExitCode::SUCCESS
}

/// `rispp-cli schedule [--acs N] [--scheduler KIND]`.
pub fn schedule(args: &[String]) -> ExitCode {
    let options = match Options::parse(args) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let acs: u16 = match options.number("acs", 16) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let kinds: Vec<SchedulerKind> = match options.value("scheduler") {
        None => SchedulerKind::ALL.to_vec(),
        Some(name) => match scheduler_kind(name) {
            Some(k) => vec![k],
            None => return fail(&format!("unknown scheduler `{name}`")),
        },
    };

    let library = h264_si_library();
    let demands = vec![
        (SiKind::Dct.id(), 9_504),
        (SiKind::Ht2x2.id(), 792),
        (SiKind::Ht4x4.id(), 80),
        (SiKind::Mc.id(), 360),
        (SiKind::IPredHdc.id(), 16),
        (SiKind::IPredVdc.id(), 20),
    ];
    let selection = GreedySelector.select(&SelectionRequest::new(&library, &demands, acs));
    println!("Encoding-Engine hot spot, {acs} ACs, cold fabric. Selection:");
    for s in &selection {
        let si = library.si(s.si).expect("selected");
        let v = &si.variants()[s.variant_index];
        println!(
            "  {:<12} m{} {} @ {} cycles (sw {})",
            si.name(),
            s.variant_index,
            v.atoms,
            v.latency,
            si.software_latency()
        );
    }
    let mut expected = vec![0u64; library.len()];
    for (si, e) in demands {
        expected[si.index()] = e;
    }
    let request = match ScheduleRequest::new(
        &library,
        selection,
        Molecule::zero(library.arity()),
        expected,
    ) {
        Ok(r) => r,
        Err(e) => return fail(&e.to_string()),
    };
    for kind in kinds {
        let schedule = kind.create().schedule(&request);
        println!("\n{kind} schedule ({} atom loads):", schedule.len());
        for (i, step) in schedule.steps().iter().enumerate() {
            let name = library
                .universe()
                .info(step.atom)
                .map(|t| t.name.as_str())
                .unwrap_or("?");
            match step.completes {
                Some((si, v)) => {
                    let si_name = library.si(si).map(|s| s.name()).unwrap_or("?");
                    println!("  {:>2}. {name:<14} completes {si_name} m{v}", i + 1);
                }
                None => println!("  {:>2}. {name}", i + 1),
            }
        }
    }
    ExitCode::SUCCESS
}

/// `rispp-cli simulate [--frames N] [--acs N] [--system KIND] [--oracle]
/// [--bandwidth MBPS] [--fault-rate R] [--fault-seed S] [--max-retries N]
/// [--csv] [--log-events PATH] [--metrics-out PATH] [--trace-out PATH]
/// [--explain]`.
pub fn simulate(args: &[String]) -> ExitCode {
    let options = match Options::parse(args) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let frames: u32 = match options.number("frames", 20) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let acs: u16 = match options.number("acs", 15) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let system = match options.value("system") {
        None => SystemKind::Rispp(SchedulerKind::Hef),
        Some(name) => match system_kind(name) {
            Some(s) => s,
            None => return fail(&format!("unknown system `{name}`")),
        },
    };
    let mut config = SimConfig {
        containers: acs,
        system,
        ..SimConfig::rispp(acs, SchedulerKind::Hef)
    };
    if options.flag("oracle") {
        config = config.with_oracle(true);
    }
    if options.value("bandwidth").is_some() {
        let mbps: u64 = match options.number("bandwidth", 0) {
            Ok(v) => v,
            Err(e) => return fail(&e),
        };
        // Reject unusable ports up front instead of panicking mid-run.
        let port = ReconfigPortConfig::with_bandwidth(mbps.saturating_mul(1_000_000));
        if let Err(e) = port.validate() {
            return fail(&format!("--bandwidth {mbps}: {e}"));
        }
        config = config.with_port_bandwidth(port.bandwidth_bytes_per_sec);
    }
    match fault_options(&options) {
        Ok(None) => {}
        Ok(Some(fault)) => config = config.with_fault(fault),
        Err(e) => return fail(&e),
    }

    let metrics_out = options.value("metrics-out").map(str::to_owned);
    let trace_out = options.value("trace-out").map(str::to_owned);
    let explain = options.flag("explain");
    // Decision capture feeds --explain, the metrics registry and the trace
    // instants; the fabric journal feeds container timelines. Both stay
    // off (and cost nothing) unless some telemetry sink asked for them.
    if explain || metrics_out.is_some() || trace_out.is_some() {
        config = config.with_explain(true);
    }
    if metrics_out.is_some() || trace_out.is_some() {
        config = config.with_journal(true);
    }

    eprintln!("encoding {frames} CIF frames...");
    let mut encoder_config = EncoderConfig::paper_cif();
    encoder_config.frames = frames;
    let workload = EncoderWorkload::generate(&encoder_config);
    let library = h264_si_library();

    let mut metrics = metrics_out.as_ref().map(|_| MetricsObserver::new());
    let mut perfetto = trace_out.as_ref().map(|_| PerfettoTraceObserver::new());
    let mut decisions = explain.then(DecisionLog::default);
    // --log-events streams write-through: one line of text in memory at a
    // time, so logging long runs does not buffer millions of events.
    let mut log = match options.value("log-events") {
        None => None,
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => Some((
                path.to_owned(),
                TraceLogObserver::streaming(std::io::BufWriter::new(file)),
            )),
            Err(e) => return fail(&format!("cannot create event log `{path}`: {e}")),
        },
    };

    let mut plan_stats = None;
    let stats = {
        let mut extra: Vec<&mut dyn SimObserver> = Vec::new();
        if let Some(m) = metrics.as_mut() {
            extra.push(m);
        }
        if let Some(p) = perfetto.as_mut() {
            extra.push(p);
        }
        if let Some(d) = decisions.as_mut() {
            extra.push(d);
        }
        if let Some((_, l)) = log.as_mut() {
            extra.push(l);
        }
        if extra.is_empty() {
            run_simulation(&library, workload.trace(), &config)
        } else {
            let (stats, plan) =
                simulate_observed_planned(&library, workload.trace(), &config, None, &mut extra);
            plan_stats = Some(plan);
            stats
        }
    };
    if let (Some(m), Some(plan)) = (metrics.as_mut(), plan_stats.as_ref()) {
        m.record_plan_cache(plan);
    }

    if let Some((path, mut l)) = log {
        if let Err(e) = l.finish() {
            return fail(&format!("cannot write event log `{path}`: {e}"));
        }
        eprintln!("streamed event log to {path}");
    }
    if let (Some(path), Some(m)) = (&metrics_out, metrics) {
        if let Err(e) = write_metrics(path, &m.into_snapshot()) {
            return fail(&e);
        }
        eprintln!("wrote metrics to {path}");
    }
    if let (Some(path), Some(p)) = (&trace_out, perfetto) {
        if let Err(e) = std::fs::write(path, p.into_json()) {
            return fail(&format!("cannot write trace `{path}`: {e}"));
        }
        eprintln!("wrote Perfetto trace to {path} (open at https://ui.perfetto.dev)");
    }
    if let Some(d) = decisions {
        println!(
            "{} run-time decisions (cycle-stamped, all scored candidates):",
            d.0.len()
        );
        for decision in &d.0 {
            print!("{decision}");
        }
    }

    if options.flag("csv") {
        println!("{}", rispp_sim::export::summary_csv_header());
        println!("{}", rispp_sim::export::summary_csv_row(&stats));
    } else {
        println!("system:            {}", stats.system);
        println!("total cycles:      {} ({:.1} M)", stats.total_cycles, stats.total_cycles as f64 / 1e6);
        println!("SI executions:     {}", stats.total_executions());
        println!("hardware fraction: {:.1}%", stats.hardware_fraction() * 100.0);
        println!("reconfigurations:  {}", stats.reconfigurations);
        println!(
            "port busy:         {:.1}% of execution time",
            stats.reconfiguration_cycles as f64 * 100.0 / stats.total_cycles.max(1) as f64
        );
        if config.fault.is_some() {
            println!(
                "faults injected:   {} ({} cycles lost on the port)",
                stats.faults_injected, stats.fault_cycles_lost
            );
            println!("load retries:      {}", stats.load_retries);
            println!("ACs quarantined:   {}", stats.containers_quarantined);
            println!("cISA degradations: {}", stats.degraded_to_software);
        }
        println!(
            "workload quality:  {:.1} dB PSNR, {:.0} kbit/frame",
            workload.summary().mean_psnr_y,
            workload.summary().mean_kbits_per_frame
        );
    }
    ExitCode::SUCCESS
}

/// `rispp-cli sweep [--frames N] [--from N] [--to N]`.
pub fn sweep(args: &[String]) -> ExitCode {
    let options = match Options::parse(args) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let frames: u32 = match options.number("frames", 20) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let from: u16 = match options.number("from", 5) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let to: u16 = match options.number("to", 24) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    if from > to {
        return fail("--from must not exceed --to");
    }
    let runner = SweepRunner::from_env();
    eprintln!(
        "encoding {frames} CIF frames and sweeping {from}..={to} ACs on {} thread(s)...",
        runner.threads()
    );
    let mut encoder_config = EncoderConfig::paper_cif();
    encoder_config.frames = frames;
    let workload = EncoderWorkload::generate(&encoder_config);
    let library = h264_si_library();

    // One row per AC count: the four schedulers, then Molen — all
    // independent, so the whole grid fans out over the runner's workers.
    let trace = workload.trace();
    let mut jobs: Vec<SweepJob<'_>> = Vec::new();
    for acs in from..=to {
        for kind in SchedulerKind::ALL {
            jobs.push(SweepJob::new(SimConfig::rispp(acs, kind), trace));
        }
        jobs.push(SweepJob::new(SimConfig::molen(acs), trace));
    }
    // Live progress on stderr: each job carries a ProgressObserver sharing
    // one counter, so the count is global across the parallel workers.
    let finished = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let total = jobs.len();
    let results = runner.run_observed(&library, &jobs, |_| {
        let finished = std::sync::Arc::clone(&finished);
        vec![Box::new(ProgressObserver::new(total, finished, |done, total| {
            eprint!("\r  {done}/{total} runs");
            if done == total {
                eprintln!();
            }
        })) as Box<dyn SimObserver>]
    });

    let per_row = SchedulerKind::ALL.len() + 1;
    println!("  #ACs       ASF      FSFR       SJF       HEF     Molen");
    for (row, acs) in (from..=to).enumerate() {
        print!("  {acs:>4}");
        for stats in &results[row * per_row..(row + 1) * per_row] {
            print!("{:>10.1}", stats.total_cycles as f64 / 1e6);
        }
        println!();
    }
    ExitCode::SUCCESS
}

/// `rispp-cli resilience [--frames N] [--acs N] [--fault-rate R]
/// [--fault-seed S] [--max-retries N] [--csv]`.
///
/// Sweeps the fault rate (or runs the single `--fault-rate`) on the HEF
/// scheduler and reports how gracefully the self-healing run-time system
/// degrades towards the cISA software floor.
pub fn resilience(args: &[String]) -> ExitCode {
    let options = match Options::parse(args) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let frames: u32 = match options.number("frames", 10) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let acs: u16 = match options.number("acs", 15) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let rates: Vec<f64> = match options.value("fault-rate") {
        None => vec![0.0, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25],
        Some(raw) => match parse_fault_rate(raw) {
            Ok(r) => vec![r],
            Err(e) => return fail(&e),
        },
    };
    let seed: u64 = match options.number("fault-seed", FaultConfig::DEFAULT_SEED) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let max_retries: u32 = match options.number("max-retries", FaultConfig::uniform(0.0).max_retries)
    {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };

    let runner = SweepRunner::from_env();
    eprintln!(
        "encoding {frames} CIF frames and sweeping {} fault rate(s) on {} thread(s)...",
        rates.len(),
        runner.threads()
    );
    let mut encoder_config = EncoderConfig::paper_cif();
    encoder_config.frames = frames;
    let workload = EncoderWorkload::generate(&encoder_config);
    let library = h264_si_library();
    let trace = workload.trace();

    // The cISA floor every degraded run is measured against.
    let software = run_simulation(&library, trace, &SimConfig::software_only());

    let configs: Vec<SimConfig> = rates
        .iter()
        .map(|&rate| {
            let mut fault = FaultConfig::uniform(rate);
            fault.seed = seed;
            fault.max_retries = max_retries;
            SimConfig::rispp(acs, SchedulerKind::Hef).with_fault(fault)
        })
        .collect();
    let jobs: Vec<SweepJob<'_>> = configs.iter().map(|c| SweepJob::new(*c, trace)).collect();
    let results = runner.run(&library, &jobs);

    if options.flag("csv") {
        println!(
            "fault_rate,total_cycles,speedup_vs_software,faults_injected,load_retries,\
             containers_quarantined,degraded_to_software,fault_cycles_lost"
        );
        for (rate, stats) in rates.iter().zip(&results) {
            println!(
                "{rate},{},{:.4},{},{},{},{},{}",
                stats.total_cycles,
                software.total_cycles as f64 / stats.total_cycles.max(1) as f64,
                stats.faults_injected,
                stats.load_retries,
                stats.containers_quarantined,
                stats.degraded_to_software,
                stats.fault_cycles_lost
            );
        }
    } else {
        println!("HEF on {acs} ACs, seed {seed:#x}, max retries {max_retries}:");
        println!("  fault rate   speedup    faults   retries  quarantined  degraded");
        for (rate, stats) in rates.iter().zip(&results) {
            println!(
                "  {rate:>10.4}{:>10.2}x{:>10}{:>10}{:>13}{:>10}",
                software.total_cycles as f64 / stats.total_cycles.max(1) as f64,
                stats.faults_injected,
                stats.load_retries,
                stats.containers_quarantined,
                stats.degraded_to_software
            );
        }
        println!(
            "  software floor: {} cycles ({:.1} M); every row must stay >= 1.00x",
            software.total_cycles,
            software.total_cycles as f64 / 1e6
        );
    }
    ExitCode::SUCCESS
}

/// `rispp-cli profile [--frames N] [--acs N] [--system KIND]
/// [--metrics-out PATH] [--trace-out PATH]`.
///
/// Runs one telemetry-enabled simulation and prints a cycle-domain
/// profile: where the simulated cycles went per SI, how each Atom
/// Container spent the run, and what the run-time system decided.
pub fn profile(args: &[String]) -> ExitCode {
    let options = match Options::parse(args) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let frames: u32 = match options.number("frames", 20) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let acs: u16 = match options.number("acs", 15) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let system = match options.value("system") {
        None => SystemKind::Rispp(SchedulerKind::Hef),
        Some(name) => match system_kind(name) {
            Some(s) => s,
            None => return fail(&format!("unknown system `{name}`")),
        },
    };
    let config = SimConfig {
        containers: acs,
        system,
        ..SimConfig::rispp(acs, SchedulerKind::Hef)
    }
    .with_explain(true)
    .with_journal(true);

    eprintln!("encoding {frames} CIF frames...");
    let mut encoder_config = EncoderConfig::paper_cif();
    encoder_config.frames = frames;
    let workload = EncoderWorkload::generate(&encoder_config);
    let library = h264_si_library();

    let mut metrics = MetricsObserver::new();
    let mut perfetto = options.value("trace-out").map(|_| PerfettoTraceObserver::new());
    let (stats, plan) = {
        let mut extra: Vec<&mut dyn SimObserver> = vec![&mut metrics];
        if let Some(p) = perfetto.as_mut() {
            extra.push(p);
        }
        simulate_observed_planned(&library, workload.trace(), &config, None, &mut extra)
    };
    metrics.record_plan_cache(&plan);
    let snapshot = metrics.into_snapshot();

    println!(
        "{} on {acs} ACs, {frames} frames: {} cycles ({:.1} M)",
        stats.system,
        stats.total_cycles,
        stats.total_cycles as f64 / 1e6
    );
    let total = stats.total_cycles.max(1);
    println!(
        "port busy {:.1}%, {} reconfigurations, {} decisions",
        snapshot.counter("rispp_port_busy_cycles_total") as f64 * 100.0 / total as f64,
        snapshot.counter("rispp_reconfigurations_total"),
        snapshot.counter("rispp_decisions_total")
    );
    if plan.lookups() > 0 {
        println!(
            "plan cache: {} hits / {} lookups ({:.1}% hit rate), {} insertions, \
             {} evictions, {} epoch bumps",
            plan.hits,
            plan.lookups(),
            plan.hit_rate() * 100.0,
            plan.insertions,
            plan.evictions,
            plan.epoch_bumps
        );
    }

    println!("\nper-SI cycle profile:");
    println!("  SI            executions   hw share    cycles     mean lat");
    for si in library.iter() {
        let id = si.id().0;
        let execs = snapshot.counter(&format!("rispp_si_executions_total{{si=\"{id}\"}}"));
        if execs == 0 {
            continue;
        }
        let hw = snapshot.counter(&format!("rispp_si_hardware_executions_total{{si=\"{id}\"}}"));
        let (sum, count) = match snapshot.get(&format!("rispp_si_latency_cycles{{si=\"{id}\"}}")) {
            Some(rispp_telemetry::Metric::Histogram(h)) => (h.sum(), h.count()),
            _ => (0, 0),
        };
        println!(
            "  {:<12} {:>11}   {:>7.1}% {:>9}   {:>10.1}",
            si.name(),
            execs,
            hw as f64 * 100.0 / execs.max(1) as f64,
            sum,
            sum as f64 / count.max(1) as f64
        );
    }

    println!("\nper-container time profile (% of run):");
    println!("   AC      load     ready      idle  quarantined");
    for c in 0..acs {
        let pct = |family: &str| {
            snapshot.counter(&format!("{family}{{container=\"{c}\"}}")) as f64 * 100.0
                / total as f64
        };
        let load = pct("rispp_container_load_cycles_total");
        let ready = pct("rispp_container_ready_cycles_total");
        let idle = pct("rispp_container_idle_cycles_total");
        let quarantined = pct("rispp_container_quarantined_cycles_total");
        if load + ready + idle + quarantined == 0.0 {
            continue;
        }
        println!(
            "  {c:>3} {load:>8.1}% {ready:>8.1}% {idle:>8.1}% {quarantined:>11.1}%"
        );
    }

    if let Some(path) = options.value("metrics-out") {
        if let Err(e) = write_metrics(path, &snapshot) {
            return fail(&e);
        }
        eprintln!("wrote metrics to {path}");
    }
    if let (Some(path), Some(p)) = (options.value("trace-out"), perfetto) {
        if let Err(e) = std::fs::write(path, p.into_json()) {
            return fail(&format!("cannot write trace `{path}`: {e}"));
        }
        eprintln!("wrote Perfetto trace to {path} (open at https://ui.perfetto.dev)");
    }
    ExitCode::SUCCESS
}

/// `rispp-cli check-trace --file PATH`.
///
/// Validates that a `--trace-out` document is well-formed Chrome
/// trace-event JSON with at least one Atom Container track and at least
/// one scheduler decision event. Used by the CI telemetry smoke test.
pub fn check_trace(args: &[String]) -> ExitCode {
    let options = match Options::parse(args) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let Some(path) = options.value("file") else {
        return fail("check-trace requires --file PATH");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read `{path}`: {e}")),
    };
    let doc = match JsonValue::parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("`{path}` is not valid JSON: {e}")),
    };
    let Some(events) = doc.get("traceEvents").and_then(JsonValue::as_array) else {
        return fail(&format!("`{path}` has no traceEvents array"));
    };
    // Container tracks are threads of the "Atom Containers" process (pid 1)
    // announced via thread_name metadata events.
    let container_tracks = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(JsonValue::as_str) == Some("M")
                && e.get("name").and_then(JsonValue::as_str) == Some("thread_name")
                && e.get("pid").and_then(JsonValue::as_u64) == Some(1)
        })
        .count();
    let decision_events = events
        .iter()
        .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("decision"))
        .count();
    let spans = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .count();
    println!(
        "{path}: {} events, {container_tracks} container track(s), {spans} span(s), \
         {decision_events} decision event(s)",
        events.len()
    );
    if container_tracks == 0 {
        return fail("no Atom Container tracks in trace");
    }
    if decision_events == 0 {
        return fail("no scheduler decision events in trace");
    }
    ExitCode::SUCCESS
}

/// `rispp-cli forensics --file PATH`.
///
/// Loads a flight-recorder diagnostic bundle spilled by `rispp-serve`
/// and renders the causal chain behind the failure: admission identity,
/// plan-cache state at the dump, retained scheduler decisions, the
/// fabric journal tail and the event tail. Exits 0 iff the bundle
/// parses; a truncated-but-readable bundle is rendered with a warning.
pub fn forensics(args: &[String]) -> ExitCode {
    let options = match Options::parse(args) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let Some(path) = options.value("file") else {
        return fail("forensics requires --file PATH");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read `{path}`: {e}")),
    };
    let bundle = match Bundle::parse(&text) {
        Ok(b) => b,
        Err(e) => return fail(&format!("`{path}` is not a flight bundle: {e}")),
    };
    let meta = &bundle.meta;
    println!("flight bundle {path}");
    println!("  reason       {}", meta.reason);
    println!(
        "  identity     job `{}`  trace {}  tenant {}  attempt {}",
        meta.job_id, meta.trace_id, meta.tenant, meta.attempt
    );
    println!(
        "  config       hash {:016x}  (event schema v{})",
        meta.config_hash, meta.event_schema_version
    );
    if !bundle.complete {
        println!("  WARNING      bundle is truncated; the tail below is partial");
    }

    let count = |name: &str| {
        bundle
            .events
            .iter()
            .filter(|e| e.get("event").and_then(JsonValue::as_str) == Some(name))
            .count()
    };
    let event_u64 = |row: &JsonValue, key: &str| row.get(key).and_then(JsonValue::as_u64);

    println!("\ncausal chain:");
    println!(
        "  admission    job `{}` admitted as trace {}; bundle captures attempt {}",
        meta.job_id, meta.trace_id, meta.attempt
    );
    println!(
        "  plan/replay  warm plan cache at dump: {} hits / {} misses",
        meta.plan_hits, meta.plan_misses
    );
    println!(
        "  bursts       event tail retains {} rows ({} older rows fell off the ring): \
         {} hot-spot entries, {} segments, {} atom loads",
        bundle.events.len(),
        meta.events_dropped,
        count("hot_spot_entered"),
        count("segment_executed"),
        count("load_completed"),
    );
    println!(
        "  faults       {} injected, {} load retries, {} quarantines, {} cISA degradations",
        count("fault_injected"),
        count("load_retried"),
        count("container_quarantined"),
        count("degraded_to_software"),
    );
    let last_cycle = bundle
        .events
        .iter()
        .rev()
        .find_map(|e| event_u64(e, "now").or_else(|| event_u64(e, "at")))
        .unwrap_or(0);
    if count("run_finished") > 0 {
        println!("  outcome      {} — run reached its end", meta.reason);
    } else {
        println!(
            "  outcome      {} — run stopped near cycle {last_cycle}, no run_finished event",
            meta.reason
        );
    }

    if bundle.explains.is_empty() {
        println!("\nno retained scheduler decisions");
    } else {
        println!(
            "\nlast {} scheduler decision(s) ({} older dropped):",
            bundle.explains.len(),
            meta.decisions_dropped
        );
        for (now, summary) in &bundle.explains {
            println!("  @{now:>12}  {summary}");
        }
    }
    if bundle.journal.is_empty() {
        println!("no retained fabric-journal entries");
    } else {
        println!(
            "last {} fabric-journal entries ({} older dropped):",
            bundle.journal.len(),
            meta.journal_dropped
        );
        for entry in &bundle.journal {
            let kind = entry.get("kind").and_then(JsonValue::as_str).unwrap_or("?");
            let container = event_u64(entry, "container").unwrap_or(0);
            let at = event_u64(entry, "at").unwrap_or(0);
            match event_u64(entry, "atom") {
                Some(atom) => println!("  @{at:>12}  AC{container} {kind} atom {atom}"),
                None => println!("  @{at:>12}  AC{container} {kind}"),
            }
        }
    }
    println!(
        "perfetto fragment: {}",
        if bundle.perfetto.is_some() {
            "present (extract with any JSONL tool, open at https://ui.perfetto.dev)"
        } else {
            "absent"
        }
    );
    ExitCode::SUCCESS
}

/// `rispp-cli hw`.
pub fn hw(args: &[String]) -> ExitCode {
    if let Err(e) = Options::parse(args) {
        return fail(&e);
    }
    let paper = rispp_hw::AreaReport::paper_hef();
    let estimate = rispp_hw::area_estimate(&rispp_hw::AreaParameters::default());
    let atom = rispp_hw::AreaReport::paper_average_atom();
    println!("HEF scheduler hardware (paper Table 3 vs parametric model):");
    println!("  characteristic      paper HEF   model HEF   avg atom");
    println!("  # slices            {:>9}   {:>9}   {:>8}", paper.slices, estimate.slices, atom.slices);
    println!("  # LUTs              {:>9}   {:>9}   {:>8}", paper.luts, estimate.luts, atom.luts);
    println!("  # FFs               {:>9}   {:>9}   {:>8}", paper.ffs, estimate.ffs, atom.ffs);
    println!("  # MULT18X18         {:>9}   {:>9}   {:>8}", paper.mult18x18, estimate.mult18x18, atom.mult18x18);
    println!("  gate equivalents    {:>9}   {:>9}   {:>8}", paper.gate_equivalents, estimate.gate_equivalents, atom.gate_equivalents);
    println!("  clock delay [ns]    {:>9.3}   {:>9.3}   {:>8.3}", paper.clock_delay_ns, estimate.clock_delay_ns, atom.clock_delay_ns);
    println!(
        "  utilisation {:.2}% of the xc2v3000; fits one Atom Container: {}",
        paper.device_utilisation_percent(),
        paper.fits_one_atom_container()
    );
    ExitCode::SUCCESS
}

/// The encoder workload rotated by `offset` invocations, so phase-shifted
/// tenant instances are never in the same hot spot at the same time.
fn phase_shift(trace: &Trace, offset: usize) -> Trace {
    let invs = trace.invocations();
    let offset = offset % invs.len().max(1);
    Trace::from_invocations(
        invs[offset..]
            .iter()
            .chain(&invs[..offset])
            .cloned()
            .collect(),
    )
}

/// `rispp-cli contend [--frames N] [--apps K] [--from N] [--to N]
/// [--scheduler KIND] [--arbitration rr|interleaved] [--csv]
/// [--json [PATH]]`.
///
/// Sweeps K phase-shifted encoder instances contending for a range of
/// fabric sizes under both contention policies: `shared` (one fabric,
/// cross-app Atom reuse, contention-aware eviction) and `partitioned`
/// (hard `containers / K` quota per app).
pub fn contend(args: &[String]) -> ExitCode {
    let options = match Options::parse(args) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let frames: u32 = match options.number("frames", 8) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let apps: u16 = match options.number("apps", 2) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    if apps == 0 {
        return fail("--apps must be at least 1");
    }
    let from: u16 = match options.number("from", apps.max(6)) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let to: u16 = match options.number("to", 15) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    if from > to {
        return fail("--from must not exceed --to");
    }
    if from < apps {
        return fail("--from must provide at least one container per app");
    }
    let scheduler = match options.value("scheduler") {
        None => SchedulerKind::Hef,
        Some(name) => match scheduler_kind(name) {
            Some(kind) => kind,
            None => return fail(&format!("unknown scheduler `{name}`")),
        },
    };
    let arbitration = match options.value("arbitration") {
        None => TenantArbitration::RoundRobin,
        Some("rr") | Some("round-robin") => TenantArbitration::RoundRobin,
        Some("interleaved") | Some("cycle") => TenantArbitration::CycleInterleaved,
        Some(other) => {
            return fail(&format!(
                "unknown arbitration `{other}` (expected rr | interleaved)"
            ))
        }
    };

    eprintln!(
        "encoding {frames} CIF frames and contending {apps} app(s) over {from}..={to} ACs..."
    );
    let mut encoder_config = EncoderConfig::paper_cif();
    encoder_config.frames = frames;
    let workload = EncoderWorkload::generate(&encoder_config);
    let library = h264_si_library();
    let traces: Vec<Trace> = (0..usize::from(apps))
        .map(|i| phase_shift(workload.trace(), i))
        .collect();

    // Per-app cISA floor: the starvation bound every policy must respect.
    let software: Vec<u64> = traces
        .iter()
        .map(|t| run_simulation(&library, t, &SimConfig::software_only()).total_cycles)
        .collect();

    struct Point {
        containers: u16,
        policy: TenantPolicy,
        per_app: Vec<(u64, u64, u64)>, // (cycles, atoms_shared, evictions_contested)
        solo: Vec<u64>,
        aggregate: u64,
        makespan: u64,
        atoms_shared: u64,
        evictions_contested: u64,
    }
    let policy_name = |p: TenantPolicy| match p {
        TenantPolicy::Shared => "shared",
        TenantPolicy::Partitioned => "partitioned",
    };

    let mut points: Vec<Point> = Vec::new();
    for containers in from..=to {
        let solo_cfg = SimConfig::rispp(containers, scheduler);
        let solo: Vec<u64> = traces
            .iter()
            .map(|t| run_simulation(&library, t, &solo_cfg).total_cycles)
            .collect();
        for policy in [TenantPolicy::Shared, TenantPolicy::Partitioned] {
            let cfg = solo_cfg.with_tenants(TenancyConfig {
                count: apps,
                policy,
                arbitration,
            });
            let multi = simulate_multi(&library, &traces, &cfg);
            points.push(Point {
                containers,
                policy,
                per_app: multi
                    .per_tenant
                    .iter()
                    .map(|s| (s.total_cycles, s.atoms_shared, s.evictions_contested))
                    .collect(),
                solo: solo.clone(),
                aggregate: multi.aggregate_cycles,
                makespan: multi.makespan_cycles,
                atoms_shared: multi.atoms_shared,
                evictions_contested: multi.evictions_contested,
            });
        }
    }

    let starved = points.iter().any(|p| {
        p.per_app
            .iter()
            .zip(&software)
            .any(|(&(cycles, _, _), &floor)| cycles > floor)
    });
    let shared_wins = points.chunks(2).all(|pair| {
        // [Shared, Partitioned] per container count, in push order.
        pair[0].aggregate <= pair[1].aggregate
    });

    if options.flag("csv") {
        println!(
            "containers,policy,app,total_cycles,speedup_vs_software,solo_fraction,\
             atoms_shared,evictions_contested"
        );
        for p in &points {
            for (app, &(cycles, shared, contested)) in p.per_app.iter().enumerate() {
                println!(
                    "{},{},{app},{cycles},{:.4},{:.4},{shared},{contested}",
                    p.containers,
                    policy_name(p.policy),
                    software[app] as f64 / cycles.max(1) as f64,
                    p.solo[app] as f64 / cycles.max(1) as f64,
                );
            }
        }
    } else if !options.flag("json") && options.value("json").is_none() {
        println!(
            "{apps} apps, {} scheduler, {} arbitration:",
            scheduler.abbreviation(),
            match arbitration {
                TenantArbitration::RoundRobin => "round-robin",
                TenantArbitration::CycleInterleaved => "cycle-interleaved",
            }
        );
        println!("  #ACs  policy        aggregate   makespan    shared  contested  worst app");
        for p in &points {
            let worst = p
                .per_app
                .iter()
                .zip(&p.solo)
                .map(|(&(cycles, _, _), &solo)| solo as f64 / cycles.max(1) as f64)
                .fold(f64::INFINITY, f64::min);
            println!(
                "  {:>4}  {:<12}{:>9.1} M{:>9.1} M{:>10}{:>11}{:>9.1}%",
                p.containers,
                policy_name(p.policy),
                p.aggregate as f64 / 1e6,
                p.makespan as f64 / 1e6,
                p.atoms_shared,
                p.evictions_contested,
                100.0 * worst
            );
        }
        println!(
            "  shared aggregate <= partitioned at every fabric size: {shared_wins}; \
             tenant starved: {starved}"
        );
    }

    if options.flag("json") || options.value("json").is_some() {
        let mut doc = String::new();
        doc.push_str("{\n");
        doc.push_str("  \"benchmark\": \"multi_tenant_contention\",\n");
        doc.push_str(&format!("  \"frames\": {frames},\n"));
        doc.push_str(&format!("  \"apps\": {apps},\n"));
        doc.push_str(&format!(
            "  \"scheduler\": \"{}\",\n",
            scheduler.abbreviation()
        ));
        doc.push_str(&format!(
            "  \"arbitration\": \"{}\",\n",
            match arbitration {
                TenantArbitration::RoundRobin => "round_robin",
                TenantArbitration::CycleInterleaved => "cycle_interleaved",
            }
        ));
        doc.push_str(&format!("  \"container_range\": [{from}, {to}],\n"));
        doc.push_str(&format!(
            "  \"software_cycles\": [{}],\n",
            software
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        doc.push_str(&format!(
            "  \"shared_beats_partitioned_everywhere\": {shared_wins},\n"
        ));
        doc.push_str(&format!("  \"no_tenant_starved\": {},\n", !starved));
        doc.push_str("  \"points\": [\n");
        for (i, p) in points.iter().enumerate() {
            let per_app = p
                .per_app
                .iter()
                .enumerate()
                .map(|(app, &(cycles, shared, contested))| {
                    format!(
                        "{{\"app\": {app}, \"total_cycles\": {cycles}, \
                         \"speedup_vs_software\": {:.4}, \"solo_fraction\": {:.4}, \
                         \"atoms_shared\": {shared}, \"evictions_contested\": {contested}}}",
                        software[app] as f64 / cycles.max(1) as f64,
                        p.solo[app] as f64 / cycles.max(1) as f64,
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            doc.push_str(&format!(
                "    {{\"containers\": {}, \"policy\": \"{}\", \"aggregate_cycles\": {}, \
                 \"makespan_cycles\": {}, \"atoms_shared\": {}, \"evictions_contested\": {}, \
                 \"per_app\": [{per_app}]}}{}\n",
                p.containers,
                policy_name(p.policy),
                p.aggregate,
                p.makespan,
                p.atoms_shared,
                p.evictions_contested,
                if i + 1 == points.len() { "" } else { "," }
            ));
        }
        doc.push_str("  ]\n}\n");
        match options.value("json") {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &doc) {
                    return fail(&format!("cannot write `{path}`: {e}"));
                }
                eprintln!("wrote {path}");
            }
            None => print!("{doc}"),
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_rate_accepts_the_valid_range() {
        assert_eq!(parse_fault_rate("0").unwrap(), 0.0);
        assert_eq!(parse_fault_rate("0.05").unwrap(), 0.05);
        assert_eq!(parse_fault_rate("1").unwrap(), 1.0);
        assert_eq!(parse_fault_rate("1e-6").unwrap(), 1e-6);
    }

    #[test]
    fn fault_rate_rejects_saturating_and_garbage_values() {
        // Everything above 1.0 would silently clamp to PPM inside the
        // fault model; the error must name the ceiling instead.
        for raw in ["1.0001", "2", "1000000", "2000000", "inf", "NaN", "-0.1", "-inf"] {
            let err = parse_fault_rate(raw).unwrap_err();
            assert!(
                err.contains("1000000") && err.contains("[0, 1]"),
                "{raw}: error must cite the ppm ceiling, got: {err}"
            );
        }
        assert!(parse_fault_rate("half").unwrap_err().contains("invalid value"));
    }

    #[test]
    fn fault_options_is_shared_and_validates() {
        let parse = |args: &[&str]| {
            let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            Options::parse(&owned).unwrap()
        };
        assert!(fault_options(&parse(&[])).unwrap().is_none());
        let f = fault_options(&parse(&["--fault-rate", "0.25", "--fault-seed", "7"]))
            .unwrap()
            .unwrap();
        assert_eq!(f.rate_ppm, 250_000);
        assert_eq!(f.seed, 7);
        assert!(fault_options(&parse(&["--fault-rate", "1.5"])).is_err());
    }
}
